#pragma once

#include <cstdint>

/// Deterministic pseudo-random number generation.
///
/// Heuristic search, workload generation and property tests must be exactly
/// reproducible across runs and platforms, so the library carries its own
/// xoshiro256** generator (seeded through SplitMix64) instead of relying on
/// implementation-defined std::default_random_engine behaviour.
namespace hca {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hca
