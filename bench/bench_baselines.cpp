// E4: HCA against the two baselines the paper positions itself against —
// flat (non-hierarchical) ICA over the K64 abstraction (Section 4, first
// paragraphs: it must "keep trace of the internal logic of the hierarchy
// of MUXes" and explodes the state space) and a machine-agnostic
// multilevel partitioner in the style of Chu et al. [4].
//
// Also runs the DESIGN.md ablations: node-filter beam width and the route
// allocator (the paper's `no candidates action`) on/off.

#include <cstdio>
#include <ctime>

#include "baseline/flat_ica.hpp"
#include "baseline/multilevel.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"

using namespace hca;

namespace {

double seconds(std::clock_t since) {
  return static_cast<double>(std::clock() - since) / CLOCKS_PER_SEC;
}

void compareOnKernel(const ddg::Kernel& kernel,
                     const machine::DspFabricModel& model) {
  std::printf("%s (%d instructions)\n", kernel.name.c_str(),
              kernel.ddg.stats().numInstructions);

  {  // HCA
    std::clock_t t0 = std::clock();
    const core::HcaDriver driver(model);
    const auto result = driver.run(kernel.ddg);
    const double sec = seconds(t0);
    if (result.legal) {
      const auto mii = core::computeMii(kernel.ddg, model, result);
      std::printf("  %-12s legal=yes finalMII=%-3d candidates=%-8lld %5.2fs\n",
                  "HCA", mii.finalMii,
                  static_cast<long long>(result.stats.candidatesEvaluated),
                  sec);
    } else {
      std::printf("  %-12s legal=no  candidates=%-8lld %5.2fs\n", "HCA",
                  static_cast<long long>(result.stats.candidatesEvaluated),
                  sec);
    }
  }
  {  // flat ICA
    std::clock_t t0 = std::clock();
    const auto result = baseline::runFlatIca(kernel.ddg, model);
    const double sec = seconds(t0);
    std::printf(
        "  %-12s assign=%-3s hierarchy=%-3s maxCn=%-3d candidates=%-8lld "
        "%5.2fs\n",
        "flat-ICA", result.assignmentLegal ? "yes" : "no",
        result.hierarchyLegal ? "yes" : "no", result.maxCnPressure,
        static_cast<long long>(result.seeStats.candidatesEvaluated), sec);
  }
  {  // multilevel partitioning
    std::clock_t t0 = std::clock();
    const auto result = baseline::runMultilevel(kernel.ddg, model);
    const double sec = seconds(t0);
    std::printf(
        "  %-12s hierarchy=%-3s cut=%-4d maxCnLoad=%-3d moves=%-5d %5.2fs\n",
        "multilevel", result.hierarchyLegal ? "yes" : "no", result.cutEdges,
        result.maxCnLoad, result.refinementMoves, sec);
  }
  std::printf("\n");
}

void ablations(const machine::DspFabricModel& model) {
  const auto kernel = ddg::buildFir2Dim();

  std::printf("Ablation: node-filter beam width (fir2dim)\n");
  for (const int beam : {1, 2, 4, 8, 16}) {
    core::HcaOptions options;
    options.see.beamWidth = beam;
    options.see.candidateKeep = std::min(beam, 10);
    std::clock_t t0 = std::clock();
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);
    if (result.legal) {
      const auto mii = core::computeMii(kernel.ddg, model, result);
      std::printf("  beam=%-3d legal=yes finalMII=%-3d %5.2fs\n", beam,
                  mii.finalMii, seconds(t0));
    } else {
      std::printf("  beam=%-3d legal=no  %5.2fs\n", beam, seconds(t0));
    }
  }

  std::printf("\nAblation: route allocator — the `no candidates action`\n");
  for (const bool enabled : {true, false}) {
    core::HcaOptions options;
    options.see.enableRouteAllocator = enabled;
    options.targetIiSlack = 4;
    options.searchProfiles = 3;
    std::clock_t t0 = std::clock();
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);
    std::printf("  routing=%-3s legal=%-3s routeInvocations=%lld %5.2fs\n",
                enabled ? "on" : "off", result.legal ? "yes" : "no",
                static_cast<long long>(result.stats.routeInvocations),
                seconds(t0));
  }

  std::printf("\nAblation: Mapper broadcast/splitting pressure (fir2dim)\n");
  {
    core::HcaOptions options;
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);
    if (result.legal) {
      std::printf("  max values per wire across levels: %d\n",
                  result.stats.maxWirePressure);
    }
  }
}

}  // namespace

int main() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  const machine::DspFabricModel model(config);

  std::printf("HCA vs baselines on the paper machine (%s)\n\n",
              config.toString().c_str());
  for (auto& kernel : ddg::table1Kernels()) compareOnKernel(kernel, model);
  ablations(model);
  return 0;
}
