#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/str.hpp"
#include "verify/coherency.hpp"
#include "verify/verify.hpp"

/// The built-in invariant checks (see verify.hpp for the catalogue). Every
/// check body follows the same shape: a `perRecord` check verifies exactly
/// one ProblemRecord when `input.record` is set (the driver's between-stages
/// mode, where the whole-result context — final assignment, relays — does
/// not exist yet), and in whole-result scope (`input.record == nullptr`)
/// iterates every surviving record and adds the cross-record invariants.
/// Whole-result scope silently no-ops on an illegal result: a failed run's
/// partial state satisfies no global invariant by construction.
namespace hca::verify {

namespace {

using core::HcaResult;
using core::ProblemRecord;

void emit(std::vector<Diagnostic>& out, std::vector<int> path,
          std::vector<std::int64_t> entities, std::string message) {
  Diagnostic d;
  d.subproblemPath = std::move(path);
  d.entities = std::move(entities);
  d.message = std::move(message);
  out.push_back(std::move(d));
}

/// Fault-aware wire budgets of one record's level, recomputed the same way
/// the driver feeds them to the Mapper. Budgets come from the *current*
/// model: for results produced by the degraded-bandwidth fallback these are
/// upper bounds (the degraded fabric has strictly tighter budgets), so every
/// `<=` check below stays sound across all ladder rungs.
struct WireBudgets {
  machine::LevelSpec spec;
  machine::ProblemSpec pspec;
  bool usePerChild = false;
  bool leaf = false;

  static WireBudgets of(const machine::DspFabricModel& model,
                        const ProblemRecord& record) {
    WireBudgets b;
    b.spec = model.levelSpec(record.level);
    b.leaf = record.leaf;
    if (model.hasFaults()) {
      b.pspec = model.problemSpec(record.path);
      b.usePerChild = b.pspec.touched;
    }
    return b;
  }

  [[nodiscard]] int inCap(int di) const {
    const int wires =
        usePerChild ? pspec.inWiresOfChild[static_cast<std::size_t>(di)]
                    : spec.inWires;
    const int extra =
        leaf ? 0
             : (usePerChild
                    ? pspec.maxWiresIntoChildOf[static_cast<std::size_t>(di)]
                    : spec.maxWiresIntoChild);
    return extra > 0 ? std::min(wires, extra) : wires;
  }

  [[nodiscard]] int outBudget(int si) const {
    return usePerChild ? pspec.outWiresOfChild[static_cast<std::size_t>(si)]
                       : spec.outWires;
  }
};

/// Values flowing on real arcs into / out of one PG node, deduplicated.
std::set<ValueId> flowInto(const ProblemRecord& r, ClusterId node) {
  std::set<ValueId> values;
  for (const PgArcId arc : r.pg.inArcs(node)) {
    for (const ValueId v : r.flow.copiesOn(arc)) values.insert(v);
  }
  return values;
}

std::set<ValueId> flowOutOf(const ProblemRecord& r, ClusterId node) {
  std::set<ValueId> values;
  for (const PgArcId arc : r.pg.outArcs(node)) {
    for (const ValueId v : r.flow.copiesOn(arc)) values.insert(v);
  }
  return values;
}

// --------------------------------------------------------------------------
// ddg-well-formed
// --------------------------------------------------------------------------
void checkDdgWellFormed(const VerifyInput& in, std::vector<Diagnostic>& out) {
  try {
    in.ddg->validate();
  } catch (const std::exception& e) {
    emit(out, {}, {}, strCat("input DDG fails validation: ", e.what()));
  }
}

// --------------------------------------------------------------------------
// see-solution
// --------------------------------------------------------------------------
void checkSeeSolutionRecord(const VerifyInput& in, const ProblemRecord& r,
                            std::vector<Diagnostic>& out) {
  const auto clusters = r.pg.clusterNodes();
  const int numChildren = static_cast<int>(clusters.size());

  if (r.wsChild.size() != r.workingSet.size()) {
    emit(out, r.path, {},
         strCat("working set has ", r.workingSet.size(),
                " nodes but wsChild has ", r.wsChild.size(), " entries"));
    return;
  }
  if (r.relayChild.size() != r.relayValues.size()) {
    emit(out, r.path, {},
         strCat("relay list has ", r.relayValues.size(),
                " values but relayChild has ", r.relayChild.size(),
                " entries"));
    return;
  }

  // Every node assigned to exactly one child, in range.
  std::set<DdgNodeId> seen;
  for (std::size_t i = 0; i < r.workingSet.size(); ++i) {
    const DdgNodeId n = r.workingSet[i];
    if (!seen.insert(n).second) {
      emit(out, r.path, {n.value()},
           strCat("node ", n.value(),
                  " appears more than once in the working set (double "
                  "assignment)"));
    }
    if (r.wsChild[i] < 0 || r.wsChild[i] >= numChildren) {
      emit(out, r.path, {n.value(), r.wsChild[i]},
           strCat("node ", n.value(), " assigned to child ", r.wsChild[i],
                  " outside [0,", numChildren, ")"));
    }
  }
  for (std::size_t i = 0; i < r.relayValues.size(); ++i) {
    if (r.relayChild[i] < 0 || r.relayChild[i] >= numChildren) {
      emit(out, r.path, {r.relayValues[i].value(), r.relayChild[i]},
           strCat("relay value ", r.relayValues[i].value(),
                  " parked on child ", r.relayChild[i], " outside [0,",
                  numChildren, ")"));
    }
  }

  // Candidate-filter respect: the copy flow must honor the level's
  // reconfiguration constraints (the SEE's candidate filter).
  const machine::PgConstraints constraints = in.model->constraints(r.level);
  if (constraints.maxInNeighbors > 0) {
    for (const ClusterId c : clusters) {
      const auto neighbors = r.flow.realInNeighbors(r.pg, c);
      if (static_cast<int>(neighbors.size()) > constraints.maxInNeighbors) {
        emit(out, r.path, {c.value()},
             strCat("cluster node ", c.value(), " has ", neighbors.size(),
                    " real in-neighbors, MUX capacity is ",
                    constraints.maxInNeighbors));
      }
    }
  }
  if (constraints.outputNodeUnaryFanIn) {
    for (const ClusterId outNode : r.pg.outputNodes()) {
      int feeders = 0;
      for (const PgArcId arc : r.pg.inArcs(outNode)) {
        if (r.flow.isReal(arc)) ++feeders;
      }
      if (feeders > 1) {
        emit(out, r.path, {outNode.value()},
             strCat("output node ", outNode.value(), " is fed by ", feeders,
                    " real arcs (unary fan-in violated)"));
      }
    }
  }

  // Cost-input integrity: the recorded per-cluster summaries must describe
  // this record's clusters (the cost function consumed them in this order).
  if (!r.clusterSummaries.empty()) {
    if (r.clusterSummaries.size() != clusters.size()) {
      emit(out, r.path, {},
           strCat("record has ", r.clusterSummaries.size(),
                  " cluster summaries for ", clusters.size(), " clusters"));
    } else {
      for (std::size_t j = 0; j < clusters.size(); ++j) {
        if (r.clusterSummaries[j].cluster != clusters[j]) {
          emit(out, r.path, {clusters[j].value()},
               strCat("cluster summary ", j, " describes node ",
                      r.clusterSummaries[j].cluster.value(), ", expected ",
                      clusters[j].value()));
        }
      }
    }
  }
}

void checkSeeSolution(const VerifyInput& in, std::vector<Diagnostic>& out) {
  if (in.record != nullptr) {
    checkSeeSolutionRecord(in, *in.record, out);
    return;
  }
  const HcaResult& result = *in.result;
  if (!result.legal) return;

  if (static_cast<std::int32_t>(result.assignment.size()) !=
      in.ddg->numNodes()) {
    emit(out, {}, {},
         strCat("assignment covers ", result.assignment.size(),
                " nodes, DDG has ", in.ddg->numNodes()));
    return;
  }

  std::map<std::vector<int>, const ProblemRecord*> byPath;
  for (const auto& record : result.records) {
    checkSeeSolutionRecord(in, *record, out);
    if (!byPath.emplace(record->path, record.get()).second) {
      emit(out, record->path, {},
           strCat("two records describe sub-problem [",
                  strJoin(record->path, "."), "]"));
    }
  }

  // Parent/child working-set consistency: a child solves exactly the nodes
  // its parent assigned to it, in the parent's order.
  for (const auto& record : result.records) {
    if (record->leaf ||
        record->wsChild.size() != record->workingSet.size()) {
      continue;
    }
    const int numChildren =
        static_cast<int>(record->pg.clusterNodes().size());
    for (int j = 0; j < numChildren; ++j) {
      std::vector<DdgNodeId> expected;
      for (std::size_t i = 0; i < record->workingSet.size(); ++i) {
        if (record->wsChild[i] == j) expected.push_back(record->workingSet[i]);
      }
      auto childPath = record->path;
      childPath.push_back(j);
      const auto it = byPath.find(childPath);
      if (it == byPath.end()) {
        if (!expected.empty()) {
          emit(out, childPath, {},
               strCat("sub-problem [", strJoin(childPath, "."),
                      "] was assigned ", expected.size(),
                      " nodes but has no record"));
        }
        continue;
      }
      if (it->second->workingSet != expected) {
        emit(out, childPath, {},
             strCat("sub-problem [", strJoin(childPath, "."),
                    "] solves a working set different from its parent's "
                    "partition (",
                    it->second->workingSet.size(), " vs ", expected.size(),
                    " nodes)"));
      }
    }
  }

  // Leaf coverage: every instruction lands in exactly one leaf working set
  // and the final assignment points at that leaf's CN.
  std::map<DdgNodeId, int> leafCount;
  for (const auto& record : result.records) {
    if (!record->leaf ||
        record->wsChild.size() != record->workingSet.size()) {
      continue;
    }
    for (std::size_t i = 0; i < record->workingSet.size(); ++i) {
      const DdgNodeId n = record->workingSet[i];
      ++leafCount[n];
      auto cnPath = record->path;
      cnPath.push_back(record->wsChild[i]);
      const CnId expected = in.model->cnIdOf(cnPath);
      if (n.index() < result.assignment.size() &&
          result.assignment[n.index()] != expected) {
        emit(out, record->path, {n.value()},
             strCat("node ", n.value(), " is recorded on CN ",
                    to_string(expected), " but finally assigned to CN ",
                    to_string(result.assignment[n.index()])));
      }
    }
  }
  for (std::int32_t v = 0; v < in.ddg->numNodes(); ++v) {
    if (!ddg::isInstruction(in.ddg->node(DdgNodeId(v)).op)) continue;
    const auto it = leafCount.find(DdgNodeId(v));
    const int count = it == leafCount.end() ? 0 : it->second;
    if (count != 1) {
      emit(out, {}, {v},
           strCat("instruction ", v, " appears in ", count,
                  " leaf working sets (must be exactly 1)"));
    }
  }
}

// --------------------------------------------------------------------------
// ili-conservation
// --------------------------------------------------------------------------
void checkIliConservationRecord(const VerifyInput& in, const ProblemRecord& r,
                                std::vector<Diagnostic>& out) {
  if (!r.mapResult.legal) return;
  const auto clusters = r.pg.clusterNodes();
  const int numChildren = static_cast<int>(clusters.size());
  const auto& ilis = r.mapResult.ilis;

  if (static_cast<int>(ilis.size()) != numChildren) {
    emit(out, r.path, {},
         strCat("mapper produced ", ilis.size(), " ILIs for ", numChildren,
                " children"));
    return;
  }
  const WireBudgets budgets = WireBudgets::of(*in.model, r);

  for (int j = 0; j < numChildren; ++j) {
    const mapper::Ili& ili = ilis[static_cast<std::size_t>(j)];
    if (ili.child != j) {
      emit(out, r.path, {j},
           strCat("ILI at index ", j, " claims child ", ili.child));
      continue;
    }

    // Input side. A merged or boundary wire may carry extra values besides
    // the ones this child consumes (downstream latches only its booked
    // values), so the invariant is: every copy entering the child is
    // declared on at least one of its input wires — never dropped.
    std::set<int> inWires;
    std::set<ValueId> declaredIn;
    for (const mapper::WireValues& wire : ili.inputs) {
      if (!inWires.insert(wire.wire).second) {
        emit(out, r.path, {j, wire.wire},
             strCat("child ", j, " declares input wire ", wire.wire,
                    " twice"));
      }
      declaredIn.insert(wire.values.begin(), wire.values.end());
    }
    if (static_cast<int>(ili.inputs.size()) > budgets.inCap(j)) {
      emit(out, r.path, {j},
           strCat("child ", j, " uses ", ili.inputs.size(),
                  " input wires, budget is ", budgets.inCap(j)));
    }
    for (const ValueId v : flowInto(r, clusters[static_cast<std::size_t>(j)])) {
      if (declaredIn.count(v) == 0) {
        emit(out, r.path, {j, v.value()},
             strCat("copy of value ", v.value(), " entering child ", j,
                    " is not declared by its ILI (dropped copy)"));
      }
    }

    // Output side: the sender's outgoing values are an exact partition of
    // its wires — each flowing value leaves on exactly one wire, and no
    // wire carries a value that never flows.
    const std::set<ValueId> outgoing =
        flowOutOf(r, clusters[static_cast<std::size_t>(j)]);
    std::set<int> outWires;
    std::map<ValueId, int> declaredOut;
    for (const mapper::WireValues& wire : ili.outputs) {
      if (!outWires.insert(wire.wire).second) {
        emit(out, r.path, {j, wire.wire},
             strCat("child ", j, " declares output wire ", wire.wire,
                    " twice"));
      }
      for (const ValueId v : wire.values) ++declaredOut[v];
    }
    if (static_cast<int>(ili.outputs.size()) > budgets.outBudget(j)) {
      emit(out, r.path, {j},
           strCat("child ", j, " drives ", ili.outputs.size(),
                  " output wires, budget is ", budgets.outBudget(j)));
    }
    for (const ValueId v : outgoing) {
      const auto it = declaredOut.find(v);
      const int count = it == declaredOut.end() ? 0 : it->second;
      if (count != 1) {
        emit(out, r.path, {j, v.value()},
             strCat("value ", v.value(), " leaving child ", j,
                    " rides ", count, " output wires (must be exactly 1)"));
      }
    }
    for (const auto& [v, count] : declaredOut) {
      if (outgoing.count(v) == 0) {
        emit(out, r.path, {j, v.value()},
             strCat("child ", j, " declares value ", v.value(),
                    " on an output wire but no copy of it leaves the "
                    "child"));
      }
    }
  }

  // Serialization-pressure integrity: the recorded max must match a
  // recomputation over the emitted wires (boundary input wires included,
  // whether or not any child latches them — mirroring the mapper).
  int recomputed = 0;
  for (const mapper::Ili& ili : ilis) {
    for (const mapper::WireValues& wire : ili.outputs) {
      recomputed = std::max(recomputed, static_cast<int>(wire.values.size()));
    }
  }
  for (const ClusterId inNode : r.pg.inputNodes()) {
    recomputed = std::max(
        recomputed,
        static_cast<int>(r.pg.node(inNode).boundaryValues.size()));
  }
  if (recomputed != r.mapResult.maxValuesPerWire) {
    emit(out, r.path, {},
         strCat("recorded maxValuesPerWire ", r.mapResult.maxValuesPerWire,
                " does not match recomputation ", recomputed));
  }
}

void checkIliConservation(const VerifyInput& in,
                          std::vector<Diagnostic>& out) {
  if (in.record != nullptr) {
    checkIliConservationRecord(in, *in.record, out);
    return;
  }
  if (!in.result->legal) return;
  for (const auto& record : in.result->records) {
    checkIliConservationRecord(in, *record, out);
  }
}

// --------------------------------------------------------------------------
// topology
// --------------------------------------------------------------------------
void checkTopologyRecord(const VerifyInput& in, const ProblemRecord& r,
                         std::vector<Diagnostic>& out) {
  if (!r.mapResult.legal) return;
  const int numChildren = static_cast<int>(r.pg.clusterNodes().size());
  const int numInputs = static_cast<int>(r.pg.inputNodes().size());
  const int numOutputs = static_cast<int>(r.pg.outputNodes().size());
  const WireBudgets budgets = WireBudgets::of(*in.model, r);

  for (const machine::MuxSetting& s : r.mapResult.reconfig.settings) {
    if (s.problemPath != r.path) {
      emit(out, r.path, {s.dstChild, s.dstWire},
           strCat("MUX setting targets problem [", strJoin(s.problemPath, "."),
                  "], expected [", strJoin(r.path, "."), "]"));
      continue;
    }
    if (s.dstChild >= numChildren) {
      // Drives one of the problem's boundary output wires.
      const int outIndex = s.dstChild - numChildren;
      if (outIndex >= numOutputs) {
        emit(out, r.path, {s.dstChild},
             strCat("MUX setting drives boundary output ", outIndex,
                    " but the problem has ", numOutputs, " output wires"));
      }
      if (s.dstWire != 0) {
        emit(out, r.path, {s.dstChild, s.dstWire},
             strCat("boundary output connection must use dstWire 0, got ",
                    s.dstWire));
      }
    } else if (s.dstChild < 0 || s.dstWire < 0 ||
               s.dstWire >= budgets.inCap(s.dstChild)) {
      emit(out, r.path, {s.dstChild, s.dstWire},
           strCat("MUX setting programs input wire ", s.dstWire, " of child ",
                  s.dstChild, ", surviving budget is ",
                  s.dstChild >= 0 ? budgets.inCap(s.dstChild) : 0));
    }
    if (s.srcIsBoundary) {
      if (s.srcWire < 0 || s.srcWire >= numInputs) {
        emit(out, r.path, {s.srcWire},
             strCat("MUX setting reads boundary wire ", s.srcWire,
                    " but the problem has ", numInputs, " input wires"));
      }
    } else if (s.srcChild < 0 || s.srcChild >= numChildren ||
               s.srcWire < 0 || s.srcWire >= budgets.outBudget(s.srcChild)) {
      emit(out, r.path, {s.srcChild, s.srcWire},
           strCat("MUX setting reads output wire ", s.srcWire, " of child ",
                  s.srcChild, ", surviving budget is ",
                  s.srcChild >= 0 && s.srcChild < numChildren
                      ? budgets.outBudget(s.srcChild)
                      : 0));
    }
  }

  try {
    r.mapResult.reconfig.validate();
  } catch (const std::exception& e) {
    emit(out, r.path, {}, strCat("reconfiguration invalid: ", e.what()));
  }
}

void checkTopology(const VerifyInput& in, std::vector<Diagnostic>& out) {
  if (in.record != nullptr) {
    checkTopologyRecord(in, *in.record, out);
    return;
  }
  const HcaResult& result = *in.result;
  if (!result.legal) return;

  std::set<std::vector<int>> recordPaths;
  for (const auto& record : result.records) {
    checkTopologyRecord(in, *record, out);
    recordPaths.insert(record->path);
  }
  // The global stream must only program problems the decomposition actually
  // solved, and no select register twice across the whole fabric.
  for (const machine::MuxSetting& s : result.reconfig.settings) {
    if (recordPaths.count(s.problemPath) == 0) {
      emit(out, s.problemPath, {s.dstChild, s.dstWire},
           strCat("MUX setting programs problem [",
                  strJoin(s.problemPath, "."),
                  "] which no record describes"));
    }
  }
  try {
    result.reconfig.validate();
  } catch (const std::exception& e) {
    emit(out, {}, {},
         strCat("global reconfiguration stream invalid: ", e.what()));
  }
}

// --------------------------------------------------------------------------
// fault-survivors
// --------------------------------------------------------------------------
void checkFaultSurvivorsRecord(const VerifyInput& in, const ProblemRecord& r,
                               std::vector<Diagnostic>& out) {
  (void)in;
  const auto clusters = r.pg.clusterNodes();
  for (std::size_t j = 0; j < clusters.size(); ++j) {
    const ClusterId c = clusters[j];
    if (!r.pg.node(c).dead) continue;
    for (std::size_t i = 0;
         i < r.wsChild.size() && i < r.workingSet.size(); ++i) {
      if (r.wsChild[i] == static_cast<int>(j)) {
        emit(out, r.path, {r.workingSet[i].value(), static_cast<int>(j)},
             strCat("node ", r.workingSet[i].value(),
                    " assigned to dead child ", j));
      }
    }
    for (std::size_t i = 0;
         i < r.relayChild.size() && i < r.relayValues.size(); ++i) {
      if (r.relayChild[i] == static_cast<int>(j)) {
        emit(out, r.path, {r.relayValues[i].value(), static_cast<int>(j)},
             strCat("relay value ", r.relayValues[i].value(),
                    " parked on dead child ", j));
      }
    }
    if (!flowInto(r, c).empty() || !flowOutOf(r, c).empty()) {
      emit(out, r.path, {static_cast<int>(j)},
           strCat("dead child ", j, " carries copy traffic"));
    }
    if (r.mapResult.legal &&
        j < r.mapResult.ilis.size() &&
        (!r.mapResult.ilis[j].inputs.empty() ||
         !r.mapResult.ilis[j].outputs.empty())) {
      emit(out, r.path, {static_cast<int>(j)},
           strCat("dead child ", j, " has a non-empty ILI"));
    }
  }
}

void checkFaultSurvivors(const VerifyInput& in, std::vector<Diagnostic>& out) {
  if (in.record != nullptr) {
    checkFaultSurvivorsRecord(in, *in.record, out);
    return;
  }
  const HcaResult& result = *in.result;
  if (!result.legal) return;
  for (const auto& record : result.records) {
    checkFaultSurvivorsRecord(in, *record, out);
  }
  // Final placements only on alive CNs.
  for (std::size_t v = 0; v < result.assignment.size(); ++v) {
    const CnId cn = result.assignment[v];
    if (!cn.valid()) continue;
    if (cn.value() >= in.model->totalCns()) {
      emit(out, {}, {static_cast<std::int64_t>(v), cn.value()},
           strCat("node ", v, " assigned to CN ", cn.value(),
                  " outside the fabric (", in.model->totalCns(), " CNs)"));
    } else if (!in.model->cnAlive(cn)) {
      emit(out, {}, {static_cast<std::int64_t>(v), cn.value()},
           strCat("node ", v, " assigned to dead CN ", cn.value()));
    }
  }
  for (const core::RelayPlacement& relay : result.relays) {
    if (!relay.cn.valid() || relay.cn.value() >= in.model->totalCns()) {
      emit(out, {}, {relay.value.value()},
           strCat("relay of value ", relay.value.value(),
                  " placed on invalid CN ", to_string(relay.cn)));
    } else if (!in.model->cnAlive(relay.cn)) {
      emit(out, {}, {relay.value.value(), relay.cn.value()},
           strCat("relay of value ", relay.value.value(),
                  " placed on dead CN ", relay.cn.value()));
    }
  }
}

// --------------------------------------------------------------------------
// recv-placement
// --------------------------------------------------------------------------
void checkRecvPlacement(const VerifyInput& in, std::vector<Diagnostic>& out) {
  if (in.mapping == nullptr) return;  // nothing post-processed yet
  const core::FinalMapping& m = *in.mapping;
  const HcaResult& result = *in.result;
  if (!result.legal) return;

  if (m.cnOf.size() != static_cast<std::size_t>(m.finalDdg.numNodes())) {
    emit(out, {}, {},
         strCat("final mapping places ", m.cnOf.size(), " nodes, final DDG "
                "has ", m.finalDdg.numNodes()));
    return;
  }
  if (m.numOriginalNodes > m.finalDdg.numNodes() ||
      static_cast<std::size_t>(m.numOriginalNodes) >
          result.assignment.size()) {
    emit(out, {}, {m.numOriginalNodes},
         "final mapping claims more original nodes than exist");
    return;
  }

  // The original prefix must keep the HCA placements verbatim.
  for (std::int32_t v = 0; v < m.numOriginalNodes; ++v) {
    if (m.cnOf[static_cast<std::size_t>(v)] !=
        result.assignment[static_cast<std::size_t>(v)]) {
      emit(out, {}, {v},
           strCat("post-process moved node ", v, " from CN ",
                  to_string(result.assignment[static_cast<std::size_t>(v)]),
                  " to CN ",
                  to_string(m.cnOf[static_cast<std::size_t>(v)])));
    }
  }

  // Every appended node is a recv described by exactly one RecvInfo, placed
  // on the CN the info records, which must be alive.
  std::map<DdgNodeId, const core::FinalMapping::RecvInfo*> infoOf;
  for (const auto& info : m.recvs) {
    if (info.recvNode.value() < m.numOriginalNodes ||
        info.recvNode.value() >= m.finalDdg.numNodes()) {
      emit(out, {}, {info.recvNode.value()},
           strCat("RecvInfo points at node ", info.recvNode.value(),
                  " outside the appended recv range"));
      continue;
    }
    if (!infoOf.emplace(info.recvNode, &info).second) {
      emit(out, {}, {info.recvNode.value()},
           strCat("recv node ", info.recvNode.value(),
                  " described by two RecvInfos"));
      continue;
    }
    const auto& node = m.finalDdg.node(info.recvNode);
    if (node.op != ddg::Op::kRecv) {
      emit(out, {}, {info.recvNode.value()},
           strCat("RecvInfo points at node ", info.recvNode.value(),
                  " which is not a recv"));
      continue;
    }
    if (node.operands.size() != 1 ||
        node.operands[0].src.value() != info.value.value()) {
      emit(out, {}, {info.recvNode.value(), info.value.value()},
           strCat("recv node ", info.recvNode.value(),
                  " does not read value ", info.value.value()));
    }
    if (m.cnOf[info.recvNode.index()] != info.cn) {
      emit(out, {}, {info.recvNode.value(), info.value.value()},
           strCat("recv of value ", info.value.value(), " recorded on CN ",
                  to_string(info.cn), " but placed on CN ",
                  to_string(m.cnOf[info.recvNode.index()])));
    }
    if (!info.cn.valid() || info.cn.value() >= in.model->totalCns() ||
        !in.model->cnAlive(info.cn)) {
      emit(out, {}, {info.recvNode.value(), info.value.value()},
           strCat("recv of value ", info.value.value(),
                  " placed on dead or invalid CN ", to_string(info.cn)));
    }
  }
  for (std::int32_t v = m.numOriginalNodes; v < m.finalDdg.numNodes(); ++v) {
    if (infoOf.count(DdgNodeId(v)) == 0) {
      emit(out, {}, {v},
           strCat("appended node ", v, " has no RecvInfo"));
    }
  }

  // No original instruction may read an instruction value across CNs: the
  // post-process must have rewritten the operand to a CN-local recv (a recv
  // read on another cluster is exactly the "recv on the wrong cluster"
  // corruption).
  for (std::int32_t v = 0; v < m.numOriginalNodes; ++v) {
    const auto& node = m.finalDdg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    const CnId myCn = m.cnOf[static_cast<std::size_t>(v)];
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(m.finalDdg.node(operand.src).op)) continue;
      const CnId srcCn = m.cnOf[operand.src.index()];
      if (srcCn == myCn) continue;
      emit(out, {}, {v, operand.src.value()},
           strCat("node ", v, " on CN ", to_string(myCn), " reads node ",
                  operand.src.value(), " on CN ", to_string(srcCn),
                  " without a CN-local recv"));
    }
  }

  // Every relay placement materialized as a receive-and-forward recv.
  for (const core::RelayPlacement& relay : result.relays) {
    bool found = false;
    for (const auto& info : m.recvs) {
      if (info.isRelay && info.value == relay.value && info.cn == relay.cn) {
        found = true;
        break;
      }
    }
    if (!found) {
      emit(out, {}, {relay.value.value()},
           strCat("relay of value ", relay.value.value(), " on CN ",
                  to_string(relay.cn), " has no receive-and-forward recv"));
    }
  }
}

// --------------------------------------------------------------------------
// coherency (the Section 4.1 checker, as the final registered check)
// --------------------------------------------------------------------------
void checkCoherencyAdapter(const VerifyInput& in,
                           std::vector<Diagnostic>& out) {
  if (!in.result->legal) return;
  for (const core::CoherencyViolation& violation :
       core::checkCoherency(*in.ddg, *in.model, *in.result)) {
    emit(out, violation.path, {violation.value.value()}, violation.message);
  }
}

}  // namespace

const CheckRegistry& CheckRegistry::builtin() {
  static const CheckRegistry* const registry = [] {
    auto* r = new CheckRegistry();
    r->add({"ddg-well-formed", "input DDG validates", CheckStage::kInput,
            /*perRecord=*/false, checkDdgWellFormed});
    r->add({"see-solution",
            "SEE assignment legality per sub-problem (exactly-once "
            "assignment, candidate-filter respect, cost-input integrity)",
            CheckStage::kSolve, /*perRecord=*/true, checkSeeSolution});
    r->add({"ili-conservation",
            "mapper copy-flow conservation and per-wire budgets",
            CheckStage::kMap, /*perRecord=*/true, checkIliConservation});
    r->add({"topology", "MUX reconfiguration legality",
            CheckStage::kMap, /*perRecord=*/true, checkTopology});
    r->add({"fault-survivors",
            "no placement, relay, copy or ILI on dead resources",
            CheckStage::kResult, /*perRecord=*/true, checkFaultSurvivors});
    r->add({"recv-placement",
            "post-process recv legality (needs a FinalMapping)",
            CheckStage::kPostProcess, /*perRecord=*/false,
            checkRecvPlacement});
    r->add({"coherency",
            "Section 4.1 value-routability check over the audit records",
            CheckStage::kResult, /*perRecord=*/false, checkCoherencyAdapter});
    return r;
  }();
  return *registry;
}

}  // namespace hca::verify
