#include "hca/subproblem_cache.hpp"

#include <cstring>
#include <functional>

#include "support/check.hpp"

namespace hca::core {

namespace {

/// Little accumulator for the binary key: fixed-width fields, no separators
/// needed because every record below has a self-describing length prefix.
void appendI32(std::string& out, std::int32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void appendDouble(std::string& out, double v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

template <class Id>
void appendIds(std::string& out, const std::vector<Id>& ids) {
  appendI32(out, static_cast<std::int32_t>(ids.size()));
  for (const Id id : ids) appendI32(out, id.value());
}

void appendWires(std::string& out,
                 const std::vector<mapper::WireValues>& wires) {
  appendI32(out, static_cast<std::int32_t>(wires.size()));
  for (const auto& wire : wires) {
    appendI32(out, wire.wire);
    appendIds(out, wire.values);
  }
}

void appendI64(std::string& out, std::int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void appendOptions(std::string& out, const see::SeeOptions& o) {
  // o.legacySearch is deliberately excluded: both search paths produce
  // byte-identical results (the delta-identity tests enforce it), so the
  // representation switch must not fragment the cache.
  appendI32(out, o.beamWidth);
  appendI32(out, o.candidateKeep);
  appendI32(out, o.maxOpsPerUnit);
  appendI32(out, o.enableRouteAllocator ? 1 : 0);
  appendI32(out, o.eagerRouting ? 1 : 0);
  appendI32(out, o.retryLadder ? 1 : 0);
  appendI32(out, o.maxRouteHops);
  appendI32(out, o.maxBeamSteps);
  // The arena ceiling aborts a search mid-flight, so a result computed
  // under one budget must never be replayed under another.
  appendI64(out, o.arenaBudgetBytes);
  appendI32(out, o.chainGrouping ? 1 : 0);
  appendDouble(out, o.weights.iiEstimate);
  appendDouble(out, o.weights.copyCount);
  appendDouble(out, o.weights.loadBalance);
  appendDouble(out, o.weights.criticalPath);
  appendDouble(out, o.weights.wiringSlack);
  appendI32(out, o.weights.targetIi);
  // Dominance pruning is a heuristic that may change the search result, so
  // (unlike legacySearch) it fragments the cache by design. The tag is
  // only appended when the flag is on: default-option runs must keep the
  // exact pre-flag key bytes (the key feeds the shard hash, and the
  // cache.shard_* histograms are deterministic artifacts).
  if (o.dominancePruning) out.append("dp1");
}

}  // namespace

std::string subproblemKey(
    const machine::PatternGraph& pg, const machine::PgConstraints& constraints,
    const ddg::LatencyModel& latency, int inWiresPerCluster,
    int outWiresPerCluster,
    const std::vector<mapper::WireValues>& boundaryInputs,
    const std::vector<mapper::WireValues>& boundaryOutputs,
    const std::vector<DdgNodeId>& workingSet,
    const std::vector<ValueId>& relayValues, const see::SeeOptions& options) {
  std::string key;
  key.reserve(64 + 8 * (workingSet.size() + relayValues.size()) +
              16 * static_cast<std::size_t>(pg.numNodes()));

  // Pattern-graph shape: node kinds and resources. Arcs are fully
  // determined by the construction sequence (complete cluster connection +
  // connectBoundaryNodes), but serialize the count as a tripwire.
  appendI32(key, pg.numNodes());
  for (std::int32_t v = 0; v < pg.numNodes(); ++v) {
    const auto& node = pg.node(ClusterId(v));
    appendI32(key, static_cast<std::int32_t>(node.kind));
    appendI32(key, node.resources.alu());
    appendI32(key, node.resources.ag());
    // Fault state: dead nodes and surviving-wire overrides change the SEE
    // result, so two problems differing only in faults must never collide.
    appendI32(key, node.dead ? 1 : 0);
    appendI32(key, node.inWireCap);
    appendI32(key, node.outWireCap);
  }
  appendI32(key, pg.numArcs());

  appendI32(key, constraints.maxInNeighbors);
  appendI32(key, constraints.maxOutNeighbors);
  appendI32(key, constraints.outputNodeUnaryFanIn ? 1 : 0);

  appendI32(key, latency.alu);
  appendI32(key, latency.mul);
  appendI32(key, latency.mac);
  appendI32(key, latency.load);
  appendI32(key, latency.store);
  appendI32(key, latency.recv);
  appendI32(key, latency.interCluster);

  appendI32(key, inWiresPerCluster);
  appendI32(key, outWiresPerCluster);

  appendWires(key, boundaryInputs);
  appendWires(key, boundaryOutputs);
  appendIds(key, workingSet);
  appendIds(key, relayValues);
  appendOptions(key, options);
  return key;
}

SubproblemCache::SubproblemCache(int numShards, int maxEntriesPerShard,
                                 std::int64_t maxBytesPerShard)
    : maxEntriesPerShard_(maxEntriesPerShard),
      maxBytesPerShard_(maxBytesPerShard),
      shards_(static_cast<std::size_t>(numShards)) {
  HCA_REQUIRE(numShards >= 1, "cache needs at least one shard");
}

std::int64_t SubproblemCache::approxEntryBytes(const std::string& key,
                                               const see::SeeResult& result) {
  std::int64_t bytes = static_cast<std::int64_t>(
      sizeof(see::SeeResult) + key.size() + result.failureReason.size());
  bytes += static_cast<std::int64_t>(result.solution.approxBytes());
  for (const see::PartialSolution& alt : result.alternatives) {
    bytes += static_cast<std::int64_t>(alt.approxBytes());
  }
  return bytes;
}

SubproblemCache::Shard& SubproblemCache::shardOf(const std::string& key) const {
  const std::size_t h = std::hash<std::string>()(key);
  return shards_[h % shards_.size()];
}

std::shared_ptr<const see::SeeResult> SubproblemCache::lookup(
    const std::string& key) const {
  Shard& shard = shardOf(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  return it->second;
}

std::shared_ptr<const see::SeeResult> SubproblemCache::insert(
    const std::string& key, see::SeeResult result) {
  auto entry = std::make_shared<const see::SeeResult>(std::move(result));
  Shard& shard = shardOf(key);
  MutexLock lock(shard.mutex);
  if (maxEntriesPerShard_ > 0 &&
      static_cast<int>(shard.map.size()) >= maxEntriesPerShard_ &&
      shard.map.find(key) == shard.map.end()) {
    // Evict the oldest-inserted resident. The order list can carry keys of
    // already-evicted entries after repeated churn; skip those.
    while (!shard.insertionOrder.empty()) {
      const std::string victim = std::move(shard.insertionOrder.front());
      shard.insertionOrder.erase(shard.insertionOrder.begin());
      const auto vit = shard.map.find(victim);
      if (vit != shard.map.end()) {
        shard.bytes -= approxEntryBytes(victim, *vit->second);
        shard.map.erase(vit);
        ++shard.evictions;
        break;
      }
    }
  }
  const auto [it, inserted] = shard.map.emplace(key, std::move(entry));
  if (inserted) {
    shard.insertionOrder.push_back(key);
    shard.bytes += approxEntryBytes(key, *it->second);
    // Byte-budget shedding: drop oldest-inserted residents (never the entry
    // just stored — the caller is about to replay it) until back under the
    // ceiling. Evicted sub-problems are re-solved on their next miss, so
    // the budget degrades hit rate, never correctness.
    if (maxBytesPerShard_ > 0) {
      std::size_t cursor = 0;
      while (shard.bytes > maxBytesPerShard_ &&
             cursor < shard.insertionOrder.size()) {
        const std::string& victim = shard.insertionOrder[cursor];
        if (victim == key) {
          ++cursor;
          continue;
        }
        const auto vit = shard.map.find(victim);
        if (vit != shard.map.end()) {
          shard.bytes -= approxEntryBytes(victim, *vit->second);
          shard.map.erase(vit);
          ++shard.evictions;
        }
        shard.insertionOrder.erase(shard.insertionOrder.begin() +
                                   static_cast<std::ptrdiff_t>(cursor));
      }
    }
  }
  return it->second;  // first writer wins
}

std::int64_t SubproblemCache::entries() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += static_cast<std::int64_t>(shard.map.size());
  }
  return total;
}

std::int64_t SubproblemCache::bytesUsed() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.bytes;
  }
  return total;
}

std::vector<SubproblemCache::ShardStats> SubproblemCache::shardStats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    ShardStats s;
    s.hits = shard.hits;
    s.misses = shard.misses;
    s.evictions = shard.evictions;
    s.entries = static_cast<std::int64_t>(shard.map.size());
    s.bytes = shard.bytes;
    out.push_back(s);
  }
  return out;
}

void SubproblemCache::forEach(
    const std::function<void(const std::string& key,
                             const std::shared_ptr<const see::SeeResult>&
                                 result)>& fn) const {
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const std::string& key : shard.insertionOrder) {
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) fn(key, it->second);
    }
  }
}

}  // namespace hca::core
