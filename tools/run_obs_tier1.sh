#!/usr/bin/env bash
# Run the tier-1 test suite with span tracing forced on.
#
# HCA_TRACE_FORCE=1 makes every HcaDriver in the process record spans into
# a shared tracer (Tracer::envForced), so the whole suite exercises the
# instrumentation paths — span begin/end on every sub-problem, portfolio
# threads stamping spans concurrently, arg formatting — that the default
# (tracing off) build never touches. Results must be identical: tracing
# observes the search, it never steers it.
#
# Builds into a separate tree (build-obs/) so the env-forced runs never
# share a ctest cache with the regular build.
#
# Usage: tools/run_obs_tier1.sh [extra ctest args...]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${root}/build-obs"

cmake -B "${build}" -S "${root}"
cmake --build "${build}" -j "$(nproc)"

export HCA_TRACE_FORCE=1

cd "${build}"
ctest --output-on-failure -j "$(nproc)" "$@"
