// The framework is architecture-agnostic (paper Section 3): this example
// runs the same engine on two machines that are *not* the paper's 64-CN
// fabric — a small 16-CN, two-level DSPFabric variant, and the RCP ring of
// Figure 1, driven through the single-level SEE directly.
//
//   $ ./examples/custom_architecture

#include <cstdio>

#include "ddg/builder.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "machine/rcp.hpp"
#include "see/engine.hpp"

using namespace hca;

namespace {

/// Small 2-D stencil loop used for both machines.
ddg::Ddg stencilDdg() {
  ddg::DdgBuilder b;
  auto p = b.carry(0, "p");
  const auto next = b.add(p, b.cst(1));
  b.close(p, next, 1);
  const auto left = b.load(next, 0, "x[i-1]");
  const auto mid = b.load(next, 1, "x[i]");
  const auto right = b.load(next, 2, "x[i+1]");
  const auto sum = b.add(b.add(left, mid), right);
  const auto avg = b.shr(sum, b.cst(2));
  b.store(next, b.clip(avg, 0, 255), 64);
  return b.finish();
}

void onSmallFabric(const ddg::Ddg& ddg) {
  machine::DspFabricConfig config;
  config.branching = {4, 4};  // 16 CNs, two interconnect levels
  config.n = 4;
  config.m = 4;  // unused at depth 2, kept for clarity
  config.k = 4;
  const machine::DspFabricModel model(config);
  std::printf("-- 16-CN two-level fabric: %s\n", config.toString().c_str());

  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  if (!result.legal) {
    std::printf("   clusterization failed: %s\n",
                result.failureReason.c_str());
    return;
  }
  const auto mii = core::computeMii(ddg, model, result);
  std::printf("   legal; %s\n", mii.toString().c_str());
  std::printf("   reconfiguration stream:\n%s",
              result.reconfig.toString().c_str());
}

void onRcpRing(const ddg::Ddg& ddg) {
  // Figure 1: an 8-cluster ring, 4 potential sources per cluster, but only
  // 2 input ports — and heterogeneous: every second PE can access memory.
  machine::RcpConfig config;
  config.clusters = 8;
  config.neighborReach = 2;
  config.inputPorts = 2;
  config.memClusterStride = 2;
  const auto pg = machine::rcpPatternGraph(config);
  std::printf("\n-- RCP ring (Fig. 1): %d PEs, reach 2, K=%d ports\n",
              config.clusters, config.inputPorts);

  see::SeeProblem problem;
  problem.ddg = &ddg;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) {
      problem.workingSet.emplace_back(v);
    }
  }
  problem.pg = &pg;
  problem.constraints = machine::rcpConstraints(config);
  problem.inWiresPerCluster = config.inputPorts;
  problem.outWiresPerCluster = config.inputPorts;

  see::SeeOptions options;
  options.weights.targetIi = 3;
  const see::SpaceExplorationEngine engine(options);
  const auto result = engine.run(problem);
  if (!result.legal) {
    std::printf("   assignment failed: %s\n", result.failureReason.c_str());
    return;
  }
  std::printf("   legal; placements:\n");
  for (const DdgNodeId n : problem.workingSet) {
    const auto& node = ddg.node(n);
    std::printf("     %-6s %-8s -> %s%s\n",
                std::string(ddg::opName(node.op)).c_str(), node.name.c_str(),
                pg.node(result.solution.clusterOf(n)).name.c_str(),
                ddg::isMemoryOp(node.op) ? "  (memory-capable PE)" : "");
  }
  std::printf("   inter-cluster copies: %d\n",
              result.solution.flow().totalCopies());
}

}  // namespace

int main() {
  const auto ddg = stencilDdg();
  std::printf("Stencil loop: %d instructions\n\n",
              ddg.stats().numInstructions);
  onSmallFabric(ddg);
  onRcpRing(ddg);
  return 0;
}
