#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "hca/driver.hpp"
#include "support/context.hpp"
#include "support/history.hpp"

/// Structured per-run reporting for the HCA driver (observability layer).
///
/// `runReportJson` serializes one `HcaResult` — outcome, fallback rung,
/// aggregate `HcaStats`, a per-hierarchy-level breakdown derived from the
/// metrics registry's `.L<level>` series, and the full registry — as a
/// single JSON document. The benches embed it per kernel in their BENCH
/// JSONs; `hcac --report-out=FILE` writes it next to the solved run.
///
/// A report written with a `ReportMeta` additionally carries the identity
/// a cross-run comparison needs: the workload (kernel name / DDG path), the
/// machine configuration, the outer-sweep thread count and the provenance
/// `RunContext` (schema version, git SHA, build type, host, run id). Such
/// reports feed the baseline history (`hcac --history-out`) and the differ
/// (`hcac --compare`, hca/diff.hpp).
///
/// `printRunStats` is the human-facing twin (`hcac --stats`): the outcome
/// line (including which fallback rung produced the result), the `HcaStats`
/// summary and the aligned metrics table.
namespace hca::core {

/// Cross-run identity of one report (everything the differ matches on).
struct ReportMeta {
  /// Kernel name or DDG file path.
  std::string workload;
  /// DspFabricConfig::toString() of the run's machine.
  std::string machine;
  /// Effective outer-sweep thread count (reports from parallel sweeps may
  /// carry timing-dependent counters; the differ notes it).
  int threads = 1;
  RunContext context;
};

/// Serializes `result` as a JSON object (no trailing newline). `model` is
/// optional and only supplies human-readable level names; pass the model
/// the run used when available. `meta` (optional) embeds the cross-run
/// identity block.
[[nodiscard]] std::string runReportJson(
    const HcaResult& result, const machine::DspFabricModel* model = nullptr,
    const ReportMeta* meta = nullptr);

/// Emits the same report object as the next value of an in-flight
/// `JsonWriter` — the benches use this to embed one report per kernel row
/// in their BENCH JSONs.
void writeRunReport(JsonWriter& json, const HcaResult& result,
                    const machine::DspFabricModel* model = nullptr,
                    const ReportMeta* meta = nullptr);

/// Pretty-prints the run outcome and metrics registry to `os`.
void printRunStats(std::ostream& os, const HcaResult& result);

/// The deterministic counter set of a run: every `HcaStats` field that is
/// a pure function of (DDG, machine, options) — i.e. everything except
/// `attemptsCancelled`, which depends on wall-clock (deadlines, portfolio
/// soft-cancellation). This is the exact-compare set of `hcac --compare`
/// and the counter block of a history record; keys match the report's
/// "stats" member names.
[[nodiscard]] std::map<std::string, std::int64_t> deterministicCounters(
    const HcaStats& stats);

/// Total wall-clock over the run's outer attempts in microseconds (the sum
/// of the `attempt.wall_us` histogram; 0 when absent).
[[nodiscard]] double runWallUs(const HcaResult& result);

/// Builds the baseline-history record of a finished run (`hcac
/// --history-out` appends `historyLineJson` of this).
[[nodiscard]] HistoryRecord historyRecordFor(const HcaResult& result,
                                             const ReportMeta& meta);

}  // namespace hca::core
