#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "see/problem.hpp"

/// Immutable, preprocessed view of a SeeProblem shared by every search
/// state: working-set membership, operand/consumer adjacency restricted to
/// the WS, the priority list, and per-node scheduling heights.
namespace hca::see {

/// One entry of the priority list: either a WS node or a relay value.
struct Item {
  enum class Kind { kNode, kRelay };
  Kind kind = Kind::kNode;
  DdgNodeId node;   // kNode
  ValueId value;    // kRelay
};

/// A co-location group: items that must land on the same cluster because
/// their values leave on a single output wire (outNode_MaxIn, Fig. 10).
/// Groups are assigned first — they are the most constrained decisions.
/// Singleton groups are ordinary priority-list entries.
struct ItemGroup {
  std::vector<Item> members;
};

class PreparedProblem {
 public:
  PreparedProblem(const SeeProblem& problem, const SeeOptions& options);

  [[nodiscard]] const SeeProblem& problem() const { return *problem_; }
  [[nodiscard]] const SeeOptions& options() const { return options_; }

  [[nodiscard]] const std::vector<ItemGroup>& items() const { return items_; }
  [[nodiscard]] const std::vector<ClusterId>& clusters() const {
    return clusters_;
  }
  [[nodiscard]] bool inWorkingSet(DdgNodeId node) const {
    return node.valid() && node.index() < inWs_.size() &&
           inWs_[node.index()] != 0;
  }
  /// Distinct non-const operand values of a WS node (self-references from
  /// carried recurrences excluded).
  [[nodiscard]] const std::vector<ValueId>& operandValues(
      DdgNodeId node) const {
    return operandValues_[node.index()];
  }
  /// Consumers of a node's value inside the WS (distinct).
  [[nodiscard]] const std::vector<DdgNodeId>& wsConsumers(
      DdgNodeId node) const {
    return wsConsumers_[node.index()];
  }
  /// Output node a value must reach, or invalid if none.
  [[nodiscard]] ClusterId outputNodeOf(ValueId value) const;
  /// Input node (or assigned producer lookup key) for out-of-WS sources;
  /// invalid if the value has no registered source.
  [[nodiscard]] ClusterId valueSource(ValueId value) const;

  [[nodiscard]] std::int64_t height(DdgNodeId node) const {
    return heights_[node.index()];
  }

 private:
  const SeeProblem* problem_;
  SeeOptions options_;
  std::vector<ItemGroup> items_;
  std::vector<ClusterId> clusters_;
  std::vector<char> inWs_;
  std::vector<std::vector<ValueId>> operandValues_;
  std::vector<std::vector<DdgNodeId>> wsConsumers_;
  std::unordered_map<ValueId, ClusterId> valueToOutput_;
  std::vector<std::int64_t> heights_;
};

}  // namespace hca::see
