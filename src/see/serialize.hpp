#pragma once

#include "see/engine.hpp"
#include "support/json.hpp"

/// Snapshot (de)serialization of completed SEE searches.
///
/// A `SeeResult` is a pure value: the winning `PartialSolution`, the final
/// frontier of runner-up alternatives, and the search statistics — nothing
/// in it references the problem it was solved from except by id. That makes
/// a finished search checkpointable: the HCA checkpoint layer persists the
/// sub-problem cache as (key, SeeResult) pairs so a resumed run replays
/// byte-identical solves instead of re-searching (hca/checkpoint.hpp).
///
/// Exactness rules: every integer field round-trips as a JSON number (all
/// live counters fit a double's 53-bit mantissa by a wide margin), while
/// doubles (the solution objective) and 64-bit masks are serialized as hex
/// bit-pattern strings so the round-trip is bit-exact regardless of any
/// printer/parser rounding.
namespace hca::see {

/// Emits `result` as the next value of an in-flight writer.
void writeSeeResult(JsonWriter& json, const SeeResult& result);

/// Strict inverse of `writeSeeResult`: throws InvalidArgumentError with a
/// field-naming message on any missing member, wrong type, or out-of-range
/// value (mirrors the ddg/serialize parsing contract).
[[nodiscard]] SeeResult parseSeeResult(const JsonValue& value);

}  // namespace hca::see
