#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

/// Span-based hierarchical tracing for the HCA driver.
///
/// The driver decomposes one run into a tree of sub-problems (one SEE
/// invocation per node), wrapped by portfolio attempts and fallback rungs;
/// a `Tracer` records one span per such unit and exports the collection in
/// Chrome `trace_event` JSON (load the file in chrome://tracing or
/// https://ui.perfetto.dev to see the tree on a timeline).
///
/// Design constraints, in priority order:
///  1. *Near-zero cost when disabled*: a `TraceSpan` against a null or
///     disabled tracer reads no clock, takes no lock and allocates no
///     memory — span *names* are compile-time string literals and dynamic
///     detail goes through `arg()`, which callers guard with `active()`.
///  2. Thread-safe recording: the parallel portfolio runs attempts
///     concurrently; spans are stamped with a small per-tracer thread id
///     and pushed under one mutex (spans end at most once per sub-problem,
///     so contention is negligible next to the searches they wrap).
///  3. Bounded memory: at most `maxSpans` spans are kept; further spans
///     are counted in `droppedSpans()` and reported in the export metadata
///     rather than silently discarded.
namespace hca {

/// The repo's only sanctioned clock readings. Determinism contract: result-
/// affecting code never reads a clock, and code that *measures* (deadlines,
/// wall-clock stats, log stamps) goes through these wrappers so every clock
/// read in the tree lives in an allowlisted timing wrapper. `hca-lint`'s
/// determinism-clock rule bans std::chrono clocks / rand / time() everywhere
/// else (see DESIGN.md section 4j).
using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

/// Current monotonic instant (deadlines, durations — never serialized).
[[nodiscard]] inline MonotonicTime monotonicNow() noexcept {
  return MonotonicClock::now();
}

/// Whole microseconds elapsed from `from` to `until`.
[[nodiscard]] inline std::int64_t microsBetween(MonotonicTime from,
                                                MonotonicTime until) noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(until - from)
      .count();
}

/// One wall-clock sample for human-facing timestamps (log-line prefixes):
/// UTC seconds-since-epoch plus the sub-second millisecond part. Wall time
/// is presentation-only — nothing result-affecting may consume it.
struct WallClockSample {
  std::time_t seconds = 0;
  int millis = 0;
};
[[nodiscard]] WallClockSample wallClockNow();

class Tracer {
 public:
  /// One finished span. `tsUs`/`durUs` are microseconds relative to the
  /// tracer's construction (steady clock). Nesting is explicit: `parentId`
  /// is the id of the innermost span active on the same thread when this
  /// span started (-1 = top level), so consumers need not infer the tree
  /// from timestamp containment.
  struct SpanRecord {
    const char* name = "";
    const char* category = "";
    std::int64_t id = -1;
    std::int64_t parentId = -1;
    std::int64_t tsUs = 0;
    std::int64_t durUs = 0;
    int tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };

  explicit Tracer(bool enabled = true, std::size_t maxSpans = 1u << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Enabled-ness is fixed at construction: spans check a plain bool with
  /// no synchronization, which is only safe because the flag never changes
  /// while spans may be in flight.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Spans recorded so far (finished spans only).
  [[nodiscard]] std::size_t spanCount() const HCA_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t droppedSpans() const HCA_EXCLUDES(mutex_);

  /// Snapshot of all finished spans, in completion order.
  [[nodiscard]] std::vector<SpanRecord> spans() const HCA_EXCLUDES(mutex_);

  /// Writes the whole trace as Chrome trace_event JSON (object form with a
  /// `traceEvents` array of complete "X" events).
  void writeChromeJson(std::ostream& os) const;

  /// Process-wide tracer forced on by the HCA_TRACE_FORCE environment
  /// variable (any non-empty value); nullptr when the variable is unset.
  /// Used by tools/run_obs_tier1.sh to drive every instrumentation path in
  /// the test suite without recompiling or plumbing options.
  static Tracer* envForced();

 private:
  friend class TraceSpan;

  /// Registers the start of a span on the calling thread; returns its id.
  std::int64_t beginSpan() HCA_EXCLUDES(mutex_);
  void endSpan(SpanRecord record) HCA_EXCLUDES(mutex_);
  [[nodiscard]] int tidOf(std::thread::id id) HCA_REQUIRES(mutex_);

  const bool enabled_;
  const std::size_t maxSpans_;
  const MonotonicTime epoch_;

  mutable Mutex mutex_;
  std::vector<SpanRecord> spans_ HCA_GUARDED_BY(mutex_);
  std::int64_t dropped_ HCA_GUARDED_BY(mutex_) = 0;
  std::int64_t nextId_ HCA_GUARDED_BY(mutex_) = 0;
  std::map<std::thread::id, int> tids_ HCA_GUARDED_BY(mutex_);
};

/// RAII span. Constructing against a null/disabled tracer is a no-op (no
/// clock read, no allocation); otherwise the span measures from
/// construction to destruction and records itself on destruction.
///
///   TraceSpan span(tracer, "hca", "solve");
///   if (span.active()) span.arg("path", strJoin(path, "."));
class TraceSpan {
 public:
  TraceSpan() = default;

  /// `category` and `name` must be string literals (or otherwise outlive
  /// the tracer): they are stored unowned so a disabled span costs nothing.
  TraceSpan(Tracer* tracer, const char* category, const char* name);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  /// True when the span will be recorded; guard `arg()` value formatting
  /// with it to keep the disabled path allocation-free.
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Attaches a key/value argument (no-op when inactive).
  void arg(const char* key, std::string value);

  /// The span's id (-1 when inactive); children reference it as parentId.
  [[nodiscard]] std::int64_t id() const { return record_.id; }

 private:
  Tracer* tracer_ = nullptr;  // null = inactive
  MonotonicTime start_{};
  Tracer::SpanRecord record_;
};

}  // namespace hca
