#pragma once

#include <algorithm>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "see/feasibility.hpp"
#include "see/partial_solution.hpp"
#include "see/prepared.hpp"
#include "see/solution_ops.hpp"
#include "support/check.hpp"

/// The paper's configurable `no candidates action` (Section 3, Fig. 6):
/// when no cluster can take the current item directly — every candidate is
/// blocked by exhausted communication patterns — the Route Allocator tries
/// to assign the item anyway by routing the unreachable copies through
/// intermediate clusters. A relay cluster receives the value (one receive
/// slot of pressure) and re-sends it, consuming arc budget on both hops.
///
/// Like the assignment semantics (solution_ops.hpp), the routing logic is
/// templated over the solution representation so the legacy PartialSolution
/// entry points and the delta-based hot path run the same code.
namespace hca::see {

/// Reusable route-allocator state for one search attempt: the BFS scratch
/// buffers (stamp-validated, so steady-state findPathT calls allocate
/// nothing) and the negative route memo.
///
/// The memo caches *failed* BFS searches keyed on (value, src, dst, hop
/// budget). A failed search's outcome is a pure function of that key plus
/// the budget state of the region it visited: the flow content / real-flow
/// bits of every out-arc of each node the BFS expanded, and the in-neighbor
/// mask of every head of those arcs. An entry therefore stores the visited
/// region (a node bitset) and the exact byte slice of that budget state; a
/// later query with the same key replays the failure iff its freshly
/// rebuilt slice is byte-equal — which is precisely "no edit has touched a
/// wire budget on any node the failed search saw". Comparing exact slices
/// (rather than hashes) is what lets the engine keep its byte-identity
/// guarantee: a memo hit can never diverge from what the BFS would do.
///
/// To keep never-repeated failures cheap, the first failure of a key only
/// arms it; the slice is extracted and stored from the second failure on.
class RouteScratch {
 public:
  RouteScratch() = default;

  /// Sizes the buffers for the problem; cheap to call repeatedly.
  void init(const PreparedProblem& prepared) {
    const auto n =
        static_cast<std::size_t>(prepared.problem().pg->numNodes());
    if (parent_.size() != n) {
      parent_.assign(n, ClusterId::invalid());
      depth_.assign(n, 0);
      stamp_.assign(n, 0);
      curStamp_ = 0;
    }
  }

  /// Counters the engine folds into SeeStats.
  [[nodiscard]] std::int64_t memoHits() const { return memoHits_; }
  [[nodiscard]] std::int64_t hopRejects() const { return hopRejects_; }
  void noteHopReject() { ++hopRejects_; }

  // --- BFS scratch (used by findPathT) ----------------------------------
  void beginSearch() {
    if (++curStamp_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0U);
      curStamp_ = 1;
    }
    queue_.clear();
    touched_.clear();
  }
  [[nodiscard]] bool seen(ClusterId c) const {
    return stamp_[c.index()] == curStamp_;
  }
  [[nodiscard]] int depthOf(ClusterId c) const { return depth_[c.index()]; }
  [[nodiscard]] ClusterId parentOf(ClusterId c) const {
    return parent_[c.index()];
  }
  void visit(ClusterId c, int depth, ClusterId from) {
    stamp_[c.index()] = curStamp_;
    depth_[c.index()] = depth;
    parent_[c.index()] = from;
    touched_.push_back(c);
  }
  std::vector<ClusterId>& queue() { return queue_; }
  /// Nodes visited by the current search, in visit order.
  [[nodiscard]] const std::vector<ClusterId>& touched() const {
    return touched_;
  }

  // --- negative memo ----------------------------------------------------
  /// True when an armed entry for this key matches the current budget
  /// state of its recorded region — the BFS would fail identically.
  template <typename Sol>
  [[nodiscard]] bool hasKnownFailure(const PreparedProblem& prepared,
                                     const Sol& sol, ClusterId src,
                                     ClusterId dst, ValueId value,
                                     int maxPathNodes) {
    // On fabrics where every failure is below kMinFailureNodesForMemo the
    // map never gains a key, so the whole memo collapses to this branch.
    if (memo_.empty()) return false;
    const auto it = memo_.find(key(src, dst, value, maxPathNodes));
    if (it == memo_.end() || it->second.entries.empty()) return false;
    KeyMemo& km = it->second;
    // A key that keeps missing is comparing against a budget state the
    // search has long since moved past: rebuilding its slice on every
    // query costs as much as the BFS it is meant to skip. Retire it.
    if (km.strikes >= kMaxMissStrikes) return false;
    std::uint64_t builtRegion = 0;
    for (const std::uint32_t e : km.entries) {
      const MemoEntry& entry = entries_[e];
      if (entry.region != builtRegion) {
        buildSlice(prepared, sol, value, entry.region, sliceScratch_);
        builtRegion = entry.region;
      }
      if (sliceScratch_.size() == entry.sliceLen &&
          std::memcmp(sliceScratch_.data(), slicePool_.data() + entry.sliceOff,
                      entry.sliceLen) == 0) {
        ++memoHits_;
        km.strikes = 0;
        return true;
      }
    }
    ++km.strikes;
    return false;
  }

  /// Records a failed search whose expanded nodes are `region`. Failures
  /// cheaper to re-run than to memoize (see kMinFailureNodesForMemo) are
  /// dropped. The first qualifying failure of a key only arms it; slices
  /// are stored from the second on (and not at all once the pool cap is
  /// hit — the memo is an accelerator, never a correctness requirement).
  template <typename Sol>
  void recordFailure(const PreparedProblem& prepared, const Sol& sol,
                     ClusterId src, ClusterId dst, ValueId value,
                     int maxPathNodes, std::uint64_t region) {
    if (static_cast<std::size_t>(__builtin_popcountll(region)) <
        kMinFailureNodesForMemo) {
      return;
    }
    KeyMemo& km = memo_[key(src, dst, value, maxPathNodes)];
    if (!km.armed) {
      km.armed = true;
      return;
    }
    if (km.entries.size() >= kMaxEntriesPerKey) return;
    if (slicePool_.size() > kMaxSliceBytes) return;
    buildSlice(prepared, sol, value, region, sliceScratch_);
    MemoEntry entry;
    entry.region = region;
    entry.sliceOff = static_cast<std::uint32_t>(slicePool_.size());
    entry.sliceLen = static_cast<std::uint32_t>(sliceScratch_.size());
    slicePool_.insert(slicePool_.end(), sliceScratch_.begin(),
                      sliceScratch_.end());
    km.entries.push_back(static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(entry);
  }

 private:
  struct MemoEntry {
    std::uint64_t region = 0;
    std::uint32_t sliceOff = 0;
    std::uint32_t sliceLen = 0;
  };
  struct KeyMemo {
    bool armed = false;
    std::uint8_t strikes = 0;
    std::vector<std::uint32_t> entries;
  };
  static constexpr std::size_t kMaxSliceBytes = std::size_t{4} << 20;
  /// A failed BFS is only worth memoizing when re-running it costs more
  /// than a lookup (hash find + slice rebuild + memcmp). The search only
  /// expands cluster nodes, so on Table-1-scale fabrics (8 clusters) a
  /// failure visits at most ~9 nodes and re-running it is the cheaper
  /// side — measured as a 5-7% end-to-end loss when memoized anyway. Only
  /// failures that explored at least this many nodes are recorded; small
  /// fabrics then keep the map empty and lookups cost one empty() test.
  static constexpr std::size_t kMinFailureNodesForMemo = 24;
  /// At most this many distinct failure slices are stored per key; beyond
  /// that, repeated failures are state churn the memo cannot amortize.
  static constexpr std::size_t kMaxEntriesPerKey = 2;
  /// Consecutive lookup misses before a key is retired (a hit resets it).
  static constexpr std::uint8_t kMaxMissStrikes = 16;

  static std::uint64_t key(ClusterId src, ClusterId dst, ValueId value,
                           int maxPathNodes) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                value.value()))
            << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                src.value()))
            << 24) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                dst.value()))
            << 16) |
           static_cast<std::uint16_t>(maxPathNodes);
  }

  /// Serializes the budget state a failed BFS over `region` depended on,
  /// in a fixed (node-index, out-arc) order: per out-arc one byte of
  /// (flowContains(value), flowIsReal) plus the head's in-neighbor mask.
  template <typename Sol>
  static void buildSlice(const PreparedProblem& prepared, const Sol& sol,
                         ValueId value, std::uint64_t region,
                         std::vector<std::uint8_t>& out) {
    const auto& pg = *prepared.problem().pg;
    out.clear();
    std::uint64_t rest = region;
    while (rest != 0) {
      const std::uint64_t bit = rest & (~rest + 1);
      rest ^= bit;
      const ClusterId u(__builtin_ctzll(bit));
      for (const PgArcId a : pg.outArcs(u)) {
        const ClusterId w = pg.arc(a).dst;
        out.push_back(static_cast<std::uint8_t>(
            (sol.flowContains(a, value) ? 1 : 0) |
            (sol.flowIsReal(a) ? 2 : 0)));
        const std::uint64_t mask = sol.inNbrMask(w);
        for (int b = 0; b < 8; ++b) {
          out.push_back(static_cast<std::uint8_t>(mask >> (8 * b)));
        }
      }
    }
  }

  std::vector<ClusterId> parent_;
  std::vector<int> depth_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t curStamp_ = 0;
  std::vector<ClusterId> queue_;
  std::vector<ClusterId> touched_;

  /// Point lookups only — never iterated, so hash order cannot reach the
  /// result.
  std::unordered_map<std::uint64_t, KeyMemo> memo_;
  std::vector<MemoEntry> entries_;
  std::vector<std::uint8_t> slicePool_;
  std::vector<std::uint8_t> sliceScratch_;
  std::int64_t memoHits_ = 0;
  std::int64_t hopRejects_ = 0;
};

/// BFS over cluster nodes: shortest relay path src -> dst for `value`,
/// where every hop respects the in-neighbor budgets in `solution`.
/// Returns the inclusive node path, empty when unreachable. With a
/// `scratch`, reuses its BFS buffers and consults/feeds the negative route
/// memo; the returned path is byte-identical either way.
template <typename Sol>
std::vector<ClusterId> findPathT(const PreparedProblem& prepared,
                                 const Sol& solution, ClusterId src,
                                 ClusterId dst, ValueId value, int maxHops,
                                 RouteScratch* scratch = nullptr) {
  const auto& pg = *prepared.problem().pg;
  const int maxPathNodes = maxHops + 2;  // src + relays + dst

  // Static fast-reject: the oracle's hop distance ignores every budget, so
  // a pair unreachable (or too deep) there cannot be routed by the BFS
  // below at any budget state.
  {
    const std::uint8_t d = prepared.oracle().hopDistance(src, dst);
    if (d == FeasibilityOracle::kUnreachable || d > maxPathNodes - 1) {
      if (scratch != nullptr) scratch->noteHopReject();
      return {};
    }
  }
  if (scratch != nullptr &&
      scratch->hasKnownFailure(prepared, solution, src, dst, value,
                               maxPathNodes)) {
    return {};
  }

  // The caller-less path materializes its scratch lazily; with a caller
  // scratch this costs nothing.
  std::optional<RouteScratch> local;
  RouteScratch& rs = scratch != nullptr ? *scratch : local.emplace();
  rs.init(prepared);
  rs.beginSearch();
  rs.visit(src, 0, ClusterId::invalid());
  rs.queue().push_back(src);
  for (std::size_t head = 0; head < rs.queue().size(); ++head) {
    const ClusterId u = rs.queue()[head];
    if (u == dst) break;
    if (rs.depthOf(u) + 1 >= maxPathNodes) continue;
    for (const PgArcId a : pg.outArcs(u)) {
      const ClusterId w = pg.arc(a).dst;
      if (rs.seen(w)) continue;
      // Only relay through (alive) cluster nodes; the destination may be
      // anything — canAddCopy refuses dead destinations itself.
      if (w != dst && (pg.node(w).kind != machine::PgNodeKind::kCluster ||
                       pg.node(w).dead)) {
        continue;
      }
      if (!canAddCopyT(prepared, solution, u, w, value)) continue;
      rs.visit(w, rs.depthOf(u) + 1, u);
      rs.queue().push_back(w);
    }
  }
  if (!rs.seen(dst)) {
    if (scratch != nullptr) {
      // Region the failure depended on: every node whose out-arcs the BFS
      // examined (visited and within the depth budget).
      std::uint64_t region = 0;
      for (const ClusterId u : rs.touched()) {
        if (rs.depthOf(u) + 1 < maxPathNodes) region |= detail::pgBit(u);
      }
      scratch->recordFailure(prepared, solution, src, dst, value,
                             maxPathNodes, region);
    }
    return {};
  }
  std::vector<ClusterId> path;
  for (ClusterId v = dst; v.valid(); v = rs.parentOf(v)) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  HCA_CHECK(path.front() == src, "broken BFS parent chain");
  return path;
}

/// Routes the copies `item` needs at `cluster` into `sol`, then assigns.
/// Returns false (leaving `sol` partially modified — callers work on a
/// clone or a discardable delta) when some copy cannot be routed.
template <typename Sol>
bool routeAndAssignT(const PreparedProblem& prepared, Sol& sol,
                     const Item& item, ClusterId cluster, int* routedOperands,
                     RouteScratch* scratch = nullptr) {
  const int maxHops = prepared.options().maxRouteHops;

  // Values that must reach `cluster` (operands of a node item; the source
  // value of a relay item).
  std::vector<ValueId> incoming;
  if (item.kind == Item::Kind::kNode) {
    incoming = prepared.operandValues(item.node);
  } else {
    incoming.push_back(item.value);
  }
  for (const ValueId v : incoming) {
    const ClusterId loc = valueLocationT(prepared, sol, v);
    if (!loc.valid() || loc == cluster) continue;
    if (sol.valueDelivered(cluster, v)) continue;
    if (canAddCopyT(prepared, sol, loc, cluster, v)) continue;  // direct ok
    const auto path =
        findPathT(prepared, sol, loc, cluster, v, maxHops, scratch);
    if (path.empty()) return false;
    applyRouteT(prepared, sol, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  // Values produced here that must reach already-assigned consumers or a
  // (possibly already-fed) output wire.
  std::vector<std::pair<ValueId, ClusterId>> outgoing;
  if (item.kind == Item::Kind::kNode) {
    const ValueId produced(item.node.value());
    for (const DdgNodeId consumer : prepared.wsConsumers(item.node)) {
      const ClusterId d = sol.clusterOf(consumer);
      if (d.valid() && d != cluster) outgoing.emplace_back(produced, d);
    }
    const ClusterId out = prepared.outputNodeOf(produced);
    if (out.valid()) outgoing.emplace_back(produced, out);
  } else {
    outgoing.emplace_back(item.value, prepared.outputNodeOf(item.value));
  }
  for (const auto& [v, dst] : outgoing) {
    if (sol.valueDelivered(dst, v)) continue;
    if (canAddCopyT(prepared, sol, cluster, dst, v)) continue;
    const auto path =
        findPathT(prepared, sol, cluster, dst, v, maxHops, scratch);
    if (path.empty()) return false;
    applyRouteT(prepared, sol, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  if (!canAssignT(prepared, sol, item, cluster)) return false;
  assignT(prepared, sol, item, cluster);
  return true;
}

/// Group variant over any Sol: places every member of the co-location group
/// on `cluster`, routing as needed. All-or-nothing from the caller's
/// perspective: on false, `sol` is partially modified and must be
/// discarded (clone) or rebased (delta).
template <typename Sol>
bool routeAssignGroupT(const PreparedProblem& prepared, Sol& sol,
                       const ItemGroup& group, ClusterId cluster,
                       int* routedOperands, RouteScratch* scratch = nullptr) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) {
    return false;
  }
  for (const Item& item : group.members) {
    if (canAssignT(prepared, sol, item, cluster)) {
      assignT(prepared, sol, item, cluster);
      continue;
    }
    if (!routeAndAssignT(prepared, sol, item, cluster, routedOperands,
                         scratch)) {
      return false;
    }
  }
  return true;
}

class RouteAllocator {
 public:
  /// Attempts to place `item` on `cluster`, inserting relays for every
  /// operand source that cannot reach `cluster` directly (and, for values
  /// bound to an occupied output wire, routing the value to the wire's
  /// single feeder). Returns the extended solution, or nullopt when no
  /// routing exists within `options().maxRouteHops` relays per operand.
  [[nodiscard]] static std::optional<PartialSolution> tryAssign(
      const PreparedProblem& prepared, const PartialSolution& base,
      const Item& item, ClusterId cluster, int* routedOperands,
      RouteScratch* scratch = nullptr);

  /// Group variant: places every member of the co-location group on
  /// `cluster`, routing as needed; all-or-nothing.
  [[nodiscard]] static std::optional<PartialSolution> tryAssignGroup(
      const PreparedProblem& prepared, const PartialSolution& base,
      const ItemGroup& group, ClusterId cluster, int* routedOperands,
      RouteScratch* scratch = nullptr);

  /// BFS over cluster nodes: shortest relay path src -> dst for `value`,
  /// where every hop respects the in-neighbor budgets in `solution`.
  /// Returns the inclusive node path, empty when unreachable.
  static std::vector<ClusterId> findPath(const PreparedProblem& prepared,
                                         const PartialSolution& solution,
                                         ClusterId src, ClusterId dst,
                                         ValueId value, int maxHops,
                                         RouteScratch* scratch = nullptr);
};

}  // namespace hca::see
