// Quickstart: build a loop-body DDG with the builder, clusterize it onto
// the default 64-CN DSPFabric with HCA, and inspect the result.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "ddg/builder.hpp"
#include "verify/coherency.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"

int main() {
  using namespace hca;

  // 1. Describe the loop body: a dot-product-style kernel.
  //      acc += a[i] * b[i];  out[i] = acc;
  ddg::DdgBuilder b;
  auto i = b.carry(0, "i");                     // induction variable
  const auto next = b.add(i, b.cst(1), "i+1");  // i' = i + 1
  b.close(i, next, 1);

  const auto a = b.load(next, 0, "a[i]");       // region a @ offset 0
  const auto bv = b.load(next, 128, "b[i]");    // region b @ offset 128
  auto acc = b.carry(0, "acc");
  const auto accNext = b.mac(acc, a, bv, "acc'");
  b.close(acc, accNext, 1);
  b.store(next, accNext, 256, "out[i]");
  const ddg::Ddg ddg = b.finish();

  std::printf("DDG: %d instructions, %d memory ops, MIIRec %lld\n",
              ddg.stats().numInstructions, ddg.stats().numMemOps,
              static_cast<long long>(ddg.miiRec(ddg::LatencyModel{})));

  // 2. Describe the machine: the paper's 64-CN DSPFabric, N = M = K = 8.
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  const machine::DspFabricModel model(config);
  std::printf("Machine: %s\n", config.toString().c_str());

  // 3. Run Hierarchical Cluster Assignment.
  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  if (!result.legal) {
    std::printf("clusterization failed: %s\n", result.failureReason.c_str());
    return 1;
  }

  // 4. Inspect: placements, MII report, coherency.
  std::printf("\nPlacements:\n");
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    std::printf("  %-6s %-8s -> CN %d\n",
                std::string(ddg::opName(node.op)).c_str(), node.name.c_str(),
                result.assignment[static_cast<std::size_t>(v)].value());
  }
  const auto mii = core::computeMii(ddg, model, result);
  std::printf("\n%s\n", mii.toString().c_str());
  std::printf("Reconfiguration program: %zu MUX settings\n",
              result.reconfig.settings.size());

  const auto violations = core::checkCoherency(ddg, model, result);
  std::printf("Coherency check: %s\n",
              violations.empty() ? "clean" : "VIOLATIONS");
  return violations.empty() ? 0 : 1;
}
