#include "ddg/interp.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace hca::ddg {

std::int64_t evalPure(const DdgNode& n, const std::vector<std::int64_t>& in) {
  switch (n.op) {
    case Op::kConst: return n.imm0;
    case Op::kAdd: return in[0] + in[1];
    case Op::kSub: return in[0] - in[1];
    case Op::kMul: return in[0] * in[1];
    case Op::kMac: return in[0] + in[1] * in[2];
    case Op::kNeg: return -in[0];
    case Op::kAbs: return in[0] < 0 ? -in[0] : in[0];
    case Op::kMin: return std::min(in[0], in[1]);
    case Op::kMax: return std::max(in[0], in[1]);
    case Op::kShl: return in[0] << (in[1] & 63);
    case Op::kShr: return in[0] >> (in[1] & 63);
    case Op::kAnd: return in[0] & in[1];
    case Op::kOr: return in[0] | in[1];
    case Op::kXor: return in[0] ^ in[1];
    case Op::kCmpLt: return in[0] < in[1] ? 1 : 0;
    case Op::kSelect: return in[0] != 0 ? in[1] : in[2];
    case Op::kClip: return std::clamp(in[0], n.imm0, n.imm1);
    case Op::kRecv: return in[0];
    case Op::kLoad:
    case Op::kStore: break;  // handled by the caller (memory side effects)
  }
  HCA_UNREACHABLE("evalPure on a memory op");
}

InterpResult interpret(const Ddg& ddg, const InterpConfig& config) {
  ddg.validate();
  HCA_REQUIRE(config.iterations >= 0, "negative iteration count");

  const auto order = ddg.topoOrder();
  const std::int32_t n = ddg.numNodes();

  // History ring buffers: history[v] keeps the most recent maxDist+1 values
  // of node v, indexed by iteration modulo its depth.
  std::int32_t maxDist = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    for (const auto& op : ddg.node(DdgNodeId(v)).operands) {
      maxDist = std::max(maxDist, op.distance);
    }
  }
  const std::int32_t depth = maxDist + 1;
  std::vector<std::vector<std::int64_t>> history(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(depth), 0));

  InterpResult result;
  result.memory = config.memory;
  result.lastValues.assign(static_cast<std::size_t>(n), 0);

  const auto slot = [&](int iteration) {
    return static_cast<std::size_t>(iteration % depth);
  };

  std::vector<std::int64_t> inputs;
  for (int it = 0; it < config.iterations; ++it) {
    for (const DdgNodeId id : order) {
      const DdgNode& node = ddg.node(id);
      inputs.clear();
      for (const auto& operand : node.operands) {
        if (operand.distance > it) {
          inputs.push_back(operand.init);
        } else {
          inputs.push_back(
              history[operand.src.index()][slot(it - operand.distance)]);
        }
      }
      std::int64_t value = 0;
      if (node.op == Op::kLoad) {
        const std::int64_t addr = inputs[0] + node.imm0;
        HCA_REQUIRE(addr >= 0 && addr < static_cast<std::int64_t>(
                                            result.memory.size()),
                    "load out of bounds at iteration "
                        << it << ", node " << to_string(id) << ", address "
                        << addr);
        value = result.memory[static_cast<std::size_t>(addr)];
      } else if (node.op == Op::kStore) {
        const std::int64_t addr = inputs[0] + node.imm0;
        HCA_REQUIRE(addr >= 0 && addr < static_cast<std::int64_t>(
                                            result.memory.size()),
                    "store out of bounds at iteration "
                        << it << ", node " << to_string(id) << ", address "
                        << addr);
        result.memory[static_cast<std::size_t>(addr)] = inputs[1];
        result.storeTrace.push_back(
            InterpTraceEntry{it, id, addr, inputs[1]});
        value = 0;
      } else {
        value = evalPure(node, inputs);
      }
      history[id.index()][slot(it)] = value;
      result.lastValues[id.index()] = value;
    }
  }
  return result;
}

}  // namespace hca::ddg
