#pragma once

#include <string>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"

/// MII accounting of Section 4.2: the final MII of a clusterized loop is
/// max(iniMII, maxClsMII), where iniMII is the level-0 bound (recurrences
/// plus whole-machine resources) and maxClsMII the largest per-cluster MII,
/// computed over every cluster of every level with its copy-pressure terms.
namespace hca::core {

struct MiiReport {
  int miiRec = 0;   ///< recurrence bound of the DDG
  int miiRes = 0;   ///< whole-machine resource bound (issue width + DMA)
  int iniMii = 0;   ///< max(miiRec, miiRes)
  int maxClusterMii = 0;  ///< max per-cluster MII over all levels
  int maxWirePressure = 0;  ///< largest number of values on one wire
  int finalMii = 0;  ///< max of everything above

  [[nodiscard]] std::string toString() const;
};

/// Whole-machine resource bound: ceil(instructions / #CNs) vs
/// ceil(memory ops / DMA slots).
int unifiedMiiRes(const ddg::DdgStats& stats,
                  const machine::DspFabricModel& model);

/// Full report for a finished (legal) HCA run.
MiiReport computeMii(const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     const HcaResult& result);

}  // namespace hca::core
