#include "support/arena.hpp"

#include <utility>

namespace hca {
namespace {

struct GlobalArenaTally {
  Mutex mutex;
  MonotonicArena::GlobalStats stats HCA_GUARDED_BY(mutex);
};

GlobalArenaTally& tally() {
  static GlobalArenaTally instance;
  return instance;
}

void recordArenaCreated() {
  GlobalArenaTally& t = tally();
  MutexLock lock(t.mutex);
  ++t.stats.arenasCreated;
}

void recordChunkAllocated(std::size_t bytes) {
  GlobalArenaTally& t = tally();
  MutexLock lock(t.mutex);
  ++t.stats.chunksAllocated;
  t.stats.bytesReserved += static_cast<std::int64_t>(bytes);
}

}  // namespace

MonotonicArena::MonotonicArena(std::size_t chunkBytes)
    : chunkBytes_(chunkBytes == 0 ? kDefaultChunkBytes : chunkBytes) {
  recordArenaCreated();
}

void* MonotonicArena::allocate(std::size_t bytes, std::size_t align) {
  HCA_CHECK(align != 0 && (align & (align - 1)) == 0,
            "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  if (chunkIndex_ < chunks_.size()) {
    const std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= chunks_[chunkIndex_].size) {
      void* result = chunks_[chunkIndex_].data.get() + aligned;
      bytesUsed_ += (aligned - cursor_) + bytes;
      cursor_ = aligned + bytes;
      if (bytesUsed_ > peakBytesUsed_) peakBytesUsed_ = bytesUsed_;
      return result;
    }
  }
  // A fresh chunk starts max_align_t-aligned, so offset 0 satisfies `align`.
  grow(bytes);
  void* result = chunks_[chunkIndex_].data.get();
  bytesUsed_ += bytes;
  cursor_ = bytes;
  if (bytesUsed_ > peakBytesUsed_) peakBytesUsed_ = bytesUsed_;
  return result;
}

void MonotonicArena::grow(std::size_t bytes) {
  // Retired chunks keep their memory across reset(); reuse the next one
  // that is large enough before allocating anew.
  std::size_t next = chunkIndex_ < chunks_.size() ? chunkIndex_ + 1 : 0;
  while (next < chunks_.size() && chunks_[next].size < bytes) ++next;
  if (next < chunks_.size()) {
    if (next != chunkIndex_ + 1 && chunkIndex_ + 1 < chunks_.size()) {
      std::swap(chunks_[next], chunks_[chunkIndex_ + 1]);
      next = chunkIndex_ + 1;
    }
    chunkIndex_ = next;
    cursor_ = 0;
    return;
  }
  const std::size_t size = bytes > chunkBytes_ ? bytes : chunkBytes_;
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  bytesReserved_ += size;
  recordChunkAllocated(size);
  chunkIndex_ = chunks_.size() - 1;
  cursor_ = 0;
}

void MonotonicArena::reset() {
  chunkIndex_ = 0;
  cursor_ = 0;
  bytesUsed_ = 0;
}

MonotonicArena::GlobalStats MonotonicArena::globalStats() {
  GlobalArenaTally& t = tally();
  MutexLock lock(t.mutex);
  return t.stats;
}

}  // namespace hca
