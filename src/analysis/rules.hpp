#pragma once

#include <string>
#include <vector>

#include "analysis/source_model.hpp"

/// The four `hca-lint` rule families, run over a SourceModel.
///
/// Rules are token-level: they never see comments or string literals (the
/// lexer strips those), so they cannot be fooled by documentation. Each
/// diagnostic carries a stable suppression key (`rule:file:entity`) used by
/// the checked-in baseline, and every rule honours inline markers of the
/// form `// hca-lint: <key>(<reason>)` on the flagged line or the line
/// directly above it.
///
/// Families (rule ids in parentheses):
///  - determinism (`determinism-clock`, `determinism-ordered`): no raw
///    clock/random reads outside the sanctioned wrappers in support/trace.*
///    and support/stats.hpp (bench/ is exempt — measuring time is its job),
///    and no iteration over unordered containers in result-affecting
///    modules (see/, hca/, mapper/, verify/) without an `ordered-ok` note.
///  - layering (`layering`): the module DAG
///    support -> graph -> ddg/machine -> see/mapper/sched/baseline/sim ->
///    hca -> verify -> analysis -> tools/bench/tests/examples
///    admits no back-edges; include cycles are reported with the full path.
///  - locking (`locking`): mutexes are `hca::Mutex` (support/mutex.hpp)
///    with at least one `HCA_GUARDED_BY` user in the same file; raw
///    std::mutex / std::lock_guard and friends outside support/ are errors.
///  - exit contract (`exit-contract`): `exit` / `abort` / `std::terminate`
///    only in support/signals.* and tools/ (main-function error mapping).
namespace hca::analysis {

struct Diagnostic {
  std::string rule;     ///< rule id, e.g. "determinism-clock"
  std::string file;     ///< repo-relative path
  int line = 0;
  std::string entity;   ///< what was flagged: identifier, member, include
  std::string message;
  /// Stable baseline key: "<rule>:<file>:<entity>". Line numbers are
  /// deliberately absent so unrelated edits do not churn the baseline.
  std::string suppressionKey;
};

/// Runs every rule family. The result is sorted by (file, line, rule) and
/// already has inline-suppressed diagnostics removed.
[[nodiscard]] std::vector<Diagnostic> runAllRules(const SourceModel& model);

/// Individual families, exposed for the fixture tests. These do NOT apply
/// inline suppressions; runAllRules does.
[[nodiscard]] std::vector<Diagnostic> runDeterminismClockRule(
    const SourceModel& model);
[[nodiscard]] std::vector<Diagnostic> runDeterminismOrderedRule(
    const SourceModel& model);
[[nodiscard]] std::vector<Diagnostic> runLayeringRule(
    const SourceModel& model);
[[nodiscard]] std::vector<Diagnostic> runLockingRule(const SourceModel& model);
[[nodiscard]] std::vector<Diagnostic> runExitContractRule(
    const SourceModel& model);

/// The inline suppression key each rule answers to ("clock-ok", ...).
[[nodiscard]] std::string suppressionKeyForRule(const std::string& rule);

/// Removes diagnostics whose file carries a matching suppression marker on
/// the same line or the line directly above, and sorts the remainder by
/// (file, line, rule).
[[nodiscard]] std::vector<Diagnostic> applyInlineSuppressions(
    const SourceModel& model, std::vector<Diagnostic> diagnostics);

}  // namespace hca::analysis
