#include "see/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace hca::see {

namespace {
int ceilDiv(int a, int b) { return b <= 0 ? 0 : (a + b - 1) / b; }
}  // namespace

int IiEstimateCriterion::clusterMii(const PreparedProblem& prepared,
                                    const PartialSolution& solution,
                                    ClusterId cluster) {
  const auto& pg = *prepared.problem().pg;
  const auto& rt = pg.node(cluster).resources;
  const auto& usage = solution.usage(cluster);
  const int recvs = solution.distinctValuesIn(cluster);
  // Issue pressure: every instruction plus one receive per incoming value,
  // spread over the CNs the cluster embraces.
  const int issue = ceilDiv(usage.instructions + recvs, rt.issueSlots());
  // Functional-unit pressure.
  const int alu = ceilDiv(usage.alu, std::max(rt.alu(), 1));
  const int ag = rt.ag() > 0 ? ceilDiv(usage.ag, rt.ag()) : 0;
  // Wire serialization: distinct values crossing the cluster boundary,
  // spread over the wires the Mapper can balance them on.
  const int inPressure = ceilDiv(solution.distinctValuesIn(cluster),
                                 prepared.problem().inWiresPerCluster);
  const int outPressure = ceilDiv(solution.distinctValuesOut(cluster),
                                  prepared.problem().outWiresPerCluster);
  return std::max({issue, alu, ag, inPressure, outPressure, 1});
}

int IiEstimateCriterion::maxClusterMii(const PreparedProblem& prepared,
                                       const PartialSolution& solution) {
  int result = 1;
  for (const ClusterId c : prepared.clusters()) {
    result = std::max(result, clusterMii(prepared, solution, c));
  }
  return result;
}

double IiEstimateCriterion::score(const PreparedProblem& prepared,
                                  const PartialSolution& solution) const {
  // Per-cluster MIIs are clamped to the loop's target II (iniMII): the
  // final MII is max(iniMII, maxClsMII), so only excess above the target
  // costs anything. The max dominates; the clamped average (scaled down)
  // breaks ties between states with equal bottlenecks.
  const int target = std::max(1, prepared.options().weights.targetIi);
  double sum = 0;
  int maxMii = target;
  for (const ClusterId c : prepared.clusters()) {
    const int mii = std::max(clusterMii(prepared, solution, c), target);
    sum += mii;
    maxMii = std::max(maxMii, mii);
  }
  const auto numClusters = static_cast<double>(prepared.clusters().size());
  return maxMii + 0.1 * (sum / numClusters);
}

double CopyCountCriterion::score(const PreparedProblem&,
                                 const PartialSolution& solution) const {
  return solution.flow().totalCopies();
}

double LoadBalanceCriterion::score(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  const auto& pg = *prepared.problem().pg;
  double sum = 0;
  double maxLoad = 0;
  for (const ClusterId c : prepared.clusters()) {
    const double load =
        static_cast<double>(solution.usage(c).instructions) /
        std::max(1, pg.node(c).resources.issueSlots());
    sum += load;
    maxLoad = std::max(maxLoad, load);
  }
  const double mean = sum / static_cast<double>(prepared.clusters().size());
  return maxLoad - mean;
}

double WiringSlackCriterion::score(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  const int maxIn = prepared.problem().constraints.maxInNeighbors;
  if (maxIn <= 0) return 0.0;
  double penalty = 0;
  for (const ClusterId c : prepared.clusters()) {
    const double used = static_cast<double>(solution.realInNeighborCount(c)) /
                        static_cast<double>(maxIn);
    penalty += used * used;
  }
  return penalty;
}

double CriticalPathCriterion::score(const PreparedProblem& prepared,
                                    const PartialSolution& solution) const {
  // For every cross-cluster intra-iteration dependence, weight the copy by
  // how tall its consumer still is: cutting near the top of the critical
  // path is worse.
  const auto& ddg = *prepared.problem().ddg;
  std::int64_t maxHeight = 1;
  for (const DdgNodeId n : prepared.problem().workingSet) {
    maxHeight = std::max(maxHeight, prepared.height(n));
  }
  double penalty = 0;
  for (const DdgNodeId n : prepared.problem().workingSet) {
    const ClusterId cn = solution.clusterOf(n);
    if (!cn.valid()) continue;
    for (const auto& operand : ddg.node(n).operands) {
      if (operand.distance != 0) continue;
      if (!prepared.inWorkingSet(operand.src)) continue;
      const ClusterId cp = solution.clusterOf(operand.src);
      if (!cp.valid() || cp == cn) continue;
      penalty += static_cast<double>(prepared.height(n) + 1) /
                 static_cast<double>(maxHeight);
    }
  }
  return penalty;
}

WeightedObjective::WeightedObjective(const CostWeights& weights) {
  add(std::make_unique<IiEstimateCriterion>(), weights.iiEstimate);
  add(std::make_unique<CopyCountCriterion>(), weights.copyCount);
  add(std::make_unique<LoadBalanceCriterion>(), weights.loadBalance);
  add(std::make_unique<CriticalPathCriterion>(), weights.criticalPath);
  add(std::make_unique<WiringSlackCriterion>(), weights.wiringSlack);
}

void WeightedObjective::add(std::unique_ptr<CostCriterion> criterion,
                            double weight) {
  HCA_REQUIRE(criterion != nullptr, "null cost criterion");
  criteria_.emplace_back(std::move(criterion), weight);
}

double WeightedObjective::evaluate(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  double total = 0;
  for (const auto& [criterion, weight] : criteria_) {
    if (weight == 0.0) continue;
    total += weight * criterion->score(prepared, solution);
  }
  return total;
}

std::vector<std::pair<std::string, double>> WeightedObjective::breakdown(
    const PreparedProblem& prepared, const PartialSolution& solution) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [criterion, weight] : criteria_) {
    out.emplace_back(criterion->name(),
                     weight * criterion->score(prepared, solution));
  }
  return out;
}

}  // namespace hca::see
