#include "baseline/flat_ica.hpp"

#include <algorithm>

#include "machine/pattern_graph.hpp"
#include "see/engine.hpp"
#include "support/check.hpp"

namespace hca::baseline {

FlatIcaResult runFlatIca(const ddg::Ddg& ddg,
                         const machine::DspFabricModel& model,
                         const see::SeeOptions& options,
                         const CancellationToken* cancel,
                         HierarchyCollect* collect) {
  HCA_REQUIRE(model.totalCns() <= 64,
              "flat ICA supports up to 64 computation nodes");
  FlatIcaResult result;

  // The flat K_n pattern graph: every CN connected to every other. Dead
  // CNs keep their slot (indices must stay CN ids) but carry no resources
  // and are marked so SEE never places work on them.
  machine::PatternGraph pg;
  for (int i = 0; i < model.totalCns(); ++i) {
    const bool alive = model.cnAlive(CnId(i));
    pg.addCluster(machine::ResourceTable::computationNode() * (alive ? 1 : 0),
                  "CN" + std::to_string(i));
    if (!alive) pg.markDead(ClusterId(i));
  }
  pg.connectClustersCompletely();

  see::SeeProblem problem;
  problem.ddg = &ddg;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) {
      problem.workingSet.emplace_back(v);
    }
  }
  problem.pg = &pg;
  // The only hierarchy knowledge the flat view keeps: a CN has two input
  // selects and one output wire.
  problem.constraints.maxInNeighbors = model.config().cnInWires;
  problem.inWiresPerCluster = model.config().cnInWires;
  problem.outWiresPerCluster = model.config().cnOutWires;
  problem.latency = model.config().latency;

  see::SeeOptions flatOptions = options;
  if (flatOptions.weights.targetIi <= 1) {
    const auto stats = ddg.stats();
    flatOptions.weights.targetIi = std::max<int>(
        {static_cast<int>(ddg.miiRec(model.config().latency)),
         (stats.numInstructions + model.aliveCns() - 1) / model.aliveCns(),
         (stats.numMemOps + model.config().dmaSlots - 1) /
             model.config().dmaSlots});
  }
  const see::SpaceExplorationEngine engine(flatOptions);
  const auto seeResult = engine.run(problem, cancel);
  result.seeStats = seeResult.stats;
  result.assignmentLegal = seeResult.legal;
  if (!seeResult.legal) {
    result.failureReason = "flat assignment: " + seeResult.failureReason;
    return result;
  }

  result.assignment.assign(static_cast<std::size_t>(ddg.numNodes()),
                           CnId::invalid());
  for (const DdgNodeId n : problem.workingSet) {
    result.assignment[n.index()] =
        CnId(seeResult.solution.clusterOf(n).value());
  }
  for (const ClusterId c : pg.clusterNodes()) {
    result.maxCnPressure =
        std::max(result.maxCnPressure,
                 seeResult.solution.usage(c).instructions +
                     seeResult.solution.distinctValuesIn(c));
  }

  // Post-hoc: can the MUX hierarchy actually realize this assignment?
  result.hierarchy =
      checkHierarchyFeasibility(ddg, model, result.assignment, collect);
  result.hierarchyLegal = result.hierarchy.legal;
  if (!result.hierarchyLegal) {
    result.failureReason = "hierarchy: " + result.hierarchy.failureReason;
  }
  return result;
}

}  // namespace hca::baseline
