#pragma once

#include <memory>
#include <string>
#include <vector>

#include "see/partial_solution.hpp"
#include "see/prepared.hpp"

/// Pluggable cost criteria (paper Section 3: "the assignment n -> c is
/// evaluated by an objective function based on a collection of cost
/// criteria"). Each criterion scores a whole partial solution; the
/// WeightedObjective combines them. Lower is better.
namespace hca::see {

class CostCriterion {
 public:
  virtual ~CostCriterion() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double score(const PreparedProblem& prepared,
                                     const PartialSolution& solution)
      const = 0;
};

/// The paper's main cost factor (Section 4.2): an estimate of
/// maxClsMII = max over clusters of the per-cluster MII, accounting for the
/// issue slots (instructions plus one receive per distinct incoming value)
/// and the copy pressure the Mapper will have to serialize over the
/// cluster's input/output wires.
class IiEstimateCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "ii-estimate"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;

  /// The per-cluster MII estimate itself, exposed for the final metric.
  static int clusterMii(const PreparedProblem& prepared,
                        const PartialSolution& solution, ClusterId cluster);
  static int maxClusterMii(const PreparedProblem& prepared,
                           const PartialSolution& solution);
};

/// Total number of inter-cluster copies (arc/value pairs).
class CopyCountCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "copy-count"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Spread of issue-slot occupancy across clusters (max - mean, normalized
/// by issue width): keeps the assignment from piling work on one cluster
/// before the II term starts to bite.
class LoadBalanceCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "load-balance"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Penalizes consumed reconfiguration budget: every distinct real
/// in-neighbor eats one of a cluster's few input-wire selects, and a
/// saturated cluster blocks all later assignments that need to reach it.
/// Quadratic in the per-cluster utilization so saturation hurts most.
class WiringSlackCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "wiring-slack"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Penalizes copies on dependence edges with little slack: separating the
/// critical path across clusters adds its copy latency to the schedule
/// even when the II is unaffected.
class CriticalPathCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "critical-path"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Weighted combination of the standard criteria.
class WeightedObjective {
 public:
  explicit WeightedObjective(const CostWeights& weights);

  /// Adds a custom criterion with the given weight.
  void add(std::unique_ptr<CostCriterion> criterion, double weight);

  [[nodiscard]] double evaluate(const PreparedProblem& prepared,
                                const PartialSolution& solution) const;

  /// Per-criterion breakdown (diagnostics).
  [[nodiscard]] std::vector<std::pair<std::string, double>> breakdown(
      const PreparedProblem& prepared, const PartialSolution& solution) const;

 private:
  std::vector<std::pair<std::unique_ptr<CostCriterion>, double>> criteria_;
};

}  // namespace hca::see
