#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "support/stats.hpp"

/// Metrics registry for search observability.
///
/// A registry is a bag of *named* counters and histograms. One registry per
/// outer HCA attempt, merged exactly like `HcaStats` (losing attempts fold
/// into the winner), so the per-name aggregation semantics are uniform and
/// new instrumentation needs no hand-written merge field. Names are
/// dot-separated, with a `.L<level>` suffix for per-hierarchy-level series
/// (e.g. `see.expansions.L1`); `std::map` keeps iteration deterministic
/// for reports and tests.
///
/// The registry is deliberately *not* thread-safe: attempts own private
/// registries and merge after the fact (the same discipline that keeps
/// `HcaStats` race-free in the portfolio sweep).
namespace hca {

class JsonWriter;

/// Streaming histogram: exact moments via `RunningStats` plus power-of-two
/// buckets for quantile estimates (values < 1 land in bucket 0; bucket i
/// covers [2^(i-1), 2^i)). Bounded memory, mergeable, good enough to tell
/// "p99 task latency" from "max outlier" without storing samples.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void add(double x);
  void merge(const Histogram& other);

  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  /// Estimated q-quantile (q in [0, 1]) from the bucket counts, clamped to
  /// the exact observed [min, max]. NaN when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  RunningStats stats_;
  std::array<std::int64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it at 0.
  std::int64_t& counter(const std::string& name);
  /// Adds `delta` to the counter named `name`.
  void add(const std::string& name, std::int64_t delta);
  /// Returns the histogram named `name`, creating it empty.
  Histogram& histogram(const std::string& name);
  /// Records one observation into the histogram named `name`.
  void observe(const std::string& name, double value);

  /// Counter value, 0 when absent (does not create the counter).
  [[nodiscard]] std::int64_t counterValue(const std::string& name) const;
  /// Histogram lookup, nullptr when absent.
  [[nodiscard]] const Histogram* findHistogram(const std::string& name) const;

  /// Folds `other` into this registry: counters sum, histograms merge.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && histograms_.empty();
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Writes `{"counters": {...}, "histograms": {name: {count, mean, ...,
  /// p50, p90, p99}}}` as the next JSON value of `json`.
  void writeJson(JsonWriter& json) const;

  /// Human-readable dump: one aligned row per counter, then one per
  /// histogram with count/mean/quantiles (the `hcac --stats` table).
  void printTable(std::ostream& os) const;

  /// OpenMetrics text exposition (`hcac --metrics-out`), scrapeable by
  /// Prometheus-style collectors. Counters become `<prefix>_<name>_total`
  /// counter families, histograms become summary families (count, sum,
  /// quantile samples). A `.L<level>` name suffix is lifted into a
  /// `level="<n>"` label so per-level series share one family; every other
  /// non-[a-zA-Z0-9_:] character is mapped to '_'. Ends with the
  /// spec-required `# EOF` line.
  void writeOpenMetrics(std::ostream& os,
                        const std::string& prefix = "hca") const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hca
