// E6: google-benchmark micro-benchmarks of the tool-chain components:
// recurrence-MII computation, the reference interpreter, one SEE run, the
// Mapper, the full HCA pipeline, and the modulo scheduler.

#include <benchmark/benchmark.h>

#include "ddg/interp.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "machine/rcp.hpp"
#include "mapper/mapper.hpp"
#include "sched/modulo.hpp"
#include "see/engine.hpp"

namespace {

using namespace hca;

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

void BM_MiiRec(benchmark::State& state) {
  const auto kernel =
      ddg::table1Kernels()[static_cast<std::size_t>(state.range(0))];
  const ddg::LatencyModel lat;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.ddg.miiRec(lat));
  }
}
BENCHMARK(BM_MiiRec)->DenseRange(0, 3);

void BM_Interpreter(benchmark::State& state) {
  const auto kernel = ddg::buildIdctHor();
  const auto config = ddg::kernelInterpConfig(kernel, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddg::interpret(kernel.ddg, config));
  }
}
BENCHMARK(BM_Interpreter);

void BM_SeeSingleLevel(benchmark::State& state) {
  // One RCP assignment: the paper's single-level framework workload.
  const auto kernel = ddg::buildFir2Dim();
  machine::RcpConfig config;
  config.clusters = 8;
  config.inputPorts = 4;
  config.memClusterStride = 1;
  const auto pg = machine::rcpPatternGraph(config);
  see::SeeProblem problem;
  problem.ddg = &kernel.ddg;
  for (std::int32_t v = 0; v < kernel.ddg.numNodes(); ++v) {
    if (ddg::isInstruction(kernel.ddg.node(DdgNodeId(v)).op)) {
      problem.workingSet.emplace_back(v);
    }
  }
  problem.pg = &pg;
  problem.constraints = machine::rcpConstraints(config);
  problem.inWiresPerCluster = config.inputPorts;
  problem.outWiresPerCluster = config.inputPorts;
  see::SeeOptions options;
  options.weights.targetIi = 8;
  const see::SpaceExplorationEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(problem));
  }
}
BENCHMARK(BM_SeeSingleLevel);

void BM_Mapper(benchmark::State& state) {
  machine::PatternGraph pg;
  for (int i = 0; i < 4; ++i) {
    pg.addCluster(machine::ResourceTable(4, 4));
  }
  pg.connectClustersCompletely();
  machine::CopyFlow flow(pg);
  int v = 0;
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      flow.addCopy(*pg.arcBetween(ClusterId(s), ClusterId(d)), ValueId(v++));
      flow.addCopy(*pg.arcBetween(ClusterId(s), ClusterId(d)), ValueId(v++));
    }
  }
  mapper::MapperInput input;
  input.pg = &pg;
  input.flow = &flow;
  input.inWiresPerChild = 8;
  input.outWiresPerChild = 8;
  const mapper::Mapper mapperPass;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapperPass.map(input));
  }
}
BENCHMARK(BM_Mapper);

void BM_HcaFullPipeline(benchmark::State& state) {
  const auto kernel =
      ddg::table1Kernels()[static_cast<std::size_t>(state.range(0))];
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.run(kernel.ddg));
  }
}
BENCHMARK(BM_HcaFullPipeline)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_ModuloScheduler(benchmark::State& state) {
  const auto kernel = ddg::buildFir2Dim();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(kernel.ddg);
  if (!hca.legal) {
    state.SkipWithError("clusterization failed");
    return;
  }
  const auto mapping = core::buildFinalMapping(kernel.ddg, model, hca);
  const auto mii = core::computeMii(kernel.ddg, model, hca);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::moduloSchedule(mapping, model, mii.finalMii));
  }
}
BENCHMARK(BM_ModuloScheduler);

}  // namespace

BENCHMARK_MAIN();
