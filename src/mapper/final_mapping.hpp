#pragma once

#include <cstdint>
#include <vector>

#include "ddg/ddg.hpp"
#include "support/ids.hpp"

/// The fully materialized placement the pipeline hands to its consumers:
/// every DDG node pinned to a computation node, with `recv` primitives
/// inserted for inter-CN operand migration (paper Section 4.1, last
/// paragraph). The HCA driver *produces* one (hca/postprocess.hpp builds it
/// from a legal HcaResult); the scheduler, the simulator and the verifier
/// *consume* it. The struct lives here — below hca in the module DAG — so
/// consumers in the sched/sim layer depend on the mapper vocabulary only,
/// never on the driver that happened to produce the mapping.
namespace hca::mapper {

struct FinalMapping {
  ddg::Ddg finalDdg;
  /// Per final-DDG node: the CN executing it (invalid for consts).
  std::vector<CnId> cnOf;
  /// Number of nodes copied from the original DDG (recvs follow).
  std::int32_t numOriginalNodes = 0;

  struct RecvInfo {
    DdgNodeId recvNode;  // in finalDdg
    ValueId value;       // original producer
    CnId cn;
    bool isRelay = false;
  };
  std::vector<RecvInfo> recvs;

  [[nodiscard]] int instructionsOn(CnId cn) const;
};

}  // namespace hca::mapper
