#include "hca/report.hpp"

#include <sstream>
#include <vector>

#include "support/json.hpp"
#include "support/str.hpp"

namespace hca::core {

namespace {

std::string lvl(const char* base, int level) {
  return strCat(base, ".L", level);
}

/// Hierarchy levels that actually solved sub-problems in this run: the
/// driver emits one `see.problems.L<n>` counter per visited level, so the
/// report needs no model to know the tree depth (the degraded-bandwidth
/// rung even reuses the same depth).
std::vector<int> levelsPresent(const MetricsRegistry& metrics) {
  std::vector<int> levels;
  for (int level = 0; level < 64; ++level) {
    if (metrics.counterValue(lvl("see.problems", level)) > 0) {
      levels.push_back(level);
    }
  }
  return levels;
}

void writeHistogramSummary(JsonWriter& json, const Histogram* h) {
  if (h == nullptr || h->stats().count() == 0) {
    json.null();
    return;
  }
  json.beginObject();
  json.key("count").value(h->stats().count());
  json.key("mean").value(h->stats().mean());
  json.key("min").value(h->stats().min());
  json.key("max").value(h->stats().max());
  json.key("p50").value(h->quantile(0.5));
  json.key("p90").value(h->quantile(0.9));
  json.endObject();
}

void writeFailure(JsonWriter& json, const HcaFailureReport& failure) {
  json.beginObject();
  json.key("cause").value(to_string(failure.cause));
  json.key("level").value(failure.level);
  json.key("subproblemPath").beginArray();
  for (const int p : failure.subproblemPath) json.value(p);
  json.endArray();
  json.key("message").value(failure.message);
  json.key("escalationsTried").beginArray();
  for (const std::string& e : failure.escalationsTried) json.value(e);
  json.endArray();
  json.endObject();
}

}  // namespace

std::string runReportJson(const HcaResult& result,
                          const machine::DspFabricModel* model,
                          const ReportMeta* meta) {
  std::ostringstream os;
  JsonWriter json(os);
  writeRunReport(json, result, model, meta);
  return os.str();
}

void writeRunReport(JsonWriter& json, const HcaResult& result,
                    const machine::DspFabricModel* model,
                    const ReportMeta* meta) {
  json.beginObject();

  if (meta != nullptr) {
    json.key("workload").value(meta->workload);
    json.key("machine").value(meta->machine);
    json.key("threads").value(meta->threads);
    json.key("context");
    meta->context.writeJson(json);
  }

  json.key("legal").value(result.legal);
  json.key("fallbackUsed").value(result.fallbackUsed);
  json.key("failureReason").value(result.failureReason);
  json.key("failure");
  if (result.failure != nullptr) {
    writeFailure(json, *result.failure);
  } else {
    json.null();
  }

  const HcaStats& s = result.stats;
  json.key("stats").beginObject();
  json.key("problemsSolved").value(s.problemsSolved);
  json.key("backtrackAttempts").value(s.backtrackAttempts);
  json.key("outerAttempts").value(s.outerAttempts);
  json.key("achievedTargetIi").value(s.achievedTargetIi);
  json.key("attemptsCancelled").value(s.attemptsCancelled);
  json.key("statesExplored").value(s.statesExplored);
  json.key("candidatesEvaluated").value(s.candidatesEvaluated);
  json.key("routeInvocations").value(s.routeInvocations);
  json.key("cacheHits").value(s.cacheHits);
  json.key("cacheMisses").value(s.cacheMisses);
  json.key("maxWirePressure").value(s.maxWirePressure);
  json.key("seeCopiesAvoided").value(s.seeCopiesAvoided);
  json.key("seeSnapshotsMaterialized").value(s.seeSnapshotsMaterialized);
  json.key("seeArenaBytesPeak").value(s.seeArenaBytesPeak);
  json.key("seeOracleRejects").value(s.seeOracleRejects);
  json.key("seeRouteMemoHits").value(s.seeRouteMemoHits);
  json.key("seeDominancePruned").value(s.seeDominancePruned);
  json.endObject();

  // Per-level breakdown: the `.L<n>` series of the registry, one row per
  // hierarchy level that solved at least one sub-problem.
  const MetricsRegistry& m = result.metrics;
  json.key("levels").beginArray();
  for (const int level : levelsPresent(m)) {
    json.beginObject();
    json.key("level").value(level);
    json.key("name").value(model != nullptr && level < model->numLevels()
                               ? model->levelName(level)
                               : strCat("L", level));
    json.key("problems").value(m.counterValue(lvl("see.problems", level)));
    json.key("expansions").value(m.counterValue(lvl("see.expansions", level)));
    json.key("pruned").value(m.counterValue(lvl("see.pruned", level)));
    json.key("candidates").value(m.counterValue(lvl("see.candidates", level)));
    json.key("candidateRejections")
        .value(m.counterValue(lvl("see.candidate_rejections", level)));
    json.key("routeInvocations")
        .value(m.counterValue(lvl("see.route_invocations", level)));
    json.key("routeFailures")
        .value(m.counterValue(lvl("see.route_failures", level)));
    json.key("oracleRejects")
        .value(m.counterValue(lvl("see.oracle_rejects", level)));
    json.key("routeMemoHits")
        .value(m.counterValue(lvl("see.route_memo_hits", level)));
    json.key("dominancePruned")
        .value(m.counterValue(lvl("see.dominance_pruned", level)));
    json.key("cacheHits").value(m.counterValue(lvl("cache.hits", level)));
    json.key("cacheMisses").value(m.counterValue(lvl("cache.misses", level)));
    json.key("backtracks").value(m.counterValue(lvl("hca.backtracks", level)));
    json.key("mapperFailures")
        .value(m.counterValue(lvl("mapper.failures", level)));
    json.key("wireUtilization");
    writeHistogramSummary(json,
                          m.findHistogram(lvl("mapper.wire_utilization", level)));
    json.key("copiesPerIli");
    writeHistogramSummary(json,
                          m.findHistogram(lvl("mapper.copies_per_ili", level)));
    json.key("maxValuesPerWire");
    writeHistogramSummary(
        json, m.findHistogram(lvl("mapper.max_values_per_wire", level)));
    json.endObject();
  }
  json.endArray();

  json.key("metrics");
  m.writeJson(json);

  json.key("records").beginObject();
  json.key("count").value(static_cast<std::int64_t>(result.records.size()));
  json.key("relays").value(static_cast<std::int64_t>(result.relays.size()));
  json.key("reconfigSettings")
      .value(static_cast<std::int64_t>(result.reconfig.settings.size()));
  json.endObject();

  json.endObject();
}

std::map<std::string, std::int64_t> deterministicCounters(
    const HcaStats& stats) {
  // attemptsCancelled is deliberately absent: it counts attempts cut short
  // by deadlines or portfolio soft-cancellation, both wall-clock effects.
  return {
      {"problemsSolved", stats.problemsSolved},
      {"backtrackAttempts", stats.backtrackAttempts},
      {"outerAttempts", stats.outerAttempts},
      {"achievedTargetIi", stats.achievedTargetIi},
      {"statesExplored", stats.statesExplored},
      {"candidatesEvaluated", stats.candidatesEvaluated},
      {"routeInvocations", stats.routeInvocations},
      {"cacheHits", stats.cacheHits},
      {"cacheMisses", stats.cacheMisses},
      {"maxWirePressure", stats.maxWirePressure},
      {"seeCopiesAvoided", stats.seeCopiesAvoided},
      {"seeSnapshotsMaterialized", stats.seeSnapshotsMaterialized},
      {"seeArenaBytesPeak", stats.seeArenaBytesPeak},
      {"seeOracleRejects", stats.seeOracleRejects},
      {"seeRouteMemoHits", stats.seeRouteMemoHits},
      {"seeDominancePruned", stats.seeDominancePruned},
  };
}

double runWallUs(const HcaResult& result) {
  const Histogram* wall = result.metrics.findHistogram("attempt.wall_us");
  return wall != nullptr && wall->stats().count() > 0 ? wall->stats().sum()
                                                      : 0.0;
}

HistoryRecord historyRecordFor(const HcaResult& result,
                               const ReportMeta& meta) {
  HistoryRecord record;
  record.context = meta.context;
  record.workload = meta.workload;
  record.machine = meta.machine;
  record.legal = result.legal;
  record.wallUs = runWallUs(result);
  record.counters = deterministicCounters(result.stats);
  return record;
}

void printRunStats(std::ostream& os, const HcaResult& result) {
  os << "=== HCA run stats ===\n";
  if (result.legal) {
    os << "outcome: legal ("
       << (result.fallbackUsed.empty() ? "primary sweep"
                                       : strCat("fallback rung: ",
                                                result.fallbackUsed))
       << ")\n";
  } else {
    os << "outcome: no legal mapping";
    if (result.failure != nullptr) {
      os << " [" << to_string(result.failure->cause) << "]";
    }
    os << "\n";
    if (!result.failureReason.empty()) {
      os << "reason:  " << result.failureReason << "\n";
    }
  }
  const HcaStats& s = result.stats;
  os << "target II achieved: " << s.achievedTargetIi
     << "  outer attempts: " << s.outerAttempts
     << "  cancelled: " << s.attemptsCancelled << "\n";
  os << "problems solved: " << s.problemsSolved
     << "  backtracks: " << s.backtrackAttempts
     << "  max wire pressure: " << s.maxWirePressure << "\n";
  os << "states explored: " << s.statesExplored
     << "  candidates: " << s.candidatesEvaluated
     << "  cache h/m: " << s.cacheHits << "/" << s.cacheMisses << "\n";
  os << "copies avoided: " << s.seeCopiesAvoided
     << "  snapshots: " << s.seeSnapshotsMaterialized
     << "  arena peak: " << s.seeArenaBytesPeak << " B\n";
  os << "oracle rejects: " << s.seeOracleRejects
     << "  route memo hits: " << s.seeRouteMemoHits
     << "  dominance pruned: " << s.seeDominancePruned << "\n";
  if (!result.metrics.empty()) {
    os << "--- metrics registry ---\n";
    result.metrics.printTable(os);
  }
}

}  // namespace hca::core
