#include "machine/dspfabric.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::machine {

std::string DspFabricConfig::toString() const {
  int cns = 1;
  for (int b : branching) cns *= b;
  return strCat("DSPFabric[", cns, " CNs, N=", n, ", M=", m, ", K=", k,
                ", DMA=", dmaSlots, "]");
}

DspFabricModel::DspFabricModel(DspFabricConfig config, FaultSet faults)
    : config_(std::move(config)), faults_(std::move(faults)) {
  HCA_REQUIRE(!config_.branching.empty(), "DSPFabric needs >= 1 level");
  for (const int b : config_.branching) {
    HCA_REQUIRE(b >= 2, "each hierarchy level needs >= 2 children, got " << b);
    totalCns_ *= b;
  }
  HCA_REQUIRE(config_.n >= 1 && config_.m >= 1 && config_.k >= 1,
              "MUX capacities must be >= 1");
  HCA_REQUIRE(config_.cnInWires >= 1 && config_.cnOutWires >= 1,
              "CN wire counts must be >= 1");
  HCA_REQUIRE(config_.dmaSlots >= 1, "DMA needs >= 1 slot");

  // Digest the fault set into per-CN liveness, per-problem wire-fault
  // counts and per-leaf lane-fault counts, validating ranges as we go.
  std::vector<char> cnDead(static_cast<std::size_t>(totalCns_), 0);
  for (const CnId cn : faults_.deadCns) {
    HCA_REQUIRE(cn.valid() && cn.value() < totalCns_,
                "fault: dead CN id out of range: " << to_string(cn));
    cnDead[cn.index()] = 1;
  }
  alivePrefix_.assign(static_cast<std::size_t>(totalCns_) + 1, 0);
  for (int i = 0; i < totalCns_; ++i) {
    alivePrefix_[static_cast<std::size_t>(i) + 1] =
        alivePrefix_[static_cast<std::size_t>(i)] +
        (cnDead[static_cast<std::size_t>(i)] ? 0 : 1);
  }
  aliveCns_ = alivePrefix_.back();

  const auto requirePathInRange = [&](const std::vector<int>& path,
                                      const char* what) {
    HCA_REQUIRE(static_cast<int>(path.size()) <= numLevels(),
                "fault: " << what << " path deeper than the hierarchy");
    for (std::size_t l = 0; l < path.size(); ++l) {
      HCA_REQUIRE(path[l] >= 0 && path[l] < config_.branching[l],
                  "fault: " << what << " path index out of range at level "
                            << l << ": " << path[l]);
    }
  };
  for (const DeadWire& w : faults_.deadWires) {
    requirePathInRange(w.problemPath, "dead wire");
    const int level = static_cast<int>(w.problemPath.size());
    HCA_REQUIRE(level < numLevels(),
                "fault: dead wire problem path names a CN, not a problem");
    const int children = config_.branching[static_cast<std::size_t>(level)];
    HCA_REQUIRE(w.child >= 0 && w.child < children,
                "fault: dead wire child index out of range: " << w.child);
    auto& counts = wireFaults_[w.problemPath];
    counts.resize(static_cast<std::size_t>(children));
    auto& entry = counts[static_cast<std::size_t>(w.child)];
    (w.input ? entry.in : entry.out) += 1;
  }
  for (const DeadLane& l : faults_.deadLanes) {
    HCA_REQUIRE(numLevels() >= 2, "fault: lane faults need >= 2 levels");
    HCA_REQUIRE(static_cast<int>(l.leafPath.size()) == numLevels() - 1,
                "fault: lane path must address a leaf crossbar (one index "
                "per non-leaf level), got depth "
                    << l.leafPath.size());
    requirePathInRange(l.leafPath, "dead lane");
    laneFaults_[l.leafPath] += 1;
  }
}

LevelSpec DspFabricModel::levelSpec(int level) const {
  HCA_REQUIRE(level >= 0 && level < numLevels(),
              "level out of range: " << level);
  LevelSpec spec;
  spec.children = config_.branching[static_cast<std::size_t>(level)];
  const bool leaf = level == numLevels() - 1;
  if (leaf) {
    // Children are computation nodes behind the crossbar.
    spec.inWires = config_.cnInWires;
    spec.outWires = config_.cnOutWires;
    spec.maxWiresIntoChild = 0;  // nothing below a CN
  } else {
    // MUX capacity: N at level 0, M below; deeper (non-paper) levels reuse M.
    const int cap = level == 0 ? config_.n : config_.m;
    spec.inWires = cap;
    spec.outWires = cap;
    const bool childIsLeaf = level + 1 == numLevels() - 1;
    // Wires entering a child sub-problem: bounded by the child's input
    // wires at this interconnect (= cap), and additionally by the K
    // crossbar inputs when the child is a leaf.
    spec.maxWiresIntoChild = childIsLeaf ? std::min(cap, config_.k) : cap;
  }
  return spec;
}

std::string DspFabricModel::levelName(int level) const {
  HCA_REQUIRE(level >= 0 && level < numLevels(),
              "level out of range: " << level);
  if (level == 0) return "cluster-sets";
  if (level == numLevels() - 1) return "leaf-crossbars";
  if (numLevels() <= 3) return "sub-clusters";
  return "sub-clusters." + std::to_string(level);
}

ResourceTable DspFabricModel::clusterResources(int level) const {
  HCA_REQUIRE(level >= 0 && level < numLevels(),
              "level out of range: " << level);
  int cnsBelow = 1;
  for (int l = level + 1; l < numLevels(); ++l) {
    cnsBelow *= config_.branching[static_cast<std::size_t>(l)];
  }
  return ResourceTable::computationNode() * cnsBelow;
}

PgConstraints DspFabricModel::constraints(int level) const {
  const LevelSpec spec = levelSpec(level);
  PgConstraints c;
  c.maxInNeighbors = spec.inWires;
  c.maxOutNeighbors = -1;  // broadcast: the paper leaves outputs unbounded
  c.outputNodeUnaryFanIn = true;
  return c;
}

PatternGraph DspFabricModel::patternGraph(int level) const {
  const LevelSpec spec = levelSpec(level);
  const ResourceTable rt = clusterResources(level);
  PatternGraph pg;
  for (int i = 0; i < spec.children; ++i) {
    pg.addCluster(rt, strCat("L", level, ".", i));
  }
  pg.connectClustersCompletely();
  return pg;
}

bool DspFabricModel::cnAlive(CnId cn) const {
  HCA_REQUIRE(cn.valid() && cn.value() < totalCns_,
              "CN id out of range: " << to_string(cn));
  return alivePrefix_[cn.index() + 1] > alivePrefix_[cn.index()];
}

int DspFabricModel::aliveCnsBelow(const std::vector<int>& path) const {
  HCA_REQUIRE(static_cast<int>(path.size()) <= numLevels(),
              "problem path deeper than the hierarchy");
  int base = 0;
  int size = totalCns_;
  for (std::size_t l = 0; l < path.size(); ++l) {
    const int b = config_.branching[l];
    HCA_REQUIRE(path[l] >= 0 && path[l] < b,
                "problem path index out of range at level " << l << ": "
                                                            << path[l]);
    size /= b;
    base += path[l] * size;
  }
  return alivePrefix_[static_cast<std::size_t>(base + size)] -
         alivePrefix_[static_cast<std::size_t>(base)];
}

ProblemSpec DspFabricModel::problemSpec(const std::vector<int>& path) const {
  const int level = static_cast<int>(path.size());
  HCA_REQUIRE(level < numLevels(), "problem path names a CN, not a problem");
  ProblemSpec spec;
  spec.level = level;
  spec.base = levelSpec(level);
  const std::size_t children = static_cast<std::size_t>(spec.base.children);
  spec.inWiresOfChild.assign(children, spec.base.inWires);
  spec.outWiresOfChild.assign(children, spec.base.outWires);
  spec.maxWiresIntoChildOf.assign(children, spec.base.maxWiresIntoChild);
  spec.childDead.assign(children, false);

  if (const auto it = wireFaults_.find(path); it != wireFaults_.end()) {
    for (std::size_t i = 0; i < children; ++i) {
      const WireFaultCount& dead = it->second[i];
      spec.inWiresOfChild[i] = std::max(0, spec.base.inWires - dead.in);
      spec.outWiresOfChild[i] = std::max(0, spec.base.outWires - dead.out);
    }
  }
  const bool childIsLeaf = level + 1 == numLevels() - 1;
  int fullBelow = 1;
  for (int l = level + 1; l < numLevels(); ++l) {
    fullBelow *= config_.branching[static_cast<std::size_t>(l)];
  }
  std::vector<int> childPath = path;
  for (std::size_t i = 0; i < children; ++i) {
    childPath.push_back(static_cast<int>(i));
    if (level < numLevels() - 1) {
      int budget = spec.inWiresOfChild[i];
      if (childIsLeaf) {
        int lanes = config_.k;
        if (const auto it = laneFaults_.find(childPath);
            it != laneFaults_.end()) {
          lanes = std::max(0, lanes - it->second);
        }
        budget = std::min(budget, lanes);
      }
      spec.maxWiresIntoChildOf[i] = budget;
    } else {
      spec.maxWiresIntoChildOf[i] = 0;  // nothing below a CN
    }
    const int alive = aliveCnsBelow(childPath);
    spec.childDead[i] = alive == 0;
    if (alive != fullBelow) spec.touched = true;
    childPath.pop_back();
  }
  spec.touched =
      spec.touched ||
      spec.inWiresOfChild !=
          std::vector<int>(children, spec.base.inWires) ||
      spec.outWiresOfChild !=
          std::vector<int>(children, spec.base.outWires) ||
      spec.maxWiresIntoChildOf !=
          std::vector<int>(children, spec.base.maxWiresIntoChild);
  return spec;
}

PatternGraph DspFabricModel::patternGraphAt(const std::vector<int>& path) const {
  const int level = static_cast<int>(path.size());
  if (!hasFaults()) return patternGraph(level);
  const ProblemSpec spec = problemSpec(path);
  if (!spec.touched) return patternGraph(level);
  PatternGraph pg;
  std::vector<int> childPath = path;
  for (int i = 0; i < spec.base.children; ++i) {
    childPath.push_back(i);
    const int alive = aliveCnsBelow(childPath);
    const ClusterId id =
        pg.addCluster(ResourceTable::computationNode() * alive,
                      strCat("L", level, ".", i));
    if (alive == 0) pg.markDead(id);
    const std::size_t ci = static_cast<std::size_t>(i);
    if (spec.inWiresOfChild[ci] != spec.base.inWires ||
        spec.outWiresOfChild[ci] != spec.base.outWires) {
      pg.setWireCaps(id, spec.inWiresOfChild[ci], spec.outWiresOfChild[ci]);
    }
    childPath.pop_back();
  }
  pg.connectClustersCompletely();
  return pg;
}

std::string DspFabricModel::faultViabilityError() const {
  if (!hasFaults()) return {};
  if (aliveCns_ == 0) return "no surviving computation node";
  std::vector<int> path;
  return viabilityWalk(path);
}

std::string DspFabricModel::viabilityWalk(std::vector<int>& path) const {
  const int level = static_cast<int>(path.size());
  if (level >= numLevels()) return {};
  const ProblemSpec spec = problemSpec(path);
  for (int i = 0; i < spec.base.children; ++i) {
    const std::size_t ci = static_cast<std::size_t>(i);
    if (spec.childDead[ci]) continue;  // fully dead subtrees need no wires
    path.push_back(i);
    const auto where = [&] {
      std::string s = "child ";
      for (std::size_t l = 0; l < path.size(); ++l) {
        if (l > 0) s += '.';
        s += std::to_string(path[l]);
      }
      return s;
    };
    if (spec.inWiresOfChild[ci] <= 0) {
      const std::string err =
          strCat(where(), " has no surviving input wire (disconnected)");
      path.pop_back();
      return err;
    }
    if (spec.outWiresOfChild[ci] <= 0) {
      const std::string err =
          strCat(where(), " has no surviving output wire (disconnected)");
      path.pop_back();
      return err;
    }
    if (level < numLevels() - 1 && spec.maxWiresIntoChildOf[ci] <= 0) {
      const std::string err =
          strCat(where(), " has no surviving ILI lane (disconnected)");
      path.pop_back();
      return err;
    }
    std::string err = viabilityWalk(path);
    path.pop_back();
    if (!err.empty()) return err;
  }
  return {};
}

CnId DspFabricModel::cnIdOf(const std::vector<int>& path) const {
  HCA_REQUIRE(static_cast<int>(path.size()) == numLevels(),
              "CN path must have one index per level");
  int id = 0;
  for (int l = 0; l < numLevels(); ++l) {
    const int b = config_.branching[static_cast<std::size_t>(l)];
    const int idx = path[static_cast<std::size_t>(l)];
    HCA_REQUIRE(idx >= 0 && idx < b, "CN path index out of range at level "
                                         << l << ": " << idx);
    id = id * b + idx;
  }
  return CnId(id);
}

std::vector<int> DspFabricModel::pathOfCn(CnId cn) const {
  HCA_REQUIRE(cn.valid() && cn.value() < totalCns_,
              "CN id out of range: " << to_string(cn));
  std::vector<int> path(static_cast<std::size_t>(numLevels()));
  int rest = cn.value();
  for (int l = numLevels() - 1; l >= 0; --l) {
    const int b = config_.branching[static_cast<std::size_t>(l)];
    path[static_cast<std::size_t>(l)] = rest % b;
    rest /= b;
  }
  return path;
}

int DspFabricModel::commonLevel(CnId a, CnId b) const {
  if (a == b) return numLevels();
  const auto pa = pathOfCn(a);
  const auto pb = pathOfCn(b);
  for (int l = 0; l < numLevels(); ++l) {
    if (pa[static_cast<std::size_t>(l)] != pb[static_cast<std::size_t>(l)]) {
      return l;
    }
  }
  return numLevels();
}

int DspFabricModel::copyLatency(CnId a, CnId b) const {
  const int common = commonLevel(a, b);
  if (common == numLevels()) return 0;
  // The value climbs from the producer CN up to the first shared
  // interconnect level and back down: one wire hop per level boundary in
  // each direction.
  const int hops = 2 * (numLevels() - common) - 1;
  return hops * config_.latency.interCluster;
}

}  // namespace hca::machine
