#pragma once

#include <ostream>
#include <string>

#include "hca/driver.hpp"

/// Structured per-run reporting for the HCA driver (observability layer).
///
/// `runReportJson` serializes one `HcaResult` — outcome, fallback rung,
/// aggregate `HcaStats`, a per-hierarchy-level breakdown derived from the
/// metrics registry's `.L<level>` series, and the full registry — as a
/// single JSON document. The benches embed it per kernel in their BENCH
/// JSONs; `hcac --report-out=FILE` writes it next to the solved run.
///
/// `printRunStats` is the human-facing twin (`hcac --stats`): the outcome
/// line (including which fallback rung produced the result), the `HcaStats`
/// summary and the aligned metrics table.
namespace hca::core {

/// Serializes `result` as a JSON object (no trailing newline). `model` is
/// optional and only supplies human-readable level names; pass the model
/// the run used when available.
[[nodiscard]] std::string runReportJson(
    const HcaResult& result, const machine::DspFabricModel* model = nullptr);

/// Emits the same report object as the next value of an in-flight
/// `JsonWriter` — the benches use this to embed one report per kernel row
/// in their BENCH JSONs.
void writeRunReport(JsonWriter& json, const HcaResult& result,
                    const machine::DspFabricModel* model = nullptr);

/// Pretty-prints the run outcome and metrics registry to `os`.
void printRunStats(std::ostream& os, const HcaResult& result);

}  // namespace hca::core
