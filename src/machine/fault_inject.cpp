#include "machine/fault_inject.hpp"

#include <numeric>
#include <utility>

#include "support/check.hpp"

namespace hca::machine {

namespace {

/// Does `candidate` keep the surviving fabric connected?
bool viable(const DspFabricModel& model, const FaultSet& candidate) {
  const DspFabricModel probe(model.config(), candidate);
  return probe.faultViabilityError().empty();
}

std::vector<int> randomPath(Rng& rng, const DspFabricConfig& config,
                            int length) {
  std::vector<int> path;
  path.reserve(static_cast<std::size_t>(length));
  for (int l = 0; l < length; ++l) {
    path.push_back(static_cast<int>(
        rng.below(static_cast<std::uint64_t>(config.branching[
            static_cast<std::size_t>(l)]))));
  }
  return path;
}

}  // namespace

FaultSet injectRandomFaults(Rng& rng, const DspFabricModel& model,
                            const FaultInjectParams& params) {
  const DspFabricConfig& config = model.config();
  HCA_REQUIRE(params.deadCns >= 0 && params.deadCns < model.totalCns(),
              "deadCns must be in [0, totalCns): " << params.deadCns);
  HCA_REQUIRE(params.deadWires >= 0 && params.deadLanes >= 0,
              "fault counts must be non-negative");
  HCA_REQUIRE(params.deadLanes == 0 || model.numLevels() >= 2,
              "lane faults need a hierarchy of >= 2 levels");

  FaultSet faults;

  // Dead CNs: one full permutation, killed set = its prefix. Drawing the
  // whole permutation (not just the first deadCns swaps) keeps the RNG
  // stream position independent of deadCns, so wire/lane draws match
  // between nested runs too.
  std::vector<int> perm(static_cast<std::size_t>(model.totalCns()));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(perm.size() - i));
    std::swap(perm[i], perm[j]);
  }
  for (int i = 0; i < params.deadCns; ++i) {
    faults.deadCns.emplace_back(perm[static_cast<std::size_t>(i)]);
  }
  // Killing CNs alone never disconnects the fabric (a fully dead subtree
  // is simply absent), but assert the invariant anyway.
  HCA_CHECK(viable(model, faults), "CN-only fault set not viable");

  // Dead MUX wires: uniform over (level, problem, child, direction),
  // re-sampled while the kill would disconnect an alive child.
  for (int w = 0; w < params.deadWires; ++w) {
    for (int attempt = 0; attempt < std::max(1, params.maxResample);
         ++attempt) {
      const int level =
          static_cast<int>(rng.below(
              static_cast<std::uint64_t>(model.numLevels())));
      DeadWire wire;
      wire.problemPath = randomPath(rng, config, level);
      wire.child = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(config.branching[
              static_cast<std::size_t>(level)])));
      wire.input = rng.chance(0.5);
      faults.deadWires.push_back(wire);
      if (viable(model, faults)) break;
      faults.deadWires.pop_back();
    }
  }

  // Dead ILI lanes into random leaves, same re-sampling rule.
  for (int l = 0; l < params.deadLanes; ++l) {
    for (int attempt = 0; attempt < std::max(1, params.maxResample);
         ++attempt) {
      DeadLane lane;
      lane.leafPath = randomPath(rng, config, model.numLevels() - 1);
      faults.deadLanes.push_back(lane);
      if (viable(model, faults)) break;
      faults.deadLanes.pop_back();
    }
  }

  HCA_CHECK(viable(model, faults), "injected fault set not viable");
  return faults;
}

}  // namespace hca::machine
