#include <gtest/gtest.h>

#include <algorithm>

#include "machine/pattern_graph.hpp"
#include "mapper/mapper.hpp"
#include "support/check.hpp"

namespace hca::mapper {
namespace {

/// Four fully-connected clusters, like one DSPFabric level.
machine::PatternGraph fourClusters() {
  machine::PatternGraph pg;
  for (int i = 0; i < 4; ++i) {
    pg.addCluster(machine::ResourceTable(4, 4));
  }
  pg.connectClustersCompletely();
  return pg;
}

void addFlow(const machine::PatternGraph& pg, machine::CopyFlow& flow,
             int src, int dst, ValueId v) {
  flow.addCopy(*pg.arcBetween(hca::ClusterId(src), hca::ClusterId(dst)), v);
}

MapperInput baseInput(const machine::PatternGraph& pg,
                      const machine::CopyFlow& flow, int inWires,
                      int outWires) {
  MapperInput input;
  input.pg = &pg;
  input.flow = &flow;
  input.inWiresPerChild = inWires;
  input.outWiresPerChild = outWires;
  input.problemPath = {0};
  return input;
}

/// Values on the wire feeding child `di` that come from boundary wires.
int countInputWires(const MapResult& result, int child) {
  return static_cast<int>(
      result.ilis[static_cast<std::size_t>(child)].inputs.size());
}

// --- Figure 9: broadcast sharing and copy distribution -----------------------

TEST(MapperTest, PaperFigure9BroadcastUsesOneWire) {
  // Value x broadcast from cluster 0 to clusters 1 and 2 (Fig. 9a): the
  // Mapper uses one output wire of cluster 0 for both destinations.
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  const ValueId x(10);
  addFlow(pg, flow, 0, 1, x);
  addFlow(pg, flow, 0, 2, x);

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 4));
  ASSERT_TRUE(result.legal) << result.failureReason;
  // Cluster 0 uses exactly one output wire carrying {x}.
  const auto& outs = result.ilis[0].outputs;
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].values, std::vector<ValueId>{x});
  // Both receivers read it on one input wire each.
  EXPECT_EQ(countInputWires(result, 1), 1);
  EXPECT_EQ(countInputWires(result, 2), 1);
  EXPECT_EQ(result.maxValuesPerWire, 1);
}

TEST(MapperTest, PaperFigure9DistinctDestinationsGetDistinctWires) {
  // a, b, c from cluster 0 to three different destinations (Fig. 9b):
  // with enough wires they are distributed over three wires.
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  addFlow(pg, flow, 0, 1, ValueId(1));
  addFlow(pg, flow, 0, 2, ValueId(2));
  addFlow(pg, flow, 0, 3, ValueId(3));

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 4));
  ASSERT_TRUE(result.legal);
  EXPECT_EQ(result.ilis[0].outputs.size(), 3u);
  EXPECT_EQ(result.maxValuesPerWire, 1);  // perfectly balanced
}

TEST(MapperTest, ScarceOutputWiresForceSharing) {
  // Same traffic but only one output wire: all three values serialize.
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  addFlow(pg, flow, 0, 1, ValueId(1));
  addFlow(pg, flow, 0, 2, ValueId(2));
  addFlow(pg, flow, 0, 3, ValueId(3));

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 1));
  ASSERT_TRUE(result.legal) << result.failureReason;
  EXPECT_EQ(result.ilis[0].outputs.size(), 1u);
  EXPECT_EQ(result.maxValuesPerWire, 3);  // pressure reported honestly
}

TEST(MapperTest, InputBudgetTriggersMerging) {
  // Cluster 3 receives one value from each of two wires of cluster 0; with
  // an input budget of 1 the mapper must merge them onto one wire.
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  // Two values with different dest sets, both read by 3.
  addFlow(pg, flow, 0, 3, ValueId(1));
  addFlow(pg, flow, 0, 1, ValueId(2));
  addFlow(pg, flow, 0, 3, ValueId(2));

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 1, 4));
  ASSERT_TRUE(result.legal) << result.failureReason;
  EXPECT_EQ(countInputWires(result, 3), 1);
  // The merged wire carries both values.
  EXPECT_EQ(result.ilis[3].inputs[0].values.size(), 2u);
}

TEST(MapperTest, IlInputsAndSettingsConsistent) {
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  addFlow(pg, flow, 0, 1, ValueId(1));
  addFlow(pg, flow, 2, 1, ValueId(5));

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 4));
  ASSERT_TRUE(result.legal);
  // Child 1 reads two wires; MUX settings agree with the ILI.
  EXPECT_EQ(countInputWires(result, 1), 2);
  int settingsInto1 = 0;
  for (const auto& s : result.reconfig.settings) {
    if (s.dstChild == 1) ++settingsInto1;
  }
  EXPECT_EQ(settingsInto1, 2);
  EXPECT_NO_THROW(result.reconfig.validate());
}

// --- boundary nodes (Figures 10 and 11) --------------------------------------

machine::PatternGraph withBoundary(std::vector<ValueId> inValues) {
  machine::PatternGraph pg;
  for (int i = 0; i < 4; ++i) {
    pg.addCluster(machine::ResourceTable(4, 4));
  }
  pg.connectClustersCompletely();
  pg.addInputNode(std::move(inValues), "in0");
  pg.addOutputNode("out0");
  pg.connectBoundaryNodes();
  return pg;
}

TEST(MapperTest, PaperFigure11BoundaryWiresPreallocated) {
  // Values x,z enter on a boundary wire consumed by cluster 1; values k,h
  // leave from cluster 2 on the output wire. The mapper reports both in the
  // ILIs and emits boundary MUX settings.
  const ValueId x(100), z(101), k(7), h(8);
  const auto pg = withBoundary({x, z});
  const auto in = pg.inputNodes()[0];
  const auto out = pg.outputNodes()[0];
  machine::CopyFlow flow(pg);
  flow.addCopy(*pg.arcBetween(in, hca::ClusterId(1)), x);
  flow.addCopy(*pg.arcBetween(in, hca::ClusterId(1)), z);
  flow.addCopy(*pg.arcBetween(hca::ClusterId(2), out), k);
  flow.addCopy(*pg.arcBetween(hca::ClusterId(2), out), h);

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 4));
  ASSERT_TRUE(result.legal) << result.failureReason;

  // Child 1's ILI input lists the boundary wire with x and z.
  ASSERT_EQ(result.ilis[1].inputs.size(), 1u);
  const auto& inWire = result.ilis[1].inputs[0];
  EXPECT_EQ(inWire.values, (std::vector<ValueId>{x, z}));
  // Child 2's ILI output carries k and h on one wire (unary fan-in).
  ASSERT_EQ(result.ilis[2].outputs.size(), 1u);
  std::vector<ValueId> expected{k, h};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.ilis[2].outputs[0].values, expected);

  // Boundary settings: one srcIsBoundary into child 1, one feeding the
  // output node (dstChild = numChildren + 0 = 4).
  bool sawBoundaryIn = false, sawBoundaryOut = false;
  for (const auto& s : result.reconfig.settings) {
    if (s.srcIsBoundary && s.dstChild == 1) sawBoundaryIn = true;
    if (!s.srcIsBoundary && s.dstChild == 4 && s.srcChild == 2) {
      sawBoundaryOut = true;
    }
  }
  EXPECT_TRUE(sawBoundaryIn);
  EXPECT_TRUE(sawBoundaryOut);
}

TEST(MapperTest, BoundaryOutputWireNotAbsorbedBySiblingTraffic) {
  // k goes to the output node AND to sibling 1: the boundary wire carries
  // it, and sibling 1 reads that same wire (broadcast) — one wire total.
  const auto pg = withBoundary({});
  const auto out = pg.outputNodes()[0];
  machine::CopyFlow flow(pg);
  const ValueId k(7);
  flow.addCopy(*pg.arcBetween(hca::ClusterId(2), out), k);
  flow.addCopy(*pg.arcBetween(hca::ClusterId(2), hca::ClusterId(1)), k);

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 4));
  ASSERT_TRUE(result.legal);
  EXPECT_EQ(result.ilis[2].outputs.size(), 1u);
  EXPECT_EQ(countInputWires(result, 1), 1);
}

TEST(MapperTest, TwoBoundaryWiresShareOneSourceWire) {
  // One cluster drives two output nodes but has a single output wire: both
  // parent wires select the same source wire, which carries the union of
  // the two value sets (and reports the doubled pressure).
  machine::PatternGraph pg;
  for (int i = 0; i < 2; ++i) {
    pg.addCluster(machine::ResourceTable(4, 4));
  }
  pg.connectClustersCompletely();
  pg.addOutputNode("o0");
  pg.addOutputNode("o1");
  pg.connectBoundaryNodes();
  const auto outs = pg.outputNodes();
  machine::CopyFlow flow(pg);
  flow.addCopy(*pg.arcBetween(hca::ClusterId(0), outs[0]), ValueId(1));
  flow.addCopy(*pg.arcBetween(hca::ClusterId(0), outs[1]), ValueId(2));

  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 4, 1));
  ASSERT_TRUE(result.legal) << result.failureReason;
  ASSERT_EQ(result.ilis[0].outputs.size(), 1u);
  EXPECT_EQ(result.ilis[0].outputs[0].values.size(), 2u);
  EXPECT_EQ(result.maxValuesPerWire, 2);
  // Two boundary settings select the same (child 0, wire 0) source.
  int boundaryFeeds = 0;
  for (const auto& s : result.reconfig.settings) {
    if (s.dstChild >= 2) {
      ++boundaryFeeds;
      EXPECT_EQ(s.srcChild, 0);
      EXPECT_EQ(s.srcWire, 0);
    }
  }
  EXPECT_EQ(boundaryFeeds, 2);
}

TEST(MapperTest, MaxWiresIntoChildCapApplies) {
  // Child 3 receives from three senders; inWires = 4 would allow it, but
  // the K-crossbar cap of 2 cannot be satisfied by merging different
  // senders -> illegal.
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  addFlow(pg, flow, 0, 3, ValueId(1));
  addFlow(pg, flow, 1, 3, ValueId(2));
  addFlow(pg, flow, 2, 3, ValueId(3));

  auto input = baseInput(pg, flow, 4, 4);
  input.maxWiresIntoChild = 2;
  const Mapper mapperPass;
  const auto result = mapperPass.map(input);
  EXPECT_FALSE(result.legal);
  EXPECT_NE(result.failureReason.find("input wires"), std::string::npos);
}

TEST(MapperTest, EmptyFlowIsTriviallyLegal) {
  const auto pg = fourClusters();
  const machine::CopyFlow flow(pg);
  const Mapper mapperPass;
  const auto result = mapperPass.map(baseInput(pg, flow, 1, 1));
  ASSERT_TRUE(result.legal);
  EXPECT_EQ(result.wiresUsed, 0);
  EXPECT_EQ(result.maxValuesPerWire, 0);
  for (const auto& ili : result.ilis) {
    EXPECT_TRUE(ili.inputs.empty());
    EXPECT_TRUE(ili.outputs.empty());
  }
}

TEST(MapperTest, Deterministic) {
  const auto pg = fourClusters();
  machine::CopyFlow flow(pg);
  for (int v = 0; v < 12; ++v) {
    addFlow(pg, flow, v % 4, (v + 1 + v % 3) % 4, ValueId(v));
  }
  const Mapper mapperPass;
  const auto r1 = mapperPass.map(baseInput(pg, flow, 3, 3));
  const auto r2 = mapperPass.map(baseInput(pg, flow, 3, 3));
  ASSERT_EQ(r1.legal, r2.legal);
  ASSERT_EQ(r1.reconfig.settings.size(), r2.reconfig.settings.size());
  for (std::size_t i = 0; i < r1.reconfig.settings.size(); ++i) {
    EXPECT_EQ(r1.reconfig.settings[i], r2.reconfig.settings[i]);
  }
}

}  // namespace
}  // namespace hca::mapper
