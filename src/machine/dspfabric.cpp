#include "machine/dspfabric.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::machine {

std::string DspFabricConfig::toString() const {
  int cns = 1;
  for (int b : branching) cns *= b;
  return strCat("DSPFabric[", cns, " CNs, N=", n, ", M=", m, ", K=", k,
                ", DMA=", dmaSlots, "]");
}

DspFabricModel::DspFabricModel(DspFabricConfig config)
    : config_(std::move(config)) {
  HCA_REQUIRE(!config_.branching.empty(), "DSPFabric needs >= 1 level");
  for (const int b : config_.branching) {
    HCA_REQUIRE(b >= 2, "each hierarchy level needs >= 2 children, got " << b);
    totalCns_ *= b;
  }
  HCA_REQUIRE(config_.n >= 1 && config_.m >= 1 && config_.k >= 1,
              "MUX capacities must be >= 1");
  HCA_REQUIRE(config_.cnInWires >= 1 && config_.cnOutWires >= 1,
              "CN wire counts must be >= 1");
  HCA_REQUIRE(config_.dmaSlots >= 1, "DMA needs >= 1 slot");
}

LevelSpec DspFabricModel::levelSpec(int level) const {
  HCA_REQUIRE(level >= 0 && level < numLevels(),
              "level out of range: " << level);
  LevelSpec spec;
  spec.children = config_.branching[static_cast<std::size_t>(level)];
  const bool leaf = level == numLevels() - 1;
  if (leaf) {
    // Children are computation nodes behind the crossbar.
    spec.inWires = config_.cnInWires;
    spec.outWires = config_.cnOutWires;
    spec.maxWiresIntoChild = 0;  // nothing below a CN
  } else {
    // MUX capacity: N at level 0, M below; deeper (non-paper) levels reuse M.
    const int cap = level == 0 ? config_.n : config_.m;
    spec.inWires = cap;
    spec.outWires = cap;
    const bool childIsLeaf = level + 1 == numLevels() - 1;
    // Wires entering a child sub-problem: bounded by the child's input
    // wires at this interconnect (= cap), and additionally by the K
    // crossbar inputs when the child is a leaf.
    spec.maxWiresIntoChild = childIsLeaf ? std::min(cap, config_.k) : cap;
  }
  return spec;
}

ResourceTable DspFabricModel::clusterResources(int level) const {
  HCA_REQUIRE(level >= 0 && level < numLevels(),
              "level out of range: " << level);
  int cnsBelow = 1;
  for (int l = level + 1; l < numLevels(); ++l) {
    cnsBelow *= config_.branching[static_cast<std::size_t>(l)];
  }
  return ResourceTable::computationNode() * cnsBelow;
}

PgConstraints DspFabricModel::constraints(int level) const {
  const LevelSpec spec = levelSpec(level);
  PgConstraints c;
  c.maxInNeighbors = spec.inWires;
  c.maxOutNeighbors = -1;  // broadcast: the paper leaves outputs unbounded
  c.outputNodeUnaryFanIn = true;
  return c;
}

PatternGraph DspFabricModel::patternGraph(int level) const {
  const LevelSpec spec = levelSpec(level);
  const ResourceTable rt = clusterResources(level);
  PatternGraph pg;
  for (int i = 0; i < spec.children; ++i) {
    pg.addCluster(rt, strCat("L", level, ".", i));
  }
  pg.connectClustersCompletely();
  return pg;
}

CnId DspFabricModel::cnIdOf(const std::vector<int>& path) const {
  HCA_REQUIRE(static_cast<int>(path.size()) == numLevels(),
              "CN path must have one index per level");
  int id = 0;
  for (int l = 0; l < numLevels(); ++l) {
    const int b = config_.branching[static_cast<std::size_t>(l)];
    const int idx = path[static_cast<std::size_t>(l)];
    HCA_REQUIRE(idx >= 0 && idx < b, "CN path index out of range at level "
                                         << l << ": " << idx);
    id = id * b + idx;
  }
  return CnId(id);
}

std::vector<int> DspFabricModel::pathOfCn(CnId cn) const {
  HCA_REQUIRE(cn.valid() && cn.value() < totalCns_,
              "CN id out of range: " << to_string(cn));
  std::vector<int> path(static_cast<std::size_t>(numLevels()));
  int rest = cn.value();
  for (int l = numLevels() - 1; l >= 0; --l) {
    const int b = config_.branching[static_cast<std::size_t>(l)];
    path[static_cast<std::size_t>(l)] = rest % b;
    rest /= b;
  }
  return path;
}

int DspFabricModel::commonLevel(CnId a, CnId b) const {
  if (a == b) return numLevels();
  const auto pa = pathOfCn(a);
  const auto pb = pathOfCn(b);
  for (int l = 0; l < numLevels(); ++l) {
    if (pa[static_cast<std::size_t>(l)] != pb[static_cast<std::size_t>(l)]) {
      return l;
    }
  }
  return numLevels();
}

int DspFabricModel::copyLatency(CnId a, CnId b) const {
  const int common = commonLevel(a, b);
  if (common == numLevels()) return 0;
  // The value climbs from the producer CN up to the first shared
  // interconnect level and back down: one wire hop per level boundary in
  // each direction.
  const int hops = 2 * (numLevels() - common) - 1;
  return hops * config_.latency.interCluster;
}

}  // namespace hca::machine
