#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/hierarchy_check.hpp"
#include "ddg/ddg.hpp"
#include "machine/dspfabric.hpp"

/// Multilevel-partitioning baseline in the style of Chu, Fan and Mahlke
/// ("Region-based hierarchical operation partitioning", PLDI'03, paper
/// reference [4]): the DDG is recursively split into balanced parts with a
/// greedy min-cut seed and Fiduccia–Mattheyses-style refinement, and the
/// parts are mapped onto the machine tree. The paper contrasts HCA with
/// this approach because it is *machine-hierarchy-agnostic*: the
/// partitioner never consults the MUX capacities, so its assignments may be
/// unrealizable — which the post-hoc hierarchy check exposes.
namespace hca::baseline {

struct MultilevelOptions {
  int refinementPasses = 4;
  /// A part may exceed the perfectly balanced size by this fraction.
  double balanceTolerance = 0.30;
  std::uint64_t seed = 1;
};

struct MultilevelResult {
  bool hierarchyLegal = false;
  std::string failureReason;
  std::vector<CnId> assignment;  // per DDG node
  HierarchyCheckResult hierarchy;
  /// Dependence edges cut across CNs (the partitioner's own objective).
  int cutEdges = 0;
  /// FM moves applied across all levels.
  int refinementMoves = 0;
  /// Max instructions per CN (the partitioner's load metric).
  int maxCnLoad = 0;
};

MultilevelResult runMultilevel(const ddg::Ddg& ddg,
                               const machine::DspFabricModel& model,
                               const MultilevelOptions& options = {});

}  // namespace hca::baseline
