#include <gtest/gtest.h>

#include <random>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "machine/rcp.hpp"
#include "see/engine.hpp"
#include "see/route_allocator.hpp"
#include "support/check.hpp"

namespace hca::see {
namespace {

using ddg::DdgBuilder;

/// All instruction nodes of a DDG as a working set.
std::vector<DdgNodeId> fullWorkingSet(const ddg::Ddg& ddg) {
  std::vector<DdgNodeId> ws;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) ws.emplace_back(v);
  }
  return ws;
}

/// A small diamond DDG: two loads feed an add that is stored.
ddg::Ddg diamondDdg() {
  DdgBuilder b;
  const auto a = b.load(b.cst(0), 0, "a");
  const auto c = b.load(b.cst(1), 0, "c");
  const auto s = b.add(a, c, "s");
  b.store(b.cst(2), s, 0, "out");
  return b.finish();
}

/// Fully-connected PG with `n` clusters of one CN each.
machine::PatternGraph smallPg(int n) {
  machine::PatternGraph pg;
  for (int i = 0; i < n; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  pg.connectClustersCompletely();
  return pg;
}

SeeProblem baseProblem(const ddg::Ddg& ddg, const machine::PatternGraph& pg) {
  SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = fullWorkingSet(ddg);
  problem.pg = &pg;
  problem.constraints.maxInNeighbors = -1;
  problem.inWiresPerCluster = 2;
  problem.outWiresPerCluster = 2;
  return problem;
}

// --- PreparedProblem ----------------------------------------------------------

TEST(PreparedTest, PriorityOrderIsHeightDescending) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  const auto problem = baseProblem(ddg, pg);
  SeeOptions noChains;
  noChains.chainGrouping = false;  // keep every item a singleton
  const PreparedProblem prepared(problem, noChains);
  const auto& items = prepared.items();
  ASSERT_EQ(items.size(), 4u);  // 2 loads, add, store (all singletons)
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    ASSERT_EQ(items[i].members.size(), 1u);
    EXPECT_GE(prepared.height(items[i].members[0].node),
              prepared.height(items[i + 1].members[0].node));
  }
  // Loads (height lat(load)+lat(add)+...) come before the store (height 0).
  EXPECT_EQ(ddg.node(items.back().members[0].node).op, ddg::Op::kStore);
}

TEST(PreparedTest, MissingValueSourceThrows) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  auto problem = baseProblem(ddg, pg);
  // Drop the add from the WS: the store's operand has no producer in WS and
  // no registered source.
  std::vector<DdgNodeId> ws;
  for (const DdgNodeId n : problem.workingSet) {
    if (ddg.node(n).op != ddg::Op::kAdd) ws.push_back(n);
  }
  problem.workingSet = ws;
  EXPECT_THROW(PreparedProblem(problem, SeeOptions{}), InvalidArgumentError);
}

TEST(PreparedTest, ConstOperandsNeedNoSource) {
  const auto ddg = diamondDdg();  // addresses are consts
  const auto pg = smallPg(2);
  const auto problem = baseProblem(ddg, pg);
  EXPECT_NO_THROW(PreparedProblem(problem, SeeOptions{}));
}

TEST(PreparedTest, DuplicateWsNodeRejected) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  auto problem = baseProblem(ddg, pg);
  problem.workingSet.push_back(problem.workingSet.front());
  EXPECT_THROW(PreparedProblem(problem, SeeOptions{}), InvalidArgumentError);
}

// --- engine on unconstrained machines -----------------------------------------

TEST(EngineTest, AssignsEverythingOnGenerousMachine) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(4);
  const auto problem = baseProblem(ddg, pg);
  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  for (const DdgNodeId n : problem.workingSet) {
    EXPECT_TRUE(result.solution.clusterOf(n).valid());
  }
  EXPECT_GT(result.stats.candidatesEvaluated, 0);
}

TEST(EngineTest, SingleClusterNeedsNoCopies) {
  const auto ddg = diamondDdg();
  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable(4, 4));
  const auto problem = baseProblem(ddg, pg);
  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal);
  EXPECT_EQ(result.solution.flow().totalCopies(), 0);
}

TEST(EngineTest, CopiesAppearWhenDependencesCrossClusters) {
  // Two clusters with one issue slot each and a hard cap force splitting.
  const auto ddg = diamondDdg();
  const auto pg = smallPg(4);
  auto problem = baseProblem(ddg, pg);
  SeeOptions options;
  options.maxOpsPerUnit = 1;  // at most 1 op per unit per cluster
  options.chainGrouping = false;
  const SpaceExplorationEngine engine(options);
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  EXPECT_GT(result.solution.flow().totalCopies(), 0);
}

TEST(EngineTest, HeterogeneousResourcesRespected) {
  // RCP-style: only even clusters own an AG; loads/stores must land there.
  const auto ddg = diamondDdg();
  machine::RcpConfig config;
  config.clusters = 4;
  config.neighborReach = 1;
  config.inputPorts = 2;
  config.memClusterStride = 2;
  const auto pg = machine::rcpPatternGraph(config);
  auto problem = baseProblem(ddg, pg);
  problem.constraints = machine::rcpConstraints(config);
  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  for (const DdgNodeId n : problem.workingSet) {
    if (ddg::isMemoryOp(ddg.node(n).op)) {
      EXPECT_EQ(result.solution.clusterOf(n).value() % 2, 0)
          << "memory op on AG-less cluster";
    }
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  const auto kernel = ddg::buildFir2Dim();
  const auto pg = smallPg(8);
  auto problem = baseProblem(kernel.ddg, pg);
  const SpaceExplorationEngine engine;
  const auto r1 = engine.run(problem);
  const auto r2 = engine.run(problem);
  ASSERT_TRUE(r1.legal);
  EXPECT_EQ(r1.solution.signature(), r2.solution.signature());
  EXPECT_EQ(r1.solution.objective(), r2.solution.objective());
}

TEST(EngineTest, EmptyWorkingSetIsLegal) {
  ddg::Ddg empty;
  const auto pg = smallPg(2);
  SeeProblem problem;
  problem.ddg = &empty;
  problem.pg = &pg;
  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  EXPECT_TRUE(result.legal);
  EXPECT_EQ(result.solution.assignedCount(), 0);
}

// --- constraints ----------------------------------------------------------------

TEST(ConstraintTest, MaxInNeighborsEnforced) {
  // Star: center consumes from 3 producers on 3 different clusters, but
  // maxIn = 2 and each producer cluster is capped to its producer. The
  // engine must still find a legal solution by co-locating or routing.
  DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  const auto y = b.load(b.cst(1), 0);
  const auto z = b.load(b.cst(2), 0);
  const auto s = b.add(b.add(x, y), z);
  b.store(b.cst(3), s);
  const auto ddg = b.finish();

  const auto pg = smallPg(4);
  auto problem = baseProblem(ddg, pg);
  problem.constraints.maxInNeighbors = 1;
  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  // Verify the constraint on the result.
  for (const ClusterId c : pg.clusterNodes()) {
    EXPECT_LE(result.solution.flow().realInNeighbors(pg, c).size(), 1u);
  }
}

TEST(ConstraintTest, OutputUnaryFanInForcesCoLocation) {
  // Paper Fig. 10: two values k, h leave on the same output wire; their
  // producers must land on the same cluster.
  DdgBuilder b;
  const auto a = b.load(b.cst(0), 0, "x");
  const auto k = b.add(a, b.cst(1), "k");
  const auto h = b.mul(a, b.cst(2), "h");
  const auto ddg = b.finish();

  machine::PatternGraph pg;
  for (int i = 0; i < 4; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  pg.connectClustersCompletely();
  const auto out = pg.addOutputNode("out0");
  pg.connectBoundaryNodes();

  SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = fullWorkingSet(ddg);
  problem.pg = &pg;
  // Find k's and h's node ids by name.
  ValueId kv, hv;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg.node(DdgNodeId(v)).name == "k") kv = ValueId(v);
    if (ddg.node(DdgNodeId(v)).name == "h") hv = ValueId(v);
  }
  problem.outputRequirements.push_back({out, {kv, hv}});

  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  EXPECT_EQ(result.solution.clusterOf(DdgNodeId(kv.value())),
            result.solution.clusterOf(DdgNodeId(hv.value())));
  // Output node has exactly one real in-neighbor.
  EXPECT_EQ(result.solution.flow().realInNeighbors(pg, out).size(), 1u);
}

TEST(ConstraintTest, InputNodeValuesConsumedViaBoundary) {
  // A consumer whose producer is outside the WS reads it from the input
  // node registered in valueSources.
  DdgBuilder b;
  const auto ext = b.load(b.cst(0), 0, "ext");  // will be out-of-WS
  const auto use = b.add(ext, b.cst(1), "use");
  b.store(b.cst(2), use);
  const auto ddg = b.finish();

  machine::PatternGraph pg;
  for (int i = 0; i < 2; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  pg.connectClustersCompletely();
  ValueId extV;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg.node(DdgNodeId(v)).name == "ext") extV = ValueId(v);
  }
  const auto in = pg.addInputNode({extV}, "in0");
  pg.connectBoundaryNodes();

  SeeProblem problem;
  problem.ddg = &ddg;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto op = ddg.node(DdgNodeId(v)).op;
    if (ddg::isInstruction(op) && op != ddg::Op::kLoad) {
      problem.workingSet.emplace_back(v);
    }
  }
  problem.pg = &pg;
  problem.valueSources[extV] = in;

  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  // The boundary value flows from the input node to the add's cluster.
  const ClusterId addCluster = result.solution.clusterOf(
      DdgNodeId(extV.value() + 2));  // cst(1) then add follow ext
  bool found = false;
  for (const PgArcId arc : pg.outArcs(in)) {
    for (const ValueId v : result.solution.flow().copiesOn(arc)) {
      if (v == extV) found = true;
    }
  }
  EXPECT_TRUE(found);
  (void)addCluster;
}

// --- route allocator (paper Fig. 6) --------------------------------------------

TEST(RouteAllocatorTest, PaperFigure6RoutesThroughIntermediate) {
  // Ring of 4 clusters (reach 1), maxIn = 1. Producer on cluster 0, the
  // consumer can only go far away once direct arcs are exhausted; routing
  // through intermediates must kick in.
  DdgBuilder b;
  const auto i0 = b.load(b.cst(0), 0, "i");
  // Two consumers that will occupy cluster 0's direct neighborhood budget.
  const auto u1 = b.add(i0, b.cst(1), "u1");
  const auto u2 = b.mul(i0, b.cst(2), "u2");
  b.store(b.cst(1), u1);
  b.store(b.cst(2), u2);
  const auto ddg = b.finish();

  machine::RcpConfig config;
  config.clusters = 4;
  config.neighborReach = 1;  // ring: only +-1 reachable
  config.inputPorts = 1;     // K = 1: one in-neighbor per cluster
  config.memClusterStride = 1;
  const auto pg = machine::rcpPatternGraph(config);

  SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = fullWorkingSet(ddg);
  problem.pg = &pg;
  problem.constraints = machine::rcpConstraints(config);

  SeeOptions options;
  options.maxOpsPerUnit = 2;  // forces spreading over the ring
  options.beamWidth = 2;
  const SpaceExplorationEngine engine(options);
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  // Constraint must hold in the final flow.
  for (const ClusterId c : pg.clusterNodes()) {
    EXPECT_LE(result.solution.flow().realInNeighbors(pg, c).size(), 1u);
  }
}

TEST(RouteAllocatorTest, FindsMultiHopPath) {
  // Directly exercise tryAssign: line topology 0 -> 1 -> 2, value produced
  // at 0, consumer forced to 2.
  DdgBuilder b;
  const auto x = b.load(b.cst(0), 0, "x");
  const auto y = b.neg(x, "y");
  b.store(b.cst(1), y);
  const auto ddg = b.finish();

  machine::PatternGraph pg;
  for (int i = 0; i < 3; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  pg.addArc(ClusterId(0), ClusterId(1));
  pg.addArc(ClusterId(1), ClusterId(2));

  SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = fullWorkingSet(ddg);
  problem.pg = &pg;

  const PreparedProblem prepared(problem, SeeOptions{});
  auto sol = PartialSolution::initial(prepared);
  // Assign the load to cluster 0 by hand.
  Item loadItem;
  loadItem.kind = Item::Kind::kNode;
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      if (item.kind == Item::Kind::kNode &&
          ddg.node(item.node).op == ddg::Op::kLoad) {
        loadItem = item;
      }
    }
  }
  ASSERT_TRUE(sol.canAssign(prepared, loadItem, ClusterId(0)));
  sol.assign(prepared, loadItem, ClusterId(0));

  // The neg cannot go on cluster 2 directly (no arc 0 -> 2)...
  Item negItem;
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      if (item.kind == Item::Kind::kNode &&
          ddg.node(item.node).op == ddg::Op::kNeg) {
        negItem = item;
      }
    }
  }
  EXPECT_FALSE(sol.canAssign(prepared, negItem, ClusterId(2)));
  // ...but the route allocator relays through cluster 1.
  int routed = 0;
  const auto extended =
      RouteAllocator::tryAssign(prepared, sol, negItem, ClusterId(2), &routed);
  ASSERT_TRUE(extended.has_value());
  EXPECT_EQ(routed, 1);
  EXPECT_EQ(extended->clusterOf(negItem.node), ClusterId(2));
  // The value crosses both arcs.
  const ValueId xv(loadItem.node.value());
  const auto a01 = *pg.arcBetween(ClusterId(0), ClusterId(1));
  const auto a12 = *pg.arcBetween(ClusterId(1), ClusterId(2));
  EXPECT_EQ(extended->flow().copiesOn(a01).size(), 1u);
  EXPECT_EQ(extended->flow().copiesOn(a01)[0], xv);
  EXPECT_EQ(extended->flow().copiesOn(a12)[0], xv);
}

TEST(RouteAllocatorTest, RespectsHopLimit) {
  // Long line: 5 clusters, value at 0, target 4 -> needs 3 relays.
  DdgBuilder b;
  const auto x = b.load(b.cst(0), 0, "x");
  const auto y = b.neg(x, "y");
  b.store(b.cst(1), y);
  const auto ddg = b.finish();

  machine::PatternGraph pg;
  for (int i = 0; i < 5; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  for (int i = 0; i < 4; ++i) pg.addArc(ClusterId(i), ClusterId(i + 1));

  SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = fullWorkingSet(ddg);
  problem.pg = &pg;

  SeeOptions tight;
  tight.maxRouteHops = 2;  // not enough for 3 relays
  const PreparedProblem preparedTight(problem, tight);
  auto sol = PartialSolution::initial(preparedTight);
  Item loadItem, negItem;
  for (const auto& group : preparedTight.items()) {
    for (const auto& item : group.members) {
      if (item.kind != Item::Kind::kNode) continue;
      if (ddg.node(item.node).op == ddg::Op::kLoad) loadItem = item;
      if (ddg.node(item.node).op == ddg::Op::kNeg) negItem = item;
    }
  }
  sol.assign(preparedTight, loadItem, ClusterId(0));
  EXPECT_FALSE(RouteAllocator::tryAssign(preparedTight, sol, negItem,
                                         ClusterId(4), nullptr)
                   .has_value());

  SeeOptions loose;
  loose.maxRouteHops = 3;
  const PreparedProblem preparedLoose(problem, loose);
  auto sol2 = PartialSolution::initial(preparedLoose);
  sol2.assign(preparedLoose, loadItem, ClusterId(0));
  EXPECT_TRUE(RouteAllocator::tryAssign(preparedLoose, sol2, negItem,
                                        ClusterId(4), nullptr)
                  .has_value());
}

// --- relays -------------------------------------------------------------------

TEST(RelayTest, RelayValueParkedAndWired) {
  ddg::Ddg empty;  // no WS nodes: pure pass-through problem
  machine::PatternGraph pg;
  for (int i = 0; i < 2; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  pg.connectClustersCompletely();
  const auto in = pg.addInputNode({ValueId(0)}, "in");
  const auto out = pg.addOutputNode("out");
  pg.connectBoundaryNodes();

  SeeProblem problem;
  problem.ddg = &empty;
  problem.pg = &pg;
  problem.relayValues = {ValueId(0)};
  problem.valueSources[ValueId(0)] = in;
  problem.outputRequirements.push_back({out, {ValueId(0)}});

  const SpaceExplorationEngine engine;
  const auto result = engine.run(problem);
  ASSERT_TRUE(result.legal) << result.failureReason;
  const ClusterId parked = result.solution.relayCluster(0);
  EXPECT_TRUE(parked.valid());
  // Value flows in -> parked -> out.
  const auto aIn = *pg.arcBetween(in, parked);
  const auto aOut = *pg.arcBetween(parked, out);
  EXPECT_TRUE(result.solution.flow().isReal(aIn));
  EXPECT_TRUE(result.solution.flow().isReal(aOut));
  // The relay consumes an issue slot.
  EXPECT_EQ(result.solution.usage(parked).instructions, 1);
}

// --- cost criteria --------------------------------------------------------------

TEST(CostTest, IiEstimateGrowsWithLoad) {
  const auto ddg = diamondDdg();
  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable::computationNode());
  pg.addCluster(machine::ResourceTable::computationNode());
  pg.connectClustersCompletely();
  auto problem = baseProblem(ddg, pg);
  const PreparedProblem prepared(problem, SeeOptions{});

  auto sol = PartialSolution::initial(prepared);
  const IiEstimateCriterion ii;
  const double before = ii.score(prepared, sol);
  // Pile everything on cluster 0.
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      sol.assign(prepared, item, ClusterId(0));
    }
  }
  EXPECT_GT(ii.score(prepared, sol), before);
  EXPECT_EQ(IiEstimateCriterion::clusterMii(prepared, sol, ClusterId(0)), 4);
  EXPECT_EQ(IiEstimateCriterion::clusterMii(prepared, sol, ClusterId(1)), 1);
}

TEST(CostTest, BalancedBeatsUnbalanced) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  auto problem = baseProblem(ddg, pg);
  const PreparedProblem prepared(problem, SeeOptions{});
  const LoadBalanceCriterion balance;

  auto lumped = PartialSolution::initial(prepared);
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      lumped.assign(prepared, item, ClusterId(0));
    }
  }
  auto spread = PartialSolution::initial(prepared);
  int i = 0;
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      spread.assign(prepared, item, ClusterId(i++ % 2));
    }
  }
  EXPECT_LT(balance.score(prepared, spread), balance.score(prepared, lumped));
}

TEST(CostTest, CopyCountCountsFlow) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  auto problem = baseProblem(ddg, pg);
  const PreparedProblem prepared(problem, SeeOptions{});
  auto sol = PartialSolution::initial(prepared);
  int i = 0;
  for (const auto& group : prepared.items()) {
    for (const auto& item : group.members) {
      sol.assign(prepared, item, ClusterId(i++ % 2));
    }
  }
  const CopyCountCriterion copies;
  EXPECT_EQ(copies.score(prepared, sol),
            static_cast<double>(sol.flow().totalCopies()));
  EXPECT_GT(sol.flow().totalCopies(), 0);
}

TEST(CostTest, WeightedObjectiveCombines) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  auto problem = baseProblem(ddg, pg);
  const PreparedProblem prepared(problem, SeeOptions{});
  const auto sol = PartialSolution::initial(prepared);

  CostWeights weights;
  weights.iiEstimate = 10;
  weights.copyCount = 0;
  weights.loadBalance = 0;
  weights.criticalPath = 0;
  const WeightedObjective objective(weights);
  const IiEstimateCriterion ii;
  EXPECT_DOUBLE_EQ(objective.evaluate(prepared, sol),
                   10 * ii.score(prepared, sol));
  const auto breakdown = objective.breakdown(prepared, sol);
  EXPECT_EQ(breakdown.size(), 5u);
  EXPECT_EQ(breakdown[0].first, "ii-estimate");
}

// --- beam / filters --------------------------------------------------------------

TEST(FilterTest, WiderBeamExploresMoreWithComparableQuality) {
  const auto kernel = ddg::buildIdctHor();
  const auto pg = smallPg(8);
  auto problem = baseProblem(kernel.ddg, pg);
  problem.inWiresPerCluster = 4;
  problem.outWiresPerCluster = 4;

  SeeOptions narrow;
  narrow.beamWidth = 1;
  narrow.candidateKeep = 1;
  SeeOptions wide;
  wide.beamWidth = 6;
  wide.candidateKeep = 4;

  const auto r1 = SpaceExplorationEngine(narrow).run(problem);
  const auto r2 = SpaceExplorationEngine(wide).run(problem);
  ASSERT_TRUE(r1.legal);
  ASSERT_TRUE(r2.legal);
  // Beam search is not strictly monotone in the beam width, but a wider
  // beam must stay within a whisker of greedy and explore far more states.
  EXPECT_LE(r2.solution.objective(), r1.solution.objective() * 1.02);
  EXPECT_GT(r2.stats.candidatesEvaluated, r1.stats.candidatesEvaluated);
}

TEST(FilterTest, StatsTrackPruning) {
  const auto kernel = ddg::buildFir2Dim();
  const auto pg = smallPg(8);
  auto problem = baseProblem(kernel.ddg, pg);
  SeeOptions options;
  options.beamWidth = 2;
  options.candidateKeep = 4;
  const auto result = SpaceExplorationEngine(options).run(problem);
  ASSERT_TRUE(result.legal);
  EXPECT_GT(result.stats.statesPruned, 0);
  EXPECT_GT(result.stats.statesExplored, 0);
}

// --- feasibility oracle -------------------------------------------------------

/// Brute-force direct assignment of a whole group: the loop the oracle's
/// directFeasibleMask summarizes. Probing on a copy leaves `sol` intact.
bool bruteForceDirect(const PreparedProblem& prepared,
                      const PartialSolution& sol, const ItemGroup& group,
                      ClusterId c) {
  PartialSolution probe = sol;
  for (const Item& item : group.members) {
    if (!canAssignT(prepared, probe, item, c)) return false;
    assignT(prepared, probe, item, c);
  }
  return true;
}

/// Soundness property of the oracle's dynamic mask: walking random partial
/// solutions through the priority list, a cluster where the brute-force
/// direct-assignment loop succeeds must never be excluded from the mask.
/// (The converse — the mask excluding every failing cluster — is not
/// required: the oracle is an over-approximation.)
void checkMaskSoundOnRandomWalks(const SeeProblem& problem,
                                 const SeeOptions& options,
                                 std::uint32_t seed) {
  const PreparedProblem prepared(problem, options);
  const FeasibilityOracle& oracle = prepared.oracle();
  std::mt19937 rng(seed);
  for (int walk = 0; walk < 8; ++walk) {
    auto sol = PartialSolution::initial(prepared);
    for (std::size_t gi = 0; gi < prepared.items().size(); ++gi) {
      const ItemGroup& group = prepared.items()[gi];
      const std::uint64_t mask = oracle.directFeasibleMask(sol, gi);
      std::vector<ClusterId> feasible;
      for (const ClusterId c : prepared.clusters()) {
        if (!bruteForceDirect(prepared, sol, group, c)) continue;
        feasible.push_back(c);
        EXPECT_NE(mask & detail::pgBit(c), 0u)
            << "oracle excluded assignable cluster " << c.value()
            << " for group " << gi << " on walk " << walk;
      }
      if (feasible.empty()) break;  // dead end: restart from a fresh walk
      const ClusterId pick =
          feasible[rng() % static_cast<std::uint32_t>(feasible.size())];
      for (const Item& item : group.members) {
        assignT(prepared, sol, item, pick);
      }
    }
  }
}

TEST(OracleTest, MaskNeverExcludesAssignableClusterDiamond) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(4);
  SeeOptions options;
  options.chainGrouping = false;
  checkMaskSoundOnRandomWalks(baseProblem(ddg, pg), options, 1u);
  options.maxOpsPerUnit = 1;
  checkMaskSoundOnRandomWalks(baseProblem(ddg, pg), options, 2u);
}

TEST(OracleTest, MaskNeverExcludesAssignableClusterRcp) {
  const auto ddg = diamondDdg();
  std::mt19937 rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    machine::RcpConfig config;
    config.clusters = 4 + static_cast<int>(rng() % 3);
    config.neighborReach = 1 + static_cast<int>(rng() % 2);
    config.inputPorts = 1 + static_cast<int>(rng() % 2);
    config.memClusterStride = 1 + static_cast<int>(rng() % 2);
    const auto pg = machine::rcpPatternGraph(config);
    auto problem = baseProblem(ddg, pg);
    problem.constraints = machine::rcpConstraints(config);
    SeeOptions options;
    options.chainGrouping = false;
    options.maxOpsPerUnit = static_cast<int>(rng() % 3);
    checkMaskSoundOnRandomWalks(problem, options, rng());
  }
}

TEST(OracleTest, MaskNeverExcludesAssignableClusterFir2Dim) {
  const auto kernel = ddg::buildFir2Dim();
  const auto pg = smallPg(6);
  auto problem = baseProblem(kernel.ddg, pg);
  SeeOptions options;
  options.maxOpsPerUnit = 2;
  checkMaskSoundOnRandomWalks(problem, options, 11u);
}

TEST(OracleTest, HopDistanceMatchesBfsOnFreshLine) {
  // Directed line 0 -> 1 -> ... -> 5 with generous budgets: the dynamic
  // BFS sees exactly the static graph, so the (lazily built) hop matrix
  // must agree with findPathT in both directions — forward pairs reachable
  // at distance dst-src, backward pairs unreachable.
  DdgBuilder b;
  const auto x = b.load(b.cst(0), 0, "x");
  b.store(b.cst(1), b.neg(x, "y"));
  const auto ddg = b.finish();
  machine::PatternGraph pg;
  for (int i = 0; i < 6; ++i) {
    pg.addCluster(machine::ResourceTable::computationNode());
  }
  for (int i = 0; i < 5; ++i) pg.addArc(ClusterId(i), ClusterId(i + 1));
  const auto problem = baseProblem(ddg, pg);
  const PreparedProblem prepared(problem, SeeOptions{});
  const FeasibilityOracle& oracle = prepared.oracle();
  const auto sol = PartialSolution::initial(prepared);
  ValueId v;
  for (std::int32_t n = 0; n < ddg.numNodes(); ++n) {
    if (ddg.node(DdgNodeId(n)).name == "x") v = ValueId(n);
  }
  ASSERT_TRUE(v.valid());
  for (int s = 0; s < 6; ++s) {
    for (int d = 0; d < 6; ++d) {
      const auto path = findPathT(prepared, sol, ClusterId(s), ClusterId(d),
                                  v, /*maxHops=*/10);
      const std::uint8_t hop = oracle.hopDistance(ClusterId(s), ClusterId(d));
      if (d >= s) {
        ASSERT_EQ(path.size(), static_cast<std::size_t>(d - s + 1))
            << s << " -> " << d;
        EXPECT_EQ(static_cast<int>(hop), d - s);
      } else {
        EXPECT_TRUE(path.empty());
        EXPECT_EQ(hop, FeasibilityOracle::kUnreachable);
      }
    }
  }
  // The depth budget applies on top of reachability: 0 -> 4 needs 3
  // relays, so maxHops = 2 must refuse even though hop says reachable.
  EXPECT_TRUE(findPathT(prepared, sol, ClusterId(0), ClusterId(4), v, 2)
                  .empty());
  EXPECT_FALSE(findPathT(prepared, sol, ClusterId(0), ClusterId(4), v, 3)
                   .empty());
}

// --- negative route memo ------------------------------------------------------

/// A 26-cluster directed line and a two-chain DDG: big enough that a memo
/// region can clear the explored-node floor, with independent value chains
/// to edit budgets inside and outside a recorded region.
struct MemoFixture {
  ddg::Ddg ddg;
  machine::PatternGraph pg;
  SeeProblem problem;

  MemoFixture() {
    DdgBuilder b;
    const auto x1 = b.load(b.cst(0), 0, "x1");
    b.store(b.cst(1), b.neg(x1, "y1"));
    const auto x2 = b.load(b.cst(2), 0, "x2");
    b.store(b.cst(3), b.neg(x2, "y2"));
    ddg = b.finish();
    for (int i = 0; i < 26; ++i) {
      pg.addCluster(machine::ResourceTable::computationNode());
    }
    for (int i = 0; i < 25; ++i) pg.addArc(ClusterId(i), ClusterId(i + 1));
    problem = baseProblem(ddg, pg);
  }

  [[nodiscard]] Item itemNamed(const PreparedProblem& prepared,
                               const std::string& name) const {
    for (const auto& group : prepared.items()) {
      for (const auto& item : group.members) {
        if (item.kind == Item::Kind::kNode &&
            ddg.node(item.node).name == name) {
          return item;
        }
      }
    }
    ADD_FAILURE() << "no item named " << name;
    return {};
  }

  [[nodiscard]] ValueId valueNamed(const std::string& name) const {
    for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
      if (ddg.node(DdgNodeId(v)).name == name) return ValueId(v);
    }
    ADD_FAILURE() << "no value named " << name;
    return ValueId();
  }
};

TEST(RouteMemoTest, CheapFailuresAreNeverRecorded) {
  // Below the explored-node floor re-running the BFS is cheaper than a
  // lookup, so recording must be a no-op and lookups must keep missing.
  MemoFixture f;
  SeeOptions options;
  options.chainGrouping = false;
  const PreparedProblem prepared(f.problem, options);
  const auto sol = PartialSolution::initial(prepared);
  const ValueId v = f.valueNamed("x1");
  RouteScratch scratch;
  const std::uint64_t tinyRegion = 0b11;  // 2 nodes: far below the floor
  for (int i = 0; i < 3; ++i) {
    scratch.recordFailure(prepared, sol, ClusterId(0), ClusterId(25), v, 27,
                          tinyRegion);
  }
  EXPECT_FALSE(scratch.hasKnownFailure(prepared, sol, ClusterId(0),
                                       ClusterId(25), v, 27));
  EXPECT_EQ(scratch.memoHits(), 0);
}

TEST(RouteMemoTest, InvalidatedExactlyByBudgetTouchingEdits) {
  MemoFixture f;
  SeeOptions options;
  options.chainGrouping = false;
  const PreparedProblem prepared(f.problem, options);
  auto sol = PartialSolution::initial(prepared);
  const ValueId v = f.valueNamed("x1");
  const std::uint64_t region = (std::uint64_t{1} << 24) - 1;  // nodes 0..23
  RouteScratch scratch;
  // First failure arms, second stores the slice of the current budgets.
  scratch.recordFailure(prepared, sol, ClusterId(0), ClusterId(25), v, 27,
                        region);
  scratch.recordFailure(prepared, sol, ClusterId(0), ClusterId(25), v, 27,
                        region);
  EXPECT_TRUE(scratch.hasKnownFailure(prepared, sol, ClusterId(0),
                                      ClusterId(25), v, 27));
  EXPECT_EQ(scratch.memoHits(), 1);

  // An edit outside the region — x2's chain on clusters 24/25 only touches
  // arc 24->25 and cluster 25's in-neighbor mask — must keep the hit: the
  // failed search never saw those budgets (the slice does cover
  // inNbrMask(24), as the head of region-node 23's out-arc, but not 25's).
  const Item x2 = f.itemNamed(prepared, "x2");
  const Item y2 = f.itemNamed(prepared, "y2");
  ASSERT_TRUE(canAssignT(prepared, sol, x2, ClusterId(24)));
  assignT(prepared, sol, x2, ClusterId(24));
  ASSERT_TRUE(canAssignT(prepared, sol, y2, ClusterId(25)));
  assignT(prepared, sol, y2, ClusterId(25));
  EXPECT_TRUE(scratch.hasKnownFailure(prepared, sol, ClusterId(0),
                                      ClusterId(25), v, 27));

  // An edit inside the region — x1's copy crosses arc 0->1, changing a
  // flow byte and cluster 1's in-neighbor mask the slice covers — must
  // invalidate the entry.
  const Item x1 = f.itemNamed(prepared, "x1");
  const Item y1 = f.itemNamed(prepared, "y1");
  ASSERT_TRUE(canAssignT(prepared, sol, x1, ClusterId(0)));
  assignT(prepared, sol, x1, ClusterId(0));
  ASSERT_TRUE(canAssignT(prepared, sol, y1, ClusterId(1)));
  assignT(prepared, sol, y1, ClusterId(1));
  EXPECT_FALSE(scratch.hasKnownFailure(prepared, sol, ClusterId(0),
                                       ClusterId(25), v, 27));
  EXPECT_EQ(scratch.memoHits(), 2);
}

// --- dominance pruning --------------------------------------------------------

TEST(DominanceTest, PruningNeverChangesTheSearch) {
  const auto kernel = ddg::buildFir2Dim();
  const auto pg = smallPg(8);
  const auto problem = baseProblem(kernel.ddg, pg);
  SeeOptions options;
  // A narrow beam with a generous candidate keep maximizes the discard
  // set, which is where dominated states appear on this workload.
  options.beamWidth = 2;
  options.candidateKeep = 8;
  const auto off = SpaceExplorationEngine(options).run(problem);
  options.dominancePruning = true;
  const auto on = SpaceExplorationEngine(options).run(problem);
  ASSERT_TRUE(off.legal);
  ASSERT_TRUE(on.legal);
  // Same beam, same counters, same mapping — the pass only prunes states
  // the node filter discarded anyway.
  EXPECT_EQ(off.solution.signature(), on.solution.signature());
  EXPECT_DOUBLE_EQ(off.solution.objective(), on.solution.objective());
  EXPECT_EQ(off.stats.statesExplored, on.stats.statesExplored);
  EXPECT_EQ(off.stats.candidatesEvaluated, on.stats.candidatesEvaluated);
  EXPECT_EQ(off.stats.statesPruned, on.stats.statesPruned);
  EXPECT_EQ(off.stats.routeInvocations, on.stats.routeInvocations);
  EXPECT_EQ(off.stats.routeFailures, on.stats.routeFailures);
  EXPECT_EQ(off.stats.oracleRejects, on.stats.oracleRejects);
  ASSERT_EQ(off.alternatives.size(), on.alternatives.size());
  for (std::size_t i = 0; i < off.alternatives.size(); ++i) {
    EXPECT_EQ(off.alternatives[i].signature(),
              on.alternatives[i].signature());
  }
  // ...and it actually observed dominated discards on this workload.
  EXPECT_EQ(off.stats.dominancePruned, 0);
  EXPECT_GT(on.stats.dominancePruned, 0);
}

// --- copy-on-write delta path -----------------------------------------------

/// The delta/arena path and the legacy deep-copy path are the same search;
/// results must match field for field (modulo the CoW-only counters).
void expectSameSearch(const SeeResult& legacy, const SeeResult& delta) {
  ASSERT_EQ(legacy.legal, delta.legal)
      << legacy.failureReason << " vs " << delta.failureReason;
  EXPECT_EQ(legacy.failureReason, delta.failureReason);
  EXPECT_EQ(legacy.stats.statesExplored, delta.stats.statesExplored);
  EXPECT_EQ(legacy.stats.candidatesEvaluated, delta.stats.candidatesEvaluated);
  EXPECT_EQ(legacy.stats.candidateRejections,
            delta.stats.candidateRejections);
  EXPECT_EQ(legacy.stats.statesPruned, delta.stats.statesPruned);
  EXPECT_EQ(legacy.stats.routeInvocations, delta.stats.routeInvocations);
  EXPECT_EQ(legacy.stats.routeFailures, delta.stats.routeFailures);
  EXPECT_EQ(legacy.stats.routedOperands, delta.stats.routedOperands);
  ASSERT_EQ(legacy.alternatives.size(), delta.alternatives.size());
  for (std::size_t i = 0; i < legacy.alternatives.size(); ++i) {
    const auto& ls = legacy.alternatives[i];
    const auto& ds = delta.alternatives[i];
    EXPECT_EQ(ls.signature(), ds.signature()) << "frontier state " << i;
    EXPECT_DOUBLE_EQ(ls.objective(), ds.objective()) << "frontier state " << i;
    EXPECT_EQ(ls.flow().totalCopies(), ds.flow().totalCopies())
        << "frontier state " << i;
  }
  if (legacy.legal) {
    EXPECT_EQ(legacy.solution.signature(), delta.solution.signature());
    EXPECT_DOUBLE_EQ(legacy.solution.objective(), delta.solution.objective());
  }
}

/// Runs `problem` through both paths under `options` and checks equality.
void roundTrip(const SeeProblem& problem, SeeOptions options) {
  options.legacySearch = true;
  const auto legacy = SpaceExplorationEngine(options).run(problem);
  options.legacySearch = false;
  const auto delta = SpaceExplorationEngine(options).run(problem);
  expectSameSearch(legacy, delta);
  EXPECT_EQ(legacy.stats.copiesAvoided, 0);
  if (delta.stats.statesExplored > 0) {
    EXPECT_GT(delta.stats.snapshotsMaterialized, 0);
    EXPECT_GT(delta.stats.arenaBytesPeak, 0);
  }
}

TEST(DeltaSearchTest, MatchesLegacyOnDiamond) {
  const auto ddg = diamondDdg();
  const auto pg = smallPg(2);
  roundTrip(baseProblem(ddg, pg), SeeOptions{});
}

TEST(DeltaSearchTest, MatchesLegacyOnFir2DimAcrossBeamWidths) {
  const auto kernel = ddg::buildFir2Dim();
  const auto pg = smallPg(8);
  const auto problem = baseProblem(kernel.ddg, pg);
  for (const int beam : {1, 2, 6}) {
    SeeOptions options;
    options.beamWidth = beam;
    options.candidateKeep = beam == 1 ? 1 : 4;
    roundTrip(problem, options);
  }
}

TEST(DeltaSearchTest, MatchesLegacyOnInfeasibleProblem) {
  // One 1x1 cluster cannot host fir2dim: both paths must fail identically
  // (same failure reason, same partial stats).
  const auto kernel = ddg::buildFir2Dim();
  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable(1, 1));
  auto problem = baseProblem(kernel.ddg, pg);
  roundTrip(problem, SeeOptions{});
}

TEST(DeltaSearchTest, MatchesLegacyWithEagerRouting) {
  const auto kernel = ddg::buildIdctHor();
  const auto pg = smallPg(8);
  auto problem = baseProblem(kernel.ddg, pg);
  problem.inWiresPerCluster = 4;
  problem.outWiresPerCluster = 4;
  for (const bool eager : {false, true}) {
    SeeOptions options;
    options.eagerRouting = eager;
    roundTrip(problem, options);
  }
}

}  // namespace
}  // namespace hca::see
