#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/context.hpp"

/// Append-only baseline history for cross-run performance tracking.
///
/// A history file is JSONL: one self-contained JSON object per line, one
/// line per completed run (`hcac --history-out FILE` appends; nothing ever
/// rewrites earlier lines, so concurrent writers at worst interleave whole
/// lines and a crash at worst loses the line being written). Each record
/// carries the run's provenance context, the workload/machine identity, the
/// run's wall-clock and the deterministic counter set of the run report —
/// enough for `hcac --compare` to compute variance-aware wall-clock
/// thresholds (mean + k·stddev over matching records) and for offline
/// tooling to extract per-kernel series.
///
/// Loading is strict: every line must parse as a complete record with a
/// known schema version; the first bad line fails the whole load with its
/// line number (a silently skipped record would corrupt every statistic
/// computed from the file).
namespace hca {

struct HistoryRecord {
  RunContext context;
  /// Workload identity: the kernel name or DDG file path.
  std::string workload;
  /// Machine identity: DspFabricConfig::toString() of the run.
  std::string machine;
  bool legal = false;
  /// Total wall-clock over all outer attempts, microseconds (the sum of
  /// the run's `attempt.wall_us` histogram).
  double wallUs = 0.0;
  /// The deterministic counters of the run report's "stats" block, by
  /// report key (e.g. "outerAttempts", "cacheHits").
  std::map<std::string, std::int64_t> counters;
};

/// Serializes one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string historyLineJson(const HistoryRecord& record);

/// Appends `line` + '\n' to `path`, creating the file when absent. The
/// write is flushed before returning. Throws IoError on failure.
void appendHistoryLine(const std::string& path, const std::string& line);

/// Strict-parses a whole history document (the contents of a JSONL file).
/// Blank lines are permitted (a crash can leave a trailing one); anything
/// else that is not a complete record throws InvalidArgumentError naming
/// the 1-based line number.
[[nodiscard]] std::vector<HistoryRecord> parseHistory(const std::string& text);

/// `parseHistory(readFile(path))`; a missing file is an empty history.
[[nodiscard]] std::vector<HistoryRecord> loadHistory(const std::string& path);

/// The records matching one (workload, machine) configuration, in file
/// order. `machine` empty = any machine.
[[nodiscard]] std::vector<HistoryRecord> selectHistory(
    const std::vector<HistoryRecord>& records, const std::string& workload,
    const std::string& machine = "");

/// Per-kernel series extraction: the wall-clock values (microseconds) of
/// the matching *legal* records, in file order (failed runs are typically
/// deadline-bound and would poison a variance threshold).
[[nodiscard]] std::vector<double> wallSeries(
    const std::vector<HistoryRecord>& records, const std::string& workload,
    const std::string& machine = "");

/// The values of one deterministic counter over the matching records.
/// Records lacking the counter contribute nothing.
[[nodiscard]] std::vector<double> counterSeries(
    const std::vector<HistoryRecord>& records, const std::string& workload,
    const std::string& counter, const std::string& machine = "");

}  // namespace hca
