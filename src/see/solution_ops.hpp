#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "see/prepared.hpp"
#include "support/check.hpp"

/// The single implementation of the SEE assignment semantics —
/// isAssignable, assign, copy-budget checks, route application — shared by
/// every search-state representation through a small accessor/mutator
/// interface (`Sol`):
///
///   reads:  clusterOf, relayCluster, usage, inNbrMask, valueDelivered,
///           flowContains, flowIsReal
///   writes: setNodeCluster, setRelayCluster, addOp, addFlowCopy,
///           noteAssigned, addCritTerm
///
/// `PartialSolution` (the materialized, value-semantics state handed to the
/// driver/mapper and used by the legacy search path) and `DeltaSolution`
/// (the copy-on-write candidate overlay of the arena-backed hot path)
/// implement this interface; instantiating both from one template is what
/// makes the delta path byte-identical to the legacy path by construction
/// rather than by parallel maintenance.
namespace hca::see {

namespace detail {
constexpr std::uint64_t pgBit(ClusterId c) { return 1ULL << c.index(); }

/// In-neighbor budget of one PG node: the level-wide MUX capacity, further
/// tightened by the node's surviving-wire override when the fabric carries
/// faults. -1 = unlimited.
inline int effectiveInCap(const machine::PgNode& node,
                          const machine::PgConstraints& constraints) {
  int cap = constraints.maxInNeighbors;
  if (node.inWireCap >= 0) {
    cap = cap < 0 ? node.inWireCap : std::min(cap, node.inWireCap);
  }
  return cap;
}
}  // namespace detail

/// Cluster currently holding `value` (producer's cluster, or the input
/// node it arrives on); invalid if not available yet.
template <typename Sol>
ClusterId valueLocationT(const PreparedProblem& prepared, const Sol& sol,
                         ValueId value) {
  const DdgNodeId producer(value.value());
  if (prepared.inWorkingSet(producer)) return sol.clusterOf(producer);
  return prepared.valueSource(value);
}

/// True when the arc src->dst exists and adding a copy of `value` on it
/// respects the in-neighbor budget (and unary fan-in for output nodes).
template <typename Sol>
bool canAddCopyT(const PreparedProblem& prepared, const Sol& sol,
                 ClusterId src, ClusterId dst, ValueId value) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(src).dead || pg.node(dst).dead) return false;
  // A node whose output wires are all dead can send nothing new.
  if (pg.node(src).outWireCap == 0) return false;
  const auto arc = pg.arcBetween(src, dst);
  if (!arc.has_value()) return false;
  if (sol.flowContains(*arc, value)) {
    return true;  // already flowing: no budget change
  }
  const auto& constraints = prepared.problem().constraints;
  const std::uint64_t dstMask = sol.inNbrMask(dst);
  if (pg.node(dst).kind == machine::PgNodeKind::kOutput) {
    if (constraints.outputNodeUnaryFanIn) {
      return dstMask == 0 || dstMask == detail::pgBit(src);
    }
    return true;
  }
  if ((dstMask & detail::pgBit(src)) == 0) {
    const int inCap = detail::effectiveInCap(pg.node(dst), constraints);
    if (inCap >= 0 && __builtin_popcountll(dstMask) >= inCap) {
      return false;
    }
  }
  if (constraints.maxOutNeighbors >= 0 && !sol.flowIsReal(*arc)) {
    // Count distinct out-neighbors of src (dst is not one yet).
    int outNbrs = 0;
    for (const PgArcId a : pg.outArcs(src)) {
      if (sol.flowIsReal(a) && pg.arc(a).dst != dst) ++outNbrs;
    }
    if (outNbrs >= constraints.maxOutNeighbors) return false;
  }
  return true;
}

/// The paper's isAssignable interface: cluster kind, resource availability,
/// and availability of communication patterns under the current
/// reconfiguration budget.
template <typename Sol>
bool canAssignT(const PreparedProblem& prepared, const Sol& sol,
                const Item& item, ClusterId cluster) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) return false;
  if (pg.node(cluster).dead) return false;
  const auto& rt = pg.node(cluster).resources;
  const auto& options = prepared.options();

  if (item.kind == Item::Kind::kRelay) {
    // A relay needs an issue slot plus in/out communication patterns.
    if (options.maxOpsPerUnit > 0 &&
        sol.usage(cluster).instructions + 1 >
            rt.issueSlots() * options.maxOpsPerUnit) {
      return false;
    }
    const ClusterId source = prepared.valueSource(item.value);
    const ClusterId out = prepared.outputNodeOf(item.value);
    if (!sol.valueDelivered(cluster, item.value) &&
        !canAddCopyT(prepared, sol, source, cluster, item.value)) {
      return false;
    }
    return sol.valueDelivered(out, item.value) ||
           canAddCopyT(prepared, sol, cluster, out, item.value);
  }

  const DdgNodeId n = item.node;
  const ddg::Op op = prepared.problem().ddg->node(n).op;
  const ddg::ResourceClass rc = ddg::opResource(op);
  if (rc != ddg::ResourceClass::kNone && rt.count(rc) == 0) return false;
  if (options.maxOpsPerUnit > 0) {
    const auto& usage = sol.usage(cluster);
    if (usage.instructions + 1 > rt.issueSlots() * options.maxOpsPerUnit) {
      return false;
    }
    if (rc == ddg::ResourceClass::kAlu &&
        usage.alu + 1 > rt.alu() * options.maxOpsPerUnit) {
      return false;
    }
    if (rc == ddg::ResourceClass::kAg &&
        usage.ag + 1 > rt.ag() * options.maxOpsPerUnit) {
      return false;
    }
  }

  // Incoming copies: every located operand source must reach `cluster`,
  // cumulatively within the in-neighbor budget.
  const auto& constraints = prepared.problem().constraints;
  const int inCap = detail::effectiveInCap(pg.node(cluster), constraints);
  std::uint64_t mask = sol.inNbrMask(cluster);
  for (const ValueId v : prepared.operandValues(n)) {
    const ClusterId loc = valueLocationT(prepared, sol, v);
    if (!loc.valid() || loc == cluster) continue;
    if (sol.valueDelivered(cluster, v)) continue;  // already routed here
    if (pg.node(loc).dead || pg.node(loc).outWireCap == 0) return false;
    const auto arc = pg.arcBetween(loc, cluster);
    if (!arc.has_value()) return false;
    if (sol.flowContains(*arc, v)) continue;
    if ((mask & detail::pgBit(loc)) == 0) {
      if (inCap >= 0 && __builtin_popcountll(mask) >= inCap) {
        return false;
      }
      mask |= detail::pgBit(loc);
    }
  }

  // Outgoing copies to already-assigned WS consumers.
  const ValueId produced(n.value());
  for (const DdgNodeId consumer : prepared.wsConsumers(n)) {
    const ClusterId d = sol.clusterOf(consumer);
    if (!d.valid() || d == cluster) continue;
    if (sol.valueDelivered(d, produced)) continue;  // already routed there
    if (!canAddCopyT(prepared, sol, cluster, d, produced)) return false;
  }

  // Output-wire requirement (outNode_MaxIn, Fig. 10).
  const ClusterId out = prepared.outputNodeOf(produced);
  if (out.valid() && !sol.valueDelivered(out, produced) &&
      !canAddCopyT(prepared, sol, cluster, out, produced)) {
    return false;
  }
  return true;
}

/// Adds a copy of `value` on the (required) arc src->dst; the Sol's
/// addFlowCopy handles idempotence, the in-neighbor mask, and the distinct
/// in/out value lists.
template <typename Sol>
void addCopyT(const PreparedProblem& prepared, Sol& sol, ClusterId src,
              ClusterId dst, ValueId value) {
  const auto& pg = *prepared.problem().pg;
  const auto arc = pg.arcBetween(src, dst);
  HCA_CHECK(arc.has_value(), "addCopyT without arc " << to_string(src) << "->"
                                                     << to_string(dst));
  sol.addFlowCopy(*arc, src, dst, value);
}

/// Applies the assignment (must be canAssignT). Adds the implied copies:
/// operand sources -> cluster, cluster -> already-assigned consumers,
/// cluster -> output wire if the produced value leaves the sub-problem.
/// Also records the critical-path terms this assignment completes: a
/// cross-cluster WS dependence charges double(height(consumer)+1) /
/// maxWsHeight exactly once, when its second endpoint lands.
template <typename Sol>
void assignT(const PreparedProblem& prepared, Sol& sol, const Item& item,
             ClusterId cluster) {
  if (item.kind == Item::Kind::kRelay) {
    const auto& relays = prepared.problem().relayValues;
    const auto idx = static_cast<std::size_t>(
        std::find(relays.begin(), relays.end(), item.value) - relays.begin());
    HCA_CHECK(idx < relays.size(), "relay value not in problem");
    sol.setRelayCluster(idx, cluster);
    sol.addOp(cluster, ddg::Op::kRecv);
    if (!sol.valueDelivered(cluster, item.value)) {
      addCopyT(prepared, sol, prepared.valueSource(item.value), cluster,
               item.value);
    }
    const ClusterId relayOut = prepared.outputNodeOf(item.value);
    if (!sol.valueDelivered(relayOut, item.value)) {
      addCopyT(prepared, sol, cluster, relayOut, item.value);
    }
    sol.noteAssigned();
    return;
  }

  const DdgNodeId n = item.node;
  sol.setNodeCluster(n, cluster);
  sol.addOp(cluster, prepared.problem().ddg->node(n).op);
  sol.noteAssigned();
  for (const CritOperand& co : prepared.critOperands(n)) {
    const ClusterId cp = sol.clusterOf(co.src);
    if (cp.valid() && cp != cluster) {
      sol.addCritTerm(
          PreparedProblem::critKey(prepared.wsIndex(n), co.operandIndex),
          prepared.height(n) + 1);
    }
  }
  for (const CritUse& cu : prepared.critUses(n)) {
    const ClusterId cc = sol.clusterOf(cu.consumer);
    if (cc.valid() && cc != cluster) {
      sol.addCritTerm(PreparedProblem::critKey(prepared.wsIndex(cu.consumer),
                                               cu.operandIndex),
                      prepared.height(cu.consumer) + 1);
    }
  }

  for (const ValueId v : prepared.operandValues(n)) {
    if (sol.valueDelivered(cluster, v)) continue;
    const ClusterId loc = valueLocationT(prepared, sol, v);
    if (loc.valid() && loc != cluster) {
      addCopyT(prepared, sol, loc, cluster, v);
    }
  }
  const ValueId produced(n.value());
  for (const DdgNodeId consumer : prepared.wsConsumers(n)) {
    const ClusterId d = sol.clusterOf(consumer);
    if (d.valid() && d != cluster && !sol.valueDelivered(d, produced)) {
      addCopyT(prepared, sol, cluster, d, produced);
    }
  }
  const ClusterId out = prepared.outputNodeOf(produced);
  if (out.valid() && !sol.valueDelivered(out, produced)) {
    addCopyT(prepared, sol, cluster, out, produced);
  }
}

/// Routes `value` from `path.front()` to `path.back()` through intermediate
/// clusters. Every hop must be addable; the route allocator validates hops
/// beforehand.
template <typename Sol>
void applyRouteT(const PreparedProblem& prepared, Sol& sol, ValueId value,
                 const std::vector<ClusterId>& path) {
  HCA_REQUIRE(path.size() >= 2, "route needs at least two nodes");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    addCopyT(prepared, sol, path[i], path[i + 1], value);
  }
}

}  // namespace hca::see
