#include "see/partial_solution.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace hca::see {

namespace {
constexpr std::uint64_t bit(ClusterId c) { return 1ULL << c.index(); }

void addDistinct(std::vector<ValueId>& list, ValueId v) {
  if (std::find(list.begin(), list.end(), v) == list.end()) list.push_back(v);
}

/// In-neighbor budget of one PG node: the level-wide MUX capacity, further
/// tightened by the node's surviving-wire override when the fabric carries
/// faults. -1 = unlimited.
int effectiveInCap(const machine::PgNode& node,
                   const machine::PgConstraints& constraints) {
  int cap = constraints.maxInNeighbors;
  if (node.inWireCap >= 0) {
    cap = cap < 0 ? node.inWireCap : std::min(cap, node.inWireCap);
  }
  return cap;
}
}  // namespace

PartialSolution PartialSolution::initial(const PreparedProblem& prepared) {
  const auto& pg = *prepared.problem().pg;
  PartialSolution sol;
  sol.nodeCluster_.assign(
      static_cast<std::size_t>(prepared.problem().ddg->numNodes()),
      ClusterId::invalid());
  sol.relayCluster_.assign(prepared.problem().relayValues.size(),
                           ClusterId::invalid());
  sol.usage_.resize(static_cast<std::size_t>(pg.numNodes()));
  sol.flow_ = machine::CopyFlow(pg);
  sol.inNbrMask_.assign(static_cast<std::size_t>(pg.numNodes()), 0);
  sol.inValues_.resize(static_cast<std::size_t>(pg.numNodes()));
  sol.outValues_.resize(static_cast<std::size_t>(pg.numNodes()));
  // Input nodes already "send" their boundary values.
  for (const ClusterId in : pg.inputNodes()) {
    for (const ValueId v : pg.node(in).boundaryValues) {
      addDistinct(sol.outValues_[in.index()], v);
    }
  }
  return sol;
}

ClusterId PartialSolution::valueLocation(const PreparedProblem& prepared,
                                         ValueId value) const {
  const DdgNodeId producer(value.value());
  if (prepared.inWorkingSet(producer)) return nodeCluster_[producer.index()];
  return prepared.valueSource(value);
}

bool PartialSolution::valueDelivered(ClusterId dst, ValueId value) const {
  const auto& list = inValues_[dst.index()];
  return std::find(list.begin(), list.end(), value) != list.end();
}

bool PartialSolution::canAddCopy(const PreparedProblem& prepared,
                                 ClusterId src, ClusterId dst,
                                 ValueId value) const {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(src).dead || pg.node(dst).dead) return false;
  // A node whose output wires are all dead can send nothing new.
  if (pg.node(src).outWireCap == 0) return false;
  const auto arc = pg.arcBetween(src, dst);
  if (!arc.has_value()) return false;
  if (std::find(flow_.copiesOn(*arc).begin(), flow_.copiesOn(*arc).end(),
                value) != flow_.copiesOn(*arc).end()) {
    return true;  // already flowing: no budget change
  }
  const auto& constraints = prepared.problem().constraints;
  const std::uint64_t dstMask = inNbrMask_[dst.index()];
  if (pg.node(dst).kind == machine::PgNodeKind::kOutput) {
    if (constraints.outputNodeUnaryFanIn) {
      return dstMask == 0 || dstMask == bit(src);
    }
    return true;
  }
  if ((dstMask & bit(src)) == 0) {
    const int inCap = effectiveInCap(pg.node(dst), constraints);
    if (inCap >= 0 && __builtin_popcountll(dstMask) >= inCap) {
      return false;
    }
  }
  if (constraints.maxOutNeighbors >= 0 && !flow_.isReal(*arc)) {
    // Count distinct out-neighbors of src (dst is not one yet).
    int outNbrs = 0;
    for (const PgArcId a : pg.outArcs(src)) {
      if (flow_.isReal(a) && pg.arc(a).dst != dst) ++outNbrs;
    }
    if (outNbrs >= constraints.maxOutNeighbors) return false;
  }
  return true;
}

bool PartialSolution::canAssign(const PreparedProblem& prepared,
                                const Item& item, ClusterId cluster) const {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) return false;
  if (pg.node(cluster).dead) return false;
  const auto& rt = pg.node(cluster).resources;
  const auto& options = prepared.options();

  if (item.kind == Item::Kind::kRelay) {
    // A relay needs an issue slot plus in/out communication patterns.
    if (options.maxOpsPerUnit > 0 &&
        usage_[cluster.index()].instructions + 1 >
            rt.issueSlots() * options.maxOpsPerUnit) {
      return false;
    }
    const ClusterId source = prepared.valueSource(item.value);
    const ClusterId out = prepared.outputNodeOf(item.value);
    if (!valueDelivered(cluster, item.value) &&
        !canAddCopy(prepared, source, cluster, item.value)) {
      return false;
    }
    return valueDelivered(out, item.value) ||
           canAddCopy(prepared, cluster, out, item.value);
  }

  const DdgNodeId n = item.node;
  const ddg::Op op = prepared.problem().ddg->node(n).op;
  const ddg::ResourceClass rc = ddg::opResource(op);
  if (rc != ddg::ResourceClass::kNone && rt.count(rc) == 0) return false;
  if (options.maxOpsPerUnit > 0) {
    const auto& usage = usage_[cluster.index()];
    if (usage.instructions + 1 > rt.issueSlots() * options.maxOpsPerUnit) {
      return false;
    }
    if (rc == ddg::ResourceClass::kAlu &&
        usage.alu + 1 > rt.alu() * options.maxOpsPerUnit) {
      return false;
    }
    if (rc == ddg::ResourceClass::kAg &&
        usage.ag + 1 > rt.ag() * options.maxOpsPerUnit) {
      return false;
    }
  }

  // Incoming copies: every located operand source must reach `cluster`,
  // cumulatively within the in-neighbor budget.
  const auto& constraints = prepared.problem().constraints;
  const int inCap = effectiveInCap(pg.node(cluster), constraints);
  std::uint64_t mask = inNbrMask_[cluster.index()];
  for (const ValueId v : prepared.operandValues(n)) {
    const ClusterId loc = valueLocation(prepared, v);
    if (!loc.valid() || loc == cluster) continue;
    if (valueDelivered(cluster, v)) continue;  // already routed here
    if (pg.node(loc).dead || pg.node(loc).outWireCap == 0) return false;
    const auto arc = pg.arcBetween(loc, cluster);
    if (!arc.has_value()) return false;
    const auto& onArc = flow_.copiesOn(*arc);
    if (std::find(onArc.begin(), onArc.end(), v) != onArc.end()) continue;
    if ((mask & bit(loc)) == 0) {
      if (inCap >= 0 && __builtin_popcountll(mask) >= inCap) {
        return false;
      }
      mask |= bit(loc);
    }
  }

  // Outgoing copies to already-assigned WS consumers.
  const ValueId produced(n.value());
  for (const DdgNodeId consumer : prepared.wsConsumers(n)) {
    const ClusterId d = nodeCluster_[consumer.index()];
    if (!d.valid() || d == cluster) continue;
    if (valueDelivered(d, produced)) continue;  // already routed there
    if (!canAddCopy(prepared, cluster, d, produced)) return false;
  }

  // Output-wire requirement (outNode_MaxIn, Fig. 10).
  const ClusterId out = prepared.outputNodeOf(produced);
  if (out.valid() && !valueDelivered(out, produced) &&
      !canAddCopy(prepared, cluster, out, produced)) {
    return false;
  }
  return true;
}

void PartialSolution::addCopyInternal(const PreparedProblem& prepared,
                                      ClusterId src, ClusterId dst,
                                      ValueId value) {
  const auto& pg = *prepared.problem().pg;
  const auto arc = pg.arcBetween(src, dst);
  HCA_CHECK(arc.has_value(), "addCopyInternal without arc "
                                 << to_string(src) << "->" << to_string(dst));
  if (!flow_.addCopy(*arc, value)) return;
  inNbrMask_[dst.index()] |= bit(src);
  addDistinct(inValues_[dst.index()], value);
  addDistinct(outValues_[src.index()], value);
}

void PartialSolution::assign(const PreparedProblem& prepared, const Item& item,
                             ClusterId cluster) {
  if (item.kind == Item::Kind::kRelay) {
    const auto& relays = prepared.problem().relayValues;
    const auto idx = static_cast<std::size_t>(
        std::find(relays.begin(), relays.end(), item.value) - relays.begin());
    HCA_CHECK(idx < relays.size(), "relay value not in problem");
    relayCluster_[idx] = cluster;
    usage_[cluster.index()].addOp(ddg::Op::kRecv);
    if (!valueDelivered(cluster, item.value)) {
      addCopyInternal(prepared, prepared.valueSource(item.value), cluster,
                      item.value);
    }
    const ClusterId relayOut = prepared.outputNodeOf(item.value);
    if (!valueDelivered(relayOut, item.value)) {
      addCopyInternal(prepared, cluster, relayOut, item.value);
    }
    ++assigned_;
    return;
  }

  const DdgNodeId n = item.node;
  nodeCluster_[n.index()] = cluster;
  usage_[cluster.index()].addOp(prepared.problem().ddg->node(n).op);
  ++assigned_;

  for (const ValueId v : prepared.operandValues(n)) {
    if (valueDelivered(cluster, v)) continue;
    const ClusterId loc = valueLocation(prepared, v);
    if (loc.valid() && loc != cluster) {
      addCopyInternal(prepared, loc, cluster, v);
    }
  }
  const ValueId produced(n.value());
  for (const DdgNodeId consumer : prepared.wsConsumers(n)) {
    const ClusterId d = nodeCluster_[consumer.index()];
    if (d.valid() && d != cluster && !valueDelivered(d, produced)) {
      addCopyInternal(prepared, cluster, d, produced);
    }
  }
  const ClusterId out = prepared.outputNodeOf(produced);
  if (out.valid() && !valueDelivered(out, produced)) {
    addCopyInternal(prepared, cluster, out, produced);
  }
}

void PartialSolution::applyRoute(const PreparedProblem& prepared,
                                 ValueId value,
                                 const std::vector<ClusterId>& path) {
  HCA_REQUIRE(path.size() >= 2, "route needs at least two nodes");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    addCopyInternal(prepared, path[i], path[i + 1], value);
  }
}

std::uint64_t PartialSolution::signature() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&](std::int32_t v) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  };
  for (const ClusterId c : nodeCluster_) mix(c.value());
  for (const ClusterId c : relayCluster_) mix(c.value());
  return h;
}

}  // namespace hca::see
