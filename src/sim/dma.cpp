#include "sim/dma.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::sim {

std::string DmaProfile::toString() const {
  return strCat("DmaProfile{II=", ii, ", peakAccepts=", peakAccepts,
                ", peakOutstanding=", peakOutstanding, "/", fifoCapacity,
                "}");
}

DmaProfile profileDma(const mapper::FinalMapping& mapping,
                      const machine::DspFabricModel& model,
                      const sched::Schedule& schedule, int serviceLatency) {
  HCA_REQUIRE(schedule.ii > 0, "schedule has non-positive II");
  {
    const auto violations =
        sched::validateSchedule(mapping, model, schedule);
    HCA_REQUIRE(violations.empty(),
                "invalid schedule: " << violations.front());
  }
  if (serviceLatency <= 0) {
    serviceLatency = model.config().latency.load;
  }

  DmaProfile profile;
  profile.ii = schedule.ii;
  profile.serviceLatency = serviceLatency;
  profile.fifoCapacity = model.config().dmaSlots * serviceLatency;
  profile.acceptsPerSlot.assign(static_cast<std::size_t>(schedule.ii), 0);

  const auto& ddg = mapping.finalDdg;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (!ddg::isMemoryOp(ddg.node(DdgNodeId(v)).op)) continue;
    const int slot = schedule.cycleOf[static_cast<std::size_t>(v)] %
                     schedule.ii;
    ++profile.acceptsPerSlot[static_cast<std::size_t>(slot)];
  }
  // Steady state: a request issued at slot s is outstanding during
  // [s, s + serviceLatency), wrapping mod II; with one iteration launched
  // per II, the occupancy at slot t sums the accepts of the last
  // serviceLatency slots.
  profile.outstandingPerSlot.assign(static_cast<std::size_t>(schedule.ii),
                                    0);
  for (int t = 0; t < schedule.ii; ++t) {
    int outstanding = 0;
    for (int back = 0; back < serviceLatency; ++back) {
      const int s = ((t - back) % schedule.ii + schedule.ii) % schedule.ii;
      outstanding += profile.acceptsPerSlot[static_cast<std::size_t>(s)];
    }
    profile.outstandingPerSlot[static_cast<std::size_t>(t)] = outstanding;
  }
  profile.peakAccepts = *std::max_element(profile.acceptsPerSlot.begin(),
                                          profile.acceptsPerSlot.end());
  profile.peakOutstanding =
      *std::max_element(profile.outstandingPerSlot.begin(),
                        profile.outstandingPerSlot.end());
  return profile;
}

}  // namespace hca::sim
