#pragma once

#include <string>
#include <vector>

#include "baseline/hierarchy_check.hpp"
#include "ddg/ddg.hpp"
#include "machine/dspfabric.hpp"
#include "see/problem.hpp"
#include "support/thread_pool.hpp"

/// Flat (non-hierarchical) Instruction Cluster Assignment baseline.
///
/// This is what HCA replaces (paper Section 4, first paragraphs): treat the
/// whole machine as one complete graph of computation nodes — the "K64"
/// abstraction — and run the single-level engine on it. The abstraction
/// cannot track the internal logic of the MUX hierarchy, so the resulting
/// assignment is only *candidate*-legal: the post-hoc hierarchy check
/// re-derives every level's copy flow and verifies the wires can carry it.
/// The paper's claim is that this approach both explodes the search space
/// and produces assignments the reconfigurable network cannot realize.
namespace hca::baseline {

struct FlatIcaResult {
  /// The flat engine found an assignment under the CN-level constraints.
  bool assignmentLegal = false;
  /// The assignment also survived the per-level Mapper (hierarchy check).
  bool hierarchyLegal = false;
  std::string failureReason;
  std::vector<CnId> assignment;  // per DDG node
  see::SeeStats seeStats;
  HierarchyCheckResult hierarchy;
  /// Max instructions + receives on one CN (the flat MII estimate).
  int maxCnPressure = 0;
};

/// `cancel` (optional) aborts the flat SEE search early; `collect`
/// (optional) materializes per-level records when the hierarchy check
/// passes — see HierarchyCollect. On a faulty model the dead CNs are
/// excluded from the flat pattern graph, so the assignment only uses
/// surviving resources.
FlatIcaResult runFlatIca(const ddg::Ddg& ddg,
                         const machine::DspFabricModel& model,
                         const see::SeeOptions& options = {},
                         const CancellationToken* cancel = nullptr,
                         HierarchyCollect* collect = nullptr);

}  // namespace hca::baseline
