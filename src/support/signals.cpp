#include "support/signals.hpp"

#include <atomic>
#include <csignal>

#include <unistd.h>

namespace hca {

namespace {

CancellationToken g_shutdownToken;
std::atomic<int> g_shutdownSignal{0};

extern "C" void shutdownHandler(int sig) {
  // Second signal: the cooperative unwind is not fast enough for the
  // operator — bail out with the conventional 128+sig status. _exit is
  // async-signal-safe; exit() is not.
  int expected = 0;
  if (!g_shutdownSignal.compare_exchange_strong(expected, sig)) {
    _exit(128 + sig);
  }
  // CancellationToken::cancel is a lock-free atomic store — signal-safe.
  g_shutdownToken.cancel();
}

}  // namespace

const CancellationToken& shutdownToken() { return g_shutdownToken; }

void installShutdownHandlers() {
  struct sigaction action {};
  action.sa_handler = shutdownHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int shutdownSignal() {
  return g_shutdownSignal.load(std::memory_order_acquire);
}

}  // namespace hca
