#pragma once

#include <string>
#include <vector>

#include "mapper/final_mapping.hpp"
#include "sched/modulo.hpp"

/// Register pressure analysis of a modulo-scheduled kernel — the
/// "scheduling aware cost factor" the paper's Section 5 singles out as the
/// reason the post-scheduling MII could degrade, and lists as future work.
///
/// In a modulo-scheduled loop a value defined at cycle d and last read at
/// cycle u (possibly by a later iteration) is live for u - d cycles; with
/// one iteration started every II cycles, ceil(live / II) copies of it are
/// simultaneously in flight, each needing its own rotating register
/// (Section 2.2: DSPFabric CNs have rotating-register support). This
/// module reports, per computation node, how many rotating registers the
/// schedule needs — the quantity a register-pressure-aware cost function
/// would bound.
namespace hca::sched {

struct ValueLifetime {
  DdgNodeId node;       // defining instruction (in the final DDG)
  CnId cn;              // CN holding the value
  int defCycle = 0;
  int lastUseCycle = 0; // in start-cycle coordinates, distance folded in
  int registersNeeded = 0;  // ceil((lastUse - def) / II), min 1
};

struct RegisterPressureReport {
  int ii = 0;
  /// Rotating registers needed per CN (indexed by CN id).
  std::vector<int> registersPerCn;
  int maxRegistersPerCn = 0;
  int totalRegisters = 0;
  std::vector<ValueLifetime> lifetimes;  // one per value with >= 1 use

  /// True when every CN fits in a register file of the given size.
  [[nodiscard]] bool fits(int registersPerCnLimit) const {
    return maxRegistersPerCn <= registersPerCnLimit;
  }

  [[nodiscard]] std::string toString() const;
};

/// Computes lifetimes from the schedule. A use at iteration distance d
/// reads the value defined d iterations earlier, extending its lifetime by
/// d * II cycles. Values without uses (stores, parked relays) still occupy
/// one register from definition to the end of the producing instruction's
/// latency.
RegisterPressureReport analyzeRegisterPressure(
    const mapper::FinalMapping& mapping, const machine::DspFabricModel& model,
    const Schedule& schedule);

}  // namespace hca::sched
