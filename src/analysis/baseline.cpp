#include "analysis/baseline.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/json.hpp"

namespace hca::analysis {

Baseline parseBaseline(const std::string& json) {
  JsonValue parsed;
  std::string error;
  HCA_REQUIRE(parseJson(json, &parsed, &error),
              "lint baseline: " << error);
  HCA_REQUIRE(parsed.isObject(), "lint baseline: expected a JSON object");
  const JsonValue* version = parsed.find("version");
  HCA_REQUIRE(version != nullptr && version->kind == JsonValue::Kind::kNumber,
              "lint baseline: missing numeric 'version'");
  HCA_REQUIRE(version->number == 1.0,
              "lint baseline: unsupported version " << version->number);
  const JsonValue* suppressions = parsed.find("suppressions");
  HCA_REQUIRE(suppressions != nullptr && suppressions->isArray(),
              "lint baseline: missing array 'suppressions'");
  Baseline baseline;
  for (const JsonValue& entry : suppressions->array) {
    HCA_REQUIRE(entry.kind == JsonValue::Kind::kString,
                "lint baseline: suppressions must be strings");
    baseline.suppressions.insert(entry.string);
  }
  return baseline;
}

std::string formatBaseline(const Baseline& baseline) {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.beginObject();
  writer.key("version").value(1);
  writer.key("suppressions").beginArray();
  for (const std::string& key : baseline.suppressions) {
    writer.value(key);
  }
  writer.endArray();
  writer.endObject();
  os << "\n";
  return os.str();
}

Baseline baselineFromDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  Baseline baseline;
  for (const Diagnostic& d : diagnostics) {
    baseline.suppressions.insert(d.suppressionKey);
  }
  return baseline;
}

BaselineSplit splitAgainstBaseline(const Baseline& baseline,
                                   const std::vector<Diagnostic>& diagnostics) {
  BaselineSplit split;
  std::set<std::string> used;
  for (const Diagnostic& d : diagnostics) {
    if (baseline.suppressions.count(d.suppressionKey) != 0) {
      used.insert(d.suppressionKey);
      split.baselined.push_back(d);
    } else {
      split.fresh.push_back(d);
    }
  }
  for (const std::string& key : baseline.suppressions) {
    if (used.count(key) == 0) split.stale.push_back(key);
  }
  return split;
}

}  // namespace hca::analysis
