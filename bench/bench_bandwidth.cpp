// E2: the Section 5 narration — "lower bandwidths cause a rapid
// degradation of the clusterization quality, since the interconnection
// network is not able to distribute the high number of intercluster
// copies" and "the best results [were] achieved for an architecture with
// N = 8, M = 8 and K = 8".
//
// For every Table 1 kernel and every (N, M, K) in {2,4,8}^uniform plus a
// few mixed points, report legality and the final MII.

#include <cstdio>
#include <ctime>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"

using namespace hca;

namespace {

struct Config {
  int n, m, k;
};

void runKernel(const ddg::Kernel& kernel) {
  static constexpr Config kConfigs[] = {{8, 8, 8}, {8, 8, 4}, {8, 4, 4},
                                        {4, 4, 4}, {4, 4, 2}, {2, 2, 2}};
  std::printf("%-16s", kernel.name.c_str());
  for (const Config& c : kConfigs) {
    machine::DspFabricConfig config;
    config.n = c.n;
    config.m = c.m;
    config.k = c.k;
    const machine::DspFabricModel model(config);
    core::HcaOptions options;
    options.targetIiSlack = 4;   // bounded effort per configuration
    options.searchProfiles = 3;
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);
    if (result.legal) {
      const auto mii = core::computeMii(kernel.ddg, model, result);
      std::printf(" %8d", mii.finalMii);
    } else {
      std::printf(" %8s", "illegal");
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Bandwidth sensitivity (final MII per (N,M,K); 'illegal' = no legal\n"
      "clusterization found — the degradation the paper reports)\n\n");
  std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "Loop", "8/8/8", "8/8/4",
              "8/4/4", "4/4/4", "4/4/2", "2/2/2");
  std::printf("%s\n", std::string(70, '-').c_str());
  const std::clock_t t0 = std::clock();
  for (auto& kernel : ddg::table1Kernels()) runKernel(kernel);
  std::printf("\nTotal time: %.1fs\n",
              static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  return 0;
}
