#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/check.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

/// Monotonic (bump-pointer) arena allocator for short-lived, same-lifetime
/// object batches — the SEE beam search's frontier snapshots.
///
/// Allocation is a pointer bump; there is no per-object free. `reset()`
/// rewinds the whole arena in O(chunks) while *keeping* the chunk memory,
/// so a steady-state user (the beam loop, which double-buffers two arenas
/// and resets the retired one every step) performs zero heap allocations
/// once the high-water mark is reached.
///
/// Thread safety: a `MonotonicArena` is deliberately single-threaded — one
/// arena per search attempt, owned by the thread running that attempt
/// (portfolio attempts each build their own). The only cross-thread state
/// is the process-wide creation/reservation tally used by the metrics
/// layer, which is guarded by an annotated `Mutex` so a clang
/// `-Wthread-safety` build proves the lock discipline.
namespace hca {

class MonotonicArena {
 public:
  /// Process-wide tally across all arenas (metrics/diagnostics).
  struct GlobalStats {
    std::int64_t arenasCreated = 0;
    std::int64_t chunksAllocated = 0;
    std::int64_t bytesReserved = 0;  ///< cumulative chunk bytes ever malloc'd
  };

  explicit MonotonicArena(std::size_t chunkBytes = kDefaultChunkBytes);

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Requests larger than the chunk size get a
  /// dedicated oversize chunk.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed array allocation (uninitialized storage for trivial T).
  template <typename T>
  T* allocateArray(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every chunk for reuse. All memory handed out
  /// since the last reset is invalidated.
  void reset();

  /// Live bytes handed out since the last reset (including alignment pad).
  [[nodiscard]] std::size_t bytesUsed() const { return bytesUsed_; }
  /// High-water mark of `bytesUsed()` over the arena's lifetime.
  [[nodiscard]] std::size_t peakBytesUsed() const { return peakBytesUsed_; }
  /// Total chunk capacity currently owned.
  [[nodiscard]] std::size_t bytesReserved() const { return bytesReserved_; }

  [[nodiscard]] static GlobalStats globalStats();

  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Makes `chunkIndex_` point at a chunk with >= `bytes` free at `cursor_`.
  void grow(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t chunkIndex_ = 0;  ///< chunk currently being bumped
  std::size_t cursor_ = 0;      ///< next free offset in that chunk
  std::size_t chunkBytes_;
  std::size_t bytesUsed_ = 0;
  std::size_t peakBytesUsed_ = 0;
  std::size_t bytesReserved_ = 0;
};

/// std-compatible allocator adapter over a MonotonicArena (deallocate is a
/// no-op; memory is reclaimed by `reset()`). Containers using it must not
/// outlive the next reset of the arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] MonotonicArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  MonotonicArena* arena_;
};

}  // namespace hca
