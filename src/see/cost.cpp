#include "see/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace hca::see {

int IiEstimateCriterion::clusterMii(const PreparedProblem& prepared,
                                    const PartialSolution& solution,
                                    ClusterId cluster) {
  return clusterMiiT(prepared, solution, cluster);
}

int IiEstimateCriterion::maxClusterMii(const PreparedProblem& prepared,
                                       const PartialSolution& solution) {
  int result = 1;
  for (const ClusterId c : prepared.clusters()) {
    result = std::max(result, clusterMiiT(prepared, solution, c));
  }
  return result;
}

double IiEstimateCriterion::score(const PreparedProblem& prepared,
                                  const PartialSolution& solution) const {
  return iiEstimateScoreT(prepared, solution);
}

double CopyCountCriterion::score(const PreparedProblem&,
                                 const PartialSolution& solution) const {
  return solution.flow().totalCopies();
}

double LoadBalanceCriterion::score(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  return loadBalanceScoreT(prepared, solution);
}

double WiringSlackCriterion::score(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  return wiringSlackScoreT(prepared, solution);
}

double CriticalPathCriterion::score(const PreparedProblem& prepared,
                                    const PartialSolution& solution) const {
  // For every cross-cluster intra-iteration dependence, weight the copy by
  // how tall its consumer still is: cutting near the top of the critical
  // path is worse. The full scan visits terms in (working-set position,
  // operand position) order — the order the delta path's merged term list
  // reproduces (see snapshot.hpp).
  const auto& ddg = *prepared.problem().ddg;
  const std::int64_t maxHeight = prepared.maxWsHeight();
  double penalty = 0;
  for (const DdgNodeId n : prepared.problem().workingSet) {
    const ClusterId cn = solution.clusterOf(n);
    if (!cn.valid()) continue;
    for (const auto& operand : ddg.node(n).operands) {
      if (operand.distance != 0) continue;
      if (!prepared.inWorkingSet(operand.src)) continue;
      const ClusterId cp = solution.clusterOf(operand.src);
      if (!cp.valid() || cp == cn) continue;
      penalty += static_cast<double>(prepared.height(n) + 1) /
                 static_cast<double>(maxHeight);
    }
  }
  return penalty;
}

WeightedObjective::WeightedObjective(const CostWeights& weights) {
  add(std::make_unique<IiEstimateCriterion>(), weights.iiEstimate);
  add(std::make_unique<CopyCountCriterion>(), weights.copyCount);
  add(std::make_unique<LoadBalanceCriterion>(), weights.loadBalance);
  add(std::make_unique<CriticalPathCriterion>(), weights.criticalPath);
  add(std::make_unique<WiringSlackCriterion>(), weights.wiringSlack);
}

void WeightedObjective::add(std::unique_ptr<CostCriterion> criterion,
                            double weight) {
  HCA_REQUIRE(criterion != nullptr, "null cost criterion");
  criteria_.emplace_back(std::move(criterion), weight);
}

double WeightedObjective::evaluate(const PreparedProblem& prepared,
                                   const PartialSolution& solution) const {
  double total = 0;
  for (const auto& [criterion, weight] : criteria_) {
    if (weight == 0.0) continue;
    total += weight * criterion->score(prepared, solution);
  }
  return total;
}

std::vector<std::pair<std::string, double>> WeightedObjective::breakdown(
    const PreparedProblem& prepared, const PartialSolution& solution) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [criterion, weight] : criteria_) {
    out.emplace_back(criterion->name(),
                     weight * criterion->score(prepared, solution));
  }
  return out;
}

}  // namespace hca::see
