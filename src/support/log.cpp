#include "support/log.hpp"

#include <iostream>

namespace hca {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* const kNames[] = {"TRACE", "DEBUG", "INFO", "WARN"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[hca:" << kNames[static_cast<int>(level)] << "] " << message
            << '\n';
}

}  // namespace hca
