#include "see/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "see/solution_ops.hpp"
#include "support/check.hpp"

namespace hca::see {

namespace {

template <typename T>
void copyInto(T* dst, const std::vector<T>& src) {
  if (!src.empty()) std::memcpy(dst, src.data(), src.size() * sizeof(T));
}

template <typename T>
void copyInto(T* dst, const T* src, std::size_t count) {
  if (count != 0) std::memcpy(dst, src, count * sizeof(T));
}

bool critKeyLess(const CritTerm& a, const CritTerm& b) { return a.key < b.key; }

}  // namespace

FlatSolution* FlatSolution::allocate(std::int32_t numNodes,
                                     std::int32_t numRelays,
                                     std::int32_t numPg, std::int32_t numArcs,
                                     std::int32_t inTotal,
                                     std::int32_t outTotal,
                                     std::int32_t flowTotal,
                                     std::int32_t critTotal,
                                     MonotonicArena& arena) {
  auto* flat = new (arena.allocate(sizeof(FlatSolution), alignof(FlatSolution)))
      FlatSolution;
  flat->numNodes_ = numNodes;
  flat->numRelays_ = numRelays;
  flat->numPg_ = numPg;
  flat->numArcs_ = numArcs;
  const auto n = static_cast<std::size_t>(numNodes);
  const auto r = static_cast<std::size_t>(numRelays);
  const auto p = static_cast<std::size_t>(numPg);
  const auto a = static_cast<std::size_t>(numArcs);
  flat->nodeCluster_ = arena.allocateArray<ClusterId>(n);
  flat->relayCluster_ = arena.allocateArray<ClusterId>(r);
  flat->usage_ = arena.allocateArray<machine::ResourceUsage>(p);
  flat->inNbrMask_ = arena.allocateArray<std::uint64_t>(p);
  flat->inCount_ = arena.allocateArray<std::int32_t>(p);
  flat->outCount_ = arena.allocateArray<std::int32_t>(p);
  flat->inOff_ = arena.allocateArray<std::int32_t>(p + 1);
  flat->inVals_ =
      arena.allocateArray<ValueId>(static_cast<std::size_t>(inTotal));
  flat->outOff_ = arena.allocateArray<std::int32_t>(p + 1);
  flat->outVals_ =
      arena.allocateArray<ValueId>(static_cast<std::size_t>(outTotal));
  flat->flowOff_ = arena.allocateArray<std::int32_t>(a + 1);
  flat->flowVals_ =
      arena.allocateArray<ValueId>(static_cast<std::size_t>(flowTotal));
  flat->critTerms_ =
      arena.allocateArray<CritTerm>(static_cast<std::size_t>(critTotal));
  flat->numCritTerms_ = critTotal;
  return flat;
}

const FlatSolution* FlatSolution::fromPartial(const PartialSolution& sol,
                                              const PreparedProblem& prepared,
                                              MonotonicArena& arena) {
  const auto& pg = *prepared.problem().pg;
  const auto numNodes =
      static_cast<std::int32_t>(sol.nodeCluster_.size());
  const auto numRelays =
      static_cast<std::int32_t>(sol.relayCluster_.size());
  const std::int32_t numPg = pg.numNodes();
  const std::int32_t numArcs = pg.numArcs();

  std::int32_t inTotal = 0;
  std::int32_t outTotal = 0;
  for (std::int32_t i = 0; i < numPg; ++i) {
    inTotal += static_cast<std::int32_t>(
        sol.inValues_[static_cast<std::size_t>(i)].size());
    outTotal += static_cast<std::int32_t>(
        sol.outValues_[static_cast<std::size_t>(i)].size());
  }
  std::int32_t flowTotal = 0;
  for (std::int32_t i = 0; i < numArcs; ++i) {
    flowTotal +=
        static_cast<std::int32_t>(sol.flow_.copiesOn(PgArcId(i)).size());
  }
  // Derive the critical-path terms by the same scan the full criterion
  // runs; the (WS position, operand position) visit order is ascending key
  // order, so the result is already sorted.
  std::vector<CritTerm> terms;
  for (const DdgNodeId n : prepared.problem().workingSet) {
    const ClusterId cn = sol.clusterOf(n);
    if (!cn.valid()) continue;
    for (const CritOperand& co : prepared.critOperands(n)) {
      const ClusterId cp = sol.clusterOf(co.src);
      if (!cp.valid() || cp == cn) continue;
      terms.push_back(
          CritTerm{PreparedProblem::critKey(prepared.wsIndex(n),
                                            co.operandIndex),
                   prepared.height(n) + 1});
    }
  }

  FlatSolution* flat = allocate(numNodes, numRelays, numPg, numArcs, inTotal,
                                outTotal, flowTotal,
                                static_cast<std::int32_t>(terms.size()),
                                arena);
  copyInto(flat->nodeCluster_, sol.nodeCluster_);
  copyInto(flat->relayCluster_, sol.relayCluster_);
  copyInto(flat->usage_, sol.usage_);
  copyInto(flat->inNbrMask_, sol.inNbrMask_);
  std::int32_t inOff = 0;
  std::int32_t outOff = 0;
  for (std::int32_t i = 0; i < numPg; ++i) {
    const auto& in = sol.inValues_[static_cast<std::size_t>(i)];
    const auto& out = sol.outValues_[static_cast<std::size_t>(i)];
    flat->inCount_[i] = static_cast<std::int32_t>(in.size());
    flat->outCount_[i] = static_cast<std::int32_t>(out.size());
    flat->inOff_[i] = inOff;
    flat->outOff_[i] = outOff;
    copyInto(flat->inVals_ + inOff, in);
    copyInto(flat->outVals_ + outOff, out);
    inOff += static_cast<std::int32_t>(in.size());
    outOff += static_cast<std::int32_t>(out.size());
  }
  flat->inOff_[numPg] = inOff;
  flat->outOff_[numPg] = outOff;
  std::int32_t flowOff = 0;
  for (std::int32_t i = 0; i < numArcs; ++i) {
    const auto& vals = sol.flow_.copiesOn(PgArcId(i));
    flat->flowOff_[i] = flowOff;
    copyInto(flat->flowVals_ + flowOff, vals);
    flowOff += static_cast<std::int32_t>(vals.size());
  }
  flat->flowOff_[numArcs] = flowOff;
  copyInto(flat->critTerms_, terms);
  flat->totalCopies_ = sol.flow_.totalCopies();
  flat->assigned_ = sol.assigned_;
  flat->objective_ = sol.objective_;
  return flat;
}

const FlatSolution* FlatSolution::fromDelta(const DeltaSolution& delta,
                                            MonotonicArena& arena) {
  const FlatSolution& parent = *delta.parent_;
  const std::int32_t numPg = parent.numPg_;
  const std::int32_t numArcs = parent.numArcs_;
  FlatSolution* flat = allocate(
      parent.numNodes_, parent.numRelays_, numPg, numArcs,
      parent.inOff_[numPg] + static_cast<std::int32_t>(delta.inAdds_.size()),
      parent.outOff_[numPg] + static_cast<std::int32_t>(delta.outAdds_.size()),
      parent.flowOff_[numArcs] +
          static_cast<std::int32_t>(delta.flowAdds_.size()),
      parent.numCritTerms_ + static_cast<std::int32_t>(delta.critAdds_.size()),
      arena);

  copyInto(flat->nodeCluster_, delta.nodeCluster_);
  copyInto(flat->relayCluster_, delta.relayCluster_);
  copyInto(flat->usage_, delta.usage_);
  copyInto(flat->inNbrMask_, delta.inNbrMask_);
  copyInto(flat->inCount_, delta.inCount_);
  copyInto(flat->outCount_, delta.outCount_);

  // CSR rebuild: parent slice first, then this delta's additions in append
  // order — the chronological list order the legacy mutation sequence
  // produces. `cursor_` tracks each row's next free slot.
  auto& cursor = delta.cursor_;
  const auto fillCsr = [&cursor](std::int32_t rows, const std::int32_t* counts,
                                 std::int32_t* off, ValueId* vals,
                                 const std::int32_t* parentOff,
                                 const ValueId* parentVals) {
    std::int32_t total = 0;
    for (std::int32_t i = 0; i < rows; ++i) {
      off[i] = total;
      total += counts[i];
      const std::int32_t parentLen = parentOff[i + 1] - parentOff[i];
      copyInto(vals + off[i], parentVals + parentOff[i],
               static_cast<std::size_t>(parentLen));
      cursor[static_cast<std::size_t>(i)] = off[i] + parentLen;
    }
    off[rows] = total;
  };

  fillCsr(numPg, flat->inCount_, flat->inOff_, flat->inVals_, parent.inOff_,
          parent.inVals_);
  for (const auto& [dst, v] : delta.inAdds_) {
    flat->inVals_[cursor[dst.index()]++] = v;
  }
  fillCsr(numPg, flat->outCount_, flat->outOff_, flat->outVals_,
          parent.outOff_, parent.outVals_);
  for (const auto& [src, v] : delta.outAdds_) {
    flat->outVals_[cursor[src.index()]++] = v;
  }

  // Flow rows: per-arc counts are not tracked densely (arcs outnumber PG
  // nodes); derive them into the offset array first.
  for (std::int32_t i = 0; i <= numArcs; ++i) {
    flat->flowOff_[i] = parent.flowOff_[i];
  }
  std::vector<std::int32_t>& arcExtra = delta.cursor_;  // reused scratch
  HCA_CHECK(arcExtra.size() >= static_cast<std::size_t>(numArcs + 1),
            "delta scratch not sized for arcs");
  std::fill(arcExtra.begin(),
            arcExtra.begin() + static_cast<std::ptrdiff_t>(numArcs), 0);
  for (const auto& [arc, v] : delta.flowAdds_) {
    (void)v;
    ++arcExtra[arc.index()];
  }
  std::int32_t flowTotal = 0;
  for (std::int32_t i = 0; i < numArcs; ++i) {
    const std::int32_t len =
        parent.flowOff_[i + 1] - parent.flowOff_[i] + arcExtra[i];
    const std::int32_t off = flowTotal;
    copyInto(flat->flowVals_ + off, parent.flowVals_ + parent.flowOff_[i],
             static_cast<std::size_t>(parent.flowOff_[i + 1] -
                                      parent.flowOff_[i]));
    arcExtra[i] = off + (parent.flowOff_[i + 1] - parent.flowOff_[i]);
    flat->flowOff_[i] = off;
    flowTotal += len;
  }
  flat->flowOff_[numArcs] = flowTotal;
  for (const auto& [arc, v] : delta.flowAdds_) {
    flat->flowVals_[arcExtra[arc.index()]++] = v;
  }

  // Merge the sorted parent terms with the (sorted) additions.
  std::vector<CritTerm> sortedAdds(delta.critAdds_);
  std::sort(sortedAdds.begin(), sortedAdds.end(), critKeyLess);
  std::merge(parent.critTerms_, parent.critTerms_ + parent.numCritTerms_,
             sortedAdds.begin(), sortedAdds.end(), flat->critTerms_,
             critKeyLess);

  flat->totalCopies_ = delta.totalCopies_;
  flat->assigned_ = delta.assigned_;
  flat->objective_ = delta.objective_;
  return flat;
}

void FlatSolution::toPartial(const PreparedProblem& prepared,
                             PartialSolution* out) const {
  const auto& pg = *prepared.problem().pg;
  out->nodeCluster_.assign(nodeCluster_, nodeCluster_ + numNodes_);
  out->relayCluster_.assign(relayCluster_, relayCluster_ + numRelays_);
  out->usage_.assign(usage_, usage_ + numPg_);
  out->inNbrMask_.assign(inNbrMask_, inNbrMask_ + numPg_);
  out->inValues_.assign(static_cast<std::size_t>(numPg_), {});
  out->outValues_.assign(static_cast<std::size_t>(numPg_), {});
  for (std::int32_t i = 0; i < numPg_; ++i) {
    out->inValues_[static_cast<std::size_t>(i)].assign(
        inVals_ + inOff_[i], inVals_ + inOff_[i + 1]);
    out->outValues_[static_cast<std::size_t>(i)].assign(
        outVals_ + outOff_[i], outVals_ + outOff_[i + 1]);
  }
  out->flow_ = machine::CopyFlow(pg);
  for (std::int32_t a = 0; a < numArcs_; ++a) {
    for (std::int32_t j = flowOff_[a]; j < flowOff_[a + 1]; ++j) {
      out->flow_.addCopy(PgArcId(a), flowVals_[j]);
    }
  }
  out->assigned_ = assigned_;
  out->objective_ = objective_;
}

bool FlatSolution::inValuesContain(ClusterId c, ValueId v) const {
  const std::int32_t begin = inOff_[c.index()];
  const std::int32_t end = inOff_[c.index() + 1];
  for (std::int32_t i = begin; i < end; ++i) {
    if (inVals_[i] == v) return true;
  }
  return false;
}

bool FlatSolution::flowContains(PgArcId arc, ValueId v) const {
  const std::int32_t begin = flowOff_[arc.index()];
  const std::int32_t end = flowOff_[arc.index() + 1];
  for (std::int32_t i = begin; i < end; ++i) {
    if (flowVals_[i] == v) return true;
  }
  return false;
}

void DeltaSolution::init(const PreparedProblem& prepared) {
  const auto& pg = *prepared.problem().pg;
  nodeCluster_.resize(
      static_cast<std::size_t>(prepared.problem().ddg->numNodes()));
  relayCluster_.resize(prepared.problem().relayValues.size());
  const auto p = static_cast<std::size_t>(pg.numNodes());
  usage_.resize(p);
  inNbrMask_.resize(p);
  inCount_.resize(p);
  outCount_.resize(p);
  // Scratch must cover both per-PG-node and per-arc cursor use.
  cursor_.resize(std::max(p, static_cast<std::size_t>(pg.numArcs())) + 1);
}

void DeltaSolution::reset(const FlatSolution* parent) {
  parent_ = parent;
  copyInto(nodeCluster_.data(), parent->nodeCluster_, nodeCluster_.size());
  copyInto(relayCluster_.data(), parent->relayCluster_, relayCluster_.size());
  copyInto(usage_.data(), parent->usage_, usage_.size());
  copyInto(inNbrMask_.data(), parent->inNbrMask_, inNbrMask_.size());
  copyInto(inCount_.data(), parent->inCount_, inCount_.size());
  copyInto(outCount_.data(), parent->outCount_, outCount_.size());
  inAdds_.clear();
  outAdds_.clear();
  flowAdds_.clear();
  critAdds_.clear();
  totalCopies_ = parent->totalCopies_;
  assigned_ = parent->assigned_;
  objective_ = 0.0;
}

bool DeltaSolution::valueDelivered(ClusterId dst, ValueId value) const {
  if (parent_->inValuesContain(dst, value)) return true;
  for (const auto& [d, v] : inAdds_) {
    if (d == dst && v == value) return true;
  }
  return false;
}

bool DeltaSolution::flowContains(PgArcId arc, ValueId value) const {
  if (parent_->flowContains(arc, value)) return true;
  for (const auto& [a, v] : flowAdds_) {
    if (a == arc && v == value) return true;
  }
  return false;
}

bool DeltaSolution::flowIsReal(PgArcId arc) const {
  if (parent_->flowIsReal(arc)) return true;
  for (const auto& [a, v] : flowAdds_) {
    (void)v;
    if (a == arc) return true;
  }
  return false;
}

bool DeltaSolution::addFlowCopy(PgArcId arc, ClusterId src, ClusterId dst,
                                ValueId value) {
  if (flowContains(arc, value)) return false;
  flowAdds_.emplace_back(arc, value);
  ++totalCopies_;
  inNbrMask_[dst.index()] |= detail::pgBit(src);
  if (!valueDelivered(dst, value)) {
    inAdds_.emplace_back(dst, value);
    ++inCount_[dst.index()];
  }
  bool outKnown = false;
  const std::int32_t begin = parent_->outOff_[src.index()];
  const std::int32_t end = parent_->outOff_[src.index() + 1];
  for (std::int32_t i = begin; i < end; ++i) {
    if (parent_->outVals_[i] == value) {
      outKnown = true;
      break;
    }
  }
  if (!outKnown) {
    for (const auto& [s, v] : outAdds_) {
      if (s == src && v == value) {
        outKnown = true;
        break;
      }
    }
  }
  if (!outKnown) {
    outAdds_.emplace_back(src, value);
    ++outCount_[src.index()];
  }
  return true;
}

std::uint64_t DeltaSolution::signature() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&](std::int32_t v) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  };
  for (const ClusterId c : nodeCluster_) mix(c.value());
  for (const ClusterId c : relayCluster_) mix(c.value());
  return h;
}

double DeltaSolution::criticalPathScore(const PreparedProblem& prepared) {
  std::sort(critAdds_.begin(), critAdds_.end(), critKeyLess);
  const auto maxHeight = static_cast<double>(prepared.maxWsHeight());
  const CritTerm* p = parent_->critTerms_;
  const CritTerm* pEnd = p + parent_->numCritTerms_;
  auto d = critAdds_.cbegin();
  const auto dEnd = critAdds_.cend();
  double penalty = 0;
  while (p != pEnd || d != dEnd) {
    const CritTerm& t =
        (d == dEnd || (p != pEnd && p->key < d->key)) ? *p++ : *d++;
    penalty += static_cast<double>(t.num) / maxHeight;
  }
  return penalty;
}

double IncrementalObjective::evaluate(const PreparedProblem& prepared,
                                      DeltaSolution& delta) const {
  // Mirrors WeightedObjective::evaluate over the construction order of the
  // standard criteria — ii, copy, load, critical, wiring — with the same
  // zero-weight skip, so the accumulation sequence is identical.
  double total = 0;
  if (weights_.iiEstimate != 0.0) {
    total += weights_.iiEstimate * iiEstimateScoreT(prepared, delta);
  }
  if (weights_.copyCount != 0.0) {
    total +=
        weights_.copyCount * static_cast<double>(delta.totalCopies());
  }
  if (weights_.loadBalance != 0.0) {
    total += weights_.loadBalance * loadBalanceScoreT(prepared, delta);
  }
  if (weights_.criticalPath != 0.0) {
    total += weights_.criticalPath * delta.criticalPathScore(prepared);
  }
  if (weights_.wiringSlack != 0.0) {
    total += weights_.wiringSlack * wiringSlackScoreT(prepared, delta);
  }
  return total;
}

}  // namespace hca::see
