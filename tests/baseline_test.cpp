#include <gtest/gtest.h>

#include "baseline/flat_ica.hpp"
#include "baseline/hierarchy_check.hpp"
#include "baseline/multilevel.hpp"
#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"

namespace hca::baseline {
namespace {

machine::DspFabricModel paperFabric(int n = 8, int m = 8, int k = 8) {
  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  return machine::DspFabricModel(config);
}

// --- hierarchy check ----------------------------------------------------------

TEST(HierarchyCheckTest, AcceptsDirectlyWirableHcaAssignment) {
  // The checker only derives *direct* producer->consumer flows (baseline
  // assignments have no relays), so it accepts an HCA result whenever that
  // result needed no relay routing — e.g. this small loop.
  ddg::DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto x = b.load(next, 0);
  const auto y = b.mul(x, b.cst(3));
  b.store(next, y, 64);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(ddg);
  ASSERT_TRUE(hca.legal) << hca.failureReason;
  const auto check = checkHierarchyFeasibility(ddg, model, hca.assignment);
  EXPECT_TRUE(check.legal) << check.failureReason;
  EXPECT_EQ(check.problemsChecked, 21);
}

TEST(HierarchyCheckTest, StricterThanRelayAwareLegality) {
  // On the Table 1 kernels the HCA result may rely on relay routing,
  // which the direct-wiring derivation cannot represent: the checker is
  // allowed to reject those, but must always produce a verdict with a
  // reason, and its pressure stats must be populated on success.
  const auto model = paperFabric();
  auto kernels = ddg::table1Kernels();
  for (std::size_t i = 0; i < 3; ++i) {
    const core::HcaDriver driver(model);
    const auto hca = driver.run(kernels[i].ddg);
    ASSERT_TRUE(hca.legal) << kernels[i].name;
    const auto check =
        checkHierarchyFeasibility(kernels[i].ddg, model, hca.assignment);
    if (check.legal) {
      EXPECT_EQ(check.problemsChecked, 21);
      EXPECT_GT(check.totalCopies, 0);
    } else {
      EXPECT_FALSE(check.failureReason.empty()) << kernels[i].name;
    }
  }
}

TEST(HierarchyCheckTest, SingleCnIsTrivial) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), b.add(x, b.cst(1)));
  const auto ddg = b.finish();
  const auto model = paperFabric();
  std::vector<CnId> assignment(static_cast<std::size_t>(ddg.numNodes()),
                               CnId::invalid());
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) {
      assignment[static_cast<std::size_t>(v)] = CnId(0);
    }
  }
  const auto check = checkHierarchyFeasibility(ddg, model, assignment);
  EXPECT_TRUE(check.legal) << check.failureReason;
  EXPECT_EQ(check.totalCopies, 0);
}

TEST(HierarchyCheckTest, DetectsOverloadedCnWiring) {
  // A consumer CN fed by three different CNs in three different sets needs
  // three input selects — more than the two a CN owns.
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  const auto y = b.load(b.cst(1), 0);
  const auto z = b.load(b.cst(2), 0);
  const auto s = b.add(b.add(x, y), z);
  b.store(b.cst(3), s);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  std::vector<CnId> assignment(static_cast<std::size_t>(ddg.numNodes()),
                               CnId::invalid());
  // Loads on CNs 0, 16, 32 (different sets); both adds + store on CN 48.
  int memCn = 0;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto op = ddg.node(DdgNodeId(v)).op;
    if (!ddg::isInstruction(op)) continue;
    if (op == ddg::Op::kLoad) {
      assignment[static_cast<std::size_t>(v)] = CnId(memCn);
      memCn += 16;
    } else {
      assignment[static_cast<std::size_t>(v)] = CnId(48);
    }
  }
  const auto check = checkHierarchyFeasibility(ddg, model, assignment);
  EXPECT_FALSE(check.legal);
  EXPECT_NE(check.failureReason.find("input wires"), std::string::npos);
}

TEST(HierarchyCheckTest, DetectsUnaryFanInViolation) {
  // Two producers on different CNs, both consumed outside their set on the
  // same... rather: directly craft a same-set case where two subclusters
  // feed the set's single used output wire. Simplest: two producers in
  // different subclusters of set 0, one consumer CN in set 1 for each, and
  // verify the checker at least accounts the traffic legally (mapper gives
  // each producer its own wire). This is the *legal* dual of the unary
  // fan-in rule; the illegal case cannot be expressed by an assignment
  // alone (wires are chosen by the mapper), so we assert legality here.
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  const auto y = b.load(b.cst(1), 0);
  b.store(b.cst(2), x);
  b.store(b.cst(3), y);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  std::vector<CnId> assignment(static_cast<std::size_t>(ddg.numNodes()),
                               CnId::invalid());
  int next = 0;
  const CnId spots[] = {CnId(0), CnId(4), CnId(16), CnId(20)};
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) {
      assignment[static_cast<std::size_t>(v)] = spots[next++];
    }
  }
  const auto check = checkHierarchyFeasibility(ddg, model, assignment);
  EXPECT_TRUE(check.legal) << check.failureReason;
  EXPECT_GT(check.totalCopies, 0);
}

// --- flat ICA -------------------------------------------------------------------

TEST(FlatIcaTest, SmallDdgAssignsAndRealizes) {
  ddg::DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto x = b.load(next, 0);
  b.store(next, b.mul(x, b.cst(3)), 64);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const auto result = runFlatIca(ddg, model);
  EXPECT_TRUE(result.assignmentLegal) << result.failureReason;
  EXPECT_TRUE(result.hierarchyLegal) << result.failureReason;
}

TEST(FlatIcaTest, ReportsSearchEffort) {
  const auto kernel = ddg::buildFir2Dim();
  const auto model = paperFabric();
  const auto result = runFlatIca(kernel.ddg, model);
  // 64 clusters: the flat engine evaluates many more candidates per item
  // than any hierarchical sub-problem (4 clusters each).
  EXPECT_GT(result.seeStats.candidatesEvaluated, 0);
  if (result.assignmentLegal) {
    EXPECT_GT(result.maxCnPressure, 0);
  }
}

TEST(FlatIcaTest, FlatLegalityDoesNotImplyHierarchyLegality) {
  // The paper's core argument: the K64 abstraction hides the MUX logic.
  // Record both verdicts on the Table 1 kernels; whenever the flat engine
  // claims success, the hierarchy check must still run (and may refute it).
  const auto model = paperFabric();
  int flatOk = 0, hierarchyOk = 0;
  for (const auto& kernel : ddg::table1Kernels()) {
    const auto result = runFlatIca(kernel.ddg, model);
    flatOk += result.assignmentLegal ? 1 : 0;
    hierarchyOk += result.hierarchyLegal ? 1 : 0;
    if (result.assignmentLegal) {
      EXPECT_GT(result.hierarchy.problemsChecked, 0) << kernel.name;
    }
  }
  EXPECT_LE(hierarchyOk, flatOk);
}

// --- multilevel partitioning ------------------------------------------------------

TEST(MultilevelTest, ProducesCompleteBalancedAssignment) {
  const auto kernel = ddg::buildIdctHor();
  const auto model = paperFabric();
  const auto result = runMultilevel(kernel.ddg, model);
  for (std::int32_t v = 0; v < kernel.ddg.numNodes(); ++v) {
    if (ddg::isInstruction(kernel.ddg.node(DdgNodeId(v)).op)) {
      EXPECT_TRUE(result.assignment[static_cast<std::size_t>(v)].valid());
    }
  }
  EXPECT_GT(result.maxCnLoad, 0);
  // 82 instructions over 64 CNs with 30% tolerance: no CN is a hotspot.
  EXPECT_LE(result.maxCnLoad, 8);
}

TEST(MultilevelTest, RefinementReducesCut) {
  const auto kernel = ddg::buildFir2Dim();
  const auto model = paperFabric();
  MultilevelOptions noRefine;
  noRefine.refinementPasses = 0;
  MultilevelOptions refine;
  refine.refinementPasses = 6;
  const auto before = runMultilevel(kernel.ddg, model, noRefine);
  const auto after = runMultilevel(kernel.ddg, model, refine);
  EXPECT_LE(after.cutEdges, before.cutEdges);
  EXPECT_GT(after.refinementMoves, 0);
}

TEST(MultilevelTest, HierarchyVerdictReported) {
  // The partitioner ignores MUX capacities; the check tells the truth
  // either way and must never crash.
  const auto model = paperFabric();
  for (const auto& kernel : ddg::table1Kernels()) {
    const auto result = runMultilevel(kernel.ddg, model);
    if (!result.hierarchyLegal) {
      EXPECT_FALSE(result.failureReason.empty()) << kernel.name;
    }
  }
}

TEST(MultilevelTest, Deterministic) {
  const auto kernel = ddg::buildMpeg2Inter();
  const auto model = paperFabric();
  const auto r1 = runMultilevel(kernel.ddg, model);
  const auto r2 = runMultilevel(kernel.ddg, model);
  EXPECT_EQ(r1.cutEdges, r2.cutEdges);
  for (std::size_t i = 0; i < r1.assignment.size(); ++i) {
    EXPECT_EQ(r1.assignment[i], r2.assignment[i]);
  }
}

}  // namespace
}  // namespace hca::baseline
