#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ddg/kernels.hpp"
#include "verify/coherency.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "machine/fault.hpp"
#include "support/check.hpp"
#include "machine/fault_inject.hpp"
#include "support/rng.hpp"

namespace hca::core {
namespace {

machine::DspFabricModel paperFabric(machine::FaultSet faults = {}) {
  machine::DspFabricConfig config;
  config.n = 8;
  config.m = 8;
  config.k = 8;
  return machine::DspFabricModel(config, std::move(faults));
}

/// Every instruction must sit on a surviving CN and the mapping must be
/// coherent — the acceptance bar for any degraded-mode legal result.
void expectSoundMapping(const ddg::Ddg& ddg,
                        const machine::DspFabricModel& model,
                        const HcaResult& result) {
  ASSERT_TRUE(result.legal);
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (!ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) continue;
    const CnId cn = result.assignment[static_cast<std::size_t>(v)];
    ASSERT_TRUE(cn.valid()) << "instruction " << v << " unassigned";
    EXPECT_TRUE(model.cnAlive(cn))
        << "instruction " << v << " placed on dead CN " << to_string(cn);
  }
  const auto violations = checkCoherency(ddg, model, result);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " coherency violations, first: "
      << (violations.empty() ? "" : violations.front().message);
}

// --- fault set parsing -------------------------------------------------------

TEST(FaultSetTest, ParseRoundTrips) {
  const auto faults =
      machine::FaultSet::parse("cn:3, wire:2:out wire:0.1:in,lane:1.2");
  EXPECT_EQ(faults.deadCns.size(), 1u);
  EXPECT_EQ(faults.deadWires.size(), 2u);
  EXPECT_EQ(faults.deadLanes.size(), 1u);
  EXPECT_EQ(faults.deadWires[0].problemPath, std::vector<int>{});
  EXPECT_EQ(faults.deadWires[0].child, 2);
  EXPECT_FALSE(faults.deadWires[0].input);
  EXPECT_EQ(faults.deadWires[1].problemPath, std::vector<int>{0});
  EXPECT_EQ(faults.deadWires[1].child, 1);
  EXPECT_TRUE(faults.deadWires[1].input);
  EXPECT_EQ(machine::FaultSet::parse(faults.toString()), faults);
  EXPECT_TRUE(machine::FaultSet::parse("").empty());
}

TEST(FaultSetTest, ParseRejectsMalformedTokens) {
  EXPECT_THROW(machine::FaultSet::parse("cn:"), InvalidArgumentError);
  EXPECT_THROW(machine::FaultSet::parse("cn:x"), InvalidArgumentError);
  EXPECT_THROW(machine::FaultSet::parse("wire:2"), InvalidArgumentError);
  EXPECT_THROW(machine::FaultSet::parse("wire:2:sideways"),
               InvalidArgumentError);
  EXPECT_THROW(machine::FaultSet::parse("lane:"), InvalidArgumentError);
  EXPECT_THROW(machine::FaultSet::parse("bogus:1"), InvalidArgumentError);
}

// --- fault-aware machine model ----------------------------------------------

TEST(FaultModelTest, DeadCnDisappearsFromLeafPatternGraph) {
  const auto model = paperFabric(machine::FaultSet::parse("cn:0"));
  EXPECT_FALSE(model.cnAlive(CnId(0)));
  EXPECT_TRUE(model.cnAlive(CnId(1)));
  EXPECT_EQ(model.aliveCns(), 63);
  const auto pg = model.patternGraphAt({0, 0});
  EXPECT_TRUE(pg.node(ClusterId(0)).dead);
  EXPECT_FALSE(pg.node(ClusterId(1)).dead);
  // The untouched sibling leaf keeps the stock per-level graph.
  const auto sibling = model.patternGraphAt({0, 1});
  for (std::int32_t v = 0; v < sibling.numNodes(); ++v) {
    EXPECT_FALSE(sibling.node(ClusterId(v)).dead);
  }
  EXPECT_TRUE(model.faultViabilityError().empty());
}

TEST(FaultModelTest, DeadWiresShrinkSurvivingBudgets) {
  const auto model =
      paperFabric(machine::FaultSet::parse("wire:2:in wire:2:in wire:2:out"));
  const auto spec = model.problemSpec({});
  ASSERT_TRUE(spec.touched);
  EXPECT_EQ(spec.inWiresOfChild[2], 6);   // 8 - 2 dead
  EXPECT_EQ(spec.outWiresOfChild[2], 7);  // 8 - 1 dead
  EXPECT_EQ(spec.inWiresOfChild[0], 8);
  EXPECT_TRUE(model.faultViabilityError().empty());
}

TEST(FaultModelTest, ZeroFaultModelIsByteIdenticalToStock) {
  const auto faulty = paperFabric();
  EXPECT_FALSE(faulty.hasFaults());
  for (int level = 0; level < faulty.numLevels(); ++level) {
    // patternGraphAt must be exactly the per-level graph.
    std::vector<int> path(static_cast<std::size_t>(level), 0);
    const auto a = faulty.patternGraphAt(path);
    const auto b = faulty.patternGraph(level);
    ASSERT_EQ(a.numNodes(), b.numNodes());
    for (std::int32_t v = 0; v < a.numNodes(); ++v) {
      EXPECT_EQ(a.node(ClusterId(v)).dead, b.node(ClusterId(v)).dead);
      EXPECT_EQ(a.node(ClusterId(v)).inWireCap, b.node(ClusterId(v)).inWireCap);
      EXPECT_EQ(a.node(ClusterId(v)).outWireCap,
                b.node(ClusterId(v)).outWireCap);
    }
  }
}

TEST(FaultModelTest, DisconnectedFabricIsDetected) {
  // All 8 input wires of root child 2 dead: its whole subtree is alive but
  // unreachable.
  std::string tokens;
  for (int i = 0; i < 8; ++i) tokens += "wire:2:in ";
  const auto model = paperFabric(machine::FaultSet::parse(tokens));
  EXPECT_FALSE(model.faultViabilityError().empty());
}

// --- deterministic injection harness ----------------------------------------

TEST(FaultInjectTest, SameSeedLargerCountIsSuperset) {
  const auto model = paperFabric();
  Rng rngA(42);
  Rng rngB(42);
  machine::FaultInjectParams a, b;
  a.deadCns = 2;
  b.deadCns = 6;
  const auto small = machine::injectRandomFaults(rngA, model, a);
  const auto large = machine::injectRandomFaults(rngB, model, b);
  ASSERT_EQ(small.deadCns.size(), 2u);
  ASSERT_EQ(large.deadCns.size(), 6u);
  for (std::size_t i = 0; i < small.deadCns.size(); ++i) {
    EXPECT_EQ(small.deadCns[i], large.deadCns[i]);
  }
}

TEST(FaultInjectTest, InjectedSetsAreAlwaysViable) {
  const auto model = paperFabric();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    machine::FaultInjectParams params;
    params.deadCns = static_cast<int>(seed % 12);
    params.deadWires = static_cast<int>(seed % 5);
    params.deadLanes = static_cast<int>(seed % 3);
    const auto faults = machine::injectRandomFaults(rng, model, params);
    const machine::DspFabricModel injected(model.config(), faults);
    EXPECT_TRUE(injected.faultViabilityError().empty())
        << "seed " << seed << ": " << injected.faultViabilityError();
  }
}

// --- MII bound degrades monotonically with the fault count -------------------

TEST(FaultMiiTest, UnifiedMiiResMonotoneUnderNestedCnFaults) {
  const auto kernels = ddg::table1Kernels();
  for (const auto& kernel : kernels) {
    const auto stats = kernel.ddg.stats();
    int previous = 0;
    for (const int k : {0, 1, 2, 4, 8, 16, 32}) {
      Rng rng(7);  // same seed => nested fault sets
      machine::FaultInjectParams params;
      params.deadCns = k;
      const auto faults =
          machine::injectRandomFaults(rng, paperFabric(), params);
      const auto model = paperFabric(faults);
      const int mii = unifiedMiiRes(stats, model);
      EXPECT_GE(mii, previous)
          << kernel.name << ": miiRes dropped from " << previous << " to "
          << mii << " when going to " << k << " dead CNs";
      previous = mii;
    }
  }
}

// --- end-to-end degraded-mode sweep over the Table 1 kernels -----------------

class KernelFaultSweepTest : public ::testing::TestWithParam<int> {
 protected:
  ddg::Kernel kernel() const {
    auto kernels = ddg::table1Kernels();
    return std::move(kernels[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(KernelFaultSweepTest, DeadClusterSweepNeverThrowsOrHangs) {
  const auto k = kernel();
  // h264deblocking is not wireable at these budgets even fault-free (see
  // hca_test.cpp); it rides the sweep with a tight deadline to prove the
  // "structured report, never a hang" contract on a hard instance.
  const bool hard = k.ddg.stats().numInstructions > 100;
  for (const int deadCns : {1, 2, 4, 8}) {
    Rng rng(0xFA17 + static_cast<std::uint64_t>(GetParam()));
    machine::FaultInjectParams params;
    params.deadCns = deadCns;
    const auto faults =
        machine::injectRandomFaults(rng, paperFabric(), params);
    const auto model = paperFabric(faults);
    HcaOptions options;
    options.failurePolicy = FailurePolicy::kDegrade;
    options.deadlineMs = hard ? 3000 : 60000;
    const HcaDriver driver(model, options);
    HcaResult result;
    ASSERT_NO_THROW(result = driver.run(k.ddg))
        << k.name << " with " << deadCns << " dead CNs";
    if (result.legal) {
      expectSoundMapping(k.ddg, model, result);
    } else {
      ASSERT_NE(result.failure, nullptr)
          << k.name << ": illegal result without a failure report: "
          << result.failureReason;
      EXPECT_FALSE(result.failure->message.empty());
    }
    if (!hard && deadCns <= 2) {
      // The easy kernels must actually survive light damage, not just
      // fail gracefully.
      EXPECT_TRUE(result.legal)
          << k.name << " with " << deadCns
          << " dead CNs: " << result.failureReason;
    }
  }
}

TEST_P(KernelFaultSweepTest, DeadWireAndLaneSweepNeverThrowsOrHangs) {
  const auto k = kernel();
  const bool hard = k.ddg.stats().numInstructions > 100;
  Rng rng(0xBEEF + static_cast<std::uint64_t>(GetParam()));
  machine::FaultInjectParams params;
  params.deadCns = 1;
  params.deadWires = 3;
  params.deadLanes = 2;
  const auto faults = machine::injectRandomFaults(rng, paperFabric(), params);
  const auto model = paperFabric(faults);
  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  options.deadlineMs = hard ? 3000 : 60000;
  const HcaDriver driver(model, options);
  HcaResult result;
  ASSERT_NO_THROW(result = driver.run(k.ddg)) << k.name;
  if (result.legal) {
    expectSoundMapping(k.ddg, model, result);
  } else {
    ASSERT_NE(result.failure, nullptr) << result.failureReason;
  }
}

std::string kernelName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Table1, KernelFaultSweepTest,
                         ::testing::Range(0, 4), kernelName);

// --- failure policy ----------------------------------------------------------

TEST(FailurePolicyTest, DisconnectedFabricStrictThrowsDegradeReports) {
  std::string tokens;
  for (int i = 0; i < 8; ++i) tokens += "wire:1:in ";
  const auto faults = machine::FaultSet::parse(tokens);
  const auto kernels = ddg::table1Kernels();
  const auto& ddg = kernels[0].ddg;

  EXPECT_THROW(HcaDriver(paperFabric(faults)).run(ddg), InvalidArgumentError);

  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  HcaResult result;
  ASSERT_NO_THROW(result = HcaDriver(paperFabric(faults), options).run(ddg));
  EXPECT_FALSE(result.legal);
  ASSERT_NE(result.failure, nullptr);
  EXPECT_EQ(result.failure->cause, FailureCause::kDisconnectedFabric);
  EXPECT_NE(result.failure->toString().find("disconnected"),
            std::string::npos);
}

TEST(FailurePolicyTest, ZeroFaultDegradeRunIsByteIdentical) {
  const auto kernels = ddg::table1Kernels();
  const auto& ddg = kernels[0].ddg;  // fir2dim
  const auto model = paperFabric();

  const HcaResult plain = HcaDriver(model).run(ddg);
  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  const HcaResult degrade = HcaDriver(model, options).run(ddg);

  ASSERT_TRUE(plain.legal);
  ASSERT_TRUE(degrade.legal);
  EXPECT_TRUE(degrade.fallbackUsed.empty());
  EXPECT_EQ(degrade.failure, nullptr);
  EXPECT_EQ(plain.assignment, degrade.assignment);
  EXPECT_EQ(plain.reconfig.encode(), degrade.reconfig.encode());
  EXPECT_EQ(plain.stats.outerAttempts, degrade.stats.outerAttempts);
  EXPECT_EQ(plain.stats.achievedTargetIi, degrade.stats.achievedTargetIi);
  EXPECT_EQ(plain.stats.attemptsCancelled, degrade.stats.attemptsCancelled);
  EXPECT_EQ(plain.stats.problemsSolved, degrade.stats.problemsSolved);
  EXPECT_EQ(plain.stats.backtrackAttempts, degrade.stats.backtrackAttempts);
  EXPECT_EQ(plain.stats.statesExplored, degrade.stats.statesExplored);
  EXPECT_EQ(plain.stats.candidatesEvaluated,
            degrade.stats.candidatesEvaluated);
  EXPECT_EQ(plain.stats.routeInvocations, degrade.stats.routeInvocations);
  EXPECT_EQ(plain.stats.maxWirePressure, degrade.stats.maxWirePressure);
}

// --- deadlines and beam budgets ----------------------------------------------

ddg::Ddg hugeDdg() {
  Rng rng(99);
  ddg::RandomDdgParams params;
  params.numInstructions = 500;
  params.memorySize = 1024;
  return ddg::randomDdg(rng, params);
}

TEST(DeadlineTest, TinyDeadlineReturnsWithCancelledAttempts) {
  const auto ddg = hugeDdg();
  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  options.deadlineMs = 10;
  const HcaDriver driver(paperFabric(), options);
  HcaResult result;
  ASSERT_NO_THROW(result = driver.run(ddg));
  ASSERT_FALSE(result.legal);
  ASSERT_NE(result.failure, nullptr);
  EXPECT_EQ(result.failure->cause, FailureCause::kDeadlineExpired);
  EXPECT_GE(result.stats.attemptsCancelled, 1);
}

TEST(DeadlineTest, ParallelSweepHonorsDeadline) {
  const auto ddg = hugeDdg();
  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  options.deadlineMs = 10;
  options.numThreads = 4;
  const HcaDriver driver(paperFabric(), options);
  HcaResult result;
  ASSERT_NO_THROW(result = driver.run(ddg));
  ASSERT_FALSE(result.legal);
  ASSERT_NE(result.failure, nullptr);
  EXPECT_EQ(result.failure->cause, FailureCause::kDeadlineExpired);
  EXPECT_GE(result.stats.attemptsCancelled, 1);
}

TEST(DeadlineTest, StrictPolicyAlsoStopsAtDeadline) {
  // The deadline is orthogonal to the failure policy: under kStrict the
  // run still returns (no report, just failureReason).
  const auto ddg = hugeDdg();
  HcaOptions options;
  options.deadlineMs = 10;
  const HcaDriver driver(paperFabric(), options);
  HcaResult result;
  ASSERT_NO_THROW(result = driver.run(ddg));
  EXPECT_FALSE(result.legal);
  EXPECT_EQ(result.failure, nullptr);
  EXPECT_FALSE(result.failureReason.empty());
}

TEST(BeamBudgetTest, MaxBeamStepsBoundsEveryAttempt) {
  const auto kernels = ddg::table1Kernels();
  const auto& ddg = kernels[0].ddg;
  HcaOptions options;
  options.failurePolicy = FailurePolicy::kDegrade;
  options.maxBeamSteps = 1;  // starve every SEE attempt
  options.targetIiSlack = 1;
  options.searchProfiles = 1;
  const HcaDriver driver(paperFabric(), options);
  HcaResult result;
  ASSERT_NO_THROW(result = driver.run(ddg));
  if (!result.legal) {
    ASSERT_NE(result.failure, nullptr);
    EXPECT_EQ(result.failure->cause, FailureCause::kNoLegalMapping);
    EXPECT_FALSE(result.failure->escalationsTried.empty());
  }
}

}  // namespace
}  // namespace hca::core
