// Fixture: flagged by locking (both shapes) and no other rule. The test
// maps this file to src/see/bad_locking.cpp.
#include <mutex>

#include "support/mutex.hpp"

namespace hca::see {

// Shape 1: raw std::mutex outside support/.
struct FixtureCounter {
  std::mutex m;
  int value = 0;
};

// Shape 2: an hca::Mutex member with no HCA_GUARDED_BY user in this file.
struct FixtureQueue {
  Mutex mu_;
  int depth = 0;
};

}  // namespace hca::see
