#pragma once

#include <vector>

#include "machine/pattern_graph.hpp"
#include "mapper/mapper.hpp"
#include "see/problem.hpp"
#include "support/ids.hpp"

/// The audit-trail record of one solved sub-problem: the pattern graph and
/// copy flow (machine), the working-set assignment (SEE) and the wire
/// mapping (mapper) of one node of the decomposition tree. The HCA driver
/// keeps one per sub-problem; the flat baselines materialize the same shape
/// so their assignments can be coherency-checked like a driver run. The
/// struct lives here — with the mapper, the last stage that fills it —
/// because both producers (hca driver, baselines) and the verifier consume
/// it, and baseline/ sits below hca/ in the module DAG.
namespace hca::mapper {

/// Occupancy snapshot of one PG cluster after single-level assignment.
struct ClusterSummary {
  ClusterId cluster;
  int instructions = 0;  // WS ops + parked relays
  int aluOps = 0;
  int agOps = 0;
  int distinctValuesIn = 0;
  int distinctValuesOut = 0;
};

struct ProblemRecord {
  std::vector<int> path;  // problem path: one child index per solved level
  int level = 0;
  bool leaf = false;

  machine::PatternGraph pg;  // including boundary nodes
  machine::CopyFlow flow;    // copy flow after assignment
  std::vector<DdgNodeId> workingSet;
  std::vector<ValueId> relayValues;
  /// Cluster (child index) of each WS node, parallel to workingSet.
  std::vector<int> wsChild;
  /// Child index parking each relay value, parallel to relayValues.
  std::vector<int> relayChild;

  std::vector<ClusterSummary> clusterSummaries;
  MapResult mapResult;
  see::SeeStats seeStats;
};

}  // namespace hca::mapper
