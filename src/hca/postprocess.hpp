#pragma once

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"
#include "mapper/final_mapping.hpp"

/// Post-processing (paper Section 4.1, last paragraph): exploits the leaf
/// placements to build the final DDG — every node is pinned to a
/// computation node, and `recv` primitives are inserted as new DDG nodes
/// that perform the migration of operands between CNs. A consumer reading a
/// value produced on another CN is rewritten to read its CN-local recv;
/// relay placements materialize as receive-and-forward recvs.
///
/// The FinalMapping struct itself lives in mapper/final_mapping.hpp (the
/// sched/sim consumers depend on it without depending on the driver); this
/// header owns the driver-side construction and re-exports the alias the
/// core pipeline has always used.
namespace hca::core {

using mapper::FinalMapping;

/// Requires a legal HcaResult. The returned DDG validates and is
/// functionally equivalent to the original (recv is the identity).
FinalMapping buildFinalMapping(const ddg::Ddg& ddg,
                               const machine::DspFabricModel& model,
                               const HcaResult& result);

}  // namespace hca::core
