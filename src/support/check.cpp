#include "support/check.hpp"

namespace hca::detail {

[[noreturn]] void throwCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  if (std::string(kind) == "precondition") {
    throw InvalidArgumentError(os.str());
  }
  throw InternalError(os.str());
}

}  // namespace hca::detail
