#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "hca/records.hpp"
#include "machine/dspfabric.hpp"
#include "machine/reconfig.hpp"
#include "see/engine.hpp"

/// Hierarchical Cluster Assignment (paper Section 4).
///
/// The driver decomposes the ICA problem along the interconnect hierarchy:
/// at each level it runs the Space Exploration Engine on a 4-ish-node
/// Pattern Graph (completed with the boundary input/output nodes derived
/// from the parent's Inter-Level Interfaces), hands the resulting copy flow
/// to the Mapper — which distributes copies over the physical wires and
/// produces the children's ILIs — and recurses until the computation-node
/// level is reached. Pass-through values (created by route allocation at an
/// outer level) travel down as relay values and are parked on a concrete CN.
namespace hca::core {

struct HcaOptions {
  HcaOptions() {
    // The hierarchical problems are small (4-node pattern graphs); a
    // wider-than-default beam is cheap and pays off in legality.
    see.beamWidth = 16;
    see.candidateKeep = 10;
  }

  see::SeeOptions see;
  /// Constraint tightening for problems whose children are leaf crossbars:
  /// the in-neighbor budget of each sub-cluster is capped so the wires
  /// funneled into it stay consumable by its CNs (each CN has only
  /// `cnInWires` static selects, and intra-leaf chains consume selects
  /// too). <= 0 disables the tightening and uses the raw MUX capacity.
  int leafParentMaxInNeighbors = 4;
  /// Hierarchical backtracking: when a child sub-problem turns out to be
  /// infeasible, up to this many runner-up assignments from the parent's
  /// final search frontier are tried before the parent itself fails.
  int maxAlternatives = 12;
  /// Global cap on backtracking attempts across the whole problem tree.
  int backtrackBudget = 256;
  /// Outer search loop: like modulo scheduling's II search, the driver
  /// first maps at the loop's iniMII and, when no legal clusterization is
  /// found, re-runs with one more cycle of target slack (which lets the
  /// cost function pack clusters harder and relaxes the wiring), up to
  /// iniMII + targetIiSlack. 0 = single attempt at iniMII.
  int targetIiSlack = 6;
  /// Heuristic profiles tried per target II (chain grouping on/off, beam
  /// variants). 1 = only the configured SeeOptions.
  int searchProfiles = 5;
  /// Last-resort fallback: when no legal clusterization is found, re-run
  /// against a bandwidth-degraded copy of the machine (N=M=K=2). Tighter
  /// budgets force the search into heavily packed, sparsely wired mappings
  /// — and any mapping that fits the degraded wires trivially fits the
  /// real ones. Trades MII for guaranteed-sound legality.
  bool degradedFallback = true;
};

struct RelayPlacement {
  ValueId value;
  CnId cn;
};

struct HcaStats {
  int problemsSolved = 0;
  int backtrackAttempts = 0;
  int outerAttempts = 0;  ///< (target II, profile) combinations tried
  int achievedTargetIi = 0;  ///< target II of the successful attempt
  std::int64_t statesExplored = 0;
  std::int64_t candidatesEvaluated = 0;
  std::int64_t routeInvocations = 0;
  int maxWirePressure = 0;  // max values time-sharing one wire, any level
};

struct HcaResult {
  bool legal = false;
  std::string failureReason;

  /// Final placement: DDG node -> computation node (invalid for consts).
  std::vector<CnId> assignment;
  std::vector<RelayPlacement> relays;

  /// Complete reconfiguration stream (all levels).
  machine::ReconfigurationProgram reconfig;

  std::vector<std::unique_ptr<ProblemRecord>> records;
  /// On failure: the description of the sub-problem that could not be
  /// solved (its records entry may have been rolled back by backtracking).
  std::unique_ptr<ProblemRecord> failureRecord;
  HcaStats stats;
};

class HcaDriver {
 public:
  HcaDriver(machine::DspFabricModel model, HcaOptions options = {});

  [[nodiscard]] HcaResult run(const ddg::Ddg& ddg) const;

  [[nodiscard]] const machine::DspFabricModel& model() const { return model_; }

 private:
  struct Boundary {
    std::vector<mapper::WireValues> inputs;
    std::vector<mapper::WireValues> outputs;
  };

  /// Solves the sub-problem at `path`; returns false (and fills
  /// result.failureReason) on the first illegality.
  bool solve(const ddg::Ddg& ddg, const std::vector<int>& path,
             std::vector<DdgNodeId> workingSet,
             std::vector<ValueId> relayValues, const Boundary& boundary,
             const see::SeeOptions& seeOptions, HcaResult& result) const;

  machine::DspFabricModel model_;
  HcaOptions options_;
};

}  // namespace hca::core
