#pragma once

#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "ddg/interp.hpp"
#include "support/rng.hpp"

/// The four multimedia loop kernels of the paper's evaluation (Section 5,
/// Table 1), rebuilt as instruction-level DDGs.
///
/// The paper's DDGs were produced by an STMicroelectronics compiler
/// front-end we do not have; these builders reconstruct the same kernels
/// (DSPStone fir2dim, OpenDivx horizontal IDCT, MPEG-2 interpolation, H.264
/// row deblocking) so that the three published *input* columns of Table 1 —
/// N_Instr, MIIRec and MIIRes — are reproduced exactly under the default
/// `LatencyModel` and the 64-CN / 8-DMA-slot DSPFabric resource model. Each
/// builder's comment carries the full instruction tally. The DDGs are
/// executable: `interpConfig()` supplies a memory image under which every
/// address stays in bounds for `safeIterations`.
namespace hca::ddg {

struct Table1Row {
  int nInstr = 0;
  int miiRec = 0;
  int miiRes = 0;
  bool legal = true;
  int finalMii = 0;  // the paper's measured result (for comparison only)
};

struct Kernel {
  std::string name;
  std::string description;
  Ddg ddg;
  Table1Row paper;       // the row the paper reports for this loop
  int memorySize = 0;    // synthetic memory image size (words)
  int safeIterations = 0;  // iterations guaranteed in-bounds
};

/// Builds one interpretable memory image: input regions filled with a
/// deterministic pseudo-random byte pattern (seeded), output regions zeroed.
InterpConfig kernelInterpConfig(const Kernel& kernel, int iterations,
                                std::uint64_t seed = 1);

Kernel buildFir2Dim();          // DSPStone 2-D FIR, 57 instructions
Kernel buildIdctHor();          // OpenDivx horizontal IDCT, 82 instructions
Kernel buildMpeg2Inter();       // MPEG-2 interpolation filter, 79 instructions
Kernel buildH264Deblocking();   // H.264 row deblocking, 214 instructions

/// All four kernels in the order of Table 1.
std::vector<Kernel> table1Kernels();

/// Random loop-body DDG generator for property tests: layered DAG plus a
/// few loop-carried induction cycles. Memory traffic is alias-free by
/// construction (the paper's kernels have "low memory aliasing" and the
/// DDG carries no memory-dependence edges): loads read the lower half of
/// the image, and each store node owns a private slice of the upper half,
/// so pipelined execution orders cannot change the result. memorySize must
/// be a power of two >= 64.
struct RandomDdgParams {
  int numInstructions = 60;
  int memorySize = 256;
  double memOpFraction = 0.15;   // fraction of instructions that are loads/stores
  double carryFraction = 0.10;   // fraction of operands made loop-carried
  int maxDistance = 2;
};

Ddg randomDdg(Rng& rng, const RandomDdgParams& params);

}  // namespace hca::ddg
