#include <gtest/gtest.h>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "sched/modulo.hpp"
#include "sim/dma.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace hca {
namespace {

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

/// Full tool chain: HCA -> final mapping -> modulo schedule.
struct Pipeline {
  ddg::Kernel kernel;
  machine::DspFabricModel model = paperFabric();
  core::HcaResult hca;
  core::FinalMapping mapping;
  sched::ModuloResult sched;
  core::MiiReport mii;

  explicit Pipeline(ddg::Kernel k) : kernel(std::move(k)) {
    const core::HcaDriver driver(model);
    hca = driver.run(kernel.ddg);
    HCA_REQUIRE(hca.legal, "HCA failed: " << hca.failureReason);
    mapping = core::buildFinalMapping(kernel.ddg, model, hca);
    mii = core::computeMii(kernel.ddg, model, hca);
    sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  }
};

// --- scheduler on the real kernels -------------------------------------------

class PipelineTest : public ::testing::TestWithParam<int> {
 protected:
  static Pipeline& pipeline() {
    static std::map<int, std::unique_ptr<Pipeline>> cache;
    auto& entry = cache[GetParam()];
    if (!entry) {
      auto kernels = ddg::table1Kernels();
      entry = std::make_unique<Pipeline>(
          std::move(kernels[static_cast<std::size_t>(GetParam())]));
    }
    return *entry;
  }
};

TEST_P(PipelineTest, ScheduleExistsAndValidates) {
  auto& p = pipeline();
  ASSERT_TRUE(p.sched.ok) << p.sched.failureReason;
  const auto violations =
      sched::validateSchedule(p.mapping, p.model, p.sched.schedule);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

TEST_P(PipelineTest, AchievedIiAtLeastMii) {
  auto& p = pipeline();
  ASSERT_TRUE(p.sched.ok);
  EXPECT_GE(p.sched.schedule.ii, p.mii.finalMii);
  // And within a reasonable factor: the MII estimate is meaningful.
  EXPECT_LE(p.sched.schedule.ii, 3 * p.mii.finalMii + 4)
      << "schedule II " << p.sched.schedule.ii << " vs MII "
      << p.mii.finalMii;
}

TEST_P(PipelineTest, SimulatorMatchesReferenceInterpreter) {
  auto& p = pipeline();
  ASSERT_TRUE(p.sched.ok);
  const int iterations = std::min(p.kernel.safeIterations, 8);
  sim::SimConfig config;
  config.iterations = iterations;
  config.memory = ddg::kernelInterpConfig(p.kernel, iterations).memory;
  std::string why;
  EXPECT_TRUE(sim::matchesReference(p.kernel.ddg, p.mapping, p.model,
                                    p.sched.schedule, config, &why))
      << why;
}

TEST_P(PipelineTest, ThroughputApproachesIi) {
  auto& p = pipeline();
  ASSERT_TRUE(p.sched.ok);
  const int iterations = std::min(p.kernel.safeIterations, 8);
  sim::SimConfig config;
  config.iterations = iterations;
  config.memory = ddg::kernelInterpConfig(p.kernel, iterations).memory;
  const auto result = sim::simulate(p.mapping, p.model, p.sched.schedule,
                                    config);
  EXPECT_EQ(result.cycles,
            (iterations - 1) * p.sched.schedule.ii +
                p.sched.schedule.length);
}

std::string pipelineName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Kernels, PipelineTest, ::testing::Range(0, 3),
                         pipelineName);

// --- scheduler unit behaviour ---------------------------------------------------

core::FinalMapping tinyMapping(const machine::DspFabricModel& model,
                               ddg::Ddg ddg) {
  const core::HcaDriver driver(model);
  auto hca = driver.run(ddg);
  HCA_REQUIRE(hca.legal, hca.failureReason);
  return core::buildFinalMapping(ddg, model, hca);
}

TEST(ModuloTest, RecurrenceLimitedLoop) {
  // acc = mac(acc, x, y) carried: II can never go below the mac latency.
  ddg::DdgBuilder b;
  auto acc = b.carry(0);
  const auto x = b.load(b.cst(0), 0);
  const auto next = b.mac(acc, x, b.cst(3));
  b.close(acc, next, 1);
  b.store(b.cst(1), next);
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  const auto result = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.schedule.ii, model.config().latency.mac);
  EXPECT_TRUE(
      sched::validateSchedule(mapping, model, result.schedule).empty());
}

TEST(ModuloTest, StartIiRespected) {
  ddg::DdgBuilder b;
  b.store(b.cst(0), b.cst(7));
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  const auto result = sched::moduloSchedule(mapping, model, 5);
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.schedule.ii, 5);
}

TEST(ModuloTest, DmaBoundForcesIi) {
  // 16 independent loads + stores on distinct CNs: the 8-slot DMA allows
  // at most 8 requests per cycle, so II >= ceil(32/8) = 4.
  ddg::DdgBuilder b;
  for (int i = 0; i < 16; ++i) {
    const auto x = b.load(b.cst(i), 0);
    b.store(b.cst(64 + i), x);
  }
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  const auto result = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.schedule.ii, 4);
  EXPECT_TRUE(
      sched::validateSchedule(mapping, model, result.schedule).empty());
}

TEST(ModuloTest, EdgeLatencyAddsTransport) {
  const auto model = paperFabric();
  const auto kernel = ddg::buildFir2Dim();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(kernel.ddg);
  ASSERT_TRUE(hca.legal);
  const auto mapping = core::buildFinalMapping(kernel.ddg, model, hca);
  bool sawTransport = false;
  for (std::int32_t v = 0; v < mapping.finalDdg.numNodes(); ++v) {
    const auto& node = mapping.finalDdg.node(DdgNodeId(v));
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(mapping.finalDdg.node(operand.src).op)) {
        continue;
      }
      const int lat =
          sched::edgeLatency(mapping, model, operand.src, DdgNodeId(v));
      const int base =
          model.config().latency.of(mapping.finalDdg.node(operand.src).op);
      EXPECT_GE(lat, base);
      if (lat > base) sawTransport = true;
    }
  }
  EXPECT_TRUE(sawTransport);  // recvs read across CNs
}

TEST(ModuloTest, ValidateCatchesTampering) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), b.add(x, b.cst(1)));
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  auto result = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(result.ok);
  // Move the consumer before its producer.
  for (std::int32_t v = 0; v < mapping.finalDdg.numNodes(); ++v) {
    if (mapping.finalDdg.node(DdgNodeId(v)).op == ddg::Op::kStore) {
      result.schedule.cycleOf[static_cast<std::size_t>(v)] = 0;
    }
  }
  EXPECT_FALSE(
      sched::validateSchedule(mapping, model, result.schedule).empty());
}

// --- simulator unit behaviour ---------------------------------------------------

TEST(SimulatorTest, AccumulatorPipelines) {
  ddg::DdgBuilder b;
  auto acc = b.carry(0, "acc");
  const auto next = b.add(acc, b.cst(5));
  b.close(acc, next, 1);
  b.store(b.cst(0), next);
  auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(ddg);
  ASSERT_TRUE(hca.legal);
  const auto mapping = core::buildFinalMapping(ddg, model, hca);
  const auto sched = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(sched.ok);
  sim::SimConfig config;
  config.iterations = 6;
  config.memory.assign(4, 0);
  const auto result = sim::simulate(mapping, model, sched.schedule, config);
  EXPECT_EQ(result.memory[0], 30);  // 6 iterations of +5
  EXPECT_EQ(result.storeTrace.size(), 6u);
}

TEST(SimulatorTest, RejectsInvalidSchedule) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), x);
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  auto sched = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(sched.ok);
  sched.schedule.cycleOf.back() = 0;  // clobber
  sched.schedule.cycleOf.front() = 0;
  sim::SimConfig config;
  config.iterations = 1;
  config.memory.assign(4, 0);
  EXPECT_THROW(sim::simulate(mapping, model, sched.schedule, config),
               Error);
}

TEST(SimulatorTest, OutOfBoundsAccessThrows) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(100), 0);
  b.store(b.cst(1), x);
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  const auto sched = sched::moduloSchedule(mapping, model, 1);
  ASSERT_TRUE(sched.ok);
  sim::SimConfig config;
  config.iterations = 1;
  config.memory.assign(4, 0);
  EXPECT_THROW(sim::simulate(mapping, model, sched.schedule, config),
               InvalidArgumentError);
}

// --- DMA occupancy model ---------------------------------------------------------

TEST(DmaProfileTest, ScheduledKernelsStayWithinFifoCapacity) {
  // validateSchedule already caps accepts per cycle at dmaSlots; the FIFO
  // bound (slots * serviceLatency) must then hold by construction.
  auto kernels = ddg::table1Kernels();
  for (int i = 0; i < 3; ++i) {
    Pipeline p(std::move(kernels[static_cast<std::size_t>(i)]));
    ASSERT_TRUE(p.sched.ok);
    const auto profile =
        sim::profileDma(p.mapping, p.model, p.sched.schedule);
    EXPECT_LE(profile.peakAccepts, p.model.config().dmaSlots)
        << p.kernel.name;
    EXPECT_TRUE(profile.withinCapacity(p.model.config().dmaSlots))
        << p.kernel.name << ": " << profile.toString();
    EXPECT_EQ(profile.fifoCapacity,
              p.model.config().dmaSlots * p.model.config().latency.load);
  }
}

TEST(DmaProfileTest, OutstandingSumsServiceWindow) {
  // 8 loads in one cycle (the DMA limit), service latency 3: outstanding
  // peaks at 8 when II >= 3... and at 8 * ceil(3/II) when iterations
  // overlap harder.
  ddg::DdgBuilder b;
  for (int i = 0; i < 8; ++i) {
    const auto x = b.load(b.cst(i), 0);
    b.store(b.cst(64 + i), x);
  }
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto ddg = b.finish();
  const auto hca = driver.run(ddg);
  ASSERT_TRUE(hca.legal);
  const auto mapping = core::buildFinalMapping(ddg, model, hca);
  const auto sched = sched::moduloSchedule(mapping, model, 2);
  ASSERT_TRUE(sched.ok);
  const auto profile = sim::profileDma(mapping, model, sched.schedule);
  // 16 memory ops per iteration, II >= 2: per-slot accepts <= 8, and the
  // outstanding count equals the sum over the 3-slot service window.
  for (int t = 0; t < profile.ii; ++t) {
    int expected = 0;
    for (int back = 0; back < profile.serviceLatency; ++back) {
      const int s = ((t - back) % profile.ii + profile.ii) % profile.ii;
      expected += profile.acceptsPerSlot[static_cast<std::size_t>(s)];
    }
    EXPECT_EQ(profile.outstandingPerSlot[static_cast<std::size_t>(t)],
              expected);
  }
  EXPECT_GT(profile.peakOutstanding, profile.peakAccepts);
}

TEST(DmaProfileTest, CustomServiceLatency) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), x);
  const auto model = paperFabric();
  const auto mapping = tinyMapping(model, b.finish());
  const auto sched = sched::moduloSchedule(mapping, model, 4);
  ASSERT_TRUE(sched.ok);
  const auto fast = sim::profileDma(mapping, model, sched.schedule, 1);
  const auto slow = sim::profileDma(mapping, model, sched.schedule, 16);
  EXPECT_LE(fast.peakOutstanding, slow.peakOutstanding);
  EXPECT_EQ(fast.fifoCapacity, model.config().dmaSlots);
  EXPECT_EQ(slow.fifoCapacity, model.config().dmaSlots * 16);
}

}  // namespace
}  // namespace hca
