#include "analysis/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace hca::analysis {
namespace {

[[nodiscard]] bool isIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool isIdentChar(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Cursor over the source buffer that tracks the 1-based line number.
class Cursor {
 public:
  explicit Cursor(const std::string& source) : source_(source) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    const std::size_t at = pos_ + ahead;
    return at < source_.size() ? source_[at] : '\0';
  }
  char advance() noexcept {
    const char c = source_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::string slice(std::size_t from) const {
    return source_.substr(from, pos_ - from);
  }

 private:
  const std::string& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// True when `text` is an identifier that prefixes a raw string literal
/// (R, LR, uR, u8R, UR) — the lexer must switch to raw-string rules for
/// the `"` that immediately follows.
[[nodiscard]] bool isRawStringPrefix(const std::string& text) noexcept {
  return text == "R" || text == "LR" || text == "uR" || text == "u8R" ||
         text == "UR";
}

/// Consumes a raw string literal starting at the opening `"`. Raw strings
/// have no escapes: the terminator is `)delim"` and nothing else.
void lexRawString(Cursor& cursor) {
  cursor.advance();  // opening quote
  std::string delim;
  while (!cursor.done() && cursor.peek() != '(') {
    delim.push_back(cursor.advance());
  }
  if (!cursor.done()) cursor.advance();  // '('
  const std::string terminator = ")" + delim + "\"";
  std::string tail;
  while (!cursor.done()) {
    tail.push_back(cursor.advance());
    if (tail.size() > terminator.size()) {
      tail.erase(tail.begin());
    }
    if (tail == terminator) return;
  }
}

/// Consumes an ordinary string or char literal past the opening delimiter,
/// honouring backslash escapes. Stops at the closing delimiter, an
/// unescaped newline (ill-formed, but a linter should not run away), or
/// end of file.
void lexQuoted(Cursor& cursor, char delim) {
  while (!cursor.done()) {
    const char c = cursor.peek();
    if (c == '\\') {
      cursor.advance();
      if (!cursor.done()) cursor.advance();
      continue;
    }
    if (c == '\n') return;
    cursor.advance();
    if (c == delim) return;
  }
}

/// Scans comment text for `hca-lint: <key>(<reason>)` markers. The comment
/// may hold several (a /* */ block spanning lines), so the scan restarts
/// after each hit and tracks the line offset within the comment.
void extractSuppressions(const std::string& comment, int firstLine,
                         std::vector<SuppressionMarker>& out) {
  static const std::string kTag = "hca-lint:";
  std::size_t searchFrom = 0;
  while (true) {
    const std::size_t tag = comment.find(kTag, searchFrom);
    if (tag == std::string::npos) return;
    int line = firstLine;
    for (std::size_t i = 0; i < tag; ++i) {
      if (comment[i] == '\n') ++line;
    }
    std::size_t at = tag + kTag.size();
    while (at < comment.size() && comment[at] == ' ') ++at;
    std::string key;
    while (at < comment.size() &&
           (std::islower(static_cast<unsigned char>(comment[at])) != 0 ||
            comment[at] == '-')) {
      key.push_back(comment[at++]);
    }
    searchFrom = at;
    if (key.empty() || at >= comment.size() || comment[at] != '(') continue;
    const std::size_t close = comment.find(')', at + 1);
    if (close == std::string::npos) continue;
    std::string reason = comment.substr(at + 1, close - at - 1);
    searchFrom = close + 1;
    if (reason.empty()) continue;
    out.push_back(SuppressionMarker{key, std::move(reason), line});
  }
}

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile result;
  Cursor cursor(source);
  // Set while lexing a `#include` line so the next <...> token (or string)
  // is captured as a header name instead of punctuation/literal.
  bool expectHeaderName = false;
  int includeLine = 0;

  while (!cursor.done()) {
    const char c = cursor.peek();
    const int line = cursor.line();
    const std::size_t start = cursor.pos();

    if (c == '\n') {
      expectHeaderName = false;
      cursor.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cursor.advance();
      continue;
    }

    // Comments first: they may contain anything, including quote characters.
    if (c == '/' && cursor.peek(1) == '/') {
      while (!cursor.done() && cursor.peek() != '\n') cursor.advance();
      const std::string text = cursor.slice(start);
      extractSuppressions(text, line, result.suppressions);
      result.comments.push_back(Token{TokenKind::kComment, text, line});
      continue;
    }
    if (c == '/' && cursor.peek(1) == '*') {
      cursor.advance();
      cursor.advance();
      while (!cursor.done() &&
             !(cursor.peek() == '*' && cursor.peek(1) == '/')) {
        cursor.advance();
      }
      if (!cursor.done()) {
        cursor.advance();
        cursor.advance();
      }
      const std::string text = cursor.slice(start);
      extractSuppressions(text, line, result.suppressions);
      result.comments.push_back(Token{TokenKind::kComment, text, line});
      continue;
    }

    // Preprocessor: only #include needs structure; note it and keep lexing
    // so the rest of the line still tokenizes normally.
    if (c == '#') {
      cursor.advance();
      while (!cursor.done() && cursor.peek() == ' ') cursor.advance();
      const std::size_t wordStart = cursor.pos();
      while (!cursor.done() && isIdentChar(cursor.peek())) cursor.advance();
      const std::string directive = cursor.slice(wordStart);
      if (directive == "include") {
        expectHeaderName = true;
        includeLine = line;
      }
      result.tokens.push_back(Token{TokenKind::kPunct, "#" + directive, line});
      continue;
    }

    if (expectHeaderName && c == '<') {
      cursor.advance();
      const std::size_t nameStart = cursor.pos();
      while (!cursor.done() && cursor.peek() != '>' && cursor.peek() != '\n') {
        cursor.advance();
      }
      const std::string name = cursor.slice(nameStart);
      if (!cursor.done() && cursor.peek() == '>') cursor.advance();
      result.includes.push_back(IncludeDirective{name, true, includeLine});
      result.tokens.push_back(Token{TokenKind::kHeaderName, name, line});
      expectHeaderName = false;
      continue;
    }
    if (expectHeaderName && c == '"') {
      cursor.advance();
      const std::size_t nameStart = cursor.pos();
      while (!cursor.done() && cursor.peek() != '"' && cursor.peek() != '\n') {
        cursor.advance();
      }
      const std::string name = cursor.slice(nameStart);
      if (!cursor.done() && cursor.peek() == '"') cursor.advance();
      result.includes.push_back(IncludeDirective{name, false, includeLine});
      result.tokens.push_back(Token{TokenKind::kHeaderName, name, line});
      expectHeaderName = false;
      continue;
    }

    if (c == '"') {
      cursor.advance();
      lexQuoted(cursor, '"');
      result.tokens.push_back(
          Token{TokenKind::kString, cursor.slice(start), line});
      continue;
    }
    if (c == '\'') {
      cursor.advance();
      lexQuoted(cursor, '\'');
      result.tokens.push_back(
          Token{TokenKind::kCharacter, cursor.slice(start), line});
      continue;
    }

    if (isIdentStart(c)) {
      while (!cursor.done() && isIdentChar(cursor.peek())) cursor.advance();
      std::string text = cursor.slice(start);
      if (isRawStringPrefix(text) && cursor.peek() == '"') {
        lexRawString(cursor);
        result.tokens.push_back(
            Token{TokenKind::kString, cursor.slice(start), line});
        continue;
      }
      // Plain string prefixes (u8"...", L"...") — fold into the literal.
      if ((text == "u8" || text == "u" || text == "U" || text == "L") &&
          (cursor.peek() == '"' || cursor.peek() == '\'')) {
        const char delim = cursor.advance();
        lexQuoted(cursor, delim);
        result.tokens.push_back(Token{delim == '"' ? TokenKind::kString
                                                   : TokenKind::kCharacter,
                                      cursor.slice(start), line});
        continue;
      }
      result.tokens.push_back(
          Token{TokenKind::kIdentifier, std::move(text), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // pp-number: digits, identifier chars, '.', and exponent signs.
      while (!cursor.done()) {
        const char n = cursor.peek();
        if (isIdentChar(n) || n == '.') {
          const char consumed = cursor.advance();
          if ((consumed == 'e' || consumed == 'E' || consumed == 'p' ||
               consumed == 'P') &&
              (cursor.peek() == '+' || cursor.peek() == '-')) {
            cursor.advance();
          }
          continue;
        }
        break;
      }
      result.tokens.push_back(
          Token{TokenKind::kNumber, cursor.slice(start), line});
      continue;
    }

    cursor.advance();
    result.tokens.push_back(
        Token{TokenKind::kPunct, std::string(1, c), line});
  }
  return result;
}

}  // namespace hca::analysis
