// Fixture: flagged by determinism-ordered and no other rule. The test maps
// this file to src/see/bad_ordered.cpp, a result-affecting module.
#include <unordered_map>

namespace hca::see {

[[nodiscard]] int fixtureSum(const std::unordered_map<int, int>& weights) {
  int sum = 0;
  for (const auto& [key, value] : weights) {
    sum += key * value;
  }
  return sum;
}

}  // namespace hca::see
