#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/postprocess.hpp"
#include "machine/fault.hpp"
#include "support/check.hpp"
#include "verify/verify.hpp"

namespace hca::verify {
namespace {

machine::DspFabricModel paperFabric(machine::FaultSet faults = {}) {
  machine::DspFabricConfig config;
  config.n = 8;
  config.m = 8;
  config.k = 8;
  return machine::DspFabricModel(config, std::move(faults));
}

core::HcaResult runLegal(const ddg::Ddg& ddg,
                         const machine::DspFabricModel& model,
                         core::HcaOptions options = {}) {
  const core::HcaDriver driver(model, options);
  auto result = driver.run(ddg);
  EXPECT_TRUE(result.legal) << result.failureReason;
  return result;
}

VerifyInput inputFor(const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     const core::HcaResult& result,
                     const core::FinalMapping* mapping = nullptr) {
  VerifyInput input;
  input.ddg = &ddg;
  input.model = &model;
  input.result = &result;
  input.mapping = mapping;
  return input;
}

std::set<std::string> checkIdsOf(const std::vector<Diagnostic>& diagnostics) {
  std::set<std::string> ids;
  for (const auto& d : diagnostics) ids.insert(d.checkId);
  return ids;
}

/// The single-culprit assertion of the mutation tests: the corruption is
/// flagged, and *only* by the check designed to catch it.
void expectOnlyCheckFires(const std::vector<Diagnostic>& diagnostics,
                          const std::string& id) {
  ASSERT_FALSE(diagnostics.empty())
      << "corruption not flagged by any check";
  EXPECT_EQ(checkIdsOf(diagnostics), std::set<std::string>{id})
      << formatDiagnostics(diagnostics);
}

// --- registry plumbing ------------------------------------------------------

TEST(VerifyRegistryTest, BuiltinChecksAreOrderedWithCoherencyLast) {
  const auto& registry = CheckRegistry::builtin();
  ASSERT_FALSE(registry.checks().empty());
  EXPECT_EQ(registry.checks().back().id, "coherency");
  std::set<std::string> ids;
  for (const auto& check : registry.checks()) {
    EXPECT_TRUE(ids.insert(check.id).second) << "duplicate id " << check.id;
    EXPECT_NE(registry.find(check.id), nullptr);
    EXPECT_FALSE(check.description.empty()) << check.id;
  }
  EXPECT_NE(ids.count("see-solution"), 0u);
  EXPECT_NE(ids.count("ili-conservation"), 0u);
  EXPECT_NE(ids.count("recv-placement"), 0u);
  EXPECT_NE(ids.count("fault-survivors"), 0u);
  EXPECT_EQ(registry.find("no-such-check"), nullptr);
}

TEST(VerifyRegistryTest, ParseCheckListValidatesNames) {
  const auto ids = parseCheckList("see-solution,coherency");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "see-solution");
  EXPECT_EQ(ids[1], "coherency");
  EXPECT_THROW(parseCheckList("bogus-check"), InvalidArgumentError);
  EXPECT_THROW(parseCheckList("coherency,"), InvalidArgumentError);
  EXPECT_THROW(parseCheckList(""), InvalidArgumentError);
}

TEST(VerifyRegistryTest, DiagnosticToStringCarriesCheckPathAndMessage) {
  Diagnostic d;
  d.checkId = "see-solution";
  d.subproblemPath = {0, 2};
  d.entities = {7};
  d.message = "node 7 appears more than once";
  const std::string text = d.toString();
  EXPECT_NE(text.find("see-solution"), std::string::npos);
  EXPECT_NE(text.find("0.2"), std::string::npos);
  EXPECT_NE(text.find("node 7 appears more than once"), std::string::npos);
}

// --- clean runs pass every check -------------------------------------------

class KernelVerifyTest : public ::testing::TestWithParam<int> {
 protected:
  ddg::Kernel kernel() const {
    auto kernels = ddg::table1Kernels();
    return std::move(kernels[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(KernelVerifyTest, CleanRunPassesAllChecks) {
  const auto k = kernel();
  const auto model = paperFabric();
  // verifyEach exercises the driver's between-stage hooks: a violated
  // invariant would abort this run with an InternalError.
  core::HcaOptions options;
  options.verifyEach = true;
  const auto result = runLegal(k.ddg, model, options);
  ASSERT_TRUE(result.legal);
  const auto mapping = core::buildFinalMapping(k.ddg, model, result);
  const auto diagnostics = CheckRegistry::builtin().run(
      inputFor(k.ddg, model, result, &mapping));
  EXPECT_TRUE(diagnostics.empty()) << formatDiagnostics(diagnostics);
}

TEST_P(KernelVerifyTest, RestrictedCheckListRunsClean) {
  const auto k = kernel();
  const auto model = paperFabric();
  core::HcaOptions options;
  options.verifyEach = true;
  options.verifyChecks = parseCheckList("see-solution,coherency");
  const auto result = runLegal(k.ddg, model, options);
  EXPECT_TRUE(result.legal);
}

// h264deblocking is not wireable at these budgets (see hca_test.cpp).
INSTANTIATE_TEST_SUITE_P(AllKernels, KernelVerifyTest, ::testing::Range(0, 3),
                         [](const auto& info) {
                           return ddg::table1Kernels()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(VerifyFaultTest, DegradedRunUnderVerifyEachStaysLegal) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric(machine::FaultSet::parse("cn:0"));
  core::HcaOptions options;
  options.failurePolicy = core::FailurePolicy::kDegrade;
  options.verifyEach = true;
  const auto result = core::HcaDriver(model, options).run(k.ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;
  const auto diagnostics =
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result));
  EXPECT_TRUE(diagnostics.empty()) << formatDiagnostics(diagnostics);
}

// --- mutation detection: each corruption trips exactly its check ------------

TEST(VerifyMutationTest, DroppedIliCopyFiresIliConservation) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric();
  auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);

  // Erase one genuinely flowing value from every input wire of the child
  // consuming it — the "mapper forgot to book a copy" corruption.
  bool corrupted = false;
  for (auto& record : result.records) {
    const auto clusters = record->pg.clusterNodes();
    auto& ilis = record->mapResult.ilis;
    for (std::size_t j = 0; j < ilis.size() && !corrupted; ++j) {
      std::set<ValueId> flowing;
      for (const PgArcId arc : record->pg.inArcs(clusters[j])) {
        for (const ValueId v : record->flow.copiesOn(arc)) flowing.insert(v);
      }
      if (flowing.empty()) continue;
      const ValueId victim = *flowing.begin();
      for (auto& wire : ilis[j].inputs) {
        const auto it =
            std::find(wire.values.begin(), wire.values.end(), victim);
        if (it != wire.values.end()) {
          wire.values.erase(it);
          corrupted = true;
        }
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "no inter-cluster copy to drop";

  const auto diagnostics =
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result));
  expectOnlyCheckFires(diagnostics, "ili-conservation");
  bool sawDrop = false;
  for (const auto& d : diagnostics) {
    EXPECT_FALSE(d.subproblemPath.empty() && !d.entities.empty() &&
                 d.message.empty());
    if (d.message.find("dropped copy") != std::string::npos) {
      sawDrop = true;
      EXPECT_FALSE(d.entities.empty());
    }
  }
  EXPECT_TRUE(sawDrop) << formatDiagnostics(diagnostics);
}

TEST(VerifyMutationTest, DoubleAssignedNodeFiresSeeSolution) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric();
  auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);

  bool corrupted = false;
  for (auto& record : result.records) {
    if (!record->leaf || record->workingSet.empty()) continue;
    record->workingSet.push_back(record->workingSet.front());
    record->wsChild.push_back(record->wsChild.front());
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted) << "no leaf record to corrupt";

  const auto diagnostics =
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result));
  expectOnlyCheckFires(diagnostics, "see-solution");
  bool sawDuplicate = false;
  for (const auto& d : diagnostics) {
    if (d.message.find("more than once") != std::string::npos) {
      sawDuplicate = true;
      EXPECT_FALSE(d.subproblemPath.empty());
      EXPECT_FALSE(d.entities.empty());
    }
  }
  EXPECT_TRUE(sawDuplicate) << formatDiagnostics(diagnostics);
}

TEST(VerifyMutationTest, RecvOnWrongClusterFiresRecvPlacement) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  auto mapping = core::buildFinalMapping(k.ddg, model, result);
  ASSERT_FALSE(mapping.recvs.empty()) << "kernel maps without any recv";

  // Teleport one recv to a different (alive) CN than its RecvInfo records.
  const auto& info = mapping.recvs.front();
  const CnId wrong((info.cn.value() + 1) % model.totalCns());
  ASSERT_NE(wrong, info.cn);
  mapping.cnOf[info.recvNode.index()] = wrong;

  const auto diagnostics =
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result, &mapping));
  expectOnlyCheckFires(diagnostics, "recv-placement");
}

TEST(VerifyMutationTest, RelayOnDeadCnFiresFaultSurvivors) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric(machine::FaultSet::parse("cn:0"));
  core::HcaOptions options;
  options.failurePolicy = core::FailurePolicy::kDegrade;
  auto result = core::HcaDriver(model, options).run(k.ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;
  ASSERT_TRUE(
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result)).empty());

  result.relays.push_back(core::RelayPlacement{ValueId(0), CnId(0)});

  const auto diagnostics =
      CheckRegistry::builtin().run(inputFor(k.ddg, model, result));
  expectOnlyCheckFires(diagnostics, "fault-survivors");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("dead CN"), std::string::npos);
}

// --- restricted runs only execute the selected checks -----------------------

TEST(VerifyRegistryTest, RunHonorsCheckSelection) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];
  const auto model = paperFabric();
  auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);

  // Corrupt a leaf working set; the duplicate is invisible to a run that
  // only selects ili-conservation.
  for (auto& record : result.records) {
    if (!record->leaf || record->workingSet.empty()) continue;
    record->workingSet.push_back(record->workingSet.front());
    record->wsChild.push_back(record->wsChild.front());
    break;
  }
  const auto& registry = CheckRegistry::builtin();
  const auto input = inputFor(k.ddg, model, result);
  EXPECT_TRUE(registry.run(input, {"ili-conservation"}).empty());
  EXPECT_FALSE(registry.run(input, {"see-solution"}).empty());
  EXPECT_THROW((void)registry.run(input, {"bogus"}), InvalidArgumentError);
}

}  // namespace
}  // namespace hca::verify
