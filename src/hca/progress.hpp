#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "support/mutex.hpp"

/// Live batch progress heartbeat (`hcac --batch ... --progress-out FILE`).
///
/// The batch driver appends one JSON object per line ("JSONL"): every job
/// state transition (start, retry-wait, injected-failure, try-failed,
/// done), a periodic heartbeat while a job runs, and batch start/end
/// markers. Each line is self-contained and flushed before the driver
/// proceeds, so an external monitor (or a human with `tail -f`) always
/// sees a complete, parseable prefix of the run — and a kill mid-batch at
/// worst truncates the final line, which the strict reader flags.
///
/// Sequencing: every line carries a `seq` that is strictly increasing
/// *across batch restarts* — the writer opens the file in append mode and
/// recovers the last seq from the existing tail, so a killed-and-resumed
/// batch produces one log whose lines still totally order. `elapsed_ms`
/// is time since *this* batch process started (steady clock — the log is
/// deliberately wall-clock-free, like every cross-run artifact).
///
/// Line schema (all keys always present):
///   {"schema_version": 1, "seq": N, "event": "batch-start" | "job-state"
///      | "heartbeat" | "batch-end",
///    "job": "...",            // "" for batch-level events
///    "state": "...",          // job-state: start retry-wait
///                             //   injected-failure try-failed done;
///                             //   done lines also set "outcome"
///    "outcome": "...",        // ok failed invalid cancelled ("" otherwise)
///    "try": N,                // 1-based try, 0 when not applicable
///    "phase": "...",          // human-readable per-job phase
///    "jobs_total": N, "jobs_done": N, "jobs_ok": N, "jobs_failed": N,
///    "elapsed_ms": N,
///    "eta_ms": N | null,      // remaining-work estimate from completed-
///                             //   job durations; null until one finished
///    "resumed": bool}         // batch-start: file had prior lines
namespace hca::core {

struct ProgressEvent {
  std::string event;  ///< batch-start / job-state / heartbeat / batch-end
  std::string job;
  std::string state;
  std::string outcome;
  int tryNumber = 0;
  std::string phase;
  int jobsTotal = 0;
  int jobsDone = 0;
  int jobsOk = 0;
  int jobsFailed = 0;
  std::int64_t elapsedMs = 0;
  std::int64_t etaMs = -1;  ///< -1 = unknown (serialized as null)
  bool resumed = false;
};

/// One parsed heartbeat line (tests, monitors). `seq` added on read.
struct ProgressLine : ProgressEvent {
  std::int64_t seq = 0;
};

/// Serializes one event (without seq) as a single JSON line body; the
/// writer stamps schema_version and seq.
class ProgressLog {
 public:
  /// Opens `path` for append, creating it when absent. When the file has
  /// prior contents, the last complete line is strict-parsed to recover
  /// the sequence counter (so a resumed batch continues it) — a corrupt
  /// tail throws InvalidArgumentError, a trailing half-line (torn final
  /// write of a killed batch) is tolerated and overwritten by appends.
  /// Throws IoError when the file cannot be opened.
  explicit ProgressLog(std::string path);
  ~ProgressLog();

  ProgressLog(const ProgressLog&) = delete;
  ProgressLog& operator=(const ProgressLog&) = delete;

  /// Appends one line and flushes. Thread-safe (the heartbeat thread and
  /// the batch loop share the log). Throws IoError on write failure.
  void write(const ProgressEvent& event);

  /// True when the file already had complete lines at open (a resumed
  /// batch).
  [[nodiscard]] bool resumedLog() const { return resumed_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable Mutex mu_;
  std::FILE* file_ HCA_GUARDED_BY(mu_) = nullptr;
  std::int64_t seq_ HCA_GUARDED_BY(mu_) = 0;
  bool resumed_ = false;
};

/// Strict-parses one heartbeat line. Throws InvalidArgumentError on
/// malformed JSON, missing/unknown members, or a schema version this
/// build does not read.
[[nodiscard]] ProgressLine parseProgressLine(const std::string& line);

}  // namespace hca::core
