#!/usr/bin/env bash
# Run the tier-1 test suite under AddressSanitizer.
#
# Builds into a separate tree (build-asan/) so the instrumented binaries
# never pollute the regular build directory, then runs the full ctest
# suite. The fault-injection sweep (`-L fault`) is included: degraded-mode
# mappings exercise the dead-resource guards in SEE/Mapper, which is
# exactly where an out-of-bounds read would hide.
#
# Usage: tools/run_asan_tier1.sh [extra ctest args...]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${root}/build-asan"

cmake -B "${build}" -S "${root}" -DHCA_SANITIZE=address
cmake --build "${build}" -j "$(nproc)"

# halt_on_error: make any ASan report fail the test immediately instead of
# letting the process limp on and report a confusing secondary failure.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"

cd "${build}"
ctest --output-on-failure -j "$(nproc)" "$@"
