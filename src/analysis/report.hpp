#pragma once

#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/rules.hpp"

/// Output formatting for `hca-lint`: the human-readable table the driver
/// prints and the machine-readable JSON document CI uploads as an artifact.
namespace hca::analysis {

/// Renders diagnostics as an aligned `file:line  rule  entity  message`
/// table. `title` becomes the section header; empty input renders nothing.
[[nodiscard]] std::string formatDiagnosticsTable(
    const std::string& title, const std::vector<Diagnostic>& diagnostics);

/// Renders the full lint result as JSON:
///   {"version": 1, "fresh": [...], "baselined": [...], "stale": [...]}
/// where each diagnostic is {rule, file, line, entity, message, key}.
[[nodiscard]] std::string formatReportJson(const BaselineSplit& split);

}  // namespace hca::analysis
