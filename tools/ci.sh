#!/usr/bin/env bash
# The repo's CI entry point (also runnable locally): tier-1 tests, the
# thread-safety-analysis build, and the clang-tidy profile.
#
#   1. tier-1   — cmake + build + full ctest suite (the acceptance bar every
#                 change must keep green)
#   2. tsa      — a clang build with -Wthread-safety -Werror=thread-safety
#                 verifying the HCA_GUARDED_BY/HCA_REQUIRES annotations;
#                 skipped with a notice when clang is not installed (GCC has
#                 no thread-safety analysis)
#   3. lint     — tools/run_clang_tidy.sh over src/tools/examples; skips
#                 itself when clang-tidy is missing
#   3b. hca-lint — the in-repo contract checker (determinism, layering,
#                 locking, exit contract) against tools/lint_baseline.json;
#                 any diagnostic not in the baseline fails the stage naming
#                 the rule. Skips with a notice when compile_commands.json
#                 is absent (e.g. a build tree configured by a generator
#                 that does not export it)
#   4. perf     — a Release build running the bench_micro suite once (tiny
#                 repetitions, --strict-build so a debug-grade binary is a
#                 hard error). This is a smoke test: it fails on crash,
#                 assertion, or sanitizer abort inside the benchmarked
#                 paths, never on timing.
#   4b. prune   — pruning identity gate: a Release `hcac --compare` between
#                 a --dominance-pruning run and a default run of the same
#                 kernel; any deterministic-counter mismatch besides the
#                 three oracle counters (seeOracleRejects, seeRouteMemoHits,
#                 seeDominancePruned and their per-level metrics) fails
#   5. robust   — kill-and-resume smoke (SIGTERM mid-search, then --resume
#                 must complete legally) and a 3-job batch manifest with
#                 one deliberately failing job (retry/backoff/isolation
#                 must run, the summary must be non-zero-exit and still
#                 report the two good jobs ok)
#   6. regress  — two-commit regression smoke: compile one Table 1 kernel
#                 twice with --report-out/--history-out, then
#                 `hcac --compare` must exit 0 (the search is
#                 deterministic), and a perturbed counter must flip it to
#                 exit 1 naming the regressed series
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "=== ci: tier-1 build + tests ==="
cmake -B "${root}/build" -S "${root}"
cmake --build "${root}/build" -j "${jobs}"
(cd "${root}/build" && ctest --output-on-failure -j "${jobs}")

echo "=== ci: thread-safety analysis build ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${root}/build-tsa" -S "${root}" \
    -DCMAKE_CXX_COMPILER=clang++ -DHCA_WERROR=ON
  cmake --build "${root}/build-tsa" -j "${jobs}"
  echo "ci: thread-safety build clean"
else
  echo "ci: clang++ not found; skipping the thread-safety analysis build"
fi

echo "=== ci: clang-tidy ==="
"${root}/tools/run_clang_tidy.sh" "${root}/build"

echo "=== ci: hca-lint (determinism / layering / locking / exit contract) ==="
if [[ -s "${root}/build/compile_commands.json" ]]; then
  cmake --build "${root}/build" -j "${jobs}" --target hca_lint
  # Exit 1 here means a NEW diagnostic (stderr names the rule); known debt
  # lives in tools/lint_baseline.json. lint_report.json is the machine-
  # readable artifact CI uploads on failure.
  "${root}/build/tools/hca_lint" \
    --compile-commands "${root}/build/compile_commands.json" \
    --root "${root}" \
    --baseline "${root}/tools/lint_baseline.json" \
    --json "${root}/build/lint_report.json"
  echo "ci: hca-lint clean against baseline"
else
  echo "ci: compile_commands.json not found; skipping hca-lint"
fi

echo "=== ci: perf smoke (Release bench_micro) ==="
cmake -B "${root}/build-perf" -S "${root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${root}/build-perf" -j "${jobs}" --target bench_micro hcac
# One pass over every benchmark with minimal timing effort. Exit status is
# the verdict — crashes/aborts in the CoW beam search, the arena, or any
# other benchmarked component fail CI; wall-clock numbers are informational.
# --strict-build is the default for every bench target CI runs: a
# debug-grade binary silently producing a committed baseline is exactly
# the mistake the flag exists to catch.
(cd "${root}/build-perf/bench" &&
  ./bench_micro --strict-build \
    --benchmark_min_time=0.01 --benchmark_repetitions=1)
echo "ci: perf smoke passed (timings informational; BENCH_micro.json written)"

echo "=== ci: pruning identity gate (hcac --compare, on vs off) ==="
# Dominance pruning must be invisible to the search: it only drops states
# the node filter already discarded. Diff a pruning-off against a
# pruning-on Release compile of the same kernel with only the three
# oracle/pruning counters excused — any other deterministic-counter
# mismatch means the pass changed the beam, and fails CI.
hcac_rel="${root}/build-perf/tools/hcac"
prune_work="$(mktemp -d)"
"${hcac_rel}" --kernel fir2dim --report-out "${prune_work}/off.json" \
  >"${prune_work}/prune.log" 2>&1
"${hcac_rel}" --kernel fir2dim --dominance-pruning \
  --report-out "${prune_work}/on.json" >>"${prune_work}/prune.log" 2>&1
"${hcac_rel}" --compare "${prune_work}/off.json" "${prune_work}/on.json" \
  --ignore-counters "stats.seeOracleRejects,stats.seeRouteMemoHits,stats.seeDominancePruned,metrics.see.oracle_rejects.*,metrics.see.route_memo_hits.*,metrics.see.dominance_pruned.*" \
  >>"${prune_work}/prune.log" 2>&1 || {
    echo "ci: dominance pruning changed a deterministic counter"
    cat "${prune_work}/prune.log"
    rm -rf "${prune_work}"
    exit 1
  }
rm -rf "${prune_work}"
echo "ci: pruning identity gate passed"

echo "=== ci: robustness smoke (kill/resume + batch isolation) ==="
hcac="${root}/build/tools/hcac"
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

# Kill-and-resume: SIGTERM a checkpointing run mid-search, then resume it.
# The interrupted run must exit through the graceful path (not a crash) and
# leave a loadable checkpoint; the resumed run must complete legally. The
# kill delay scales up until at least one attempt boundary was reached.
for delay in 2 5 10 30; do
  set +e
  timeout --preserve-status --signal=TERM "${delay}" \
    "${hcac}" --kernel h264deblocking --n 3 --m 3 --k 3 \
    --checkpoint-out "${work}/resume.ckpt" >"${work}/interrupted.log" 2>&1
  interrupted_rc=$?
  set -e
  if [[ "${interrupted_rc}" -ne 4 ]]; then
    echo "ci: interrupted run exited ${interrupted_rc}, expected graceful 4"
    cat "${work}/interrupted.log"
    exit 1
  fi
  [[ -s "${work}/resume.ckpt" ]] && break
done
[[ -s "${work}/resume.ckpt" ]] || { echo "ci: no checkpoint written"; exit 1; }
"${hcac}" --kernel h264deblocking --n 3 --m 3 --k 3 \
  --checkpoint-out "${work}/resume.ckpt" --resume >"${work}/resumed.log" 2>&1
grep -q "resuming from" "${work}/resumed.log" || {
  echo "ci: resumed run did not load the checkpoint"
  cat "${work}/resumed.log"; exit 1; }
echo "ci: kill-and-resume smoke passed"

# Batch isolation: three jobs, the middle one fails every try by injection.
# The batch must exit non-zero, retry the bad job with backoff, and still
# compile the two good jobs.
cat >"${work}/manifest.json" <<'MANIFEST'
{"jobs": [
  {"name": "fir", "kernel": "fir2dim"},
  {"name": "doomed", "kernel": "idcthor", "max_retries": 2,
   "backoff_base_ms": 1, "fail_first_attempts": 3,
   "degrade_on_last_retry": false},
  {"name": "idct", "kernel": "idcthor"}
]}
MANIFEST
mkdir -p "${work}/reports"
set +e
"${hcac}" --batch "${work}/manifest.json" --report-dir "${work}/reports" \
  --report-out "${work}/summary.json" >"${work}/batch.log" 2>&1
batch_rc=$?
set -e
if [[ "${batch_rc}" -ne 4 ]]; then
  echo "ci: batch with a failing job exited ${batch_rc}, expected 4"
  cat "${work}/batch.log"
  exit 1
fi
grep -q '"ok":2' "${work}/summary.json" || {
  echo "ci: batch summary does not report 2 ok jobs"
  cat "${work}/summary.json"; exit 1; }
grep -q '"failed":1' "${work}/summary.json" || {
  echo "ci: batch summary does not report the failing job"
  cat "${work}/summary.json"; exit 1; }
grep -q '"tries_used":3' "${work}/summary.json" || {
  echo "ci: the failing job was not retried to exhaustion"
  cat "${work}/summary.json"; exit 1; }
[[ -s "${work}/reports/fir.report.json" && -s "${work}/reports/idct.report.json" ]] || {
  echo "ci: per-job reports missing"; exit 1; }
echo "ci: batch isolation smoke passed"

echo "=== ci: regression gate smoke (hcac --compare) ==="
# Two runs of the same deterministic compile must diff clean: every
# deterministic counter identical, exit 0. This is the gate a change's CI
# run uses against a baseline report from the target branch.
"${hcac}" --kernel fir2dim --report-out "${work}/base.json" \
  --history-out "${work}/history.jsonl" --run-id ci-base \
  >"${work}/compare.log" 2>&1
"${hcac}" --kernel fir2dim --report-out "${work}/new.json" \
  --history-out "${work}/history.jsonl" --run-id ci-new \
  >>"${work}/compare.log" 2>&1
"${hcac}" --compare "${work}/base.json" "${work}/new.json" \
  --history "${work}/history.jsonl" --diff-out "${work}/verdict.json" \
  >>"${work}/compare.log" 2>&1 || {
    echo "ci: self-compare of a deterministic compile reported a regression"
    cat "${work}/compare.log" "${work}/verdict.json"; exit 1; }
grep -q '"regression":false' "${work}/verdict.json" || {
  echo "ci: verdict JSON does not record a clean comparison"
  cat "${work}/verdict.json"; exit 1; }
# Sanity-check the gate actually gates: a perturbed deterministic counter
# must exit 1 and name the regressed series.
sed 's/"outerAttempts":[0-9]*/"outerAttempts":999999/' \
  "${work}/new.json" >"${work}/perturbed.json"
set +e
"${hcac}" --compare "${work}/base.json" "${work}/perturbed.json" \
  >"${work}/perturbed.log" 2>&1
perturbed_rc=$?
set -e
if [[ "${perturbed_rc}" -ne 1 ]]; then
  echo "ci: perturbed compare exited ${perturbed_rc}, expected 1"
  cat "${work}/perturbed.log"
  exit 1
fi
grep -q "stats.outerAttempts" "${work}/perturbed.log" || {
  echo "ci: perturbed compare did not name the regressed series"
  cat "${work}/perturbed.log"; exit 1; }
echo "ci: regression gate smoke passed"

echo "=== ci: all stages passed ==="
