#include <gtest/gtest.h>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "sched/regpressure.hpp"
#include "support/check.hpp"

namespace hca::sched {
namespace {

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

struct Scheduled {
  core::FinalMapping mapping;
  Schedule schedule;
};

Scheduled schedule(const machine::DspFabricModel& model, ddg::Ddg ddg) {
  const core::HcaDriver driver(model);
  const auto hca = driver.run(ddg);
  HCA_REQUIRE(hca.legal, hca.failureReason);
  auto mapping = core::buildFinalMapping(ddg, model, hca);
  const auto mii = core::computeMii(ddg, model, hca);
  auto result = moduloSchedule(mapping, model, mii.finalMii);
  HCA_REQUIRE(result.ok, result.failureReason);
  return Scheduled{std::move(mapping), std::move(result.schedule)};
}

TEST(RegPressureTest, SingleValueNeedsOneRegister) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), x);
  const auto model = paperFabric();
  auto s = schedule(model, b.finish());
  const auto report = analyzeRegisterPressure(s.mapping, model, s.schedule);
  // Only non-store values count (the load, plus any recv).
  for (const auto& lifetime : report.lifetimes) {
    EXPECT_GE(lifetime.registersNeeded, 1);
  }
  EXPECT_GE(report.totalRegisters, 1);
  EXPECT_LE(report.maxRegistersPerCn, report.totalRegisters);
}

TEST(RegPressureTest, LongLivedValueNeedsMultipleRotatingRegisters) {
  // A value read 3 iterations later stays live >= 3 * II cycles.
  ddg::DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto x = b.load(next, 0, "x");
  const auto lagged = b.at(x, 3, 0);  // x from 3 iterations ago
  b.store(next, b.add(x, lagged), 64);
  const auto model = paperFabric();
  auto s = schedule(model, b.finish());
  const auto report = analyzeRegisterPressure(s.mapping, model, s.schedule);
  int loadRegs = 0;
  for (const auto& lifetime : report.lifetimes) {
    if (s.mapping.finalDdg.node(lifetime.node).op == ddg::Op::kLoad) {
      loadRegs = lifetime.registersNeeded;
    }
  }
  EXPECT_GE(loadRegs, 3);
}

TEST(RegPressureTest, TotalIsSumOfPerCn) {
  const auto model = paperFabric();
  const auto kernel = ddg::buildFir2Dim();
  auto s = schedule(model, kernel.ddg);
  const auto report = analyzeRegisterPressure(s.mapping, model, s.schedule);
  int sum = 0;
  for (const int regs : report.registersPerCn) sum += regs;
  EXPECT_EQ(sum, report.totalRegisters);
  EXPECT_GT(report.maxRegistersPerCn, 0);
  EXPECT_TRUE(report.fits(report.maxRegistersPerCn));
  EXPECT_FALSE(report.fits(report.maxRegistersPerCn - 1));
}

TEST(RegPressureTest, LifetimesCoverEveryValueProducer) {
  const auto model = paperFabric();
  const auto kernel = ddg::buildIdctHor();
  auto s = schedule(model, kernel.ddg);
  const auto report = analyzeRegisterPressure(s.mapping, model, s.schedule);
  int producers = 0;
  for (std::int32_t v = 0; v < s.mapping.finalDdg.numNodes(); ++v) {
    const auto op = s.mapping.finalDdg.node(DdgNodeId(v)).op;
    if (ddg::isInstruction(op) && op != ddg::Op::kStore) ++producers;
  }
  EXPECT_EQ(report.lifetimes.size(), static_cast<std::size_t>(producers));
}

TEST(RegPressureTest, RejectsInvalidSchedule) {
  const auto model = paperFabric();
  const auto kernel = ddg::buildFir2Dim();
  auto s = schedule(model, kernel.ddg);
  s.schedule.cycleOf[5] = -1;
  EXPECT_THROW(analyzeRegisterPressure(s.mapping, model, s.schedule),
               InvalidArgumentError);
}

}  // namespace
}  // namespace hca::sched
