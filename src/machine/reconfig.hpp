#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/ids.hpp"

/// Reconfiguration instruction stream (paper Section 2): before the kernel
/// runs, the co-processor executes a reconfiguration phase that programs
/// every MUX select to instantiate the chosen topology.
///
/// A `MuxSetting` programs one input wire of one interconnect node: "input
/// wire `dstWire` of child `dstChild` in the problem at `problemPath`
/// listens to source `src`". Sources are either a sibling child's output
/// wire or one of the problem's boundary wires coming from the parent
/// level. Settings encode to/from 64-bit configuration words so the stream
/// can be emitted, stored and parsed back (round-trip tested).
namespace hca::machine {

struct MuxSetting {
  /// Problem path: container of this interconnect level (empty = root).
  std::vector<int> problemPath;
  int dstChild = 0;   ///< receiving child index within the problem
  int dstWire = 0;    ///< which of the child's input wires
  bool srcIsBoundary = false;  ///< true: source is a parent boundary wire
  int srcChild = 0;   ///< sending child (ignored when srcIsBoundary)
  int srcWire = 0;    ///< sending child's output wire / boundary wire index

  friend bool operator==(const MuxSetting&, const MuxSetting&) = default;
};

/// Binary encoding: fields are packed into 6-bit lanes (values must fit in
/// 0..63, plenty for the paper's 4-way / capacity<=8 fabrics), the problem
/// path into the upper lanes with a depth tag.
std::uint64_t encodeMuxSetting(const MuxSetting& setting);
MuxSetting decodeMuxSetting(std::uint64_t word);

struct ReconfigurationProgram {
  std::vector<MuxSetting> settings;

  [[nodiscard]] std::vector<std::uint64_t> encode() const;
  static ReconfigurationProgram decode(const std::vector<std::uint64_t>& words);

  /// Human-readable listing (one setting per line).
  [[nodiscard]] std::string toString() const;

  /// Verifies no input wire is programmed twice (a MUX select is a single
  /// register). Throws InvalidArgumentError on conflict.
  void validate() const;
};

}  // namespace hca::machine
