#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

/// Graph algorithms shared by the DDG analyses and the assignment passes.
namespace hca::graph {

/// Kahn topological order considering only edges for which `keepEdge`
/// returns true (the DDG uses this to drop loop-carried back edges).
/// Returns nullopt if the filtered graph has a cycle.
std::optional<std::vector<std::int32_t>> topologicalOrder(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge);

/// Topological order over all edges.
std::optional<std::vector<std::int32_t>> topologicalOrder(const Digraph& g);

/// Tarjan strongly-connected components. Component indices are assigned in
/// Tarjan completion order (reverse topological order of the condensation);
/// callers should treat them purely as group labels.
struct SccResult {
  std::int32_t count = 0;
  std::vector<std::int32_t> component;  // node -> component index

  /// Nodes grouped per component.
  [[nodiscard]] std::vector<std::vector<std::int32_t>> groups() const;
};

SccResult stronglyConnectedComponents(const Digraph& g);

/// True if the graph (filtered) contains a directed cycle.
bool hasCycle(const Digraph& g,
              const std::function<bool(std::int32_t edgeId)>& keepEdge);

/// Longest path lengths from sources in a DAG (filtered edges), with
/// per-edge weights. Throws InvalidArgumentError if the filtered graph is
/// cyclic. Returns the distance of each node from any source (sources = 0).
std::vector<std::int64_t> longestPathFromSources(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge,
    const std::function<std::int64_t(std::int32_t edgeId)>& weight);

/// Longest path lengths *to* sinks (the DDG "height" priority).
std::vector<std::int64_t> longestPathToSinks(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge,
    const std::function<std::int64_t(std::int32_t edgeId)>& weight);

/// Detects whether the graph with per-edge weights contains a cycle of
/// strictly positive total weight (Bellman–Ford with early exit). Used by the
/// parametric MII search: with weight(e) = latency(e) - II * distance(e), a
/// positive cycle means II is below the recurrence bound.
bool hasPositiveCycle(const Digraph& g,
                      const std::function<std::int64_t(std::int32_t)>& weight);

/// Smallest integer II >= 1 such that no cycle has sum(latency) >
/// II * sum(distance); i.e. MIIRec = max over cycles of
/// ceil(sum latency / sum distance). Edges with distance 0 and latency > 0 on
/// a cycle make the instance infeasible (throws InvalidArgumentError);
/// acyclic graphs (ignoring distance>0 edges there are no cycles) return 1.
std::int64_t minFeasibleInitiationInterval(
    const Digraph& g,
    const std::function<std::int64_t(std::int32_t)>& latency,
    const std::function<std::int64_t(std::int32_t)>& distance);

/// Unweighted BFS shortest path from `src` to `dst` using only edges allowed
/// by `keepEdge`. Returns the node sequence src..dst, or empty if
/// unreachable.
std::vector<std::int32_t> shortestPath(
    const Digraph& g, std::int32_t src, std::int32_t dst,
    const std::function<bool(std::int32_t edgeId)>& keepEdge);

/// Set of nodes reachable from `src` (inclusive) via allowed edges.
std::vector<bool> reachableFrom(
    const Digraph& g, std::int32_t src,
    const std::function<bool(std::int32_t edgeId)>& keepEdge);

}  // namespace hca::graph
