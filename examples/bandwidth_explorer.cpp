// Interactive architecture exploration: clusterize a Table 1 kernel onto a
// DSPFabric with user-chosen MUX bandwidths (the design-space knob of the
// paper's Section 5 experiments).
//
//   $ ./examples/bandwidth_explorer [kernel] [N] [M] [K]
//   $ ./examples/bandwidth_explorer idcthor 4 4 8

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"

int main(int argc, char** argv) {
  using namespace hca;

  const char* name = argc > 1 ? argv[1] : "fir2dim";
  const int n = argc > 2 ? std::atoi(argv[2]) : 8;
  const int m = argc > 3 ? std::atoi(argv[3]) : 8;
  const int k = argc > 4 ? std::atoi(argv[4]) : 8;

  auto kernels = ddg::table1Kernels();
  const ddg::Kernel* kernel = nullptr;
  for (const auto& candidate : kernels) {
    if (candidate.name == name) kernel = &candidate;
  }
  if (kernel == nullptr) {
    std::printf("unknown kernel '%s'; choose one of:", name);
    for (const auto& candidate : kernels) {
      std::printf(" %s", candidate.name.c_str());
    }
    std::printf("\n");
    return 1;
  }

  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  const machine::DspFabricModel model(config);
  std::printf("%s on %s\n", kernel->name.c_str(), config.toString().c_str());

  const core::HcaDriver driver(model);
  const auto result = driver.run(kernel->ddg);
  if (!result.legal) {
    std::printf("no legal clusterization: %s\n",
                result.failureReason.c_str());
    return 1;
  }
  const auto mii = core::computeMii(kernel->ddg, model, result);
  std::printf("legal clusterization\n  %s\n", mii.toString().c_str());
  std::printf("  paper's final MII at N=M=K=8: %d\n", kernel->paper.finalMii);
  std::printf("  search: %d outer attempts, %lld candidates, %d backtracks\n",
              result.stats.outerAttempts,
              static_cast<long long>(result.stats.candidatesEvaluated),
              result.stats.backtrackAttempts);
  std::printf("  wires: max %d values time-sharing one wire, %zu MUX "
              "settings\n",
              result.stats.maxWirePressure, result.reconfig.settings.size());
  return 0;
}
