#include "mapper/mapper.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::mapper {

namespace {

/// One output-wire assignment of a sending child: a set of values sharing a
/// wire, the sibling destinations reading it, and the boundary output
/// wires it drives. Two parent wires may select the same source wire, so a
/// group can serve several boundary outputs (each then physically carries
/// the union; downstream consumers latch only their booked values).
struct WireGroup {
  std::vector<ValueId> values;
  std::set<std::int32_t> destChildren;     // cluster node ids reading this wire
  std::set<std::int32_t> boundaryOutputs;  // output node ids driven by it

  void mergeFrom(WireGroup& other) {
    values.insert(values.end(), other.values.begin(), other.values.end());
    destChildren.insert(other.destChildren.begin(), other.destChildren.end());
    boundaryOutputs.insert(other.boundaryOutputs.begin(),
                           other.boundaryOutputs.end());
  }
};

struct Sender {
  ClusterId cluster;
  std::vector<WireGroup> groups;
};

}  // namespace

MapResult Mapper::map(const MapperInput& input) const {
  HCA_REQUIRE(input.pg != nullptr && input.flow != nullptr,
              "Mapper needs a PatternGraph and a CopyFlow");
  HCA_REQUIRE(input.inWiresPerChild >= 1 && input.outWiresPerChild >= 1,
              "wire counts must be >= 1");
  const auto& pg = *input.pg;
  const auto& flow = *input.flow;

  MapResult result;
  const auto children = pg.clusterNodes();
  const auto inputNodes = pg.inputNodes();
  const auto outputNodes = pg.outputNodes();
  const int numChildren = static_cast<int>(children.size());

  const auto checkPerChild = [&](const std::vector<int>& v, const char* what) {
    HCA_REQUIRE(v.empty() || static_cast<int>(v.size()) == numChildren,
                "Mapper " << what << " must be empty or one entry per child");
  };
  checkPerChild(input.inWiresOfChild, "inWiresOfChild");
  checkPerChild(input.outWiresOfChild, "outWiresOfChild");
  checkPerChild(input.maxWiresIntoChildOf, "maxWiresIntoChildOf");
  /// Surviving output wires of one sending child.
  const auto outBudgetOf = [&](int si) {
    return input.outWiresOfChild.empty()
               ? input.outWiresPerChild
               : input.outWiresOfChild[static_cast<std::size_t>(si)];
  };
  /// Surviving input-wire budget of one receiving child (MUX wires further
  /// capped by the surviving crossbar lanes at the leaves).
  const auto inCapOf = [&](int di) {
    const int wires =
        input.inWiresOfChild.empty()
            ? input.inWiresPerChild
            : input.inWiresOfChild[static_cast<std::size_t>(di)];
    const int extra =
        input.maxWiresIntoChildOf.empty()
            ? input.maxWiresIntoChild
            : input.maxWiresIntoChildOf[static_cast<std::size_t>(di)];
    return extra > 0 ? std::min(wires, extra) : wires;
  };

  // Cluster node id -> child index; output node id -> boundary index. PG
  // node ids are dense (indexes into the node table), so a flat vector
  // replaces the former std::map: O(1) lookups, one contiguous allocation.
  const auto numPgNodes = static_cast<std::size_t>(pg.numNodes());
  std::vector<int> childIndex(numPgNodes, -1);
  for (int i = 0; i < numChildren; ++i) {
    childIndex[static_cast<std::size_t>(
        children[static_cast<std::size_t>(i)].value())] = i;
  }
  std::vector<int> outputIndex(numPgNodes, -1);
  for (std::size_t i = 0; i < outputNodes.size(); ++i) {
    outputIndex[static_cast<std::size_t>(outputNodes[i].value())] =
        static_cast<int>(i);
  }
  const auto indexIn = [](const std::vector<int>& table, std::int32_t node) {
    const int index = table[static_cast<std::size_t>(node)];
    HCA_CHECK(index >= 0, "PG node " << node << " missing from index table");
    return index;
  };

  // Every output node must be fed by exactly one sender (unary fan-in of
  // the outgoing MUX wire). The SEE enforces this during assignment; for
  // externally-produced flows (the baselines' post-hoc checks) it must be
  // re-validated here.
  for (const ClusterId out : outputNodes) {
    int feeders = 0;
    for (const PgArcId arc : pg.inArcs(out)) {
      if (flow.isReal(arc)) ++feeders;
    }
    if (feeders > 1) {
      result.legal = false;
      result.failureReason =
          strCat("output node ", indexIn(outputIndex, out.value()),
                 " is fed by ", feeders, " clusters (unary fan-in violated)");
      return result;
    }
  }

  // ---- Phase A: group each sender's outgoing values onto output wires. ----
  //
  // Values sharing an identical destination set share a wire (broadcast,
  // Fig. 9); values bound to the same boundary output node must ride the
  // one wire driving it. When the output-wire budget runs out, groups are
  // merged: a merged wire may drive several parent wires and carry sibling
  // traffic besides — the extra values are simply ignored downstream.
  std::vector<Sender> senders(static_cast<std::size_t>(numChildren));
  for (int si = 0; si < numChildren; ++si) {
    const ClusterId s = children[static_cast<std::size_t>(si)];
    senders[static_cast<std::size_t>(si)].cluster = s;

    // Destination sets per value.
    std::map<ValueId, std::set<std::int32_t>> destsOf;
    std::map<ValueId, std::int32_t> boundaryOf;
    for (const PgArcId arc : pg.outArcs(s)) {
      const ClusterId dst = pg.arc(arc).dst;
      for (const ValueId v : flow.copiesOn(arc)) {
        if (pg.node(dst).kind == machine::PgNodeKind::kOutput) {
          HCA_CHECK(boundaryOf.count(v) == 0 || boundaryOf[v] == dst.value(),
                    "value bound to two output wires");
          boundaryOf[v] = dst.value();
        } else {
          destsOf[v].insert(dst.value());
        }
        if (destsOf.count(v) == 0) destsOf[v];  // ensure key exists
      }
    }

    // Boundary groups first: one per output node fed by s, then sibling
    // groups keyed by exact destination set (broadcast sharing, Fig. 9).
    std::map<std::int32_t, WireGroup> boundaryGroups;
    std::map<std::set<std::int32_t>, WireGroup> siblingGroups;
    for (const auto& [v, dests] : destsOf) {
      const auto bIt = boundaryOf.find(v);
      if (bIt != boundaryOf.end()) {
        WireGroup& g = boundaryGroups[bIt->second];
        g.boundaryOutputs.insert(bIt->second);
        g.values.push_back(v);
        g.destChildren.insert(dests.begin(), dests.end());
      } else {
        WireGroup& g = siblingGroups[dests];
        g.values.push_back(v);
        g.destChildren = dests;
      }
    }

    auto& groups = senders[static_cast<std::size_t>(si)].groups;
    for (auto& [node, g] : boundaryGroups) groups.push_back(std::move(g));
    for (auto& [dests, g] : siblingGroups) groups.push_back(std::move(g));

    // Distribution: use *all* available wires (Fig. 9b: "it tries to use
    // all the possible communication patterns to map the remaining
    // copies"). Splitting fat sibling groups matters beyond pressure: a
    // wire's value list becomes an outNode_MaxIn co-location group one
    // level down, so thin wires keep the child problems solvable.
    // Boundary groups are not splittable (the parent wire is fixed).
    while (static_cast<int>(groups.size()) < outBudgetOf(si)) {
      int fattest = -1;
      for (int i = 0; i < static_cast<int>(groups.size()); ++i) {
        const auto& g = groups[static_cast<std::size_t>(i)];
        if (!g.boundaryOutputs.empty() || g.values.size() < 2) continue;
        if (fattest == -1 ||
            g.values.size() >
                groups[static_cast<std::size_t>(fattest)].values.size()) {
          fattest = i;
        }
      }
      if (fattest == -1) break;
      auto& g = groups[static_cast<std::size_t>(fattest)];
      std::sort(g.values.begin(), g.values.end());
      WireGroup half;
      half.destChildren = g.destChildren;
      const std::size_t keep = g.values.size() / 2;
      half.values.assign(g.values.begin() + static_cast<std::ptrdiff_t>(keep),
                         g.values.end());
      g.values.resize(keep);
      groups.push_back(std::move(half));
    }

    // Cap: merge the two smallest groups while the wire budget is blown.
    while (static_cast<int>(groups.size()) > outBudgetOf(si)) {
      if (groups.size() < 2) {
        // A single unmergeable group over budget: the child must drive a
        // wire but none survives (dead output wires).
        result.legal = false;
        result.failureReason =
            strCat("child ", si, " must drive ", groups.size(),
                   " output wires but only ", outBudgetOf(si), " survive");
        return result;
      }
      int a = -1, b = -1;
      for (int i = 0; i < static_cast<int>(groups.size()); ++i) {
        const auto size = groups[static_cast<std::size_t>(i)].values.size();
        if (a == -1 ||
            size < groups[static_cast<std::size_t>(a)].values.size()) {
          b = a;
          a = i;
        } else if (b == -1 ||
                   size < groups[static_cast<std::size_t>(b)].values.size()) {
          b = i;
        }
      }
      HCA_CHECK(a != -1 && b != -1, "merge candidates must exist");
      auto& ga = groups[static_cast<std::size_t>(std::min(a, b))];
      auto& gb = groups[static_cast<std::size_t>(std::max(a, b))];
      ga.mergeFrom(gb);
      groups.erase(groups.begin() + std::max(a, b));
    }
  }

  // ---- Phase B: satisfy per-receiver input-wire budgets by merging. ------
  const auto wiresInto = [&](std::int32_t dstNodeId) {
    int count = 0;
    // Boundary input wires with traffic for dst.
    for (const ClusterId in : inputNodes) {
      const auto arc = pg.arcBetween(in, ClusterId(dstNodeId));
      if (arc.has_value() && flow.isReal(*arc)) ++count;
    }
    // Sibling wires carrying at least one value for dst.
    for (const auto& sender : senders) {
      for (const auto& g : sender.groups) {
        if (g.destChildren.count(dstNodeId) != 0) ++count;
      }
    }
    return count;
  };

  for (int di = 0; di < numChildren; ++di) {
    const std::int32_t d = children[static_cast<std::size_t>(di)].value();
    const int inCap = inCapOf(di);
    while (wiresInto(d) > inCap) {
      // Merge two groups of the sender with the most wires into d.
      int bestSender = -1;
      std::vector<int> mergeable;
      for (int si = 0; si < numChildren; ++si) {
        auto& groups = senders[static_cast<std::size_t>(si)].groups;
        std::vector<int> touching;
        for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
          if (groups[static_cast<std::size_t>(gi)].destChildren.count(d) !=
              0) {
            touching.push_back(gi);
          }
        }
        if (touching.size() >= 2 &&
            (bestSender == -1 || touching.size() > mergeable.size())) {
          bestSender = si;
          mergeable = touching;
        }
      }
      if (bestSender == -1) {
        result.legal = false;
        result.failureReason =
            strCat("child ", di, " needs ", wiresInto(d),
                   " input wires but only ", inCap, " are available");
        return result;
      }
      auto& groups = senders[static_cast<std::size_t>(bestSender)].groups;
      groups[static_cast<std::size_t>(mergeable[0])].mergeFrom(
          groups[static_cast<std::size_t>(mergeable[1])]);
      groups.erase(groups.begin() + mergeable[1]);
    }
  }

  // ---- Emit ILIs, MUX settings and statistics. ----------------------------
  for (int si = 0; si < numChildren; ++si) {
    result.wiresAvailable += outBudgetOf(si);
  }
  result.ilis.resize(static_cast<std::size_t>(numChildren));
  std::vector<int> inWireCursor(static_cast<std::size_t>(numChildren), 0);

  for (int di = 0; di < numChildren; ++di) {
    result.ilis[static_cast<std::size_t>(di)].child = di;
  }

  // Sender output wires (deterministic: boundary groups then sibling
  // groups, already in construction order).
  for (int si = 0; si < numChildren; ++si) {
    auto& sender = senders[static_cast<std::size_t>(si)];
    for (int wire = 0; wire < static_cast<int>(sender.groups.size());
         ++wire) {
      auto& g = sender.groups[static_cast<std::size_t>(wire)];
      std::sort(g.values.begin(), g.values.end());
      result.maxValuesPerWire = std::max(
          result.maxValuesPerWire, static_cast<int>(g.values.size()));
      ++result.wiresUsed;
      result.valuesMapped += static_cast<int>(g.values.size());
      // The sender's own ILI: values leaving on this wire.
      result.ilis[static_cast<std::size_t>(si)].outputs.push_back(
          WireValues{wire, g.values});
      // Boundary output connections (several parent wires may select the
      // same source wire).
      for (const std::int32_t outNode : g.boundaryOutputs) {
        machine::MuxSetting setting;
        setting.problemPath = input.problemPath;
        setting.dstChild = numChildren + indexIn(outputIndex, outNode);
        setting.dstWire = 0;
        setting.srcChild = si;
        setting.srcWire = wire;
        result.reconfig.settings.push_back(setting);
      }
      // Sibling connections: one input wire per reading child.
      for (const std::int32_t dstNode : g.destChildren) {
        const int di = indexIn(childIndex, dstNode);
        const int dstWire = inWireCursor[static_cast<std::size_t>(di)]++;
        machine::MuxSetting setting;
        setting.problemPath = input.problemPath;
        setting.dstChild = di;
        setting.dstWire = dstWire;
        setting.srcChild = si;
        setting.srcWire = wire;
        result.reconfig.settings.push_back(setting);
        result.ilis[static_cast<std::size_t>(di)].inputs.push_back(
            WireValues{dstWire, g.values});
      }
    }
  }

  // Boundary input wires reaching children.
  for (std::size_t bi = 0; bi < inputNodes.size(); ++bi) {
    const ClusterId in = inputNodes[bi];
    auto boundaryValues = pg.node(in).boundaryValues;
    std::sort(boundaryValues.begin(), boundaryValues.end());
    result.maxValuesPerWire = std::max(
        result.maxValuesPerWire, static_cast<int>(boundaryValues.size()));
    result.valuesMapped += static_cast<int>(boundaryValues.size());
    for (int di = 0; di < numChildren; ++di) {
      const auto arc =
          pg.arcBetween(in, children[static_cast<std::size_t>(di)]);
      if (!arc.has_value() || !flow.isReal(*arc)) continue;
      const int dstWire = inWireCursor[static_cast<std::size_t>(di)]++;
      machine::MuxSetting setting;
      setting.problemPath = input.problemPath;
      setting.dstChild = di;
      setting.dstWire = dstWire;
      setting.srcIsBoundary = true;
      setting.srcWire = static_cast<int>(bi);
      result.reconfig.settings.push_back(setting);
      result.ilis[static_cast<std::size_t>(di)].inputs.push_back(
          WireValues{dstWire, boundaryValues});
    }
  }

  // Final verification of the budgets.
  for (int di = 0; di < numChildren; ++di) {
    const int used = inWireCursor[static_cast<std::size_t>(di)];
    HCA_CHECK(used <= inCapOf(di),
              "mapper exceeded input-wire budget of child "
                  << di << ": " << used << " > " << inCapOf(di));
  }
  result.reconfig.validate();
  result.legal = true;
  return result;
}

}  // namespace hca::mapper
