#include "sim/simulator.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::sim {

SimResult simulate(const mapper::FinalMapping& mapping,
                   const machine::DspFabricModel& model,
                   const sched::Schedule& schedule, const SimConfig& config) {
  const auto& ddg = mapping.finalDdg;
  HCA_REQUIRE(config.iterations >= 0, "negative iteration count");
  {
    const auto violations =
        sched::validateSchedule(mapping, model, schedule);
    HCA_REQUIRE(violations.empty(),
                "invalid schedule: " << violations.front());
  }

  // Global issue order: one event per (op, iteration). Loads at a cycle
  // observe memory before stores of the same cycle commit (the DMA serves
  // reads of a slot before its writes).
  struct Event {
    int cycle;
    bool isStore;
    std::int32_t cn;
    std::int32_t node;
    int iteration;
  };
  std::vector<Event> events;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    for (int i = 0; i < config.iterations; ++i) {
      events.push_back(Event{
          schedule.cycleOf[static_cast<std::size_t>(v)] + i * schedule.ii,
          node.op == ddg::Op::kStore,
          mapping.cnOf[static_cast<std::size_t>(v)].value(), v, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    if (a.isStore != b.isStore) return !a.isStore;
    if (a.cn != b.cn) return a.cn < b.cn;
    return a.node < b.node;
  });

  // Per-node value history across iterations.
  std::vector<std::vector<std::int64_t>> values(
      static_cast<std::size_t>(ddg.numNodes()),
      std::vector<std::int64_t>(static_cast<std::size_t>(config.iterations),
                                0));

  SimResult result;
  result.memory = config.memory;
  result.cycles = config.iterations > 0
                      ? (config.iterations - 1) * schedule.ii +
                            schedule.length
                      : 0;

  std::vector<std::int64_t> inputs;
  for (const Event& event : events) {
    const auto& node = ddg.node(DdgNodeId(event.node));
    inputs.clear();
    for (const auto& operand : node.operands) {
      const int src = event.iteration - operand.distance;
      if (src < 0) {
        inputs.push_back(operand.init);
      } else if (ddg.node(operand.src).op == ddg::Op::kConst) {
        inputs.push_back(ddg.node(operand.src).imm0);
      } else {
        inputs.push_back(values[operand.src.index()]
                               [static_cast<std::size_t>(src)]);
      }
    }
    std::int64_t value = 0;
    if (node.op == ddg::Op::kLoad) {
      const std::int64_t addr = inputs[0] + node.imm0;
      HCA_REQUIRE(addr >= 0 &&
                      addr < static_cast<std::int64_t>(result.memory.size()),
                  "simulated load out of bounds at cycle "
                      << event.cycle << ": address " << addr);
      value = result.memory[static_cast<std::size_t>(addr)];
    } else if (node.op == ddg::Op::kStore) {
      const std::int64_t addr = inputs[0] + node.imm0;
      HCA_REQUIRE(addr >= 0 &&
                      addr < static_cast<std::int64_t>(result.memory.size()),
                  "simulated store out of bounds at cycle "
                      << event.cycle << ": address " << addr);
      result.memory[static_cast<std::size_t>(addr)] = inputs[1];
      result.storeTrace.push_back(ddg::InterpTraceEntry{
          event.iteration, DdgNodeId(event.node), addr, inputs[1]});
    } else {
      value = ddg::evalPure(node, inputs);
    }
    values[static_cast<std::size_t>(event.node)]
          [static_cast<std::size_t>(event.iteration)] = value;
  }
  return result;
}

bool matchesReference(const ddg::Ddg& originalDdg,
                      const mapper::FinalMapping& mapping,
                      const machine::DspFabricModel& model,
                      const sched::Schedule& schedule,
                      const SimConfig& config, std::string* whyNot) {
  ddg::InterpConfig interpConfig;
  interpConfig.iterations = config.iterations;
  interpConfig.memory = config.memory;
  const auto reference = ddg::interpret(originalDdg, interpConfig);
  const auto simulated = simulate(mapping, model, schedule, config);
  if (reference.memory == simulated.memory) return true;
  if (whyNot != nullptr) {
    for (std::size_t i = 0; i < reference.memory.size(); ++i) {
      if (reference.memory[i] != simulated.memory[i]) {
        *whyNot = strCat("memory[", i, "]: reference ", reference.memory[i],
                         " vs simulated ", simulated.memory[i]);
        break;
      }
    }
  }
  return false;
}

}  // namespace hca::sim
