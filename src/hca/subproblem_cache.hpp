#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "mapper/mapper.hpp"
#include "see/engine.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

/// Memoization of single-level SEE sub-problems (one HcaDriver::run).
///
/// The outer portfolio search re-solves the same 4-ish-node sub-problems
/// over and over: backtracking alternatives re-enter identical children,
/// and different heuristic profiles share every sub-problem whose options
/// they do not perturb. The SEE is deterministic, so a sub-problem is fully
/// described by the *content* of its inputs — pattern-graph shape, working
/// set, relay values, boundary ILIs, constraints, latency model, and a
/// fingerprint of the SeeOptions — and its SeeResult can be replayed from a
/// hash lookup. Keys are exact serialized content (compared byte-for-byte on
/// lookup), never a lossy hash, so a hit is guaranteed to byte-match a fresh
/// solve. The map is sharded: each shard has its own mutex, so concurrent
/// portfolio attempts rarely contend.
///
/// The problem path is deliberately *not* part of the key: identical
/// sub-problems at different positions of the problem tree (or in different
/// outer attempts) share one entry.
namespace hca::core {

/// Serializes everything the SEE result depends on, except the DDG itself
/// (fixed for the lifetime of one cache) and the problem path (irrelevant
/// to the result). `boundaryInputs`/`boundaryOutputs` must be the exact
/// wire lists used to extend `pg` with boundary nodes, in that order.
[[nodiscard]] std::string subproblemKey(
    const machine::PatternGraph& pg, const machine::PgConstraints& constraints,
    const ddg::LatencyModel& latency, int inWiresPerCluster,
    int outWiresPerCluster,
    const std::vector<mapper::WireValues>& boundaryInputs,
    const std::vector<mapper::WireValues>& boundaryOutputs,
    const std::vector<DdgNodeId>& workingSet,
    const std::vector<ValueId>& relayValues, const see::SeeOptions& options);

class SubproblemCache {
 public:
  /// Per-shard traffic counters for the observability layer. Shard-level
  /// granularity shows whether the key hash actually spreads the portfolio
  /// attempts (a hot shard = lock contention the aggregate would hide).
  struct ShardStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;
    std::int64_t bytes = 0;  ///< approximate resident footprint
  };

  /// `maxEntriesPerShard` <= 0 = unbounded (the default — one run's
  /// sub-problem population is small). When bounded, an insert into a full
  /// shard evicts one resident entry (oldest-inserted first) and counts it
  /// in ShardStats::evictions; correctness is unaffected because evicted
  /// sub-problems are simply re-solved on the next miss.
  ///
  /// `maxBytesPerShard` <= 0 = no byte ceiling. When set, every insert
  /// updates the shard's approximate byte tally (key plus an estimate of
  /// the SeeResult's vectors) and sheds oldest-inserted entries until the
  /// shard is back under its ceiling — the cache half of the driver's
  /// `HcaOptions::memoryBudgetBytes` contract: degrade hit rate, never OOM.
  explicit SubproblemCache(int numShards = 16, int maxEntriesPerShard = 0,
                           std::int64_t maxBytesPerShard = 0);

  SubproblemCache(const SubproblemCache&) = delete;
  SubproblemCache& operator=(const SubproblemCache&) = delete;

  /// Returns the cached result for `key`, or nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const see::SeeResult> lookup(
      const std::string& key) const;

  /// Inserts `result` if the key is absent and returns the stored entry
  /// (the first writer wins, so concurrent attempts all observe the same
  /// object — with a deterministic SEE both candidates are identical
  /// anyway).
  std::shared_ptr<const see::SeeResult> insert(const std::string& key,
                                               see::SeeResult result);

  [[nodiscard]] std::int64_t entries() const;

  /// Approximate resident bytes across all shards.
  [[nodiscard]] std::int64_t bytesUsed() const;

  /// Snapshot of the per-shard counters, in shard order.
  [[nodiscard]] std::vector<ShardStats> shardStats() const;

  /// Visits every resident entry: shards in index order, entries within a
  /// shard in insertion order (each shard's lock is held for its pass).
  /// The deterministic order matters to the checkpoint layer — restoring
  /// entries in visit order reproduces the per-shard insertion order, so a
  /// resumed run's eviction decisions match the original's. `fn` must not
  /// reenter the cache.
  void forEach(const std::function<void(
                   const std::string& key,
                   const std::shared_ptr<const see::SeeResult>& result)>& fn)
      const;

  /// Approximate heap footprint of one cache entry (key + result), the
  /// unit of the byte accounting above.
  [[nodiscard]] static std::int64_t approxEntryBytes(
      const std::string& key, const see::SeeResult& result);

 private:
  struct Shard {
    mutable Mutex mutex;
    /// Point lookups only; every walk (forEach, eviction) goes through
    /// `insertionOrder` below, so hash order never reaches a result.
    std::unordered_map<std::string, std::shared_ptr<const see::SeeResult>> map
        HCA_GUARDED_BY(mutex);
    /// Keys in insertion order, for bounded-mode eviction.
    std::vector<std::string> insertionOrder HCA_GUARDED_BY(mutex);
    std::int64_t hits HCA_GUARDED_BY(mutex) = 0;
    std::int64_t misses HCA_GUARDED_BY(mutex) = 0;
    std::int64_t evictions HCA_GUARDED_BY(mutex) = 0;
    std::int64_t bytes HCA_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shardOf(const std::string& key) const;

  const int maxEntriesPerShard_;
  const std::int64_t maxBytesPerShard_;
  mutable std::vector<Shard> shards_;
};

}  // namespace hca::core
