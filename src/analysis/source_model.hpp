#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"

/// Source discovery and the include graph for `hca-lint`.
///
/// The model starts from `compile_commands.json` (the translation units the
/// build actually compiles), lexes each TU, resolves its quoted includes
/// against the repo, and recurses until every reachable repo file is loaded.
/// System/angled includes are recorded but never followed — the lint rules
/// only constrain this repo's code.
namespace hca::analysis {

/// One entry of compile_commands.json that points at a repo source file.
struct CompileCommand {
  std::string directory;
  std::string file;  ///< absolute path (resolved against `directory`)
};

/// Parses a compile_commands.json buffer (array of {directory, file, ...}).
/// Relative `file` entries are resolved against their `directory`. Throws
/// hca::Error on malformed JSON or missing fields.
[[nodiscard]] std::vector<CompileCommand> parseCompileCommands(
    const std::string& json);

/// The module a repo-relative path belongs to, and its rank in the layering
/// DAG. Edges may only point from higher rank to lower or equal rank;
/// same-rank edges across different modules are allowed only where the DAG
/// declares them siblings (rank ties below).
struct ModuleInfo {
  std::string name;  ///< e.g. "support", "see", "tools"
  int rank = -1;     ///< -1 = outside the DAG (never checked)
};

/// Classifies a repo-relative path ("src/see/engine.cpp", "tools/ci.sh").
/// Rank order: support=0, graph=1, ddg=2, machine=2, see/mapper/sched/
/// baseline/sim=3, hca=4, verify=5, analysis=6, tools/bench/tests/
/// examples=7. Anything else gets rank -1.
[[nodiscard]] ModuleInfo classifyModule(const std::string& relPath);

/// One loaded source file with its lex result and resolved includes.
struct SourceFile {
  std::string relPath;  ///< repo-relative, '/'-separated
  ModuleInfo module;
  LexedFile lexed;
  /// Repo-relative targets of quoted includes that resolved to repo files,
  /// paired with the directive (for line numbers in diagnostics).
  std::vector<std::pair<std::string, IncludeDirective>> repoIncludes;
};

/// The full set of repo files reachable from the compile database.
class SourceModel {
 public:
  /// Loads every TU in `commands` plus transitively included repo files.
  /// `root` is the absolute repo root; include resolution tries, in order,
  /// the includer's directory, `<root>/src`, and `<root>` — mirroring the
  /// build's `-I` setup. Files outside `root` are ignored.
  static SourceModel load(const std::string& root,
                          const std::vector<CompileCommand>& commands);

  /// Loads from in-memory buffers keyed by repo-relative path (tests).
  /// Every buffer becomes a file; includes resolve only within the map.
  static SourceModel loadFromMemory(
      const std::map<std::string, std::string>& files);

  [[nodiscard]] const std::vector<SourceFile>& files() const noexcept {
    return files_;
  }
  [[nodiscard]] const SourceFile* find(const std::string& relPath) const;

 private:
  std::vector<SourceFile> files_;  ///< sorted by relPath
};

}  // namespace hca::analysis
