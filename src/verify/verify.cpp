#include "verify/verify.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::verify {

std::string Diagnostic::toString() const {
  std::string out = strCat("[", checkId, "] ");
  out += subproblemPath.empty() ? "result"
                                : strCat("[", strJoin(subproblemPath, "."), "]");
  if (!entities.empty()) {
    out += " {";
    for (std::size_t i = 0; i < entities.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(entities[i]);
    }
    out += "}";
  }
  out += ": ";
  out += message;
  return out;
}

const char* to_string(CheckStage stage) {
  switch (stage) {
    case CheckStage::kInput:
      return "input";
    case CheckStage::kSolve:
      return "solve";
    case CheckStage::kMap:
      return "map";
    case CheckStage::kResult:
      return "result";
    case CheckStage::kPostProcess:
      return "post-process";
  }
  HCA_UNREACHABLE("bad CheckStage");
}

void CheckRegistry::add(Check check) {
  HCA_REQUIRE(!check.id.empty(), "check id must not be empty");
  HCA_REQUIRE(check.run != nullptr, "check '" << check.id << "' has no body");
  HCA_REQUIRE(find(check.id) == nullptr,
              "duplicate check id '" << check.id << "'");
  checks_.push_back(std::move(check));
}

const Check* CheckRegistry::find(const std::string& id) const {
  for (const Check& check : checks_) {
    if (check.id == id) return &check;
  }
  return nullptr;
}

std::vector<const Check*> CheckRegistry::select(
    const std::vector<std::string>& ids) const {
  std::vector<const Check*> selected;
  if (ids.empty()) {
    selected.reserve(checks_.size());
    for (const Check& check : checks_) selected.push_back(&check);
    return selected;
  }
  // Selection runs in registration (= pipeline) order regardless of the
  // order the user listed the ids in.
  for (const Check& check : checks_) {
    if (std::find(ids.begin(), ids.end(), check.id) != ids.end()) {
      selected.push_back(&check);
    }
  }
  for (const std::string& id : ids) {
    HCA_REQUIRE(find(id) != nullptr, "unknown verifier check '" << id << "'");
  }
  return selected;
}

namespace {

void runChecks(const std::vector<const Check*>& selected,
               const VerifyInput& input, bool recordScope,
               std::vector<Diagnostic>& out) {
  HCA_REQUIRE(input.ddg != nullptr && input.model != nullptr &&
                  input.result != nullptr,
              "VerifyInput needs a DDG, a machine model and a result");
  for (const Check* check : selected) {
    if (recordScope && !check->perRecord) continue;
    const std::size_t before = out.size();
    check->run(input, out);
    // Stamp the new diagnostics so check bodies never repeat their own id.
    for (std::size_t i = before; i < out.size(); ++i) {
      out[i].checkId = check->id;
    }
  }
}

}  // namespace

std::vector<Diagnostic> CheckRegistry::run(
    const VerifyInput& input, const std::vector<std::string>& ids) const {
  VerifyInput whole = input;
  whole.record = nullptr;
  std::vector<Diagnostic> out;
  runChecks(select(ids), whole, /*recordScope=*/false, out);
  return out;
}

std::vector<Diagnostic> CheckRegistry::runRecord(
    const VerifyInput& input, const std::vector<std::string>& ids) const {
  HCA_REQUIRE(input.record != nullptr,
              "runRecord needs VerifyInput::record set");
  std::vector<Diagnostic> out;
  runChecks(select(ids), input, /*recordScope=*/true, out);
  return out;
}

std::vector<std::string> parseCheckList(const std::string& text) {
  std::vector<std::string> ids;
  std::string current;
  const auto flush = [&] {
    HCA_REQUIRE(!current.empty(), "empty check name in check list '"
                                      << text << "'");
    HCA_REQUIRE(CheckRegistry::builtin().find(current) != nullptr,
                "unknown verifier check '" << current << "'");
    ids.push_back(std::move(current));
    current.clear();
  };
  for (const char c : text) {
    if (c == ',') {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return ids;
}

std::string formatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += '\n';
    out += d.toString();
  }
  return out;
}

}  // namespace hca::verify
