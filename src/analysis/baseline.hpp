#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"

/// The checked-in lint baseline (tools/lint_baseline.json).
///
/// The baseline turns the CI gate into a deltas-only check: a diagnostic
/// whose suppression key is listed is *known debt*, everything else is new
/// and fails the build. Keys are `rule:file:entity` (no line numbers), so
/// the baseline survives unrelated edits; entries that no longer match any
/// diagnostic are stale and pruned by `hca_lint --update-baseline`.
namespace hca::analysis {

struct Baseline {
  /// Sorted, de-duplicated suppression keys.
  std::set<std::string> suppressions;
};

/// Result of filtering diagnostics through a baseline.
struct BaselineSplit {
  std::vector<Diagnostic> fresh;      ///< not in the baseline — gate fails
  std::vector<Diagnostic> baselined;  ///< known debt — reported, not fatal
  std::vector<std::string> stale;     ///< baseline keys that matched nothing
};

/// Parses a baseline document: {"version": 1, "suppressions": ["...", ...]}.
/// Throws hca::Error on malformed input or unsupported version.
[[nodiscard]] Baseline parseBaseline(const std::string& json);

/// Serializes a baseline (sorted keys, version 1, trailing newline).
[[nodiscard]] std::string formatBaseline(const Baseline& baseline);

/// Builds the baseline that would make `diagnostics` pass.
[[nodiscard]] Baseline baselineFromDiagnostics(
    const std::vector<Diagnostic>& diagnostics);

/// Splits diagnostics into fresh vs. baselined and reports stale keys.
[[nodiscard]] BaselineSplit splitAgainstBaseline(
    const Baseline& baseline, const std::vector<Diagnostic>& diagnostics);

}  // namespace hca::analysis
