#pragma once

#include <cstdint>
#include <vector>

#include "ddg/ddg.hpp"

/// Reference interpreter for loop-body DDGs.
///
/// Executes the loop for a given number of iterations over a flat synthetic
/// memory, honoring loop-carried operand semantics (an operand with distance
/// d reads the value its producer computed d iterations earlier, or the
/// operand's `init` value while the iteration index is < d). This is the
/// golden model the fabric simulator is checked against.
namespace hca::ddg {

struct InterpConfig {
  int iterations = 16;
  /// Initial memory contents; loads outside the image throw.
  std::vector<std::int64_t> memory;
};

struct InterpTraceEntry {
  int iteration = 0;
  DdgNodeId node;
  std::int64_t address = 0;
  std::int64_t value = 0;
};

struct InterpResult {
  std::vector<std::int64_t> memory;          // memory after the run
  std::vector<InterpTraceEntry> storeTrace;  // every store, in program order
  /// Value of each node on the final iteration (diagnostics / tests).
  std::vector<std::int64_t> lastValues;
};

/// Runs the DDG. Throws InvalidArgumentError on out-of-bounds accesses or a
/// malformed DDG.
InterpResult interpret(const Ddg& ddg, const InterpConfig& config);

/// Evaluates one side-effect-free node (everything except load/store) on
/// the given operand values. Shared with the fabric simulator.
std::int64_t evalPure(const DdgNode& node,
                      const std::vector<std::int64_t>& inputs);

}  // namespace hca::ddg
