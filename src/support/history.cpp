#include "support/history.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/check.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace hca {

namespace {

HistoryRecord recordFromJson(const JsonValue& value, std::size_t lineNo) {
  HCA_REQUIRE(value.isObject(),
              "history line " << lineNo << ": not a JSON object");
  HistoryRecord record;
  bool haveContext = false, haveWorkload = false, haveMachine = false,
       haveLegal = false, haveWall = false, haveCounters = false;
  for (const auto& [key, member] : value.object) {
    if (key == "context") {
      record.context = RunContext::fromJson(member);
      haveContext = true;
    } else if (key == "workload") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kString,
                  "history line " << lineNo << ": 'workload' must be a string");
      record.workload = member.string;
      haveWorkload = true;
    } else if (key == "machine") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kString,
                  "history line " << lineNo << ": 'machine' must be a string");
      record.machine = member.string;
      haveMachine = true;
    } else if (key == "legal") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kBool,
                  "history line " << lineNo << ": 'legal' must be a bool");
      record.legal = member.boolean;
      haveLegal = true;
    } else if (key == "wall_us") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kNumber,
                  "history line " << lineNo << ": 'wall_us' must be a number");
      record.wallUs = member.number;
      haveWall = true;
    } else if (key == "counters") {
      HCA_REQUIRE(member.isObject(),
                  "history line " << lineNo << ": 'counters' must be an object");
      for (const auto& [name, counter] : member.object) {
        HCA_REQUIRE(counter.kind == JsonValue::Kind::kNumber,
                    "history line " << lineNo << ": counter '" << name
                                    << "' must be a number");
        record.counters[name] = static_cast<std::int64_t>(counter.number);
      }
      haveCounters = true;
    } else {
      HCA_REQUIRE(false,
                  "history line " << lineNo << ": unknown member '" << key
                                  << "'");
    }
  }
  HCA_REQUIRE(haveContext && haveWorkload && haveMachine && haveLegal &&
                  haveWall && haveCounters,
              "history line " << lineNo << ": incomplete record");
  HCA_REQUIRE(record.context.schemaVersion == RunContext::kSchemaVersion,
              "history line " << lineNo << ": schema version "
                              << record.context.schemaVersion
                              << " (this build reads "
                              << RunContext::kSchemaVersion << ")");
  return record;
}

}  // namespace

std::string historyLineJson(const HistoryRecord& record) {
  std::ostringstream os;
  JsonWriter json(os);
  json.beginObject();
  json.key("context");
  record.context.writeJson(json);
  json.key("workload").value(record.workload);
  json.key("machine").value(record.machine);
  json.key("legal").value(record.legal);
  json.key("wall_us").value(record.wallUs);
  json.key("counters").beginObject();
  for (const auto& [name, counter] : record.counters) {
    json.key(name).value(counter);
  }
  json.endObject();
  json.endObject();
  return os.str();
}

void appendHistoryLine(const std::string& path, const std::string& line) {
  // Plain O_APPEND semantics, not atomicWriteFile: history is append-only
  // by design, and replacing the file would race a concurrent appender.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw IoError(strCat("history: cannot open '", path,
                         "' for append: ", std::strerror(errno)));
  }
  const std::string withNewline = line + "\n";
  const bool ok =
      std::fwrite(withNewline.data(), 1, withNewline.size(), f) ==
          withNewline.size() &&
      std::fflush(f) == 0;
  const int savedErrno = errno;
  std::fclose(f);
  if (!ok) {
    throw IoError(strCat("history: short write to '", path,
                         "': ", std::strerror(savedErrno)));
  }
}

std::vector<HistoryRecord> parseHistory(const std::string& text) {
  std::vector<HistoryRecord> records;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    ++lineNo;
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue value;
    std::string error;
    HCA_REQUIRE(parseJson(line, &value, &error),
                "history line " << lineNo << ": bad JSON: " << error);
    records.push_back(recordFromJson(value, lineNo));
  }
  return records;
}

std::vector<HistoryRecord> loadHistory(const std::string& path) {
  if (!fileExists(path)) return {};
  return parseHistory(readFile(path));
}

std::vector<HistoryRecord> selectHistory(
    const std::vector<HistoryRecord>& records, const std::string& workload,
    const std::string& machine) {
  std::vector<HistoryRecord> out;
  for (const HistoryRecord& record : records) {
    if (record.workload != workload) continue;
    if (!machine.empty() && record.machine != machine) continue;
    out.push_back(record);
  }
  return out;
}

std::vector<double> wallSeries(const std::vector<HistoryRecord>& records,
                               const std::string& workload,
                               const std::string& machine) {
  std::vector<double> out;
  for (const HistoryRecord& record :
       selectHistory(records, workload, machine)) {
    // Failed runs are typically deadline-bound; mixing them into the series
    // would inflate any variance threshold computed from it.
    if (record.legal) out.push_back(record.wallUs);
  }
  return out;
}

std::vector<double> counterSeries(const std::vector<HistoryRecord>& records,
                                  const std::string& workload,
                                  const std::string& counter,
                                  const std::string& machine) {
  std::vector<double> out;
  for (const HistoryRecord& record :
       selectHistory(records, workload, machine)) {
    const auto it = record.counters.find(counter);
    if (it != record.counters.end()) {
      out.push_back(static_cast<double>(it->second));
    }
  }
  return out;
}

}  // namespace hca
