#pragma once

#include <string>
#include <vector>

/// A small C++-aware lexer for `hca-lint` (src/analysis). It is not a
/// compiler front end: it produces the token stream the lint rules need —
/// identifiers, punctuation, literals, `#include` directives and comments —
/// while getting the parts that break naive grep *right*: `//` and `/*..*/`
/// comments, string/char literals with escapes, raw string literals
/// (`R"delim(..)delim"`, including prefixed `LR/uR/u8R/UR` forms) and
/// line numbers across all of them. A `steady_clock` inside a comment or a
/// string literal is therefore never a token, so rules built on this lexer
/// cannot be fooled the way text search can.
namespace hca::analysis {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the rules match on text)
  kNumber,
  kString,      ///< string literal, escapes and raw forms included
  kCharacter,   ///< character literal
  kPunct,       ///< one token per punctuation character ("::" is two)
  kComment,     ///< whole comment, // or /* */ (text includes delimiters)
  kHeaderName,  ///< <...> or "..." immediately after `#include`
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// One `#include` directive, extracted during lexing.
struct IncludeDirective {
  std::string path;    ///< header name without delimiters
  bool angled = false; ///< <...> (system) vs "..." (user)
  int line = 0;
};

/// One `// hca-lint: <key>(<reason>)` suppression marker. Markers with an
/// empty reason are not returned — a suppression must say *why*.
struct SuppressionMarker {
  std::string key;     ///< e.g. "ordered-ok"
  std::string reason;
  int line = 0;        ///< line the marker text appears on
};

struct LexedFile {
  std::vector<Token> tokens;  ///< comments excluded
  std::vector<Token> comments;
  std::vector<IncludeDirective> includes;
  std::vector<SuppressionMarker> suppressions;
};

/// Lexes one source buffer. Never throws on malformed input: an unterminated
/// literal or comment is lexed to end-of-file, which is the robust behaviour
/// for a linter (the compiler will reject the file anyway).
[[nodiscard]] LexedFile lex(const std::string& source);

}  // namespace hca::analysis
