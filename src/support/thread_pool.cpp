#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace hca {

ThreadPool::ThreadPool(int numThreads) {
  HCA_REQUIRE(numThreads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    HCA_CHECK(!stop_, "submit on a stopped thread pool");
    queue_.push_back(QueuedTask{std::move(task), monotonicNow()});
    stats_.maxQueueDepth =
        std::max(stats_.maxQueueDepth, static_cast<int>(queue_.size()));
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  MutexLock lock(mutex_);
  // Explicit predicate loop: the thread-safety analysis cannot see that a
  // predicate lambda runs under this lock (see support/mutex.hpp).
  while (!(queue_.empty() && active_ == 0)) idleCv_.wait(lock);
}

ThreadPool::PoolStats ThreadPool::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

int ThreadPool::resolveThreads(int requested) {
  if (requested >= 1) return requested;
  return hardwareThreads();
}

int ThreadPool::hardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::effectiveThreads(int requested, bool allowOversubscribe) {
  const int resolved = resolveThreads(requested);
  return allowOversubscribe ? resolved
                            : std::min(resolved, hardwareThreads());
}

void ThreadPool::workerLoop() {
  const auto microsSince = [](MonotonicTime since, MonotonicTime until) {
    return static_cast<double>(microsBetween(since, until));
  };
  for (;;) {
    QueuedTask task;
    MonotonicTime started;
    {
      MutexLock lock(mutex_);
      while (!(stop_ || !queue_.empty())) workCv_.wait(lock);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      started = monotonicNow();
    }
    task.fn();
    {
      const auto finished = monotonicNow();
      MutexLock lock(mutex_);
      ++stats_.tasksExecuted;
      stats_.taskWaitUs.add(microsSince(task.enqueued, started));
      stats_.taskRunUs.add(microsSince(started, finished));
      --active_;
      if (queue_.empty() && active_ == 0) idleCv_.notify_all();
    }
  }
}

}  // namespace hca
