#pragma once

#include <algorithm>
#include <cstdint>

#include "mapper/problem_record.hpp"

/// Per-sub-problem records kept by the HCA driver. They are the audit trail
/// of the decomposition: the coherency checker re-derives value routability
/// from them, and the MII computation reads the per-cluster summaries and
/// wire pressures. The record structs themselves live in
/// mapper/problem_record.hpp (the baselines produce the same shape without
/// depending on the driver); this header re-exports the core aliases and
/// owns the driver-wide search statistics.
namespace hca::core {

using mapper::ClusterSummary;
using mapper::ProblemRecord;

/// Search-effort statistics of one full `HcaDriver::run` — the *aggregate*
/// over every (target II, heuristic profile) attempt of the outer sweep,
/// including the degraded-bandwidth fallback's own sweep when it runs. The
/// driver solves each attempt with a private HcaStats and merges it into the
/// returned result when the attempt completes, so serial and parallel sweeps
/// produce the same aggregation semantics.
struct HcaStats {
  /// SEE sub-problems solved across all attempts. Cache hits count too:
  /// a hit replays the recorded result of an identical solve.
  int problemsSolved = 0;
  /// Runner-up assignments tried after a child sub-problem failed, summed
  /// over all attempts (each attempt has its own `backtrackBudget`).
  int backtrackAttempts = 0;
  /// (target II, profile) attempts *started* across the whole run. An
  /// attempt soft-cancelled before it started is counted in
  /// `attemptsCancelled` only. On a legal serial sweep this is the 1-based
  /// index of the winning attempt, matching the historical meaning; a
  /// parallel sweep may start attempts the serial sweep never reached.
  int outerAttempts = 0;
  /// Target II of the successful attempt; 0 when no legal clusterization
  /// was found (historically this reported the *last* attempt's target even
  /// on failure).
  int achievedTargetIi = 0;
  /// Attempts aborted before producing a genuine verdict: portfolio
  /// attempts soft-cancelled because a lower-index attempt already
  /// produced a legal result (includes attempts cancelled before they
  /// started), and — in any sweep — attempts cut short by the run's
  /// deadline (HcaOptions::deadlineMs).
  int attemptsCancelled = 0;
  std::int64_t statesExplored = 0;     ///< SEE frontier states expanded
  std::int64_t candidatesEvaluated = 0;
  std::int64_t routeInvocations = 0;   ///< SEE no-candidates actions
  /// Sub-problem cache traffic. On a hit the cached SEE statistics are
  /// still added to the counters above, so the aggregate counters are
  /// byte-identical with the cache on or off — the cache only changes
  /// wall-clock.
  std::int64_t cacheHits = 0;
  std::int64_t cacheMisses = 0;
  /// Max values time-sharing one wire at any level — recomputed from the
  /// *surviving* records of the winning attempt (not merged across failed
  /// attempts, whose rolled-back pressure is meaningless).
  int maxWirePressure = 0;
  /// SEE candidates expanded as copy-on-write deltas instead of full
  /// PartialSolution deep copies (see SeeStats::copiesAvoided).
  std::int64_t seeCopiesAvoided = 0;
  /// Flat snapshots written to the SEE search arenas.
  std::int64_t seeSnapshotsMaterialized = 0;
  /// Largest per-attempt snapshot-arena high-water mark seen by any SEE
  /// solve of the run.
  std::int64_t seeArenaBytesPeak = 0;
  /// SEE candidates rejected by the feasibility oracle before any solution
  /// state was materialized (see SeeStats::oracleRejects).
  std::int64_t seeOracleRejects = 0;
  /// SEE route searches answered from the negative route memo.
  std::int64_t seeRouteMemoHits = 0;
  /// SEE frontier expansions dropped by dominance pruning.
  std::int64_t seeDominancePruned = 0;

  /// Folds another attempt's counters into this one. `achievedTargetIi`
  /// and `maxWirePressure` are properties of the winning attempt and are
  /// deliberately left alone.
  void merge(const HcaStats& other) {
    problemsSolved += other.problemsSolved;
    backtrackAttempts += other.backtrackAttempts;
    outerAttempts += other.outerAttempts;
    attemptsCancelled += other.attemptsCancelled;
    statesExplored += other.statesExplored;
    candidatesEvaluated += other.candidatesEvaluated;
    routeInvocations += other.routeInvocations;
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    seeCopiesAvoided += other.seeCopiesAvoided;
    seeSnapshotsMaterialized += other.seeSnapshotsMaterialized;
    seeArenaBytesPeak = std::max(seeArenaBytesPeak, other.seeArenaBytesPeak);
    seeOracleRejects += other.seeOracleRejects;
    seeRouteMemoHits += other.seeRouteMemoHits;
    seeDominancePruned += other.seeDominancePruned;
  }
};

}  // namespace hca::core
