#pragma once

#include <vector>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"

/// Post-processing (paper Section 4.1, last paragraph): exploits the leaf
/// placements to build the final DDG — every node is pinned to a
/// computation node, and `recv` primitives are inserted as new DDG nodes
/// that perform the migration of operands between CNs. A consumer reading a
/// value produced on another CN is rewritten to read its CN-local recv;
/// relay placements materialize as receive-and-forward recvs.
namespace hca::core {

struct FinalMapping {
  ddg::Ddg finalDdg;
  /// Per final-DDG node: the CN executing it (invalid for consts).
  std::vector<CnId> cnOf;
  /// Number of nodes copied from the original DDG (recvs follow).
  std::int32_t numOriginalNodes = 0;

  struct RecvInfo {
    DdgNodeId recvNode;  // in finalDdg
    ValueId value;       // original producer
    CnId cn;
    bool isRelay = false;
  };
  std::vector<RecvInfo> recvs;

  [[nodiscard]] int instructionsOn(CnId cn) const;
};

/// Requires a legal HcaResult. The returned DDG validates and is
/// functionally equivalent to the original (recv is the identity).
FinalMapping buildFinalMapping(const ddg::Ddg& ddg,
                               const machine::DspFabricModel& model,
                               const HcaResult& result);

}  // namespace hca::core
