#include "sched/regpressure.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::sched {

std::string RegisterPressureReport::toString() const {
  return strCat("RegPressure{II=", ii, ", maxPerCn=", maxRegistersPerCn,
                ", total=", totalRegisters, "}");
}

RegisterPressureReport analyzeRegisterPressure(
    const mapper::FinalMapping& mapping, const machine::DspFabricModel& model,
    const Schedule& schedule) {
  const auto& ddg = mapping.finalDdg;
  HCA_REQUIRE(schedule.ii > 0, "schedule has non-positive II");
  {
    const auto violations = validateSchedule(mapping, model, schedule);
    HCA_REQUIRE(violations.empty(),
                "invalid schedule: " << violations.front());
  }

  RegisterPressureReport report;
  report.ii = schedule.ii;
  report.registersPerCn.assign(
      static_cast<std::size_t>(model.totalCns()), 0);

  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    if (node.op == ddg::Op::kStore) continue;  // stores define no value

    ValueLifetime lifetime;
    lifetime.node = DdgNodeId(v);
    lifetime.cn = mapping.cnOf[static_cast<std::size_t>(v)];
    lifetime.defCycle = schedule.cycleOf[static_cast<std::size_t>(v)];
    // The value exists at least until it is produced.
    lifetime.lastUseCycle =
        lifetime.defCycle + model.config().latency.of(node.op);

    for (std::int32_t u = 0; u < ddg.numNodes(); ++u) {
      const auto& user = ddg.node(DdgNodeId(u));
      if (!ddg::isInstruction(user.op)) continue;
      for (const auto& operand : user.operands) {
        if (operand.src != DdgNodeId(v)) continue;
        // A use at distance d in iteration i reads iteration i-d's value:
        // in the defining iteration's coordinates, the read happens
        // d * II cycles later.
        const int use = schedule.cycleOf[static_cast<std::size_t>(u)] +
                        schedule.ii * operand.distance;
        lifetime.lastUseCycle = std::max(lifetime.lastUseCycle, use);
      }
    }
    const int live = lifetime.lastUseCycle - lifetime.defCycle;
    lifetime.registersNeeded = std::max(1, (live + schedule.ii - 1) /
                                               schedule.ii);
    report.registersPerCn[lifetime.cn.index()] += lifetime.registersNeeded;
    report.totalRegisters += lifetime.registersNeeded;
    report.lifetimes.push_back(lifetime);
  }
  for (const int regs : report.registersPerCn) {
    report.maxRegistersPerCn = std::max(report.maxRegistersPerCn, regs);
  }
  return report;
}

}  // namespace hca::sched
