#include <gtest/gtest.h>

#include "ddg/builder.hpp"
#include "ddg/interp.hpp"
#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace hca::ddg {
namespace {

bool sameDdg(const Ddg& a, const Ddg& b) {
  if (a.numNodes() != b.numNodes()) return false;
  for (std::int32_t v = 0; v < a.numNodes(); ++v) {
    const auto& na = a.node(DdgNodeId(v));
    const auto& nb = b.node(DdgNodeId(v));
    if (na.op != nb.op || na.imm0 != nb.imm0 || na.imm1 != nb.imm1 ||
        na.name != nb.name || na.operands.size() != nb.operands.size()) {
      return false;
    }
    for (std::size_t i = 0; i < na.operands.size(); ++i) {
      if (na.operands[i].src != nb.operands[i].src ||
          na.operands[i].distance != nb.operands[i].distance ||
          na.operands[i].init != nb.operands[i].init) {
        return false;
      }
    }
  }
  return true;
}

TEST(SerializeTest, RoundTripsHandWrittenDdg) {
  DdgBuilder b;
  auto iv = b.carry(7, "iv");
  const auto next = b.add(iv, b.cst(1), "iv.next");
  b.close(iv, next, 1);
  const auto x = b.load(next, 64, "x");
  b.store(next, b.clip(x, -128, 127), 128);
  const Ddg original = b.finish();

  const auto text = toText(original);
  const Ddg parsed = fromText(text);
  EXPECT_TRUE(sameDdg(original, parsed)) << text;
}

TEST(SerializeTest, RoundTripsAllTableOneKernels) {
  for (const auto& kernel : table1Kernels()) {
    const auto text = toText(kernel.ddg);
    const Ddg parsed = fromText(text);
    EXPECT_TRUE(sameDdg(kernel.ddg, parsed)) << kernel.name;
    // Behaviour is preserved, not just structure.
    const int iterations = std::min(kernel.safeIterations, 4);
    const auto config = kernelInterpConfig(kernel, iterations);
    EXPECT_EQ(interpret(kernel.ddg, config).memory,
              interpret(parsed, config).memory)
        << kernel.name;
  }
}

class SerializeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRandomTest, RoundTripsRandomDdgs) {
  Rng rng(GetParam());
  RandomDdgParams params;
  params.numInstructions = 40 + static_cast<int>(GetParam() % 50);
  const Ddg original = randomDdg(rng, params);
  EXPECT_TRUE(sameDdg(original, fromText(toText(original))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# a comment\n"
      "\n"
      "node const imm0=5   # trailing comment\n"
      "node const imm0=9\n"
      "node store ops=0,1\n";
  const Ddg ddg = fromText(text);
  EXPECT_EQ(ddg.numNodes(), 3);
  EXPECT_EQ(ddg.node(DdgNodeId(0)).imm0, 5);
  EXPECT_EQ(ddg.node(DdgNodeId(2)).operands.size(), 2u);
}

TEST(SerializeTest, OperandShorthands) {
  const char* text =
      "node const imm0=1\n"
      "node add ops=1:1:42,0\n"  // self-carried with init; plain const ref
      "node store ops=0,1\n";
  const Ddg ddg = fromText(text);
  const auto& add = ddg.node(DdgNodeId(1));
  EXPECT_EQ(add.operands[0].distance, 1);
  EXPECT_EQ(add.operands[0].init, 42);
  EXPECT_EQ(add.operands[1].distance, 0);
}

TEST(SerializeTest, ErrorsCarryLineNumbers) {
  try {
    fromText("node const\nnode bogusop\n");
    FAIL() << "expected parse error";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_THROW(fromText("banana const\n"), InvalidArgumentError);
  EXPECT_THROW(fromText("node add ops=0:0:0\n"), InvalidArgumentError);
  EXPECT_THROW(fromText("node const imm0=1 bogus=2\n"),
               InvalidArgumentError);
  EXPECT_THROW(fromText("node\n"), InvalidArgumentError);
  // Arity violations surface through validate().
  EXPECT_THROW(fromText("node const imm0=1\nnode add ops=0\n"),
               InvalidArgumentError);
}

TEST(SerializeTest, RejectsOutOfRangeIntegers) {
  // Before range checking, 4294967296 silently wrapped to node 0 and the
  // stream parsed "successfully" into the wrong graph.
  const char* wrapSrc = "node const imm0=1\nnode store ops=4294967296,0\n";
  try {
    fromText(wrapSrc);
    FAIL() << "expected out-of-range error";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  // 2^31 (just past INT32_MAX) used to wrap negative.
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=2147483648,0\n"),
               InvalidArgumentError);
  // Distance field wraps too.
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=0:4294967297,0\n"),
               InvalidArgumentError);
  // Values too large even for int64 are a parse error, not UB.
  EXPECT_THROW(fromText("node const imm0=99999999999999999999\n"),
               InvalidArgumentError);
  EXPECT_THROW(
      fromText("node const imm0=1\nnode store ops=99999999999999999999,0\n"),
      InvalidArgumentError);
}

TEST(SerializeTest, RejectsNegativeOperandFields) {
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=-1,0\n"),
               InvalidArgumentError);
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=0:-2,0\n"),
               InvalidArgumentError);
}

TEST(SerializeTest, RejectsTruncatedAndCorruptStreams) {
  // Line cut off mid-token.
  EXPECT_THROW(fromText("node const imm0=1\nnode ad"), InvalidArgumentError);
  // Operand triple with missing pieces or trailing colon-garbage.
  EXPECT_THROW(fromText("node add ops=,1\n"), InvalidArgumentError);
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=0:,1\n"),
               InvalidArgumentError);
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=0:0:0:0,1\n"),
               InvalidArgumentError);
  // Dangling reference past the end of a truncated stream.
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=99,0\n"),
               InvalidArgumentError);
  // Field with no '=' separator.
  EXPECT_THROW(fromText("node const imm0\n"), InvalidArgumentError);
  // Non-numeric garbage inside an operand.
  EXPECT_THROW(fromText("node const imm0=1\nnode store ops=0x1,0\n"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace hca::ddg
