#pragma once

#include <string>

/// Provenance context for cross-run observability.
///
/// Every artifact that is meant to be *compared across runs* — run reports,
/// bench JSONs, baseline-history lines — embeds one `RunContext` block, so
/// a differ (`hcac --compare`, tools/ci.sh's regression gate) can refuse to
/// compare apples to oranges: a report from a Debug build, another commit,
/// or an incompatible schema version is flagged instead of silently
/// producing a bogus verdict (the committed BENCH_micro.json was once
/// generated from a debug build and nothing noticed).
///
/// The block is deliberately wall-clock-free: a run id is *passed in* by the
/// caller (`hcac --run-id`, a CI job id, ...) instead of derived from the
/// current time, so two runs of the same configuration produce byte-identical
/// context blocks unless the caller chooses otherwise.
namespace hca {

class JsonWriter;
struct JsonValue;

struct RunContext {
  /// Version of the report/history JSON layout. Bumped on incompatible
  /// changes; the differ refuses mismatched versions.
  static constexpr int kSchemaVersion = 1;

  int schemaVersion = kSchemaVersion;
  /// Commit the binaries were configured from ("unknown" outside git).
  std::string gitSha;
  /// CMAKE_BUILD_TYPE at configure time ("" when the cache was empty).
  std::string buildType;
  /// True when the stamping translation unit was compiled with NDEBUG —
  /// the ground truth for "is this a Release-grade measurement", immune to
  /// build-type strings lying.
  bool ndebug = false;
  std::string hostname;
  int hardwareConcurrency = 0;
  /// Caller-supplied run identifier; empty = not set.
  std::string runId;

  /// The context of this process: configure-time provenance plus the
  /// current host. `runId` is threaded through verbatim.
  [[nodiscard]] static RunContext current(std::string runId = "");

  /// True when the stamping build is an optimized (NDEBUG) build.
  [[nodiscard]] bool isOptimizedBuild() const { return ndebug; }

  /// Emits the block as the next JSON value of `json`.
  void writeJson(JsonWriter& json) const;
  /// The block as a standalone JSON object string.
  [[nodiscard]] std::string toJson() const;

  /// Strict parse of a block produced by `writeJson`. Throws
  /// InvalidArgumentError on missing members or type mismatches; unknown
  /// members are rejected too (the schema version exists so additions are
  /// deliberate).
  [[nodiscard]] static RunContext fromJson(const JsonValue& value);
};

/// When this is a debug-grade build, prints a loud warning to stderr naming
/// `tool` and returns true (benches gate their `--strict-build` flag on it:
/// timing numbers from an unoptimized build are misleading at best).
bool warnIfDebugBuild(const char* tool);

}  // namespace hca
