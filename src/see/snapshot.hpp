#pragma once

#include <cstdint>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "see/cost.hpp"
#include "see/partial_solution.hpp"
#include "see/prepared.hpp"
#include "support/arena.hpp"

/// Copy-on-write search states for the SEE beam loop.
///
/// The legacy engine deep-copied a full `PartialSolution` (per-arc copy
/// lists, per-PG-node value lists — ~2·P + A heap allocations) for *every*
/// candidate at every beam step, including candidates rejected by the first
/// isAssignable check. Here a beam step works on two representations
/// instead:
///
///  * `FlatSolution` — an immutable snapshot of a surviving frontier state,
///    placement-allocated in a per-attempt `MonotonicArena` with every
///    variable-length list flattened into CSR arrays. Snapshots are written
///    once (for beam survivors only) and never mutated; the engine
///    double-buffers two arenas and resets the retired one each step, so
///    steady-state steps allocate nothing.
///  * `DeltaSolution` — a pooled, mutable candidate overlay: dense
///    fixed-size state (assignment vectors, per-PG-node usage/masks/counts)
///    is memcpy'd from the parent snapshot, while the heap-heavy lists stay
///    shared with the parent and only *additions* (new copies, newly
///    delivered values, completed critical-path terms) are recorded.
///
/// Byte-identity with the legacy path (the contract the identity tests
/// enforce): both representations run the assignment semantics of
/// solution_ops.hpp; the incremental objective evaluates the same formulas
/// over `prepared.clusters()` in the same order (cost.hpp templates); and
/// the critical-path criterion — the one term whose floating-point sum
/// order depends on *which* dependences cross clusters — is reproduced by
/// keeping penalty terms sorted by (working-set position, operand position)
/// and summing the parent/delta merge in that order, exactly the order the
/// full scan visits them. Integer aggregates (copy totals, usage, counts)
/// are exact by construction. When deltas flatten (materialization), list
/// contents are parent-order followed by append-order — the chronological
/// order the legacy mutation sequence produces.
namespace hca::see {

class DeltaSolution;

/// Immutable arena-backed snapshot of one frontier state.
class FlatSolution {
 public:
  /// Snapshots the (typically initial) materialized state into `arena`.
  static const FlatSolution* fromPartial(const PartialSolution& sol,
                                         const PreparedProblem& prepared,
                                         MonotonicArena& arena);
  /// Flattens parent + delta into a new snapshot in `arena` (which must
  /// not be the arena holding the delta's parent mid-reset).
  static const FlatSolution* fromDelta(const DeltaSolution& delta,
                                       MonotonicArena& arena);
  /// Reconstructs the value-semantics state for the engine boundary
  /// (SeeResult / driver / mapper). Produces exactly the PartialSolution
  /// the legacy search would have built: same list contents, same order.
  void toPartial(const PreparedProblem& prepared, PartialSolution* out) const;

  [[nodiscard]] ClusterId clusterOf(DdgNodeId node) const {
    return nodeCluster_[node.index()];
  }
  [[nodiscard]] const machine::ResourceUsage& usage(ClusterId c) const {
    return usage_[c.index()];
  }
  [[nodiscard]] std::uint64_t inNbrMask(ClusterId c) const {
    return inNbrMask_[c.index()];
  }
  [[nodiscard]] bool inValuesContain(ClusterId c, ValueId v) const;
  /// Sol-interface alias for inValuesContain: snapshots are the parent
  /// states the feasibility oracle reads through the same template code as
  /// the legacy PartialSolution path.
  [[nodiscard]] bool valueDelivered(ClusterId dst, ValueId value) const {
    return inValuesContain(dst, value);
  }
  [[nodiscard]] bool flowContains(PgArcId arc, ValueId v) const;
  [[nodiscard]] bool flowIsReal(PgArcId arc) const {
    return flowOff_[arc.index() + 1] > flowOff_[arc.index()];
  }
  [[nodiscard]] int totalCopies() const { return totalCopies_; }
  [[nodiscard]] int assignedCount() const { return assigned_; }
  [[nodiscard]] double objective() const { return objective_; }

  [[nodiscard]] const CritTerm* critTerms() const { return critTerms_; }
  [[nodiscard]] std::int32_t numCritTerms() const { return numCritTerms_; }

 private:
  friend class DeltaSolution;

  /// Allocates an uninitialized snapshot with CSR capacity for the given
  /// totals.
  static FlatSolution* allocate(std::int32_t numNodes, std::int32_t numRelays,
                                std::int32_t numPg, std::int32_t numArcs,
                                std::int32_t inTotal, std::int32_t outTotal,
                                std::int32_t flowTotal,
                                std::int32_t critTotal,
                                MonotonicArena& arena);

  std::int32_t numNodes_ = 0;
  std::int32_t numRelays_ = 0;
  std::int32_t numPg_ = 0;
  std::int32_t numArcs_ = 0;
  ClusterId* nodeCluster_ = nullptr;
  ClusterId* relayCluster_ = nullptr;
  machine::ResourceUsage* usage_ = nullptr;
  std::uint64_t* inNbrMask_ = nullptr;
  std::int32_t* inCount_ = nullptr;   // == inOff_[p+1] - inOff_[p]
  std::int32_t* outCount_ = nullptr;
  std::int32_t* inOff_ = nullptr;     // CSR per PG node
  ValueId* inVals_ = nullptr;
  std::int32_t* outOff_ = nullptr;
  ValueId* outVals_ = nullptr;
  std::int32_t* flowOff_ = nullptr;   // CSR per PG arc
  ValueId* flowVals_ = nullptr;
  CritTerm* critTerms_ = nullptr;     // sorted by key
  std::int32_t numCritTerms_ = 0;
  int totalCopies_ = 0;
  int assigned_ = 0;
  double objective_ = 0.0;
};

/// Pooled copy-on-write candidate: dense overlay + edit lists against an
/// immutable parent snapshot. Implements the Sol interface of
/// solution_ops.hpp and the score interface of the cost.hpp templates.
class DeltaSolution {
 public:
  /// Sizes the dense arrays for the problem; called once per pooled
  /// instance per search attempt.
  void init(const PreparedProblem& prepared);
  /// Rebases onto `parent`: memcpys the dense state, clears the edit
  /// lists. O(dense bytes), zero allocations in steady state.
  void reset(const FlatSolution* parent);

  [[nodiscard]] const FlatSolution* parent() const { return parent_; }

  // --- reads -----------------------------------------------------------
  [[nodiscard]] ClusterId clusterOf(DdgNodeId node) const {
    return nodeCluster_[node.index()];
  }
  [[nodiscard]] const machine::ResourceUsage& usage(ClusterId c) const {
    return usage_[c.index()];
  }
  [[nodiscard]] std::uint64_t inNbrMask(ClusterId c) const {
    return inNbrMask_[c.index()];
  }
  [[nodiscard]] int distinctValuesIn(ClusterId c) const {
    return inCount_[c.index()];
  }
  [[nodiscard]] int distinctValuesOut(ClusterId c) const {
    return outCount_[c.index()];
  }
  [[nodiscard]] int realInNeighborCount(ClusterId c) const {
    return __builtin_popcountll(inNbrMask_[c.index()]);
  }
  [[nodiscard]] bool valueDelivered(ClusterId dst, ValueId value) const;
  [[nodiscard]] bool flowContains(PgArcId arc, ValueId value) const;
  [[nodiscard]] bool flowIsReal(PgArcId arc) const;
  [[nodiscard]] int totalCopies() const { return totalCopies_; }
  [[nodiscard]] int assignedCount() const { return assigned_; }
  [[nodiscard]] double objective() const { return objective_; }
  void setObjective(double value) { objective_ = value; }
  /// Stable hash of the assignment vector — same FNV-1a stream as
  /// PartialSolution::signature().
  [[nodiscard]] std::uint64_t signature() const;

  // --- writes (Sol interface) ------------------------------------------
  void setNodeCluster(DdgNodeId node, ClusterId cluster) {
    nodeCluster_[node.index()] = cluster;
  }
  void setRelayCluster(std::size_t relayIndex, ClusterId cluster) {
    relayCluster_[relayIndex] = cluster;
  }
  void addOp(ClusterId cluster, ddg::Op op) {
    usage_[cluster.index()].addOp(op);
  }
  bool addFlowCopy(PgArcId arc, ClusterId src, ClusterId dst, ValueId value);
  void noteAssigned() { ++assigned_; }
  void addCritTerm(std::uint64_t key, std::int64_t num) {
    critAdds_.push_back(CritTerm{key, num});
  }

  /// Critical-path penalty: the parent's sorted terms merged with this
  /// delta's additions, summed in ascending key order (the full-scan
  /// order). Sorts the additions in place first.
  [[nodiscard]] double criticalPathScore(const PreparedProblem& prepared);

 private:
  friend class FlatSolution;

  const FlatSolution* parent_ = nullptr;
  // Dense overlay, memcpy'd from the parent on reset.
  std::vector<ClusterId> nodeCluster_;
  std::vector<ClusterId> relayCluster_;
  std::vector<machine::ResourceUsage> usage_;
  std::vector<std::uint64_t> inNbrMask_;
  std::vector<std::int32_t> inCount_;
  std::vector<std::int32_t> outCount_;
  // Edit lists: additions relative to the parent, in application order.
  std::vector<std::pair<ClusterId, ValueId>> inAdds_;   // (dst, value)
  std::vector<std::pair<ClusterId, ValueId>> outAdds_;  // (src, value)
  std::vector<std::pair<PgArcId, ValueId>> flowAdds_;
  std::vector<CritTerm> critAdds_;
  // Materialization scratch (per-PG-node / per-arc write cursors).
  mutable std::vector<std::int32_t> cursor_;
  int totalCopies_ = 0;
  int assigned_ = 0;
  double objective_ = 0.0;
};

/// Evaluates the standard weighted objective over a DeltaSolution without
/// materializing it: same criteria, same order, same skip rule, same
/// floating-point accumulation sequence as WeightedObjective over the
/// equivalent PartialSolution — so the resulting double is bit-identical.
class IncrementalObjective {
 public:
  explicit IncrementalObjective(const CostWeights& weights)
      : weights_(weights) {}

  [[nodiscard]] double evaluate(const PreparedProblem& prepared,
                                DeltaSolution& delta) const;

 private:
  CostWeights weights_;
};

}  // namespace hca::see
