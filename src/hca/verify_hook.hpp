#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"

/// Link-time seam between the driver and the pipeline verifier.
///
/// In the module DAG, verify/ sits *above* hca/ (it reads the core records
/// and final mappings), so the driver must not include verify headers. But
/// `HcaOptions::verifyEach` runs the invariant checks between the driver's
/// own pipeline stages. The seam: the driver calls the function *declared*
/// here, and the verify module *defines* it (verify/driver_hook.cpp) — the
/// include arrow points verify -> hca while control flows hca -> verify.
/// hca_core links hca_verify, so the symbol always resolves; there is no
/// registration step to forget.
namespace hca::core {

struct PipelineVerifyRequest {
  const ddg::Ddg* ddg = nullptr;
  const machine::DspFabricModel* model = nullptr;
  const HcaResult* result = nullptr;
  /// Non-null restricts the run to the per-record (between-stages) checks
  /// on this record; null runs the whole-result checks.
  const ProblemRecord* record = nullptr;
  /// Check ids to run (empty = all; unknown ids throw InvalidArgumentError).
  const std::vector<std::string>* checks = nullptr;
};

struct PipelineVerifyOutcome {
  std::size_t violations = 0;
  /// One line per diagnostic (verify::formatDiagnostics); empty when clean.
  std::string formatted;
};

/// Runs the selected built-in pipeline checks. Defined by the verify
/// module; see the header comment for why the declaration lives here.
[[nodiscard]] PipelineVerifyOutcome runPipelineVerify(
    const PipelineVerifyRequest& request);

}  // namespace hca::core
