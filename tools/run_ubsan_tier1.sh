#!/usr/bin/env bash
# Run the tier-1 test suite under UndefinedBehaviorSanitizer.
#
# Builds into a separate tree (build-ubsan/) so the instrumented binaries
# never pollute the regular build directory, then runs the full ctest
# suite. The build uses -fno-sanitize-recover=all, so the first UB report
# aborts the offending test instead of letting it limp on — a signed
# overflow in the SEE cost accumulators or a bad enum load in the machine
# model fails loudly right where it happens.
#
# Pass --with-asan to build the address,undefined combo instead (one tree,
# both runtimes; slower but catches UB whose symptom is a bad memory
# access).
#
# Usage: tools/run_ubsan_tier1.sh [--with-asan] [extra ctest args...]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

sanitize="undefined"
build="${root}/build-ubsan"
if [[ "${1:-}" == "--with-asan" ]]; then
  sanitize="address,undefined"
  build="${root}/build-aubsan"
  shift
fi

cmake -B "${build}" -S "${root}" -DHCA_SANITIZE="${sanitize}"
cmake --build "${build}" -j "$(nproc)"

# print_stacktrace: a UBSan report without a stack is nearly useless in the
# recursive clusterizer. halt_on_error matters only for the combo build
# (plain UBSan already aborts via -fno-sanitize-recover).
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
if [[ "${sanitize}" == "address,undefined" ]]; then
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
fi

cd "${build}"
ctest --output-on-failure -j "$(nproc)" "$@"
