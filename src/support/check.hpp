#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Error-handling policy of the library.
///
/// The tool chain is a *library* first, so violated preconditions and broken
/// invariants raise exceptions instead of aborting the host process. All
/// errors derive from `hca::Error` so callers can catch one type.
namespace hca {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user input (malformed DDG, inconsistent machine description, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Internal invariant broken: a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& message);
}  // namespace detail

}  // namespace hca

/// Validates user-facing preconditions; throws InvalidArgumentError.
#define HCA_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::ostringstream hca_os_;                                         \
      hca_os_ << msg; /* NOLINT */                                          \
      ::hca::detail::throwCheckFailure("precondition", #cond, __FILE__,     \
                                       __LINE__, hca_os_.str());            \
    }                                                                       \
  } while (false)

/// Validates internal invariants; throws InternalError.
#define HCA_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::ostringstream hca_os_;                                         \
      hca_os_ << msg; /* NOLINT */                                          \
      ::hca::detail::throwCheckFailure("invariant", #cond, __FILE__,        \
                                       __LINE__, hca_os_.str());            \
    }                                                                       \
  } while (false)

/// Marks unreachable code paths.
#define HCA_UNREACHABLE(msg)                                                \
  ::hca::detail::throwCheckFailure("unreachable", "false", __FILE__,        \
                                   __LINE__, (msg))
