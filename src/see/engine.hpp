#pragma once

#include <string>

#include "see/cost.hpp"
#include "see/partial_solution.hpp"
#include "see/problem.hpp"
#include "support/thread_pool.hpp"

/// The Space Exploration Engine (paper Section 3, Figures 4 and 5).
///
/// A local-scope beam search: items (working-set nodes, relay values) are
/// taken from a priority list; for every frontier state and every cluster
/// the `isAssignable` check runs, surviving candidates are scored by the
/// objective, the *candidate filter* keeps the best few per state, and the
/// *node filter* prunes the merged frontier back to the beam width. When a
/// state has no candidate at all, the *no candidates action* invokes the
/// Route Allocator.
namespace hca::see {

struct SeeResult {
  bool legal = false;
  PartialSolution solution;
  /// The final frontier (best first, solution == alternatives.front()):
  /// callers that discover deeper infeasibilities (the hierarchical driver)
  /// can fall back to the runner-up assignments.
  std::vector<PartialSolution> alternatives;
  SeeStats stats;
  /// On failure: the item no frontier state could place.
  Item failedItem;
  std::string failureReason;
};

class SpaceExplorationEngine {
 public:
  explicit SpaceExplorationEngine(SeeOptions options = {});

  /// Runs the beam search. When `cancel` is non-null the loop polls it at
  /// every priority-list step and, once it flips, unwinds immediately with
  /// an illegal result (failureReason = "cancelled"). A result with
  /// legal == true is always a complete, cancellation-free computation.
  [[nodiscard]] SeeResult run(const SeeProblem& problem,
                              const CancellationToken* cancel = nullptr) const;

  [[nodiscard]] const SeeOptions& options() const { return options_; }

 private:
  [[nodiscard]] SeeResult runOnce(const SeeProblem& problem,
                                  const SeeOptions& options,
                                  const CancellationToken* cancel) const;
  /// Reference beam loop over materialized PartialSolution values (one
  /// full deep copy per candidate). Kept as the byte-identity oracle for
  /// the delta path and selectable via SeeOptions::legacySearch.
  [[nodiscard]] SeeResult runOnceLegacy(const SeeProblem& problem,
                                        const SeeOptions& options,
                                        const CancellationToken* cancel) const;
  /// Copy-on-write beam loop: pooled DeltaSolution candidates against
  /// arena-backed FlatSolution snapshots; zero steady-state heap
  /// allocation. Byte-identical results to runOnceLegacy.
  [[nodiscard]] SeeResult runOnceDelta(const SeeProblem& problem,
                                       const SeeOptions& options,
                                       const CancellationToken* cancel) const;

  SeeOptions options_;
};

}  // namespace hca::see
