#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"

/// SSA-style construction helper for DDGs.
///
/// The only non-trivial part of building a loop-body DDG is the dependence
/// cycles: a loop-carried operand references a node that does not exist yet.
/// The builder models this with *carry slots*: `carry(init)` creates a
/// placeholder usable as an operand; `close(slot, producer, distance)` later
/// binds every recorded use to the real producer with the given iteration
/// distance. `finish()` verifies all slots are closed and validates the DDG.
namespace hca::ddg {

class DdgBuilder {
 public:
  /// A value usable as an operand: either a DDG node or an open carry slot.
  class Value {
   public:
    Value() = default;

   private:
    friend class DdgBuilder;
    Value(std::int32_t index, bool isSlot) : index_(index), isSlot_(isSlot) {}
    std::int32_t index_ = -1;
    bool isSlot_ = false;
  };

  /// --- carried values -------------------------------------------------
  /// Creates a loop-carried slot whose first `distance` iterations observe
  /// `init` (distance is fixed at close()).
  Value carry(std::int64_t init, std::string name = {});
  /// Binds `slot` to `producer`: every use of the slot becomes a use of
  /// `producer` at the given iteration distance (>= 1).
  void close(Value slot, Value producer, std::int32_t distance = 1);

  /// --- leaf and arithmetic nodes ---------------------------------------
  Value cst(std::int64_t literal, std::string name = {});
  Value add(Value a, Value b, std::string name = {});
  Value sub(Value a, Value b, std::string name = {});
  Value mul(Value a, Value b, std::string name = {});
  Value mac(Value acc, Value a, Value b, std::string name = {});
  Value neg(Value a, std::string name = {});
  Value abs(Value a, std::string name = {});
  Value min(Value a, Value b, std::string name = {});
  Value max(Value a, Value b, std::string name = {});
  Value shl(Value a, Value b, std::string name = {});
  Value shr(Value a, Value b, std::string name = {});
  Value and_(Value a, Value b, std::string name = {});
  Value or_(Value a, Value b, std::string name = {});
  Value xor_(Value a, Value b, std::string name = {});
  Value cmplt(Value a, Value b, std::string name = {});
  Value select(Value c, Value a, Value b, std::string name = {});
  Value clip(Value a, std::int64_t lo, std::int64_t hi, std::string name = {});

  /// --- memory -----------------------------------------------------------
  Value load(Value addr, std::int64_t offset = 0, std::string name = {});
  void store(Value addr, Value value, std::int64_t offset = 0,
             std::string name = {});

  /// Generic escape hatch.
  Value emit(Op op, std::vector<Value> operands, std::int64_t imm0 = 0,
             std::int64_t imm1 = 0, std::string name = {});

  /// Reads a value at an explicit loop-carried distance without a slot
  /// (usable when the producer already exists, e.g. sliding-window reuse of
  /// a load from the previous iteration).
  Value at(Value producer, std::int32_t distance, std::int64_t init = 0);

  /// Validates (all slots closed, Ddg::validate) and returns the DDG.
  Ddg finish();

  /// Node id of a (non-slot) value — usable for test assertions.
  [[nodiscard]] DdgNodeId idOf(Value v) const;

 private:
  struct PendingOperand {
    // Operand as recorded before slot resolution. If slot >= 0, src is
    // resolved at close() time; extraDistance adds on top of the slot's
    // distance (for `at()` applied to a slot).
    std::int32_t nodeSrc = -1;
    std::int32_t slot = -1;
    std::int32_t distance = 0;
    std::int64_t init = 0;
  };
  struct SlotInfo {
    std::int64_t init = 0;
    std::string name;
    std::int32_t boundTo = -1;    // producing node after close()
    std::int32_t distance = 0;
    bool closed = false;
  };

  PendingOperand resolve(Value v, std::int32_t extraDistance,
                         std::int64_t init);
  Value emitInternal(Op op, std::vector<PendingOperand> operands,
                     std::int64_t imm0, std::int64_t imm1, std::string name);

  Ddg ddg_;
  std::vector<std::vector<PendingOperand>> pending_;  // per node
  std::vector<SlotInfo> slots_;
  bool finished_ = false;
};

}  // namespace hca::ddg
