#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "machine/resources.hpp"
#include "support/check.hpp"
#include "support/ids.hpp"

/// Pattern Graph (paper Section 3): the abstract, per-level view of the
/// machine topology the Space Exploration Engine works on.
///
/// Nodes are clusters described by a ResourceTable, plus the *special* input
/// and output nodes added by the hierarchical decomposition (Section 4.1):
/// an input node per wire entering the sub-problem from the parent level, an
/// output node per wire leaving towards it. Arcs are *potential*
/// communication patterns; an arc becomes *real* when the assignment routes
/// at least one inter-cluster copy over it (copy flows are kept separately
/// in `CopyFlow` so search states can share one immutable PatternGraph).
namespace hca::machine {

enum class PgNodeKind { kCluster, kInput, kOutput };

struct PgNode {
  PgNodeKind kind = PgNodeKind::kCluster;
  ResourceTable resources;
  std::string name;
  /// For input nodes: the values the parent level pumps in on this wire.
  /// For output nodes: the values that must leave on this wire.
  std::vector<ValueId> boundaryValues;
  /// Fault model: a dead cluster keeps its PG slot (so child indices stay
  /// meaningful across the hierarchy) but must never receive an assignment,
  /// a copy, or a relay hop.
  bool dead = false;
  /// Surviving-wire overrides for faulty fabrics; -1 = use the level-wide
  /// PgConstraints caps.
  int inWireCap = -1;
  int outWireCap = -1;
};

struct PgArc {
  ClusterId src;
  ClusterId dst;
};

/// Reconfiguration constraints of Section 4.1.
struct PgConstraints {
  /// Maximum number of distinct *in*-neighbors per cluster node (the MUX
  /// capacity at this level); -1 = unlimited.
  int maxInNeighbors = -1;
  /// Maximum number of distinct out-neighbors; -1 = unlimited (a value can
  /// be broadcast, so the paper leaves outputs unconstrained).
  int maxOutNeighbors = -1;
  /// The paper's outNode_MaxIn: at most one real arc may enter each output
  /// node (unary fan-in of the outgoing MUX wire).
  bool outputNodeUnaryFanIn = true;
};

class PatternGraph {
 public:
  ClusterId addCluster(ResourceTable resources, std::string name = {});
  ClusterId addInputNode(std::vector<ValueId> values, std::string name = {});
  ClusterId addOutputNode(std::string name = {},
                          std::vector<ValueId> values = {});

  /// Adds a potential communication pattern src -> dst. Duplicate arcs are
  /// rejected.
  PgArcId addArc(ClusterId src, ClusterId dst);

  /// Adds arcs so every pair of *cluster* nodes is bidirectionally
  /// connected (the complete-graph abstraction of a MUX switch, Fig. 7).
  void connectClustersCompletely();
  /// Connects every input node to every cluster (ingoing values can be
  /// broadcast anywhere) and every cluster to every output node.
  void connectBoundaryNodes();

  /// Fault-model mutators (see PgNode). Arcs touching a dead node are kept
  /// so arc ids stay aligned with the fault-free graph; the search layers
  /// refuse to use them.
  void markDead(ClusterId id);
  void setWireCaps(ClusterId id, int inCap, int outCap);
  /// True when any node is dead or carries a wire-cap override.
  [[nodiscard]] bool hasFaults() const;

  [[nodiscard]] std::int32_t numNodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] std::int32_t numArcs() const {
    return static_cast<std::int32_t>(arcs_.size());
  }
  // The five topology accessors below are the innermost reads of the SEE
  // search (hundreds of millions of calls per compile), so they are
  // defined inline; arcBetween answers from a dense adjacency index
  // instead of scanning the out-arc list.
  [[nodiscard]] const PgNode& node(ClusterId id) const {
    HCA_REQUIRE(id.valid() && id.value() < numNodes(),
                "PG node id out of range: " << id.value());
    return nodes_[id.index()];
  }
  [[nodiscard]] const PgArc& arc(PgArcId id) const {
    HCA_REQUIRE(id.valid() && id.value() < numArcs(),
                "PG arc id out of range: " << id.value());
    return arcs_[id.index()];
  }
  [[nodiscard]] const std::vector<PgArcId>& outArcs(ClusterId id) const {
    HCA_REQUIRE(id.valid() && id.value() < numNodes(),
                "PG node out of range");
    return out_[id.index()];
  }
  [[nodiscard]] const std::vector<PgArcId>& inArcs(ClusterId id) const {
    HCA_REQUIRE(id.valid() && id.value() < numNodes(),
                "PG node out of range");
    return in_[id.index()];
  }
  [[nodiscard]] std::optional<PgArcId> arcBetween(ClusterId src,
                                                  ClusterId dst) const {
    ensureArcIndex();
    const PgArcId a =
        arcIndex_[src.index() * static_cast<std::size_t>(numNodes()) +
                  dst.index()];
    if (!a.valid()) return std::nullopt;
    return a;
  }

  [[nodiscard]] std::vector<ClusterId> clusterNodes() const;
  [[nodiscard]] std::vector<ClusterId> inputNodes() const;
  [[nodiscard]] std::vector<ClusterId> outputNodes() const;

  void toDot(std::ostream& os, const std::string& title = "pg") const;

 private:
  ClusterId addNode(PgNode node);
  /// (Re)builds the dense index when the node count changed since the last
  /// build. Arc insertion keeps it current, so after construction this is
  /// a size check.
  void ensureArcIndex() const;

  std::vector<PgNode> nodes_;
  std::vector<PgArc> arcs_;
  std::vector<std::vector<PgArcId>> out_;
  std::vector<std::vector<PgArcId>> in_;
  /// Dense numNodes x numNodes arc index (invalid = no arc), row-major by
  /// source; lazily re-laid after node insertion, point-updated on arc
  /// insertion (mutable: a cache of nodes_/arcs_, fully built by the first
  /// addArc, so post-construction readers never trigger a rebuild).
  mutable std::vector<PgArcId> arcIndex_;
};

/// The copy traffic of an assignment over a PatternGraph: for every arc, the
/// list of values (identified by their producing DDG node) flowing on it.
/// An arc with a non-empty list is a *real* communication pattern.
class CopyFlow {
 public:
  CopyFlow() = default;
  explicit CopyFlow(const PatternGraph& pg)
      : values_(static_cast<std::size_t>(pg.numArcs())) {}

  /// Registers that `value` flows src->dst on `arc`. Idempotent per
  /// (arc, value); returns true when the copy is new.
  bool addCopy(PgArcId arc, ValueId value);

  [[nodiscard]] const std::vector<ValueId>& copiesOn(PgArcId arc) const;
  [[nodiscard]] bool isReal(PgArcId arc) const {
    return !copiesOn(arc).empty();
  }
  [[nodiscard]] int totalCopies() const;

  /// Number of per-arc value lists (== numArcs of the PG this flow was
  /// built for). Serialization support (see/serialize.hpp).
  [[nodiscard]] std::size_t numArcLists() const { return values_.size(); }
  /// Reshapes to `n` empty per-arc lists; deserialization rebuilds the
  /// copies with `addCopy` so the idempotence invariant is re-established.
  void resetArcs(std::size_t n) { values_.assign(n, {}); }

  /// Distinct real in-neighbors of `node` (excluding itself).
  [[nodiscard]] std::vector<ClusterId> realInNeighbors(
      const PatternGraph& pg, ClusterId node) const;
  [[nodiscard]] std::vector<ClusterId> realOutNeighbors(
      const PatternGraph& pg, ClusterId node) const;

 private:
  std::vector<std::vector<ValueId>> values_;
};

}  // namespace hca::machine
