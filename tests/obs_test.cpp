// Observability-layer tests (ctest label `obs`): span tracing, metrics
// registry, JSON round-trips and the per-run report.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/report.hpp"
#include "hca/subproblem_cache.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

// --- global allocation counter ---------------------------------------------
// Replaces the global allocation functions for this test binary so the
// zero-allocation guarantee of disabled tracing is checkable, not just
// claimed. Counting is the only side effect.
namespace {
std::atomic<std::int64_t> gAllocations{0};
}  // namespace

void* operator new(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hca {
namespace {

// --- tracer basics ----------------------------------------------------------

TEST(TracerTest, RecordsNestedSpansWithParentIds) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "test", "outer");
    {
      TraceSpan inner(&tracer, "test", "inner");
      inner.arg("k", "v");
    }
    TraceSpan sibling(&tracer, "test", "sibling");
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: inner, sibling, outer.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "sibling");
  EXPECT_STREQ(spans[2].name, "outer");
  EXPECT_EQ(spans[0].parentId, spans[2].id);
  EXPECT_EQ(spans[1].parentId, spans[2].id);
  EXPECT_EQ(spans[2].parentId, -1);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
  EXPECT_EQ(spans[0].args[0].second, "v");
}

TEST(TracerTest, MaxSpansDropsAndCounts) {
  Tracer tracer(/*enabled=*/true, /*maxSpans=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&tracer, "test", "s");
  }
  EXPECT_EQ(tracer.spanCount(), 2u);
  EXPECT_EQ(tracer.droppedSpans(), 3);
}

TEST(TracerTest, DisabledTracerAllocatesNothing) {
  Tracer disabled(/*enabled=*/false);
  Tracer* null = nullptr;
  // Warm up the thread-local machinery outside the measured window.
  { TraceSpan warm(&disabled, "test", "warm"); }
  const std::int64_t before = gAllocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan a(null, "test", "null-tracer");
    TraceSpan b(&disabled, "test", "disabled-tracer");
    if (a.active()) a.arg("k", std::string(100, 'x'));
    if (b.active()) b.arg("k", std::string(100, 'x'));
  }
  const std::int64_t after = gAllocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(disabled.spanCount(), 0u);
}

TEST(TracerTest, ChromeJsonRoundTrips) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "test", "outer");
    TraceSpan inner(&tracer, "test", "inner");
    inner.arg("quote", "a\"b\\c\n");
  }
  std::ostringstream os;
  tracer.writeChromeJson(os);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parseJson(os.str(), &doc, &error)) << error;
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->array.size(), 2u);
  for (const JsonValue& event : events->array) {
    EXPECT_EQ(event.find("ph")->string, "X");
    EXPECT_NE(event.find("name"), nullptr);
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("dur"), nullptr);
    EXPECT_NE(event.find("args")->find("id"), nullptr);
  }
  // The escaped arg survived the round trip intact.
  EXPECT_EQ(events->array[0].find("args")->find("quote")->string, "a\"b\\c\n");
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("droppedSpans")->number, 0.0);
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsTest, CountersAccumulateAndMerge) {
  MetricsRegistry a, b;
  a.add("x", 2);
  a.add("x", 3);
  b.add("x", 10);
  b.add("y", 1);
  a.merge(b);
  EXPECT_EQ(a.counterValue("x"), 15);
  EXPECT_EQ(a.counterValue("y"), 1);
  EXPECT_EQ(a.counterValue("absent"), 0);
}

TEST(MetricsTest, HistogramMomentsAndQuantiles) {
  MetricsRegistry m;
  for (int i = 1; i <= 100; ++i) m.observe("h", static_cast<double>(i));
  const Histogram* h = m.findHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->stats().count(), 100);
  EXPECT_DOUBLE_EQ(h->stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(h->stats().max(), 100.0);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 50.5);
  // Power-of-two buckets give coarse quantiles; they must be ordered,
  // within the observed range, and roughly in the right region.
  const double p50 = h->quantile(0.5);
  const double p90 = h->quantile(0.9);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p90);
  EXPECT_GE(p90, 50.0);
}

TEST(MetricsTest, HistogramMergeMatchesCombinedStream) {
  Histogram whole, left, right;
  for (int i = 0; i < 64; ++i) {
    const double x = static_cast<double>(i * 7 % 50);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.stats().count(), whole.stats().count());
  EXPECT_DOUBLE_EQ(left.stats().min(), whole.stats().min());
  EXPECT_DOUBLE_EQ(left.stats().max(), whole.stats().max());
  EXPECT_NEAR(left.stats().mean(), whole.stats().mean(), 1e-12);
  EXPECT_DOUBLE_EQ(left.quantile(0.5), whole.quantile(0.5));
}

TEST(MetricsTest, EmptyHistogramQuantileIsNaN) {
  Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(MetricsTest, SingleSampleQuantileIsTheSample) {
  Histogram h;
  h.add(42.0);
  // With one observation every quantile is that observation — the estimate
  // is clamped to the exact observed [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(MetricsTest, AllEqualSamplesCollapseEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.5);
}

TEST(MetricsTest, ExtremeQuantilesClampToObservedRange) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  // q=0 / q=1 never extrapolate past the exact min/max, regardless of the
  // power-of-two bucket the extreme samples landed in.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Every interior quantile stays inside the range too.
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_GE(h.quantile(q), 1.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 100.0) << "q=" << q;
  }
}

TEST(MetricsTest, JsonRoundTrips) {
  MetricsRegistry m;
  m.add("counter.one", 7);
  m.observe("hist.one", 3.0);
  m.observe("hist.one", 5.0);
  std::ostringstream os;
  JsonWriter json(os);
  m.writeJson(json);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parseJson(os.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.find("counters")->find("counter.one")->number, 7.0);
  const JsonValue* hist = doc.find("histograms")->find("hist.one");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 2.0);
  EXPECT_EQ(hist->find("mean")->number, 4.0);
}

// Minimal OpenMetrics text parse: "name{labels} value" / "name value"
// sample lines into a map, ignoring '#' comment lines. Enough to verify
// the exposition round-trips the registry's numbers.
std::map<std::string, double> parseOpenMetricsSamples(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "bad sample line: " << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

TEST(MetricsTest, OpenMetricsExpositionRoundTrips) {
  MetricsRegistry m;
  m.add("see.expansions.L0", 100);
  m.add("see.expansions.L1", 23);
  m.add("see.oracle_rejects.L0", 41);
  m.add("see.oracle_rejects.L2", 9);
  m.add("hca.backtracks", 7);
  for (int i = 1; i <= 4; ++i) m.observe("attempt.wall_us", i * 10.0);

  std::ostringstream os;
  m.writeOpenMetrics(os);
  const std::string text = os.str();

  // Spec shape: TYPE lines for every family, EOF terminator last.
  EXPECT_NE(text.find("# TYPE hca_see_expansions counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hca_attempt_wall_us summary"),
            std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  const auto samples = parseOpenMetricsSamples(text);
  // .L<level> suffixes are lifted into level labels of one family.
  EXPECT_EQ(samples.at("hca_see_expansions_total{level=\"0\"}"), 100.0);
  EXPECT_EQ(samples.at("hca_see_expansions_total{level=\"1\"}"), 23.0);
  EXPECT_EQ(samples.at("hca_see_oracle_rejects_total{level=\"0\"}"), 41.0);
  EXPECT_EQ(samples.at("hca_see_oracle_rejects_total{level=\"2\"}"), 9.0);
  EXPECT_EQ(samples.at("hca_hca_backtracks_total"), 7.0);
  // Summary count/sum reproduce the histogram's exact moments.
  EXPECT_EQ(samples.at("hca_attempt_wall_us_count"), 4.0);
  EXPECT_EQ(samples.at("hca_attempt_wall_us_sum"), 100.0);
  EXPECT_EQ(samples.count("hca_attempt_wall_us{quantile=\"0.5\"}"), 1u);
}

TEST(MetricsTest, PrintTableListsEveryName) {
  MetricsRegistry m;
  m.add("alpha", 1);
  m.observe("beta", 2.0);
  std::ostringstream os;
  m.printTable(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
}

// --- sub-problem cache shard stats ------------------------------------------

TEST(CacheStatsTest, CountsHitsMissesPerShard) {
  core::SubproblemCache cache(/*numShards=*/1);
  see::SeeResult result;
  result.legal = true;
  EXPECT_EQ(cache.lookup("k1"), nullptr);
  cache.insert("k1", result);
  EXPECT_NE(cache.lookup("k1"), nullptr);
  EXPECT_NE(cache.lookup("k1"), nullptr);
  const auto stats = cache.shardStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 2);
  EXPECT_EQ(stats[0].misses, 1);
  EXPECT_EQ(stats[0].evictions, 0);
  EXPECT_EQ(stats[0].entries, 1);
}

TEST(CacheStatsTest, BoundedCacheEvictsOldestFirst) {
  core::SubproblemCache cache(/*numShards=*/1, /*maxEntriesPerShard=*/2);
  see::SeeResult result;
  cache.insert("a", result);
  cache.insert("b", result);
  cache.insert("c", result);  // evicts "a"
  EXPECT_EQ(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  const auto stats = cache.shardStats();
  EXPECT_EQ(stats[0].evictions, 1);
  EXPECT_EQ(stats[0].entries, 2);
}

// --- driver integration -----------------------------------------------------

struct SolveSpanInfo {
  std::string path;
  std::string parentPath;  // path of the nearest enclosing solve span
  int level = 0;
};

/// Extracts the solve spans with their parent-solve paths, in completion
/// order, from a traced run.
std::vector<SolveSpanInfo> solveTree(const Tracer& tracer) {
  const auto spans = tracer.spans();
  std::map<std::int64_t, const Tracer::SpanRecord*> byId;
  for (const auto& span : spans) byId[span.id] = &span;
  const auto argOf = [](const Tracer::SpanRecord& span, const char* key) {
    for (const auto& [k, v] : span.args) {
      if (k == key) return v;
    }
    return std::string();
  };
  std::vector<SolveSpanInfo> out;
  for (const auto& span : spans) {
    if (std::string(span.name) != "solve") continue;
    SolveSpanInfo info;
    info.path = argOf(span, "path");
    info.level = std::stoi(argOf(span, "level"));
    std::int64_t parent = span.parentId;
    while (parent >= 0) {
      const auto it = byId.find(parent);
      if (it == byId.end()) break;
      if (std::string(it->second->name) == "solve") {
        info.parentPath = argOf(*it->second, "path");
        break;
      }
      parent = it->second->parentId;
    }
    out.push_back(info);
  }
  return out;
}

core::HcaResult tracedRun(Tracer* tracer) {
  const auto kernels = ddg::table1Kernels();
  const ddg::Kernel* fir2dim = nullptr;
  for (const auto& kernel : kernels) {
    if (kernel.name == "fir2dim") fir2dim = &kernel;
  }
  EXPECT_NE(fir2dim, nullptr);
  machine::DspFabricModel model{machine::DspFabricConfig{}};
  core::HcaOptions options;
  options.tracer = tracer;
  const core::HcaDriver driver(model, options);
  return driver.run(fir2dim->ddg);
}

TEST(DriverTraceTest, OneSolveSpanPerSubproblemNestedByPath) {
  Tracer tracer;
  const core::HcaResult result = tracedRun(&tracer);
  ASSERT_TRUE(result.legal);
  const auto tree = solveTree(tracer);
  // One solve span per SEE sub-problem the driver visited.
  EXPECT_EQ(static_cast<int>(tree.size()), result.stats.problemsSolved);
  for (const auto& info : tree) {
    if (info.path.empty()) {
      EXPECT_EQ(info.level, 0);
      EXPECT_EQ(info.parentPath, "");
      continue;
    }
    // `a.b.c` nests under `a.b` (the root's path is empty).
    const std::size_t dot = info.path.rfind('.');
    const std::string expectedParent =
        dot == std::string::npos ? "" : info.path.substr(0, dot);
    EXPECT_EQ(info.parentPath, expectedParent) << "path " << info.path;
    EXPECT_EQ(info.level,
              1 + static_cast<int>(std::count(info.path.begin(),
                                              info.path.end(), '.')));
  }
}

TEST(DriverTraceTest, SpanTreeIsDeterministic) {
  Tracer first, second;
  const core::HcaResult a = tracedRun(&first);
  const core::HcaResult b = tracedRun(&second);
  ASSERT_TRUE(a.legal);
  ASSERT_TRUE(b.legal);
  const auto treeA = solveTree(first);
  const auto treeB = solveTree(second);
  ASSERT_EQ(treeA.size(), treeB.size());
  for (std::size_t i = 0; i < treeA.size(); ++i) {
    EXPECT_EQ(treeA[i].path, treeB[i].path);
    EXPECT_EQ(treeA[i].parentPath, treeB[i].parentPath);
    EXPECT_EQ(treeA[i].level, treeB[i].level);
  }
  // Same span-name census, too.
  const auto census = [](const Tracer& tracer) {
    std::map<std::string, int> counts;
    for (const auto& span : tracer.spans()) ++counts[span.name];
    return counts;
  };
  EXPECT_EQ(census(first), census(second));
}

TEST(DriverTraceTest, UntracedRunCollectsMetricsOnly) {
  const core::HcaResult result = tracedRun(nullptr);
  ASSERT_TRUE(result.legal);
  EXPECT_FALSE(result.metrics.empty());
  EXPECT_EQ(result.metrics.counterValue("ladder.rung.primary"), 1);
  // The per-level SEE series mirror the aggregate HcaStats counters.
  std::int64_t expansions = 0;
  for (int level = 0; level < 3; ++level) {
    expansions += result.metrics.counterValue(
        strCat("see.expansions.L", level));
  }
  EXPECT_EQ(expansions, result.stats.statesExplored);
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  for (int level = 0; level < 3; ++level) {
    hits += result.metrics.counterValue(strCat("cache.hits.L", level));
    misses += result.metrics.counterValue(strCat("cache.misses.L", level));
  }
  EXPECT_EQ(hits, result.stats.cacheHits);
  EXPECT_EQ(misses, result.stats.cacheMisses);
}

TEST(ReportTest, RunReportJsonIsValidAndComplete) {
  const core::HcaResult result = tracedRun(nullptr);
  ASSERT_TRUE(result.legal);
  machine::DspFabricModel model{machine::DspFabricConfig{}};
  const std::string text = core::runReportJson(result, &model);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parseJson(text, &doc, &error)) << error;
  EXPECT_TRUE(doc.find("legal")->boolean);
  EXPECT_EQ(doc.find("failure")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.find("stats")->find("problemsSolved")->number,
            static_cast<double>(result.stats.problemsSolved));
  const JsonValue* levels = doc.find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->array.size(), 3u);  // the default fabric has 3 levels
  EXPECT_EQ(levels->array[0].find("name")->string, "cluster-sets");
  EXPECT_EQ(levels->array[2].find("name")->string, "leaf-crossbars");
  for (const JsonValue& level : levels->array) {
    EXPECT_GT(level.find("problems")->number, 0.0);
    EXPECT_NE(level.find("cacheHits"), nullptr);
    EXPECT_NE(level.find("wireUtilization"), nullptr);
  }
  EXPECT_NE(doc.find("metrics")->find("counters"), nullptr);
}

}  // namespace
}  // namespace hca
