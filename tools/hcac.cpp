// hcac — the HCA command-line driver.
//
// Reads a loop-body DDG (from a text file in the `ddg/serialize.hpp`
// format, or one of the built-in Table 1 kernels), clusterizes it onto a
// DSPFabric instance, and optionally schedules, simulates and emits DOT /
// reconfiguration output.
//
//   hcac --kernel idcthor --schedule --simulate
//   hcac --file loop.ddg --n 4 --m 4 --k 4 --dot-assignment out.dot
//   hcac --kernel fir2dim --emit-reconfig

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "hca/coherency.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "hca/visualize.hpp"
#include "sched/modulo.hpp"
#include "sched/regpressure.hpp"
#include "sim/dma.hpp"
#include "sim/simulator.hpp"

using namespace hca;

namespace {

void usage() {
  std::printf(
      "usage: hcac [--kernel NAME | --file PATH] [options]\n"
      "  --kernel NAME        built-in kernel: fir2dim idcthor mpeg2inter\n"
      "                       h264deblocking\n"
      "  --file PATH          DDG in the text format of ddg/serialize.hpp\n"
      "  --n/--m/--k INT      MUX bandwidths (default 8/8/8)\n"
      "  --schedule           run the modulo scheduler after HCA\n"
      "  --simulate ITER      run the fabric simulator (built-in kernels)\n"
      "  --emit-reconfig      print the MUX reconfiguration program\n"
      "  --dot-tree PATH      write the problem tree as GraphViz DOT\n"
      "  --dot-assignment PATH  write the clusterized DDG as DOT\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernelName;
  std::string filePath;
  int n = 8, m = 8, k = 8;
  bool schedule = false;
  int simulateIterations = 0;
  bool emitReconfig = false;
  std::string dotTree, dotAssignment;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernel") kernelName = value();
    else if (arg == "--file") filePath = value();
    else if (arg == "--n") n = std::stoi(value());
    else if (arg == "--m") m = std::stoi(value());
    else if (arg == "--k") k = std::stoi(value());
    else if (arg == "--schedule") schedule = true;
    else if (arg == "--simulate") simulateIterations = std::stoi(value());
    else if (arg == "--emit-reconfig") emitReconfig = true;
    else if (arg == "--dot-tree") dotTree = value();
    else if (arg == "--dot-assignment") dotAssignment = value();
    else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (kernelName.empty() == filePath.empty()) {
    usage();
    return 2;
  }

  // --- load the DDG -------------------------------------------------------
  ddg::Ddg ddg;
  const ddg::Kernel* kernel = nullptr;
  std::vector<ddg::Kernel> kernels;
  if (!kernelName.empty()) {
    kernels = ddg::table1Kernels();
    for (auto& candidate : kernels) {
      if (candidate.name == kernelName) kernel = &candidate;
    }
    if (kernel == nullptr) {
      std::fprintf(stderr, "unknown kernel '%s'\n", kernelName.c_str());
      return 2;
    }
    ddg = kernel->ddg;
  } else {
    std::ifstream in(filePath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", filePath.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      ddg = ddg::fromText(buffer.str());
    } catch (const Error& e) {
      std::fprintf(stderr, "parse error: %s\n", e.what());
      return 2;
    }
  }
  const auto stats = ddg.stats();
  std::printf("DDG: %d instructions (%d memory ops)\n",
              stats.numInstructions, stats.numMemOps);

  // --- clusterize ----------------------------------------------------------
  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  const machine::DspFabricModel model(config);
  std::printf("Machine: %s\n", config.toString().c_str());

  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  if (!result.legal) {
    std::printf("NO legal clusterization: %s\n",
                result.failureReason.c_str());
    return 1;
  }
  const auto mii = core::computeMii(ddg, model, result);
  std::printf("legal clusterization — %s\n", mii.toString().c_str());
  const auto violations = core::checkCoherency(ddg, model, result);
  std::printf("coherency: %s\n", violations.empty() ? "clean" : "BROKEN");

  if (emitReconfig) {
    std::printf("\nreconfiguration program (%zu settings):\n%s",
                result.reconfig.settings.size(),
                result.reconfig.toString().c_str());
  }
  if (!dotTree.empty()) {
    std::ofstream out(dotTree);
    core::problemTreeToDot(result, out);
    std::printf("problem tree written to %s\n", dotTree.c_str());
  }
  if (!dotAssignment.empty()) {
    std::ofstream out(dotAssignment);
    core::assignmentToDot(ddg, model, result, out);
    std::printf("assignment written to %s\n", dotAssignment.c_str());
  }

  // --- schedule / simulate -------------------------------------------------
  if (!schedule && simulateIterations == 0) return 0;
  const auto mapping = core::buildFinalMapping(ddg, model, result);
  const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  if (!sched.ok) {
    std::printf("scheduling failed: %s\n", sched.failureReason.c_str());
    return 1;
  }
  std::printf("modulo schedule: II=%d, length %d, %d stages\n",
              sched.schedule.ii, sched.schedule.length,
              sched.schedule.stages());
  const auto pressure =
      sched::analyzeRegisterPressure(mapping, model, sched.schedule);
  std::printf("register pressure: %s\n", pressure.toString().c_str());
  const auto dma = sim::profileDma(mapping, model, sched.schedule);
  std::printf("dma: %s (%s)\n", dma.toString().c_str(),
              dma.withinCapacity(model.config().dmaSlots)
                  ? "within capacity"
                  : "OVERRUN");

  if (simulateIterations > 0) {
    if (kernel == nullptr) {
      std::printf("--simulate needs a built-in kernel (memory layout)\n");
      return 2;
    }
    const int iterations =
        std::min(simulateIterations, kernel->safeIterations);
    sim::SimConfig simConfig;
    simConfig.iterations = iterations;
    simConfig.memory = ddg::kernelInterpConfig(*kernel, iterations).memory;
    std::string why;
    const bool match = sim::matchesReference(ddg, mapping, model,
                                             sched.schedule, simConfig,
                                             &why);
    std::printf("simulation (%d iterations): %s%s\n", iterations,
                match ? "matches reference" : "MISMATCH — ",
                match ? "" : why.c_str());
    return match ? 0 : 1;
  }
  return 0;
}
