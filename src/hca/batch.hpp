#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hca/driver.hpp"
#include "support/thread_pool.hpp"

/// Fault-isolated batch compilation (`hcac --batch manifest.json`).
///
/// A manifest names a list of compile jobs (built-in kernel or DDG file,
/// per-job deadline, retry policy). The batch driver runs them in order
/// with hard isolation: one job throwing, timing out or failing to map
/// never takes the rest of the batch down. Failed jobs are retried with
/// exponential backoff plus deterministic jitter (seeded from the job
/// name, so two batch processes started together do not retry in
/// lockstep); the last retry can optionally flip the job to the kDegrade
/// failure policy, which arms the escalation ladder (widened beam,
/// degraded bandwidth, flat ICA) before giving up. Invalid inputs are
/// permanent — they are never retried.
///
/// Shutdown: the batch observes an external CancellationToken (the CLI
/// wires SIGINT/SIGTERM to it). A tripped token cancels the in-flight
/// job's search at its next poll — flushing its checkpoint, so a later
/// `--resume` continues where it stopped — and marks the remaining jobs
/// cancelled instead of running them.
///
/// Manifest format (strict JSON):
///   {"jobs": [
///     {"name": "fir",                 // required, unique
///      "kernel": "fir2dim",           // exactly one of kernel | ddg
///      "ddg": "path/to/kernel.ddg",   // ddg/serialize text format
///      "deadline_ms": 2000,           // 0 = unlimited (default)
///      "max_retries": 2,              // retries after the first try
///      "backoff_base_ms": 100,        // backoff unit (default 100)
///      "degrade_on_last_retry": true, // default true
///      "fail_first_attempts": 0,      // deterministic fault injection:
///                                     // fail the first N tries outright
///      "checkpoint": "fir.ckpt",      // per-job checkpoint/resume file
///      "memory_budget_mb": 0,         // HcaOptions::memoryBudgetBytes
///      "threads": 1,                  // HcaOptions::numThreads
///      "target_ii_slack": 6,          // HcaOptions::targetIiSlack
///      "faults": "cn:3 cn:17"}        // machine::FaultSet::parse syntax
///   ]}
namespace hca::core {

struct BatchJob {
  std::string name;
  std::string kernel;   ///< built-in Table 1 kernel name…
  std::string ddgPath;  ///< …or a ddg text file (exactly one set)
  int deadlineMs = 0;
  int maxRetries = 0;
  int backoffBaseMs = 100;
  bool degradeOnLastRetry = true;
  int failFirstAttempts = 0;
  std::string checkpointPath;
  std::int64_t memoryBudgetBytes = 0;
  int threads = 1;
  int targetIiSlack = 6;
  std::string faults;
};

enum class BatchJobStatus {
  kOk,         ///< a legal mapping was produced
  kFailed,     ///< all tries exhausted without a legal mapping
  kInvalid,    ///< bad input (DDG, faults, checkpoint) — never retried
  kCancelled,  ///< shutdown tripped before/while the job ran
};

[[nodiscard]] const char* to_string(BatchJobStatus status);

struct BatchJobResult {
  std::string name;
  BatchJobStatus status = BatchJobStatus::kCancelled;
  /// Tries actually started (1 = no retry was needed).
  int triesUsed = 0;
  /// True when the final try ran under FailurePolicy::kDegrade.
  bool degraded = false;
  /// Ladder rung that produced a legal result ("" = primary sweep).
  std::string fallbackUsed;
  std::string failureReason;
  int achievedTargetIi = 0;
  std::int64_t wallMs = 0;
};

struct BatchSummary {
  std::vector<BatchJobResult> jobs;
  int ok = 0;
  int failed = 0;
  int invalid = 0;
  int cancelled = 0;
  [[nodiscard]] bool allOk() const {
    return failed == 0 && invalid == 0 && cancelled == 0;
  }
};

struct BatchOptions {
  /// Shutdown token (may be null). See the header comment.
  const CancellationToken* cancel = nullptr;
  /// When non-empty, a heartbeat JSONL progress log (hca/progress.hpp) is
  /// appended to this path: every job state transition, a periodic
  /// heartbeat while a job runs, and batch start/end markers, each line
  /// flushed before the driver proceeds. Append-only across restarts: a
  /// killed-and-resumed batch continues the same file with a strictly
  /// increasing `seq`, so monitors see one honest cumulative log.
  std::string progressPath;
  /// When true, the heartbeat thread also prints a one-line progress
  /// summary (jobs done/ok/failed, current job + phase, ETA) to stdout.
  bool progressTty = false;
  /// Heartbeat period for the progress log / TTY summary.
  int heartbeatMs = 1000;
  /// When non-empty, a best-so-far run report (hca/report.hpp) is written
  /// atomically to `<dir>/<job>.report.json` after every job — including
  /// failed and cancelled ones. Each report carries a cross-run meta block
  /// (workload = the job's kernel/ddg, machine, context), so it feeds
  /// `hcac --compare` directly.
  std::string reportDir;
  /// Run identifier stamped into each per-job report's context block
  /// (`hcac --run-id`); empty = unset.
  std::string runId;
  /// Base HcaOptions every job starts from (per-job manifest fields are
  /// layered on top).
  HcaOptions base;
  /// Progress observer (may be empty): called with the job, the 1-based
  /// try number and a short event string ("start", "ok", "retry", ...).
  std::function<void(const BatchJob&, int tryNumber, const std::string&)>
      observer;
  /// Test seam: when set, replaces the real backoff sleep (receives the
  /// computed delay). Production leaves it empty and sleeps in small
  /// cancellable slices.
  std::function<void(std::int64_t delayMs)> sleeper;
};

/// Parses a manifest document. Throws InvalidArgumentError (with a
/// field-naming message) on syntax errors, duplicate names, unknown
/// members or a job naming neither/both of kernel and ddg.
[[nodiscard]] std::vector<BatchJob> parseManifest(const std::string& text);

/// Deterministic retry delay before try `tryNumber` (2-based: the delay
/// precedes the first retry): backoffBaseMs * 2^(tryNumber-2), capped at
/// 30s, plus jitter in [0, base) seeded from the job name and try.
[[nodiscard]] std::int64_t backoffDelayMs(const std::string& jobName,
                                          int tryNumber, int backoffBaseMs);

/// Runs the jobs in manifest order. Never throws on job failure — every
/// outcome is folded into the summary.
[[nodiscard]] BatchSummary runBatch(const std::vector<BatchJob>& jobs,
                                    const BatchOptions& options);

/// Structured summary JSON (the CLI prints it and writes it atomically
/// next to the manifest when --report-out is given).
[[nodiscard]] std::string batchSummaryJson(const BatchSummary& summary);

}  // namespace hca::core
