#pragma once

#include <optional>
#include <sstream>
#include <string>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

/// Minimal leveled logger.
///
/// The assignment passes are long-running searches; being able to turn on a
/// trace without recompiling is worth more than a fancy logging framework.
/// Output goes to stderr, serialized by a global mutex so multi-threaded
/// benchmark sweeps interleave cleanly. Every line carries an ISO-8601 UTC
/// timestamp and a small per-process thread id, so interleaved fault-sweep
/// output stays attributable; the `HCA_LOG_LEVEL` environment variable
/// (trace|debug|info|warn|off, or 0-4) overrides the default level without
/// recompiling.
namespace hca {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Parses a level name (trace|debug|info|warn|warning|off|none, or 0-4,
/// case-insensitive); nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> logLevelFromString(
    const std::string& text);

class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// The exact line `write` emits (sans trailing newline):
  /// `[<ISO-8601 UTC ms> hca:<LEVEL> t<tid>] <message>`. Split out so the
  /// format is testable without capturing stderr.
  [[nodiscard]] static std::string formatLine(LogLevel level,
                                              const std::string& message);

  void write(LogLevel level, const std::string& message) HCA_EXCLUDES(mutex_);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  /// Serializes the stderr stream itself (no data member is guarded; the
  /// level is set once at startup and read racily by design).
  Mutex mutex_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel lv) : level(lv) {}
  ~LogLine() { Logger::instance().write(level, os.str()); }
};
}  // namespace detail

}  // namespace hca

#define HCA_LOG(level_enum, expr)                                       \
  do {                                                                  \
    if (::hca::Logger::instance().enabled(level_enum)) {                \
      ::hca::detail::LogLine hca_line_(level_enum);                     \
      hca_line_.os << expr; /* NOLINT */                                \
    }                                                                   \
  } while (false)

#define HCA_TRACE(expr) HCA_LOG(::hca::LogLevel::kTrace, expr)
#define HCA_DEBUG(expr) HCA_LOG(::hca::LogLevel::kDebug, expr)
#define HCA_INFO(expr) HCA_LOG(::hca::LogLevel::kInfo, expr)
#define HCA_WARN(expr) HCA_LOG(::hca::LogLevel::kWarn, expr)
