#include "machine/resources.hpp"

#include "support/str.hpp"

namespace hca::machine {

std::string ResourceTable::toString() const {
  return strCat(alu(), " ALU / ", ag(), " AG");
}

}  // namespace hca::machine
