#include "machine/pattern_graph.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"
#include "support/dot.hpp"
#include "support/str.hpp"

namespace hca::machine {

ClusterId PatternGraph::addNode(PgNode node) {
  nodes_.push_back(std::move(node));
  out_.emplace_back();
  in_.emplace_back();
  return ClusterId(static_cast<std::int32_t>(nodes_.size()) - 1);
}

void PatternGraph::ensureArcIndex() const {
  const std::size_t n = nodes_.size();
  if (arcIndex_.size() == n * n) return;
  arcIndex_.assign(n * n, PgArcId::invalid());
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const PgArc& a = arcs_[i];
    arcIndex_[a.src.index() * n + a.dst.index()] =
        PgArcId(static_cast<std::int32_t>(i));
  }
}

ClusterId PatternGraph::addCluster(ResourceTable resources,
                                   std::string name) {
  PgNode node;
  node.kind = PgNodeKind::kCluster;
  node.resources = resources;
  node.name = std::move(name);
  return addNode(std::move(node));
}

ClusterId PatternGraph::addInputNode(std::vector<ValueId> values,
                                     std::string name) {
  PgNode node;
  node.kind = PgNodeKind::kInput;
  node.boundaryValues = std::move(values);
  node.name = std::move(name);
  return addNode(std::move(node));
}

ClusterId PatternGraph::addOutputNode(std::string name,
                                      std::vector<ValueId> values) {
  PgNode node;
  node.kind = PgNodeKind::kOutput;
  node.name = std::move(name);
  node.boundaryValues = std::move(values);
  return addNode(std::move(node));
}

PgArcId PatternGraph::addArc(ClusterId src, ClusterId dst) {
  HCA_REQUIRE(src.valid() && src.value() < numNodes(), "arc src out of range");
  HCA_REQUIRE(dst.valid() && dst.value() < numNodes(), "arc dst out of range");
  HCA_REQUIRE(src != dst, "self arc in PatternGraph");
  HCA_REQUIRE(!arcBetween(src, dst).has_value(),
              "duplicate arc " << to_string(src) << "->" << to_string(dst));
  const auto id = PgArcId(static_cast<std::int32_t>(arcs_.size()));
  arcs_.push_back(PgArc{src, dst});
  out_[src.index()].push_back(id);
  in_[dst.index()].push_back(id);
  ensureArcIndex();
  arcIndex_[src.index() * static_cast<std::size_t>(numNodes()) +
            dst.index()] = id;
  return id;
}

void PatternGraph::connectClustersCompletely() {
  const auto clusters = clusterNodes();
  for (const ClusterId a : clusters) {
    for (const ClusterId b : clusters) {
      if (a == b) continue;
      if (!arcBetween(a, b).has_value()) addArc(a, b);
    }
  }
}

void PatternGraph::connectBoundaryNodes() {
  const auto clusters = clusterNodes();
  for (const ClusterId in : inputNodes()) {
    for (const ClusterId c : clusters) {
      if (!arcBetween(in, c).has_value()) addArc(in, c);
    }
  }
  for (const ClusterId out : outputNodes()) {
    for (const ClusterId c : clusters) {
      if (!arcBetween(c, out).has_value()) addArc(c, out);
    }
  }
}

void PatternGraph::markDead(ClusterId id) {
  HCA_REQUIRE(id.valid() && id.value() < numNodes(),
              "PG node id out of range: " << to_string(id));
  nodes_[id.index()].dead = true;
}

void PatternGraph::setWireCaps(ClusterId id, int inCap, int outCap) {
  HCA_REQUIRE(id.valid() && id.value() < numNodes(),
              "PG node id out of range: " << to_string(id));
  nodes_[id.index()].inWireCap = inCap;
  nodes_[id.index()].outWireCap = outCap;
}

bool PatternGraph::hasFaults() const {
  for (const PgNode& n : nodes_) {
    if (n.dead || n.inWireCap >= 0 || n.outWireCap >= 0) return true;
  }
  return false;
}

namespace {
std::vector<ClusterId> nodesOfKind(const PatternGraph& pg, PgNodeKind kind) {
  std::vector<ClusterId> out;
  for (std::int32_t v = 0; v < pg.numNodes(); ++v) {
    if (pg.node(ClusterId(v)).kind == kind) out.emplace_back(v);
  }
  return out;
}
}  // namespace

std::vector<ClusterId> PatternGraph::clusterNodes() const {
  return nodesOfKind(*this, PgNodeKind::kCluster);
}
std::vector<ClusterId> PatternGraph::inputNodes() const {
  return nodesOfKind(*this, PgNodeKind::kInput);
}
std::vector<ClusterId> PatternGraph::outputNodes() const {
  return nodesOfKind(*this, PgNodeKind::kOutput);
}

void PatternGraph::toDot(std::ostream& os, const std::string& title) const {
  DotWriter dot(os, title);
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const PgNode& n = nodes_[static_cast<std::size_t>(v)];
    std::string label = n.name.empty() ? strCat("C", v) : n.name;
    std::string attrs;
    switch (n.kind) {
      case PgNodeKind::kCluster:
        label += strCat("\\n", n.resources.toString());
        break;
      case PgNodeKind::kInput:
        attrs = "shape=invtriangle";
        break;
      case PgNodeKind::kOutput:
        attrs = "shape=triangle";
        break;
    }
    dot.node(strCat("c", v), label, attrs);
  }
  for (const PgArc& a : arcs_) {
    dot.edge(strCat("c", a.src.value()), strCat("c", a.dst.value()), "",
             "style=dashed");
  }
}

// --- CopyFlow ---------------------------------------------------------------

bool CopyFlow::addCopy(PgArcId arc, ValueId value) {
  HCA_REQUIRE(arc.valid() && arc.index() < values_.size(),
              "CopyFlow: arc out of range");
  auto& list = values_[arc.index()];
  if (std::find(list.begin(), list.end(), value) != list.end()) return false;
  list.push_back(value);
  return true;
}

const std::vector<ValueId>& CopyFlow::copiesOn(PgArcId arc) const {
  HCA_REQUIRE(arc.valid() && arc.index() < values_.size(),
              "CopyFlow: arc out of range");
  return values_[arc.index()];
}

int CopyFlow::totalCopies() const {
  int total = 0;
  for (const auto& list : values_) {
    total += static_cast<int>(list.size());
  }
  return total;
}

std::vector<ClusterId> CopyFlow::realInNeighbors(const PatternGraph& pg,
                                                 ClusterId node) const {
  std::vector<ClusterId> result;
  for (const PgArcId arc : pg.inArcs(node)) {
    if (!isReal(arc)) continue;
    const ClusterId src = pg.arc(arc).src;
    if (std::find(result.begin(), result.end(), src) == result.end()) {
      result.push_back(src);
    }
  }
  return result;
}

std::vector<ClusterId> CopyFlow::realOutNeighbors(const PatternGraph& pg,
                                                  ClusterId node) const {
  std::vector<ClusterId> result;
  for (const PgArcId arc : pg.outArcs(node)) {
    if (!isReal(arc)) continue;
    const ClusterId dst = pg.arc(arc).dst;
    if (std::find(result.begin(), result.end(), dst) == result.end()) {
      result.push_back(dst);
    }
  }
  return result;
}

}  // namespace hca::machine
