#include "verify/coherency.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::core {

namespace {

/// True when `cn`'s hierarchy path starts with `prefix`.
bool underPath(const machine::DspFabricModel& model, CnId cn,
               const std::vector<int>& prefix) {
  const auto path = model.pathOfCn(cn);
  if (prefix.size() > path.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

}  // namespace

std::vector<CoherencyViolation> checkCoherency(
    const ddg::Ddg& ddg, const machine::DspFabricModel& model,
    const HcaResult& result) {
  std::vector<CoherencyViolation> violations;

  // Consumer CNs per value.
  std::map<ValueId, std::set<CnId>> consumers;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    const CnId cn = result.assignment[static_cast<std::size_t>(v)];
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      consumers[ValueId(operand.src.value())].insert(cn);
    }
  }

  for (const auto& record : result.records) {
    const auto& pg = record->pg;
    const auto clusters = pg.clusterNodes();

    // Values to examine: anything flowing or required in this problem, plus
    // every value produced inside with consumers elsewhere (to catch copies
    // that were never created at all).
    std::set<ValueId> candidates;
    for (std::int32_t a = 0; a < pg.numArcs(); ++a) {
      for (const ValueId v : record->flow.copiesOn(PgArcId(a))) {
        candidates.insert(v);
      }
    }
    for (std::int32_t n = 0; n < pg.numNodes(); ++n) {
      for (const ValueId v : pg.node(ClusterId(n)).boundaryValues) {
        candidates.insert(v);
      }
    }
    for (const DdgNodeId n : record->workingSet) {
      candidates.insert(ValueId(n.value()));
    }

    for (const ValueId v : candidates) {
      // Sources: input nodes listing v, or the child holding the producer.
      std::set<std::int32_t> sources;
      for (const ClusterId in : pg.inputNodes()) {
        const auto& vals = pg.node(in).boundaryValues;
        if (std::find(vals.begin(), vals.end(), v) != vals.end()) {
          sources.insert(in.value());
        }
      }
      const DdgNodeId producer(v.value());
      const bool producerHere =
          producer.value() < ddg.numNodes() &&
          ddg::isInstruction(ddg.node(producer).op) &&
          result.assignment[producer.index()].valid() &&
          underPath(model, result.assignment[producer.index()], record->path);
      int producerChild = -1;
      if (producerHere) {
        const auto cnPath =
            model.pathOfCn(result.assignment[producer.index()]);
        producerChild = cnPath[record->path.size()];
        sources.insert(
            clusters[static_cast<std::size_t>(producerChild)].value());
      }

      // Sinks: children whose subtree consumes v without producing it,
      // plus output wires listing v.
      std::set<std::int32_t> sinks;
      const auto consIt = consumers.find(v);
      if (consIt != consumers.end()) {
        for (std::size_t j = 0; j < clusters.size(); ++j) {
          if (producerHere && static_cast<int>(j) == producerChild) continue;
          auto childPath = record->path;
          childPath.push_back(static_cast<int>(j));
          for (const CnId consumerCn : consIt->second) {
            if (underPath(model, consumerCn, childPath)) {
              sinks.insert(clusters[j].value());
              break;
            }
          }
        }
      }
      for (const ClusterId out : pg.outputNodes()) {
        const auto& vals = pg.node(out).boundaryValues;
        if (std::find(vals.begin(), vals.end(), v) != vals.end()) {
          sinks.insert(out.value());
        }
      }
      if (sinks.empty()) continue;

      if (sources.empty()) {
        violations.push_back(CoherencyViolation{
            record->path, v,
            strCat("value ", to_string(v), " is consumed in sub-problem [",
                   strJoin(record->path, "."), "] (",
                   model.levelName(record->level),
                   ") but has no source there")});
        continue;
      }

      // BFS over arcs that actually carry v.
      std::set<std::int32_t> reached = sources;
      std::deque<std::int32_t> queue(sources.begin(), sources.end());
      while (!queue.empty()) {
        const std::int32_t u = queue.front();
        queue.pop_front();
        for (const PgArcId arc : pg.outArcs(ClusterId(u))) {
          const auto& copies = record->flow.copiesOn(arc);
          if (std::find(copies.begin(), copies.end(), v) == copies.end()) {
            continue;
          }
          const std::int32_t w = pg.arc(arc).dst.value();
          if (reached.insert(w).second) queue.push_back(w);
        }
      }
      for (const std::int32_t sink : sinks) {
        if (reached.count(sink) != 0) continue;
        violations.push_back(CoherencyViolation{
            record->path, v,
            strCat("value ", to_string(v), " cannot reach node ",
                   pg.node(ClusterId(sink)).name.empty()
                       ? std::to_string(sink)
                       : pg.node(ClusterId(sink)).name,
                   " in sub-problem [", strJoin(record->path, "."), "] (",
                   model.levelName(record->level), ")")});
      }
    }
  }
  // Deterministic output regardless of record traversal order: by
  // sub-problem path, then value id (stable, so multiple messages about one
  // (path, value) keep their discovery order).
  std::stable_sort(violations.begin(), violations.end(),
                   [](const CoherencyViolation& a,
                      const CoherencyViolation& b) {
                     return std::tie(a.path, a.value) <
                            std::tie(b.path, b.value);
                   });
  return violations;
}

}  // namespace hca::core
