#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "support/json.hpp"
#include "support/str.hpp"

namespace hca::analysis {
namespace {

void writeDiagnostic(JsonWriter& writer, const Diagnostic& d) {
  writer.beginObject();
  writer.key("rule").value(d.rule);
  writer.key("file").value(d.file);
  writer.key("line").value(d.line);
  writer.key("entity").value(d.entity);
  writer.key("message").value(d.message);
  writer.key("key").value(d.suppressionKey);
  writer.endObject();
}

}  // namespace

std::string formatDiagnosticsTable(const std::string& title,
                                   const std::vector<Diagnostic>& diagnostics) {
  if (diagnostics.empty()) return {};
  std::size_t locWidth = 0;
  std::size_t ruleWidth = 0;
  std::vector<std::string> locs;
  locs.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) {
    locs.push_back(strCat(d.file, ":", d.line));
    locWidth = std::max(locWidth, locs.back().size());
    ruleWidth = std::max(ruleWidth, d.rule.size());
  }
  std::ostringstream os;
  os << title << " (" << diagnostics.size() << "):\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << "  " << locs[i] << std::string(locWidth - locs[i].size() + 2, ' ')
       << d.rule << std::string(ruleWidth - d.rule.size() + 2, ' ')
       << d.message << "\n";
  }
  return os.str();
}

std::string formatReportJson(const BaselineSplit& split) {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.beginObject();
  writer.key("version").value(1);
  writer.key("fresh").beginArray();
  for (const Diagnostic& d : split.fresh) writeDiagnostic(writer, d);
  writer.endArray();
  writer.key("baselined").beginArray();
  for (const Diagnostic& d : split.baselined) writeDiagnostic(writer, d);
  writer.endArray();
  writer.key("stale").beginArray();
  for (const std::string& key : split.stale) writer.value(key);
  writer.endArray();
  writer.endObject();
  os << "\n";
  return os.str();
}

}  // namespace hca::analysis
