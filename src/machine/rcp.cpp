#include "machine/rcp.hpp"

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::machine {

PatternGraph rcpPatternGraph(const RcpConfig& config) {
  HCA_REQUIRE(config.clusters >= 3, "RCP needs >= 3 clusters");
  HCA_REQUIRE(config.neighborReach >= 1, "RCP reach must be >= 1");
  HCA_REQUIRE(2 * config.neighborReach < config.clusters,
              "RCP reach wraps past the ring");
  HCA_REQUIRE(config.inputPorts >= 1, "RCP needs >= 1 input port");
  HCA_REQUIRE(config.memClusterStride >= 1, "bad memory-cluster stride");

  PatternGraph pg;
  for (int i = 0; i < config.clusters; ++i) {
    const bool hasMemory = i % config.memClusterStride == 0;
    pg.addCluster(ResourceTable(1, hasMemory ? 1 : 0), strCat("PE", i));
  }
  for (int i = 0; i < config.clusters; ++i) {
    for (int d = 1; d <= config.neighborReach; ++d) {
      const int fwd = (i + d) % config.clusters;
      const int bwd = (i - d + config.clusters) % config.clusters;
      if (!pg.arcBetween(ClusterId(i), ClusterId(fwd))) {
        pg.addArc(ClusterId(i), ClusterId(fwd));
      }
      if (!pg.arcBetween(ClusterId(i), ClusterId(bwd))) {
        pg.addArc(ClusterId(i), ClusterId(bwd));
      }
    }
  }
  return pg;
}

PgConstraints rcpConstraints(const RcpConfig& config) {
  PgConstraints c;
  c.maxInNeighbors = config.inputPorts;
  c.maxOutNeighbors = -1;
  c.outputNodeUnaryFanIn = true;
  return c;
}

}  // namespace hca::machine
