#pragma once

#include <string>
#include <vector>

#include "mapper/final_mapping.hpp"
#include "machine/dspfabric.hpp"

/// Iterative modulo scheduling (Rau, MICRO'94) on the clusterized DDG —
/// the compilation stage the paper schedules *after* HCA (Section 4.2
/// motivates the MII objective with it; implementing it realizes the
/// paper's stated future work).
///
/// Resources modeled per cycle (mod II): the single issue slot of every
/// computation node, and the DMA's `dmaSlots` simultaneous memory
/// requests. Dependence edges carry the producer's latency plus the wire
/// transport delay when the edge crosses CNs.
namespace hca::sched {

struct Schedule {
  int ii = 0;
  /// Issue cycle per final-DDG node; -1 for non-instructions.
  std::vector<int> cycleOf;
  /// Makespan: one past the last issue cycle.
  int length = 0;

  [[nodiscard]] int stages() const {
    return ii > 0 ? (length + ii - 1) / ii : 0;
  }
};

struct ModuloOptions {
  int maxIi = 1024;
  /// Scheduling budget per II attempt, in operations processed, as a
  /// multiple of the op count (Rau uses a similar budget-with-eviction).
  int budgetFactor = 16;
};

struct ModuloResult {
  bool ok = false;
  std::string failureReason;
  Schedule schedule;
  int attemptedIis = 0;  // how many II values were tried
  int evictions = 0;
};

/// Latency of the dependence edge producer -> consumer in the mapping
/// (producer latency + inter-CN transport if they sit on different CNs).
int edgeLatency(const mapper::FinalMapping& mapping,
                const machine::DspFabricModel& model, DdgNodeId producer,
                DdgNodeId consumer);

/// Schedules the mapping starting at `startIi` (usually the final MII).
ModuloResult moduloSchedule(const mapper::FinalMapping& mapping,
                            const machine::DspFabricModel& model, int startIi,
                            const ModuloOptions& options = {});

/// Checks every dependence and resource constraint of `schedule`; returns
/// a human-readable violation list (empty = valid).
std::vector<std::string> validateSchedule(const mapper::FinalMapping& mapping,
                                          const machine::DspFabricModel& model,
                                          const Schedule& schedule);

}  // namespace hca::sched
