#include "hca/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "hca/checkpoint.hpp"
#include "hca/progress.hpp"
#include "hca/report.hpp"
#include "machine/fault.hpp"
#include "support/check.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/mutex.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace hca::core {

namespace {

// --- strict manifest accessors ---------------------------------------------

const JsonValue& member(const JsonValue& v, const char* name) {
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr, "batch manifest: missing member '" << name << "'");
  return *m;
}

const std::string& asString(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.kind == JsonValue::Kind::kString,
              "batch manifest: '" << what << "' must be a string");
  return v.string;
}

int asI32(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.kind == JsonValue::Kind::kNumber && v.number >= INT32_MIN &&
                  v.number <= INT32_MAX &&
                  v.number == static_cast<double>(
                                  static_cast<std::int64_t>(v.number)),
              "batch manifest: '" << what << "' must be an integer");
  return static_cast<int>(v.number);
}

bool asBool(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.kind == JsonValue::Kind::kBool,
              "batch manifest: '" << what << "' must be a bool");
  return v.boolean;
}

bool safeName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// One try's outcome, separated from the retry loop so the loop body stays
/// a pure state machine.
struct TryOutcome {
  enum class Kind { kOk, kFailed, kInvalid, kCancelled } kind = Kind::kFailed;
  std::string failureReason;
  std::string fallbackUsed;
  int achievedTargetIi = 0;
  bool haveResult = false;
  HcaResult result;
};

TryOutcome runOneTry(const BatchJob& job, const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     CheckpointManager* checkpoint, bool lastTry,
                     const BatchOptions& batch) {
  TryOutcome out;
  HcaOptions options = batch.base;
  options.deadlineMs = job.deadlineMs;
  options.numThreads = job.threads;
  options.targetIiSlack = job.targetIiSlack;
  options.memoryBudgetBytes = job.memoryBudgetBytes;
  options.externalCancel = batch.cancel;
  options.checkpoint = checkpoint;
  if (lastTry && job.degradeOnLastRetry) {
    // Degrade-on-last-retry: the final try arms the full escalation ladder
    // (widened beam, degraded bandwidth, flat ICA) instead of failing on
    // the primary sweep alone.
    options.failurePolicy = FailurePolicy::kDegrade;
  }
  try {
    const HcaDriver driver(model, options);
    out.result = driver.run(ddg);
    out.haveResult = true;
  } catch (const InvalidArgumentError& e) {
    // Permanent: the same input fails the same way on every retry.
    out.kind = TryOutcome::Kind::kInvalid;
    out.failureReason = e.what();
    return out;
  } catch (const std::exception& e) {
    // Isolation: an internal error in one job must not take the batch
    // down. It is retriable — a later try runs a different policy.
    out.kind = TryOutcome::Kind::kFailed;
    out.failureReason = e.what();
    return out;
  }
  if (out.result.legal) {
    out.kind = TryOutcome::Kind::kOk;
    out.fallbackUsed = out.result.fallbackUsed;
    out.achievedTargetIi = out.result.stats.achievedTargetIi;
    return out;
  }
  // kDegrade folds invalid input into a structured report instead of a
  // throw; keep the permanence semantics identical across policies.
  if (out.result.failure != nullptr &&
      out.result.failure->cause == FailureCause::kInvalidInput) {
    out.kind = TryOutcome::Kind::kInvalid;
    out.failureReason = out.result.failureReason;
    return out;
  }
  const bool cancelled = batch.cancel != nullptr && batch.cancel->cancelled();
  out.kind = cancelled ? TryOutcome::Kind::kCancelled
                       : TryOutcome::Kind::kFailed;
  out.failureReason = out.result.failureReason.empty()
                          ? "no legal mapping"
                          : out.result.failureReason;
  return out;
}

/// Cancellable backoff sleep: 10ms slices, aborted when the shutdown token
/// trips (the pending retry is then pointless).
void backoffSleep(std::int64_t delayMs, const BatchOptions& batch) {
  if (batch.sleeper) {
    batch.sleeper(delayMs);
    return;
  }
  const auto until = monotonicNow() + std::chrono::milliseconds(delayMs);
  while (monotonicNow() < until) {
    if (batch.cancel != nullptr && batch.cancel->cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void notify(const BatchOptions& batch, const BatchJob& job, int tryNumber,
            const char* event) {
  if (batch.observer) batch.observer(job, tryNumber, event);
}

/// Live progress for one runBatch invocation: owns the heartbeat JSONL log
/// (when configured), the cumulative counters the heartbeat reports, and
/// the periodic heartbeat/TTY thread. All public methods are no-ops when
/// neither --progress-out nor the TTY summary is enabled, so the plain
/// batch path stays allocation- and thread-free.
class ProgressTracker {
 public:
  ProgressTracker(const BatchOptions& options, int jobsTotal)
      : options_(options),
        jobsTotal_(jobsTotal),
        started_(monotonicNow()) {
    if (!options.progressPath.empty()) {
      log_ = std::make_unique<ProgressLog>(options.progressPath);
    }
    if (!enabled()) return;
    ProgressEvent event;
    {
      MutexLock lock(mu_);
      event = baseLocked();
    }
    event.event = "batch-start";
    event.resumed = log_ != nullptr && log_->resumedLog();
    emit(event, /*tty=*/false);
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
  }

  ~ProgressTracker() { stop(); }

  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;

  [[nodiscard]] bool enabled() const {
    return log_ != nullptr || options_.progressTty;
  }

  /// Emits the batch-end marker and joins the heartbeat thread.
  void stop() {
    {
      MutexLock lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (heartbeat_.joinable()) heartbeat_.join();
    if (!enabled()) return;
    ProgressEvent event;
    {
      MutexLock lock(mu_);
      event = baseLocked();
    }
    event.event = "batch-end";
    emit(event, options_.progressTty);
  }

  /// One job state transition (start / retry-wait / injected-failure /
  /// try-failed). `phase` becomes the heartbeat's current-phase label.
  void jobState(const BatchJob& job, const char* state, int tryNumber,
                const std::string& phase) {
    if (!enabled()) return;
    ProgressEvent event;
    {
      MutexLock lock(mu_);
      currentJob_ = job.name;
      currentTry_ = tryNumber;
      phase_ = phase;
      event = baseLocked();
    }
    event.event = "job-state";
    event.job = job.name;
    event.state = state;
    event.tryNumber = tryNumber;
    emit(event, /*tty=*/false);
  }

  /// Terminal transition: folds the job into the cumulative counters (and
  /// the completed-duration pool the ETA is computed from) and emits the
  /// "done" line.
  void jobDone(const BatchJob& job, BatchJobStatus status, int tryNumber,
               std::int64_t wallMs) {
    if (!enabled()) return;
    ProgressEvent event;
    {
      MutexLock lock(mu_);
      ++jobsDone_;
      if (status == BatchJobStatus::kOk) ++jobsOk_;
      if (status == BatchJobStatus::kFailed ||
          status == BatchJobStatus::kInvalid) {
        ++jobsFailed_;
      }
      completedWallMs_ += wallMs;
      currentJob_.clear();
      currentTry_ = 0;
      phase_ = "idle";
      event = baseLocked();
    }
    event.event = "job-state";
    event.job = job.name;
    event.state = "done";
    event.outcome = to_string(status);
    event.tryNumber = tryNumber;
    emit(event, /*tty=*/false);
  }

 private:
  /// Common fields of the next line, from the counters. Caller holds mu_.
  ProgressEvent baseLocked() HCA_REQUIRES(mu_) {
    ProgressEvent event;
    event.job = currentJob_;
    event.tryNumber = currentTry_;
    event.phase = phase_;
    event.jobsTotal = jobsTotal_;
    event.jobsDone = jobsDone_;
    event.jobsOk = jobsOk_;
    event.jobsFailed = jobsFailed_;
    event.elapsedMs = microsBetween(started_, monotonicNow()) / 1000;
    // ETA: mean completed-job duration times the jobs still to run. Honest
    // about what it is — an extrapolation that only exists once at least
    // one job finished in *this* process.
    if (jobsDone_ > 0 && jobsDone_ < jobsTotal_) {
      event.etaMs = completedWallMs_ / jobsDone_ *
                    (jobsTotal_ - jobsDone_);
    }
    return event;
  }

  void emit(const ProgressEvent& event, bool tty) {
    if (log_ != nullptr) log_->write(event);
    if (!tty) return;
    char eta[32];
    if (event.etaMs >= 0) {
      std::snprintf(eta, sizeof(eta), "%.1fs",
                    static_cast<double>(event.etaMs) / 1000.0);
    } else {
      std::snprintf(eta, sizeof(eta), "?");
    }
    std::printf("batch progress: [%d/%d] ok=%d failed=%d%s%s%s%s "
                "elapsed=%.1fs eta=%s\n",
                event.jobsDone, event.jobsTotal, event.jobsOk,
                event.jobsFailed, event.job.empty() ? "" : " job=",
                event.job.c_str(), event.phase.empty() ? "" : " ",
                event.phase.c_str(),
                static_cast<double>(event.elapsedMs) / 1000.0, eta);
    std::fflush(stdout);
  }

  void heartbeatLoop() {
    MutexLock lock(mu_);
    while (!stopped_) {
      cv_.wait_for(lock,
                   std::chrono::milliseconds(std::max(1, options_.heartbeatMs)));
      if (stopped_) break;
      ProgressEvent event = baseLocked();
      event.event = "heartbeat";
      // ProgressLog has its own lock and never calls back into the
      // tracker, so emitting under mu_ cannot deadlock.
      emit(event, options_.progressTty);
    }
  }

  const BatchOptions& options_;
  const int jobsTotal_;
  const MonotonicTime started_;
  std::unique_ptr<ProgressLog> log_;
  Mutex mu_;
  CondVar cv_;
  bool stopped_ HCA_GUARDED_BY(mu_) = false;
  int jobsDone_ HCA_GUARDED_BY(mu_) = 0;
  int jobsOk_ HCA_GUARDED_BY(mu_) = 0;
  int jobsFailed_ HCA_GUARDED_BY(mu_) = 0;
  std::int64_t completedWallMs_ HCA_GUARDED_BY(mu_) = 0;
  std::string currentJob_ HCA_GUARDED_BY(mu_);
  int currentTry_ HCA_GUARDED_BY(mu_) = 0;
  std::string phase_ HCA_GUARDED_BY(mu_);
  std::thread heartbeat_;
};

}  // namespace

const char* to_string(BatchJobStatus status) {
  switch (status) {
    case BatchJobStatus::kOk: return "ok";
    case BatchJobStatus::kFailed: return "failed";
    case BatchJobStatus::kInvalid: return "invalid";
    case BatchJobStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::vector<BatchJob> parseManifest(const std::string& text) {
  JsonValue root;
  std::string error;
  HCA_REQUIRE(parseJson(text, &root, &error),
              "batch manifest: bad JSON: " << error);
  HCA_REQUIRE(root.isObject(), "batch manifest: top level must be an object");
  const JsonValue& jobsValue = member(root, "jobs");
  HCA_REQUIRE(jobsValue.isArray(), "batch manifest: 'jobs' must be an array");
  HCA_REQUIRE(!jobsValue.array.empty(), "batch manifest: 'jobs' is empty");

  std::vector<BatchJob> jobs;
  std::set<std::string> names;
  for (const JsonValue& j : jobsValue.array) {
    HCA_REQUIRE(j.isObject(), "batch manifest: each job must be an object");
    BatchJob job;
    for (const auto& [key, value] : j.object) {
      if (key == "name") {
        job.name = asString(value, "name");
      } else if (key == "kernel") {
        job.kernel = asString(value, "kernel");
      } else if (key == "ddg") {
        job.ddgPath = asString(value, "ddg");
      } else if (key == "deadline_ms") {
        job.deadlineMs = asI32(value, "deadline_ms");
      } else if (key == "max_retries") {
        job.maxRetries = asI32(value, "max_retries");
      } else if (key == "backoff_base_ms") {
        job.backoffBaseMs = asI32(value, "backoff_base_ms");
      } else if (key == "degrade_on_last_retry") {
        job.degradeOnLastRetry = asBool(value, "degrade_on_last_retry");
      } else if (key == "fail_first_attempts") {
        job.failFirstAttempts = asI32(value, "fail_first_attempts");
      } else if (key == "checkpoint") {
        job.checkpointPath = asString(value, "checkpoint");
      } else if (key == "memory_budget_mb") {
        job.memoryBudgetBytes =
            static_cast<std::int64_t>(asI32(value, "memory_budget_mb")) *
            1024 * 1024;
      } else if (key == "threads") {
        job.threads = asI32(value, "threads");
      } else if (key == "target_ii_slack") {
        job.targetIiSlack = asI32(value, "target_ii_slack");
      } else if (key == "faults") {
        job.faults = asString(value, "faults");
      } else {
        HCA_REQUIRE(false, "batch manifest: unknown job member '" << key
                                                                  << "'");
      }
    }
    HCA_REQUIRE(safeName(job.name),
                "batch manifest: job name '"
                    << job.name
                    << "' must be non-empty [A-Za-z0-9._-] (it names report "
                       "files)");
    HCA_REQUIRE(names.insert(job.name).second,
                "batch manifest: duplicate job name '" << job.name << "'");
    HCA_REQUIRE(job.kernel.empty() != job.ddgPath.empty(),
                "batch manifest: job '" << job.name
                                        << "' needs exactly one of 'kernel' "
                                           "or 'ddg'");
    HCA_REQUIRE(job.deadlineMs >= 0 && job.maxRetries >= 0 &&
                    job.backoffBaseMs >= 1 && job.failFirstAttempts >= 0,
                "batch manifest: job '" << job.name
                                        << "' has a negative budget field");
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::int64_t backoffDelayMs(const std::string& jobName, int tryNumber,
                            int backoffBaseMs) {
  HCA_REQUIRE(tryNumber >= 2, "backoff precedes retries only (try >= 2)");
  const int exponent = std::min(tryNumber - 2, 16);
  const std::int64_t base =
      std::min<std::int64_t>(static_cast<std::int64_t>(backoffBaseMs)
                                 << exponent,
                             30'000);
  // Deterministic jitter: seeded from (job, try), so a retry schedule is
  // reproducible in tests yet de-synchronized across jobs and processes.
  Rng rng(fnv1a64(jobName) ^ (static_cast<std::uint64_t>(tryNumber) << 32));
  const std::int64_t jitter = static_cast<std::int64_t>(
      rng.below(static_cast<std::uint64_t>(std::max(1, backoffBaseMs))));
  return base + jitter;
}

BatchSummary runBatch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  BatchSummary summary;
  ProgressTracker progress(options, static_cast<int>(jobs.size()));
  for (const BatchJob& job : jobs) {
    BatchJobResult jr;
    jr.name = job.name;
    const auto started = monotonicNow();

    const bool shuttingDown =
        options.cancel != nullptr && options.cancel->cancelled();
    if (shuttingDown) {
      jr.status = BatchJobStatus::kCancelled;
      jr.failureReason = "batch shutdown before the job started";
      notify(options, job, 0, "cancelled");
      progress.jobDone(job, BatchJobStatus::kCancelled, 0, 0);
      summary.jobs.push_back(std::move(jr));
      ++summary.cancelled;
      continue;
    }

    // --- Load inputs. Anything wrong here is permanent (kInvalid). --------
    ddg::Ddg ddg;
    std::unique_ptr<machine::DspFabricModel> model;
    std::unique_ptr<CheckpointManager> checkpoint;
    std::string loadError;
    try {
      if (!job.kernel.empty()) {
        const std::vector<ddg::Kernel> kernels = ddg::table1Kernels();
        const auto it = std::find_if(
            kernels.begin(), kernels.end(),
            [&](const ddg::Kernel& k) { return k.name == job.kernel; });
        HCA_REQUIRE(it != kernels.end(),
                    "unknown built-in kernel '" << job.kernel << "'");
        ddg = it->ddg;
      } else {
        ddg = ddg::fromText(readFile(job.ddgPath));
      }
      machine::DspFabricConfig config;
      machine::FaultSet faults;
      if (!job.faults.empty()) faults = machine::FaultSet::parse(job.faults);
      model = std::make_unique<machine::DspFabricModel>(config, faults);
      if (!job.checkpointPath.empty()) {
        checkpoint = std::make_unique<CheckpointManager>(job.checkpointPath);
        checkpoint->loadForResume();  // fresh start when the file is absent
      }
    } catch (const std::exception& e) {
      loadError = e.what();
    }
    if (!loadError.empty()) {
      jr.status = BatchJobStatus::kInvalid;
      jr.failureReason = loadError;
      notify(options, job, 0, "invalid");
      jr.wallMs = microsBetween(started, monotonicNow()) / 1000;
      progress.jobDone(job, BatchJobStatus::kInvalid, 0, jr.wallMs);
      summary.jobs.push_back(std::move(jr));
      ++summary.invalid;
      continue;
    }

    // --- Retry loop. ------------------------------------------------------
    const int maxTries = 1 + std::max(0, job.maxRetries);
    TryOutcome outcome;
    for (int tryNumber = 1; tryNumber <= maxTries; ++tryNumber) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        outcome.kind = TryOutcome::Kind::kCancelled;
        outcome.failureReason = "batch shutdown during retry backoff";
        break;
      }
      if (tryNumber >= 2) {
        notify(options, job, tryNumber, "retry-wait");
        progress.jobState(job, "retry-wait", tryNumber,
                          strCat("retry-wait before try ", tryNumber, "/",
                                 maxTries));
        backoffSleep(backoffDelayMs(job.name, tryNumber, job.backoffBaseMs),
                     options);
        if (options.cancel != nullptr && options.cancel->cancelled()) {
          outcome.kind = TryOutcome::Kind::kCancelled;
          outcome.failureReason = "batch shutdown during retry backoff";
          break;
        }
      }
      jr.triesUsed = tryNumber;
      if (tryNumber <= job.failFirstAttempts) {
        // Deterministic fault injection (tests, CI): this try fails
        // outright, exercising the retry/backoff path without a flaky
        // dependency on search behaviour.
        notify(options, job, tryNumber, "injected-failure");
        progress.jobState(job, "injected-failure", tryNumber,
                          strCat("injected failure on try ", tryNumber, "/",
                                 maxTries));
        outcome.kind = TryOutcome::Kind::kFailed;
        outcome.failureReason =
            strCat("injected failure (fail_first_attempts=",
                   job.failFirstAttempts, ")");
        continue;
      }
      const bool lastTry = tryNumber == maxTries;
      notify(options, job, tryNumber, "start");
      jr.degraded = lastTry && job.degradeOnLastRetry;
      progress.jobState(job, "start", tryNumber,
                        strCat("compiling (try ", tryNumber, "/", maxTries,
                               jr.degraded ? ", degraded)" : ")"));
      outcome = runOneTry(job, ddg, *model, checkpoint.get(), lastTry,
                          options);
      if (outcome.kind == TryOutcome::Kind::kOk ||
          outcome.kind == TryOutcome::Kind::kInvalid ||
          outcome.kind == TryOutcome::Kind::kCancelled) {
        break;
      }
      notify(options, job, tryNumber, "failed");
      progress.jobState(job, "try-failed", tryNumber,
                        strCat("try ", tryNumber, "/", maxTries, " failed"));
    }

    // --- Fold the final outcome into the summary. -------------------------
    switch (outcome.kind) {
      case TryOutcome::Kind::kOk:
        jr.status = BatchJobStatus::kOk;
        jr.fallbackUsed = outcome.fallbackUsed;
        jr.achievedTargetIi = outcome.achievedTargetIi;
        // A finished job has nothing to resume into.
        if (checkpoint != nullptr) removeFileIfExists(checkpoint->path());
        ++summary.ok;
        notify(options, job, jr.triesUsed, "ok");
        break;
      case TryOutcome::Kind::kFailed:
        jr.status = BatchJobStatus::kFailed;
        jr.failureReason = outcome.failureReason;
        ++summary.failed;
        break;
      case TryOutcome::Kind::kInvalid:
        jr.status = BatchJobStatus::kInvalid;
        jr.failureReason = outcome.failureReason;
        ++summary.invalid;
        notify(options, job, jr.triesUsed, "invalid");
        break;
      case TryOutcome::Kind::kCancelled:
        jr.status = BatchJobStatus::kCancelled;
        jr.failureReason = outcome.failureReason;
        // Durability on shutdown: persist whatever the interrupted run
        // recorded so `--resume` continues from this boundary.
        if (checkpoint != nullptr) checkpoint->flush();
        ++summary.cancelled;
        notify(options, job, jr.triesUsed, "cancelled");
        break;
    }
    jr.wallMs = microsBetween(started, monotonicNow()) / 1000;
    progress.jobDone(job, jr.status, jr.triesUsed, jr.wallMs);

    // Best-so-far run report, even for failed/cancelled jobs (an IoError
    // here is an infrastructure failure and propagates to the caller —
    // job isolation covers compile failures, not a broken report disk).
    if (!options.reportDir.empty() && outcome.haveResult) {
      ReportMeta meta;
      meta.workload = job.kernel.empty() ? job.ddgPath : job.kernel;
      meta.machine = model->config().toString();
      meta.threads = job.threads;
      meta.context = RunContext::current(options.runId);
      atomicWriteFile(strCat(options.reportDir, "/", job.name,
                             ".report.json"),
                      runReportJson(outcome.result, model.get(), &meta) +
                          "\n");
    }
    summary.jobs.push_back(std::move(jr));
  }
  progress.stop();
  return summary;
}

std::string batchSummaryJson(const BatchSummary& summary) {
  std::ostringstream os;
  JsonWriter json(os);
  json.beginObject();
  json.key("ok").value(summary.ok);
  json.key("failed").value(summary.failed);
  json.key("invalid").value(summary.invalid);
  json.key("cancelled").value(summary.cancelled);
  json.key("all_ok").value(summary.allOk());
  json.key("jobs").beginArray();
  for (const BatchJobResult& jr : summary.jobs) {
    json.beginObject();
    json.key("name").value(jr.name);
    json.key("status").value(to_string(jr.status));
    json.key("tries_used").value(jr.triesUsed);
    json.key("degraded").value(jr.degraded);
    json.key("fallback_used").value(jr.fallbackUsed);
    json.key("failure_reason").value(jr.failureReason);
    json.key("achieved_target_ii").value(jr.achievedTargetIi);
    json.key("wall_ms").value(jr.wallMs);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return os.str();
}

}  // namespace hca::core
