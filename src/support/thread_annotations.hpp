#pragma once

/// Clang thread-safety-analysis attribute macros (HCA_ prefixed, following
/// the pattern of LLVM's Support/Compiler.h and Abseil's
/// base/thread_annotations.h — see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// Annotating the lock-protected structures of the concurrency support
/// layer turns `-Wthread-safety` into a *compile-time* race detector: the
/// analysis proves at every access site that the declared capability is
/// held, complementing the dynamic coverage of the ThreadSanitizer suite
/// (`ctest -L tsan`), which only probes executed interleavings.
///
/// The macros expand to nothing on compilers without the attributes (GCC),
/// so annotated code stays portable. The analysis only understands
/// annotated capability types — use `hca::Mutex` / `hca::MutexLock`
/// (support/mutex.hpp) instead of raw `std::mutex` / `std::lock_guard` for
/// any member that carries a HCA_GUARDED_BY.

#if defined(__clang__) && defined(__has_attribute)
#define HCA_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define HCA_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if HCA_HAS_THREAD_ATTRIBUTE(guarded_by)
#define HCA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HCA_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (a lock). Example:
///   class HCA_CAPABILITY("mutex") Mutex { ... };
#define HCA_CAPABILITY(x) HCA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define HCA_SCOPED_CAPABILITY HCA_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define HCA_GUARDED_BY(x) HCA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// is not).
#define HCA_PT_GUARDED_BY(x) HCA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the listed capabilities.
#define HCA_REQUIRES(...) \
  HCA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and holds them on return.
#define HCA_ACQUIRE(...) \
  HCA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (which must be held on
/// entry).
#define HCA_RELEASE(...) \
  HCA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `result`.
#define HCA_TRY_ACQUIRE(result, ...) \
  HCA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (deadlock prevention for non-reentrant locks).
#define HCA_EXCLUDES(...) HCA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability protecting its result.
#define HCA_RETURN_CAPABILITY(x) HCA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the access is safe.
#define HCA_NO_THREAD_SAFETY_ANALYSIS \
  HCA_THREAD_ANNOTATION(no_thread_safety_analysis)
