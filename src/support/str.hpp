#pragma once

#include <sstream>
#include <string>
#include <vector>

/// String formatting helpers (the host toolchain, libstdc++ 12, does not
/// ship <format> yet).
namespace hca {

namespace detail {
inline void strCatInto(std::ostringstream&) {}
template <class T, class... Rest>
void strCatInto(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  strCatInto(os, rest...);
}
}  // namespace detail

/// Concatenates every argument via operator<<.
template <class... Args>
[[nodiscard]] std::string strCat(const Args&... args) {
  std::ostringstream os;
  detail::strCatInto(os, args...);
  return os.str();
}

/// Joins container elements with a separator, using operator<< per element.
template <class Container>
[[nodiscard]] std::string strJoin(const Container& items,
                                  const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Splits on a single character, keeping empty fields.
[[nodiscard]] inline std::vector<std::string> strSplit(const std::string& s,
                                                       char sep) {
  std::vector<std::string> out;
  std::string field;
  for (char c : s) {
    if (c == sep) {
      out.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(field);
  return out;
}

}  // namespace hca
