#pragma once

#include <iosfwd>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"

/// GraphViz exports of a finished HCA run, for debugging assignments the
/// way the paper's figures present them.
namespace hca::core {

/// The problem tree: one cluster box per sub-problem showing its working-
/// set size, relays and wire pressure; tree edges parent -> child.
void problemTreeToDot(const HcaResult& result, std::ostream& os);

/// The clusterized DDG: nodes grouped per CN (cluster subgraphs per
/// level-0 set), dependence edges marked inter-/intra-CN.
void assignmentToDot(const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     const HcaResult& result, std::ostream& os);

}  // namespace hca::core
