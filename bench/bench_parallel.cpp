// Portfolio-search scaling bench: wall-clock for clustering the Table 1
// kernels at numThreads ∈ {1, 2, hardware_concurrency} under the worst-case
// outer-sweep configuration (targetIiSlack = 6, searchProfiles = 5 — up to
// 35 hierarchical solves per kernel before the degraded fallback), plus the
// sub-problem cache hit rates. Results are appended to BENCH_parallel.json
// (machine-readable) so the perf trajectory is tracked across PRs.
//
// Requested counts above hardware_concurrency clamp to the same effective
// worker count; re-measuring them would just duplicate an existing row
// (on a 1-core host every count collapses to 1). Such rows are not re-run:
// they copy the measured row's numbers and carry "clamped": true, so
// downstream tracking can tell a measurement from an alias of one.
//
// Usage: bench_parallel [--quick] [--strict-build]
//   --quick         skip h264deblocking (its fully failing 35-attempt sweep
//                   plus fallback dominates the runtime)
//   --strict-build  exit 1 instead of warning when this is a debug-grade
//                   (non-NDEBUG) build

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "support/context.hpp"
#include "support/io.hpp"

using namespace hca;

namespace {

struct Row {
  std::string kernel;
  int numThreads = 0;         ///< requested thread count
  int effectiveThreads = 0;   ///< after the hardware-concurrency clamp
  double wallMs = 0.0;
  bool legal = false;
  int achievedTargetIi = 0;
  int outerAttempts = 0;
  int attemptsCancelled = 0;
  std::int64_t cacheHits = 0;
  std::int64_t cacheMisses = 0;
  /// True when this row was not measured: its effectiveThreads duplicates
  /// an already-measured configuration and the numbers are copied from it.
  bool clamped = false;

  [[nodiscard]] double hitRate() const {
    const auto total = cacheHits + cacheMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(cacheHits) /
                            static_cast<double>(total);
  }
};

double wallMsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool strictBuild = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--strict-build") strictBuild = true;
  }
  if (warnIfDebugBuild("bench_parallel") && strictBuild) return 1;

  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  const machine::DspFabricModel model(config);

  const int hw = ThreadPool::resolveThreads(0);
  std::vector<int> threadCounts = {1, 2, hw};
  std::sort(threadCounts.begin(), threadCounts.end());
  threadCounts.erase(std::unique(threadCounts.begin(), threadCounts.end()),
                     threadCounts.end());

  std::printf("Portfolio scaling — worst-case sweep (slack 6, 5 profiles)\n");
  std::printf(
      "Machine: %s, hardware_concurrency: %d (requested counts above it\n"
      "are clamped; `eff` is the worker count actually used)\n\n",
      config.toString().c_str(), hw);
  std::printf("%-16s %8s %4s %10s %6s %9s %8s %10s %9s\n", "Loop", "threads",
              "eff", "wall_ms", "legal", "achieved", "attempts", "cancelled",
              "cacheHit%");
  std::printf("%s\n", std::string(89, '-').c_str());

  std::vector<Row> rows;
  auto kernels = ddg::table1Kernels();
  for (auto& kernel : kernels) {
    if (quick && kernel.name == "h264deblocking") continue;
    double serialMs = 0.0;
    // effectiveThreads -> index into `rows` of the row that measured it.
    std::map<int, std::size_t> measured;
    for (const int threads : threadCounts) {
      core::HcaOptions options;  // defaults ARE the worst-case sweep: slack 6, 5 profiles
      options.numThreads = threads;

      Row row;
      row.kernel = kernel.name;
      row.numThreads = threads;
      row.effectiveThreads =
          ThreadPool::effectiveThreads(threads, options.allowOversubscribe);
      const auto dup = measured.find(row.effectiveThreads);
      if (dup != measured.end()) {
        // Same effective configuration as an earlier row — re-running it
        // would measure the identical thing under a different label.
        const Row& src = rows[dup->second];
        row.wallMs = src.wallMs;
        row.legal = src.legal;
        row.achievedTargetIi = src.achievedTargetIi;
        row.outerAttempts = src.outerAttempts;
        row.attemptsCancelled = src.attemptsCancelled;
        row.cacheHits = src.cacheHits;
        row.cacheMisses = src.cacheMisses;
        row.clamped = true;
        rows.push_back(row);
        std::printf("%-16s %8d %4d %10s %6s %9s %8s %10s %9s  (clamped, = %dt row)\n",
                    row.kernel.c_str(), row.numThreads, row.effectiveThreads,
                    "-", "-", "-", "-", "-", "-", src.numThreads);
        continue;
      }
      core::HcaResult result;
      row.wallMs = wallMsOf([&] {
        const core::HcaDriver driver(model, options);
        result = driver.run(kernel.ddg);
      });
      row.legal = result.legal;
      row.achievedTargetIi = result.stats.achievedTargetIi;
      row.outerAttempts = result.stats.outerAttempts;
      row.attemptsCancelled = result.stats.attemptsCancelled;
      row.cacheHits = result.stats.cacheHits;
      row.cacheMisses = result.stats.cacheMisses;
      measured[row.effectiveThreads] = rows.size();
      rows.push_back(row);
      if (threads == 1) serialMs = row.wallMs;

      std::printf("%-16s %8d %4d %10.1f %6s %9d %8d %10d %8.1f%%",
                  row.kernel.c_str(), row.numThreads, row.effectiveThreads,
                  row.wallMs, row.legal ? "yes" : "no", row.achievedTargetIi,
                  row.outerAttempts, row.attemptsCancelled,
                  100.0 * row.hitRate());
      if (threads != 1 && serialMs > 0.0 && row.wallMs > 0.0) {
        std::printf("  (%.2fx vs 1t)", serialMs / row.wallMs);
      }
      std::printf("\n");
    }
  }

  // Machine-readable trajectory for cross-PR tracking.
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"parallel_portfolio\",\n"
       << "  \"machine\": \"" << config.toString() << "\",\n"
       << "  \"context\": " << RunContext::current().toJson() << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"targetIiSlack\": " << core::HcaOptions().targetIiSlack << ",\n"
       << "  \"searchProfiles\": " << core::HcaOptions().searchProfiles << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"kernel\": \"" << row.kernel << "\""
         << ", \"numThreads\": " << row.numThreads
         << ", \"effectiveThreads\": " << row.effectiveThreads
         << ", \"wall_ms\": " << row.wallMs
         << ", \"legal\": " << (row.legal ? "true" : "false")
         << ", \"achievedTargetIi\": " << row.achievedTargetIi
         << ", \"outerAttempts\": " << row.outerAttempts
         << ", \"attemptsCancelled\": " << row.attemptsCancelled
         << ", \"cacheHits\": " << row.cacheHits
         << ", \"cacheMisses\": " << row.cacheMisses
         << ", \"cacheHitRate\": " << row.hitRate()
         << ", \"clamped\": " << (row.clamped ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  // Atomic write: never leave a truncated BENCH JSON behind.
  atomicWriteFile("BENCH_parallel.json", json.str());
  std::printf("\nWrote BENCH_parallel.json (%zu rows)\n", rows.size());
  return 0;
}
