#include "machine/reconfig.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::machine {

namespace {
constexpr int kLaneBits = 6;
constexpr std::uint64_t kLaneMask = (1u << kLaneBits) - 1;
constexpr int kMaxPathDepth = 5;

void requireLane(int value, const char* field) {
  HCA_REQUIRE(value >= 0 && value <= static_cast<int>(kLaneMask),
              "MuxSetting field '" << field << "' = " << value
                                   << " does not fit a 6-bit lane");
}
}  // namespace

std::uint64_t encodeMuxSetting(const MuxSetting& s) {
  HCA_REQUIRE(static_cast<int>(s.problemPath.size()) <= kMaxPathDepth,
              "problem path too deep to encode");
  requireLane(s.dstChild, "dstChild");
  requireLane(s.dstWire, "dstWire");
  requireLane(s.srcChild, "srcChild");
  requireLane(s.srcWire, "srcWire");
  std::uint64_t word = 0;
  int shift = 0;
  const auto put = [&](std::uint64_t v) {
    word |= (v & kLaneMask) << shift;
    shift += kLaneBits;
  };
  put(static_cast<std::uint64_t>(s.dstChild));
  put(static_cast<std::uint64_t>(s.dstWire));
  put(s.srcIsBoundary ? 1 : 0);
  put(static_cast<std::uint64_t>(s.srcChild));
  put(static_cast<std::uint64_t>(s.srcWire));
  put(static_cast<std::uint64_t>(s.problemPath.size()));
  for (const int p : s.problemPath) {
    requireLane(p, "problemPath");
    put(static_cast<std::uint64_t>(p));
  }
  return word;
}

MuxSetting decodeMuxSetting(std::uint64_t word) {
  MuxSetting s;
  int shift = 0;
  const auto get = [&]() {
    const auto v = static_cast<int>((word >> shift) & kLaneMask);
    shift += kLaneBits;
    return v;
  };
  s.dstChild = get();
  s.dstWire = get();
  s.srcIsBoundary = get() != 0;
  s.srcChild = get();
  s.srcWire = get();
  const int depth = get();
  HCA_REQUIRE(depth <= kMaxPathDepth, "corrupt reconfiguration word");
  s.problemPath.resize(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    s.problemPath[static_cast<std::size_t>(i)] = get();
  }
  return s;
}

std::vector<std::uint64_t> ReconfigurationProgram::encode() const {
  std::vector<std::uint64_t> words;
  words.reserve(settings.size());
  for (const auto& s : settings) words.push_back(encodeMuxSetting(s));
  return words;
}

ReconfigurationProgram ReconfigurationProgram::decode(
    const std::vector<std::uint64_t>& words) {
  ReconfigurationProgram program;
  program.settings.reserve(words.size());
  for (const std::uint64_t w : words) {
    program.settings.push_back(decodeMuxSetting(w));
  }
  return program;
}

std::string ReconfigurationProgram::toString() const {
  std::string out;
  for (const auto& s : settings) {
    out += strCat("mux[", strJoin(s.problemPath, "."), "] child ", s.dstChild,
                  " wire ", s.dstWire, " <- ",
                  s.srcIsBoundary ? strCat("boundary wire ", s.srcWire)
                                  : strCat("child ", s.srcChild, " wire ",
                                           s.srcWire),
                  "\n");
  }
  return out;
}

void ReconfigurationProgram::validate() const {
  std::map<std::tuple<std::vector<int>, int, int>, const MuxSetting*> seen;
  for (const auto& s : settings) {
    const auto key = std::make_tuple(s.problemPath, s.dstChild, s.dstWire);
    const auto [it, inserted] = seen.emplace(key, &s);
    if (!inserted) {
      HCA_REQUIRE(*it->second == s,
                  "input wire programmed twice with different sources: "
                      << "problem [" << strJoin(s.problemPath, ".")
                      << "] child " << s.dstChild << " wire " << s.dstWire);
    }
  }
}

}  // namespace hca::machine
