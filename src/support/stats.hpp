#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

/// Streaming summary statistics (Welford), used by the benchmark harnesses
/// and by search diagnostics.
namespace hca {

class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hca
