#include "see/feasibility.hpp"

#include <vector>

namespace hca::see {

FeasibilityOracle::FeasibilityOracle(const PreparedProblem& prepared)
    : prepared_(&prepared) {
  const auto& pg = *prepared.problem().pg;
  numPg_ = static_cast<std::size_t>(pg.numNodes());

  for (const ClusterId c : prepared.clusters()) {
    if (pg.node(c).dead) continue;
    aliveMask_ |= detail::pgBit(c);
    if (pg.node(c).outWireCap != 0) sendMask_ |= detail::pgBit(c);
    const auto& rt = pg.node(c).resources;
    if (rt.count(ddg::ResourceClass::kAlu) > 0) {
      rcMask_[static_cast<int>(ddg::ResourceClass::kAlu)] |= detail::pgBit(c);
    }
    if (rt.count(ddg::ResourceClass::kAg) > 0) {
      rcMask_[static_cast<int>(ddg::ResourceClass::kAg)] |= detail::pgBit(c);
    }
  }

  // Static prefixes of canAddCopyT: a copy src -> dst requires a live
  // sender with a surviving output wire, an arc, and a live receiver.
  arcOutMask_.assign(numPg_, 0);
  arcInMask_.assign(numPg_, 0);
  for (std::int32_t u = 0; u < pg.numNodes(); ++u) {
    const ClusterId src(u);
    if (pg.node(src).dead || pg.node(src).outWireCap == 0) continue;
    for (const PgArcId a : pg.outArcs(src)) {
      const ClusterId dst = pg.arc(a).dst;
      if (pg.node(dst).dead) continue;
      arcOutMask_[src.index()] |= detail::pgBit(dst);
      arcInMask_[dst.index()] |= detail::pgBit(src);
    }
  }

  // Per-group static mask: alive, resource-class-capable for every node
  // member, and able to feed every output wire a node member's value must
  // leave on (the produced value cannot be delivered anywhere before its
  // producer is placed, so the arc requirement is unconditional).
  groupMask_.reserve(prepared.items().size());
  for (const ItemGroup& group : prepared.items()) {
    std::uint64_t m = aliveMask_;
    for (const Item& item : group.members) {
      if (item.kind != Item::Kind::kNode) continue;
      const ddg::ResourceClass rc =
          ddg::opResource(prepared.problem().ddg->node(item.node).op);
      if (rc != ddg::ResourceClass::kNone) {
        m &= rcMask_[static_cast<int>(rc)];
      }
      const ClusterId out = prepared.outputNodeOf(ValueId(item.node.value()));
      if (out.valid()) m &= arcInMask_[out.index()];
    }
    groupMask_.push_back(m);
  }
}

// Static relay-hop distances: BFS from every node over arcs whose
// intermediate hops are alive clusters that can re-send. Distances are
// recorded for every live node (findPathT's destination may be an output
// node), but only clusters are expanded — exactly the relay rule of the
// dynamic BFS with all budget checks assumed to pass, so a static
// kUnreachable implies dynamic unreachability at any budget.
void FeasibilityOracle::buildHopMatrix() const {
  const auto& pg = *prepared_->problem().pg;
  hop_.assign(numPg_ * numPg_, kUnreachable);
  std::vector<ClusterId> queue;
  for (std::int32_t s = 0; s < pg.numNodes(); ++s) {
    const ClusterId src(s);
    std::uint8_t* dist = &hop_[static_cast<std::size_t>(s) * numPg_];
    dist[src.index()] = 0;
    if (pg.node(src).dead || pg.node(src).outWireCap == 0) continue;
    queue.clear();
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ClusterId u = queue[head];
      if (dist[u.index()] == kUnreachable - 1) continue;
      for (const PgArcId a : pg.outArcs(u)) {
        const ClusterId w = pg.arc(a).dst;
        if (pg.node(w).dead || dist[w.index()] != kUnreachable) continue;
        dist[w.index()] = static_cast<std::uint8_t>(dist[u.index()] + 1);
        if (pg.node(w).kind == machine::PgNodeKind::kCluster &&
            pg.node(w).outWireCap != 0) {
          queue.push_back(w);
        }
      }
    }
  }
  hopsBuilt_ = true;
}

}  // namespace hca::see
