#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "support/history.hpp"
#include "support/json.hpp"

/// Differential run reports (`hcac --compare OLD.json NEW.json`).
///
/// Answers "did this change make the compiler faster or slower, and
/// where?" by diffing two run reports of the same workload/machine:
///
///  * *Deterministic counters* — the report's "stats" block minus
///    `attemptsCancelled`, plus every deterministic counter of the metrics
///    registry — are compared *exactly*. The search is deterministic, so
///    any difference means the change altered search behaviour; each
///    mismatching series is named in the verdict.
///  * *Wall-clock* — inherently noisy — is compared against a
///    variance-aware threshold computed from the baseline history:
///    mean + k·stddev over the matching (workload, machine) records
///    (k = DiffOptions::wallSigma). Without history the wall delta is
///    reported but never gates.
///
/// The verdict is emitted both as an aligned human table and as machine
/// JSON; the CLI exits 0 (no regression) or 1 (regression), so CI can gate
/// a change on `hcac --compare baseline.json new.json --history FILE`.
///
/// Comparability is checked first: both reports must carry a meta block
/// (workload, machine, context) with matching schema version, workload and
/// machine; mismatches are InvalidArgumentError (CLI exit 2), not a
/// regression verdict.
namespace hca::core {

/// One compared series.
struct SeriesDiff {
  std::string series;  ///< e.g. "stats.outerAttempts", "metrics.see.expansions.L1"
  double oldValue = 0.0;
  double newValue = 0.0;
  bool regressed = false;
  std::string note;  ///< human-readable threshold / provenance annotation
};

struct ReportDiff {
  std::string workload;
  std::string machine;
  /// Non-gating observations (build-type mismatch, parallel-sweep reports,
  /// missing history, ...).
  std::vector<std::string> notes;
  /// Every deterministic series that differs between the two reports.
  std::vector<SeriesDiff> mismatches;
  /// Deterministic series compared (matched by name in both reports).
  int seriesCompared = 0;
  /// The wall-clock comparison; `regressed` only ever true when a history
  /// threshold was available.
  SeriesDiff wall;
  bool hasWallThreshold = false;
  double wallThresholdUs = 0.0;
  /// Matching history records behind the threshold.
  int historyRuns = 0;

  [[nodiscard]] bool regression() const {
    return !mismatches.empty() || wall.regressed;
  }
};

struct DiffOptions {
  /// k in the wall-clock gate `mean + k*stddev` over history.
  double wallSigma = 3.0;
  /// Minimum matching history records before the wall gate arms (a
  /// 2-sample stddev gates on noise).
  int minHistoryRuns = 3;
  /// Baseline history (loadHistory). Empty = wall-clock is informational.
  std::vector<HistoryRecord> history;
  /// Deterministic series to exclude from the exact compare (still listed
  /// in the verdict as informational when they differ). Lets a gate
  /// tolerate counters that legitimately diverge between the two runs,
  /// e.g. `stats.seeDominancePruned` when comparing pruning on vs off. A
  /// trailing '*' matches every series with that prefix
  /// (`metrics.see.dominance_pruned.*` covers all levels).
  std::vector<std::string> ignoreCounters;
};

/// Diffs two parsed run reports. Throws InvalidArgumentError when either
/// report lacks a meta block or the identities do not match.
[[nodiscard]] ReportDiff diffReports(const JsonValue& oldReport,
                                     const JsonValue& newReport,
                                     const DiffOptions& options = {});

/// Convenience: parse both documents (strict) and diff.
[[nodiscard]] ReportDiff diffReportTexts(const std::string& oldText,
                                         const std::string& newText,
                                         const DiffOptions& options = {});

/// Machine verdict JSON (single object, no trailing newline).
[[nodiscard]] std::string reportDiffJson(const ReportDiff& diff);

/// Aligned human table: one row per mismatch plus the wall-clock verdict.
void printReportDiff(std::ostream& os, const ReportDiff& diff);

}  // namespace hca::core
