#include <gtest/gtest.h>

#include <sstream>

#include "machine/dspfabric.hpp"
#include "machine/pattern_graph.hpp"
#include "machine/rcp.hpp"
#include "machine/reconfig.hpp"
#include "machine/resources.hpp"
#include "support/check.hpp"

namespace hca::machine {
namespace {

// --- ResourceTable -----------------------------------------------------------

TEST(ResourceTableTest, ComputationNode) {
  const auto rt = ResourceTable::computationNode();
  EXPECT_EQ(rt.alu(), 1);
  EXPECT_EQ(rt.ag(), 1);
  EXPECT_EQ(rt.issueSlots(), 1);
}

TEST(ResourceTableTest, Arithmetic) {
  const auto rt = ResourceTable(1, 1) * 16;
  EXPECT_EQ(rt.alu(), 16);
  EXPECT_EQ(rt.ag(), 16);
  const auto sum = rt + ResourceTable(2, 0);
  EXPECT_EQ(sum.alu(), 18);
  EXPECT_EQ(sum.ag(), 16);
}

TEST(ResourceTableTest, CountByClass) {
  const ResourceTable rt(3, 2);
  EXPECT_EQ(rt.count(ddg::ResourceClass::kAlu), 3);
  EXPECT_EQ(rt.count(ddg::ResourceClass::kAg), 2);
  EXPECT_EQ(rt.count(ddg::ResourceClass::kNone), 0);
}

TEST(ResourceTableTest, NegativeCountsRejected) {
  EXPECT_THROW(ResourceTable(-1, 0), InvalidArgumentError);
}

TEST(ResourceUsageTest, TracksClasses) {
  ResourceUsage u;
  u.addOp(ddg::Op::kAdd);
  u.addOp(ddg::Op::kLoad);
  u.addOp(ddg::Op::kRecv);
  u.addOp(ddg::Op::kConst);  // not an instruction
  EXPECT_EQ(u.alu, 1);
  EXPECT_EQ(u.ag, 1);
  EXPECT_EQ(u.instructions, 3);
}

// --- PatternGraph ------------------------------------------------------------

TEST(PatternGraphTest, CompleteClusterGraph) {
  PatternGraph pg;
  for (int i = 0; i < 4; ++i) pg.addCluster(ResourceTable(1, 1));
  pg.connectClustersCompletely();
  EXPECT_EQ(pg.numNodes(), 4);
  EXPECT_EQ(pg.numArcs(), 12);  // 4 * 3 directed arcs
  EXPECT_TRUE(pg.arcBetween(ClusterId(0), ClusterId(3)).has_value());
  EXPECT_TRUE(pg.arcBetween(ClusterId(3), ClusterId(0)).has_value());
  EXPECT_FALSE(pg.arcBetween(ClusterId(0), ClusterId(0)).has_value());
}

TEST(PatternGraphTest, DuplicateArcRejected) {
  PatternGraph pg;
  pg.addCluster(ResourceTable(1, 1));
  pg.addCluster(ResourceTable(1, 1));
  pg.addArc(ClusterId(0), ClusterId(1));
  EXPECT_THROW(pg.addArc(ClusterId(0), ClusterId(1)), InvalidArgumentError);
}

TEST(PatternGraphTest, SelfArcRejected) {
  PatternGraph pg;
  pg.addCluster(ResourceTable(1, 1));
  EXPECT_THROW(pg.addArc(ClusterId(0), ClusterId(0)), InvalidArgumentError);
}

TEST(PatternGraphTest, BoundaryNodes) {
  PatternGraph pg;
  pg.addCluster(ResourceTable(1, 1), "c0");
  pg.addCluster(ResourceTable(1, 1), "c1");
  pg.connectClustersCompletely();
  pg.addInputNode({ValueId(5), ValueId(6)}, "in0");
  pg.addOutputNode("out0");
  pg.connectBoundaryNodes();

  EXPECT_EQ(pg.clusterNodes().size(), 2u);
  EXPECT_EQ(pg.inputNodes().size(), 1u);
  EXPECT_EQ(pg.outputNodes().size(), 1u);
  const auto in = pg.inputNodes()[0];
  EXPECT_EQ(pg.node(in).boundaryValues.size(), 2u);
  // Input connects to every cluster; output reachable from every cluster.
  EXPECT_TRUE(pg.arcBetween(in, ClusterId(0)).has_value());
  EXPECT_TRUE(pg.arcBetween(in, ClusterId(1)).has_value());
  const auto out = pg.outputNodes()[0];
  EXPECT_TRUE(pg.arcBetween(ClusterId(0), out).has_value());
  EXPECT_TRUE(pg.arcBetween(ClusterId(1), out).has_value());
  // But not input -> output directly.
  EXPECT_FALSE(pg.arcBetween(in, out).has_value());
}

TEST(PatternGraphTest, DotOutput) {
  PatternGraph pg;
  pg.addCluster(ResourceTable(4, 4), "set0");
  pg.addCluster(ResourceTable(4, 4), "set1");
  pg.connectClustersCompletely();
  std::ostringstream os;
  pg.toDot(os);
  EXPECT_NE(os.str().find("set0"), std::string::npos);
  EXPECT_NE(os.str().find("->"), std::string::npos);
}

// --- CopyFlow ----------------------------------------------------------------

TEST(CopyFlowTest, RealArcsAndNeighbors) {
  PatternGraph pg;
  for (int i = 0; i < 3; ++i) pg.addCluster(ResourceTable(1, 1));
  pg.connectClustersCompletely();
  CopyFlow flow(pg);
  const auto a01 = *pg.arcBetween(ClusterId(0), ClusterId(1));
  const auto a21 = *pg.arcBetween(ClusterId(2), ClusterId(1));
  flow.addCopy(a01, ValueId(7));
  flow.addCopy(a01, ValueId(7));  // idempotent
  flow.addCopy(a01, ValueId(8));
  flow.addCopy(a21, ValueId(9));

  EXPECT_TRUE(flow.isReal(a01));
  EXPECT_FALSE(flow.isReal(*pg.arcBetween(ClusterId(1), ClusterId(0))));
  EXPECT_EQ(flow.copiesOn(a01).size(), 2u);
  EXPECT_EQ(flow.totalCopies(), 3);
  const auto inNbrs = flow.realInNeighbors(pg, ClusterId(1));
  EXPECT_EQ(inNbrs.size(), 2u);
  EXPECT_EQ(flow.realOutNeighbors(pg, ClusterId(0)).size(), 1u);
  EXPECT_TRUE(flow.realInNeighbors(pg, ClusterId(0)).empty());
}

// --- DSPFabric ---------------------------------------------------------------

TEST(DspFabricTest, PaperInstanceShape) {
  const DspFabricModel fabric{DspFabricConfig{}};
  EXPECT_EQ(fabric.numLevels(), 3);
  EXPECT_EQ(fabric.totalCns(), 64);
  EXPECT_EQ(fabric.clusterResources(0).alu(), 16);  // a set: 16 ALUs/AGs
  EXPECT_EQ(fabric.clusterResources(1).alu(), 4);
  EXPECT_EQ(fabric.clusterResources(2).alu(), 1);
}

TEST(DspFabricTest, LevelSpecs) {
  DspFabricConfig config;
  config.n = 8;
  config.m = 6;
  config.k = 4;
  const DspFabricModel fabric{config};
  const auto l0 = fabric.levelSpec(0);
  EXPECT_EQ(l0.children, 4);
  EXPECT_EQ(l0.inWires, 8);
  EXPECT_EQ(l0.outWires, 8);
  EXPECT_EQ(l0.maxWiresIntoChild, 8);  // child (a set) accepts N wires
  const auto l1 = fabric.levelSpec(1);
  EXPECT_EQ(l1.inWires, 6);
  EXPECT_EQ(l1.maxWiresIntoChild, 4);  // leaf crossbar takes K wires
  const auto l2 = fabric.levelSpec(2);
  EXPECT_EQ(l2.inWires, 2);   // CN: two incoming wires
  EXPECT_EQ(l2.outWires, 1);  // one outgoing wire
}

TEST(DspFabricTest, ConstraintsFollowMuxCapacity) {
  DspFabricConfig config;
  config.n = 5;
  config.m = 3;
  const DspFabricModel fabric{config};
  EXPECT_EQ(fabric.constraints(0).maxInNeighbors, 5);
  EXPECT_EQ(fabric.constraints(1).maxInNeighbors, 3);
  EXPECT_EQ(fabric.constraints(2).maxInNeighbors, 2);
  EXPECT_EQ(fabric.constraints(0).maxOutNeighbors, -1);
  EXPECT_TRUE(fabric.constraints(0).outputNodeUnaryFanIn);
}

TEST(DspFabricTest, PatternGraphPerLevel) {
  const DspFabricModel fabric{DspFabricConfig{}};
  const auto pg = fabric.patternGraph(0);
  EXPECT_EQ(pg.numNodes(), 4);
  EXPECT_EQ(pg.numArcs(), 12);
  EXPECT_EQ(pg.node(ClusterId(0)).resources.alu(), 16);
  const auto leaf = fabric.patternGraph(2);
  EXPECT_EQ(leaf.node(ClusterId(0)).resources.alu(), 1);
}

TEST(DspFabricTest, CnAddressingRoundTrip) {
  const DspFabricModel fabric{DspFabricConfig{}};
  for (int id = 0; id < 64; ++id) {
    const auto path = fabric.pathOfCn(CnId(id));
    EXPECT_EQ(fabric.cnIdOf(path), CnId(id));
  }
  EXPECT_EQ(fabric.cnIdOf({0, 0, 0}), CnId(0));
  EXPECT_EQ(fabric.cnIdOf({3, 3, 3}), CnId(63));
  EXPECT_EQ(fabric.cnIdOf({1, 2, 3}), CnId(16 + 8 + 3));
}

TEST(DspFabricTest, CommonLevel) {
  const DspFabricModel fabric{DspFabricConfig{}};
  EXPECT_EQ(fabric.commonLevel(CnId(0), CnId(0)), 3);   // same CN
  EXPECT_EQ(fabric.commonLevel(CnId(0), CnId(1)), 2);   // same crossbar
  EXPECT_EQ(fabric.commonLevel(CnId(0), CnId(4)), 1);   // same set
  EXPECT_EQ(fabric.commonLevel(CnId(0), CnId(16)), 0);  // different sets
}

TEST(DspFabricTest, CopyLatencyGrowsWithDistance) {
  const DspFabricModel fabric{DspFabricConfig{}};
  EXPECT_EQ(fabric.copyLatency(CnId(0), CnId(0)), 0);
  const int sameXbar = fabric.copyLatency(CnId(0), CnId(1));
  const int sameSet = fabric.copyLatency(CnId(0), CnId(4));
  const int crossSet = fabric.copyLatency(CnId(0), CnId(16));
  EXPECT_GT(sameXbar, 0);
  EXPECT_GT(sameSet, sameXbar);
  EXPECT_GT(crossSet, sameSet);
}

TEST(DspFabricTest, NonPaperShapes) {
  DspFabricConfig small;
  small.branching = {4, 4};  // 16 CNs, two levels
  const DspFabricModel fabric{small};
  EXPECT_EQ(fabric.totalCns(), 16);
  EXPECT_EQ(fabric.numLevels(), 2);
  EXPECT_EQ(fabric.clusterResources(0).alu(), 4);
  // Level 0's children are leaves: maxWiresIntoChild clamps to K.
  EXPECT_EQ(fabric.levelSpec(0).maxWiresIntoChild,
            std::min(small.n, small.k));
}

TEST(DspFabricTest, InvalidConfigsRejected) {
  DspFabricConfig bad;
  bad.branching = {};
  EXPECT_THROW(DspFabricModel{bad}, InvalidArgumentError);
  bad.branching = {4, 1};
  EXPECT_THROW(DspFabricModel{bad}, InvalidArgumentError);
  bad = DspFabricConfig{};
  bad.n = 0;
  EXPECT_THROW(DspFabricModel{bad}, InvalidArgumentError);
  bad = DspFabricConfig{};
  bad.dmaSlots = 0;
  EXPECT_THROW(DspFabricModel{bad}, InvalidArgumentError);
}

// --- RCP ---------------------------------------------------------------------

TEST(RcpTest, PaperFigure1Shape) {
  // Figure 1(a): 8 clusters, each can receive from 4 neighbors.
  RcpConfig config;
  config.clusters = 8;
  config.neighborReach = 2;
  const auto pg = rcpPatternGraph(config);
  EXPECT_EQ(pg.numNodes(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pg.inArcs(ClusterId(i)).size(), 4u) << "cluster " << i;
    EXPECT_EQ(pg.outArcs(ClusterId(i)).size(), 4u) << "cluster " << i;
  }
  // Ring reach: 0 connects to 1,2,6,7 but not 3..5.
  EXPECT_TRUE(pg.arcBetween(ClusterId(0), ClusterId(2)).has_value());
  EXPECT_FALSE(pg.arcBetween(ClusterId(0), ClusterId(3)).has_value());
  EXPECT_TRUE(pg.arcBetween(ClusterId(0), ClusterId(6)).has_value());
}

TEST(RcpTest, Heterogeneity) {
  RcpConfig config;
  config.memClusterStride = 2;
  const auto pg = rcpPatternGraph(config);
  EXPECT_EQ(pg.node(ClusterId(0)).resources.ag(), 1);
  EXPECT_EQ(pg.node(ClusterId(1)).resources.ag(), 0);
  EXPECT_EQ(pg.node(ClusterId(2)).resources.ag(), 1);
}

TEST(RcpTest, ConstraintsUseInputPorts) {
  RcpConfig config;
  config.inputPorts = 2;
  EXPECT_EQ(rcpConstraints(config).maxInNeighbors, 2);
}

TEST(RcpTest, InvalidConfigRejected) {
  RcpConfig bad;
  bad.clusters = 2;
  EXPECT_THROW(rcpPatternGraph(bad), InvalidArgumentError);
  bad = RcpConfig{};
  bad.neighborReach = 4;  // wraps past an 8-ring
  EXPECT_THROW(rcpPatternGraph(bad), InvalidArgumentError);
}

// --- reconfiguration ----------------------------------------------------------

TEST(ReconfigTest, EncodeDecodeRoundTrip) {
  MuxSetting s;
  s.problemPath = {0, 2};
  s.dstChild = 3;
  s.dstWire = 1;
  s.srcIsBoundary = false;
  s.srcChild = 2;
  s.srcWire = 5;
  EXPECT_EQ(decodeMuxSetting(encodeMuxSetting(s)), s);

  s.srcIsBoundary = true;
  s.srcWire = 7;
  s.problemPath = {};
  EXPECT_EQ(decodeMuxSetting(encodeMuxSetting(s)), s);
}

TEST(ReconfigTest, ProgramRoundTrip) {
  ReconfigurationProgram program;
  for (int i = 0; i < 5; ++i) {
    MuxSetting s;
    s.problemPath = {i % 4};
    s.dstChild = i % 4;
    s.dstWire = i % 2;
    s.srcChild = (i + 1) % 4;
    s.srcWire = i;
    program.settings.push_back(s);
  }
  const auto words = program.encode();
  const auto decoded = ReconfigurationProgram::decode(words);
  EXPECT_EQ(decoded.settings.size(), program.settings.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(decoded.settings[i], program.settings[i]);
  }
}

TEST(ReconfigTest, ValidateRejectsDoubleProgramming) {
  ReconfigurationProgram program;
  MuxSetting a;
  a.problemPath = {1};
  a.dstChild = 0;
  a.dstWire = 0;
  a.srcChild = 1;
  a.srcWire = 0;
  MuxSetting b = a;
  b.srcChild = 2;  // same input wire, different source
  program.settings = {a, b};
  EXPECT_THROW(program.validate(), InvalidArgumentError);
  program.settings = {a, a};  // identical duplicates are tolerated
  EXPECT_NO_THROW(program.validate());
}

TEST(ReconfigTest, FieldOverflowRejected) {
  MuxSetting s;
  s.dstChild = 64;  // does not fit a 6-bit lane
  EXPECT_THROW(encodeMuxSetting(s), InvalidArgumentError);
}

TEST(ReconfigTest, ToStringListsSettings) {
  ReconfigurationProgram program;
  MuxSetting s;
  s.problemPath = {0, 1};
  s.dstChild = 2;
  s.dstWire = 1;
  s.srcIsBoundary = true;
  s.srcWire = 3;
  program.settings.push_back(s);
  const auto text = program.toString();
  EXPECT_NE(text.find("mux[0.1]"), std::string::npos);
  EXPECT_NE(text.find("boundary wire 3"), std::string::npos);
}

}  // namespace
}  // namespace hca::machine
