// Fixture: flagged by no rule. Mapped to src/see/clean.cpp. Also exercises
// token-awareness: "steady_clock" below appears only in a comment and a
// string literal, which the lexer strips before the rules run.
#include <map>

namespace hca::see {

// A comment mentioning steady_clock must not trip the clock rule.
[[nodiscard]] inline const char* fixtureLabel() {
  return "steady_clock in a string is not a token";
}

[[nodiscard]] int fixtureTotal(const std::map<int, int>& weights) {
  int total = 0;
  for (const auto& [key, value] : weights) total += key * value;
  return total;
}

}  // namespace hca::see
