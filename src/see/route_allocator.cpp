#include "see/route_allocator.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace hca::see {

std::vector<ClusterId> RouteAllocator::findPath(
    const PreparedProblem& prepared, const PartialSolution& solution,
    ClusterId src, ClusterId dst, ValueId value, int maxHops) {
  const auto& pg = *prepared.problem().pg;
  const int maxPathNodes = maxHops + 2;  // src + relays + dst

  std::vector<ClusterId> parent(static_cast<std::size_t>(pg.numNodes()),
                                ClusterId::invalid());
  std::vector<int> depth(static_cast<std::size_t>(pg.numNodes()), -1);
  depth[src.index()] = 0;
  std::deque<ClusterId> queue{src};
  while (!queue.empty()) {
    const ClusterId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    if (depth[u.index()] + 1 >= maxPathNodes) continue;
    for (const PgArcId a : pg.outArcs(u)) {
      const ClusterId w = pg.arc(a).dst;
      if (depth[w.index()] != -1) continue;
      // Only relay through (alive) cluster nodes; the destination may be
      // anything — canAddCopy refuses dead destinations itself.
      if (w != dst && (pg.node(w).kind != machine::PgNodeKind::kCluster ||
                       pg.node(w).dead)) {
        continue;
      }
      if (!solution.canAddCopy(prepared, u, w, value)) continue;
      depth[w.index()] = depth[u.index()] + 1;
      parent[w.index()] = u;
      queue.push_back(w);
    }
  }
  if (depth[dst.index()] == -1) return {};
  std::vector<ClusterId> path;
  for (ClusterId v = dst; v.valid(); v = parent[v.index()]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  HCA_CHECK(path.front() == src, "broken BFS parent chain");
  return path;
}

namespace {
/// Routes the copies `item` needs at `cluster` into `sol`, then assigns.
/// Returns false (leaving `sol` partially modified — callers work on a
/// clone) when some copy cannot be routed.
bool routeAndAssign(const PreparedProblem& prepared, PartialSolution& sol,
                    const Item& item, ClusterId cluster,
                    int* routedOperands);
}  // namespace

std::optional<PartialSolution> RouteAllocator::tryAssign(
    const PreparedProblem& prepared, const PartialSolution& base,
    const Item& item, ClusterId cluster, int* routedOperands) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) {
    return std::nullopt;
  }
  PartialSolution sol = base;
  if (!routeAndAssign(prepared, sol, item, cluster, routedOperands)) {
    return std::nullopt;
  }
  return sol;
}

std::optional<PartialSolution> RouteAllocator::tryAssignGroup(
    const PreparedProblem& prepared, const PartialSolution& base,
    const ItemGroup& group, ClusterId cluster, int* routedOperands) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) {
    return std::nullopt;
  }
  PartialSolution sol = base;
  for (const Item& item : group.members) {
    if (sol.canAssign(prepared, item, cluster)) {
      sol.assign(prepared, item, cluster);
      continue;
    }
    if (!routeAndAssign(prepared, sol, item, cluster, routedOperands)) {
      return std::nullopt;
    }
  }
  return sol;
}

namespace {
bool routeAndAssign(const PreparedProblem& prepared, PartialSolution& sol,
                    const Item& item, ClusterId cluster,
                    int* routedOperands) {
  const int maxHops = prepared.options().maxRouteHops;

  // Values that must reach `cluster` (operands of a node item; the source
  // value of a relay item).
  std::vector<ValueId> incoming;
  if (item.kind == Item::Kind::kNode) {
    incoming = prepared.operandValues(item.node);
  } else {
    incoming.push_back(item.value);
  }
  for (const ValueId v : incoming) {
    const ClusterId loc = sol.valueLocation(prepared, v);
    if (!loc.valid() || loc == cluster) continue;
    if (sol.valueDelivered(cluster, v)) continue;
    if (sol.canAddCopy(prepared, loc, cluster, v)) continue;  // direct is fine
    const auto path =
        RouteAllocator::findPath(prepared, sol, loc, cluster, v, maxHops);
    if (path.empty()) return false;
    sol.applyRoute(prepared, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  // Values produced here that must reach already-assigned consumers or a
  // (possibly already-fed) output wire.
  std::vector<std::pair<ValueId, ClusterId>> outgoing;
  if (item.kind == Item::Kind::kNode) {
    const ValueId produced(item.node.value());
    for (const DdgNodeId consumer : prepared.wsConsumers(item.node)) {
      const ClusterId d = sol.clusterOf(consumer);
      if (d.valid() && d != cluster) outgoing.emplace_back(produced, d);
    }
    const ClusterId out = prepared.outputNodeOf(produced);
    if (out.valid()) outgoing.emplace_back(produced, out);
  } else {
    outgoing.emplace_back(item.value, prepared.outputNodeOf(item.value));
  }
  for (const auto& [v, dst] : outgoing) {
    if (sol.valueDelivered(dst, v)) continue;
    if (sol.canAddCopy(prepared, cluster, dst, v)) continue;
    const auto path =
        RouteAllocator::findPath(prepared, sol, cluster, dst, v, maxHops);
    if (path.empty()) return false;
    sol.applyRoute(prepared, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  if (!sol.canAssign(prepared, item, cluster)) return false;
  sol.assign(prepared, item, cluster);
  return true;
}
}  // namespace

}  // namespace hca::see
