#include "support/context.hpp"

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <thread>

#include "support/check.hpp"
#include "support/json.hpp"

#ifndef HCA_GIT_SHA
#define HCA_GIT_SHA "unknown"
#endif
#ifndef HCA_CMAKE_BUILD_TYPE
#define HCA_CMAKE_BUILD_TYPE ""
#endif

namespace hca {

namespace {

std::string currentHostname() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

int i32Member(const JsonValue& v, const char* name) {
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr && m->kind == JsonValue::Kind::kNumber,
              "context: missing/non-number member '" << name << "'");
  return static_cast<int>(m->number);
}

const std::string& strMember(const JsonValue& v, const char* name) {
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr && m->kind == JsonValue::Kind::kString,
              "context: missing/non-string member '" << name << "'");
  return m->string;
}

bool boolMember(const JsonValue& v, const char* name) {
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr && m->kind == JsonValue::Kind::kBool,
              "context: missing/non-bool member '" << name << "'");
  return m->boolean;
}

}  // namespace

RunContext RunContext::current(std::string runId) {
  RunContext ctx;
  ctx.gitSha = HCA_GIT_SHA;
  ctx.buildType = HCA_CMAKE_BUILD_TYPE;
#ifdef NDEBUG
  ctx.ndebug = true;
#else
  ctx.ndebug = false;
#endif
  ctx.hostname = currentHostname();
  ctx.hardwareConcurrency =
      static_cast<int>(std::thread::hardware_concurrency());
  ctx.runId = std::move(runId);
  return ctx;
}

void RunContext::writeJson(JsonWriter& json) const {
  json.beginObject();
  json.key("schema_version").value(schemaVersion);
  json.key("git_sha").value(gitSha);
  json.key("build_type").value(buildType);
  json.key("ndebug").value(ndebug);
  json.key("hostname").value(hostname);
  json.key("hardware_concurrency").value(hardwareConcurrency);
  json.key("run_id").value(runId);
  json.endObject();
}

std::string RunContext::toJson() const {
  std::ostringstream os;
  JsonWriter json(os);
  writeJson(json);
  return os.str();
}

RunContext RunContext::fromJson(const JsonValue& value) {
  HCA_REQUIRE(value.isObject(), "context: not an object");
  for (const auto& [key, member] : value.object) {
    (void)member;
    const bool known =
        key == "schema_version" || key == "git_sha" || key == "build_type" ||
        key == "ndebug" || key == "hostname" ||
        key == "hardware_concurrency" || key == "run_id";
    HCA_REQUIRE(known, "context: unknown member '" << key << "'");
  }
  RunContext ctx;
  ctx.schemaVersion = i32Member(value, "schema_version");
  ctx.gitSha = strMember(value, "git_sha");
  ctx.buildType = strMember(value, "build_type");
  ctx.ndebug = boolMember(value, "ndebug");
  ctx.hostname = strMember(value, "hostname");
  ctx.hardwareConcurrency = i32Member(value, "hardware_concurrency");
  ctx.runId = strMember(value, "run_id");
  return ctx;
}

bool warnIfDebugBuild(const char* tool) {
  const RunContext ctx = RunContext::current();
  if (ctx.isOptimizedBuild()) return false;
  std::fprintf(
      stderr,
      "\n"
      "*** %s: DEBUG BUILD — timing numbers are NOT comparable. ***\n"
      "*** Configure with -DCMAKE_BUILD_TYPE=Release before trusting ***\n"
      "*** or committing any measurement (build_type='%s').          ***\n"
      "\n",
      tool, ctx.buildType.c_str());
  return true;
}

}  // namespace hca
