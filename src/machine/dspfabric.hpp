#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ddg/opcode.hpp"
#include "machine/fault.hpp"
#include "machine/pattern_graph.hpp"
#include "machine/resources.hpp"
#include "support/ids.hpp"

/// The DSPFabric machine model (paper Section 2.2, Figure 2).
///
/// The co-processor is a tree of interconnect levels. In the paper's
/// 64-cluster instance: level 0 is an array of four cluster *sets*
/// communicating through MUXes of capacity N (each set: N input wires, each
/// selecting one source; N output wires, broadcastable); level 1 replicates
/// the structure inside each set with four sub-clusters and MUX capacity M;
/// the last level holds four computation nodes behind a reconfigurable
/// crossbar fed by the internal CN outputs plus K of the wires incoming from
/// level 1. Each CN is a single-issue machine (1 ALU + 1 AG) with two
/// incoming wires and one outgoing wire. Memory traffic goes to a
/// programmable DMA able to serve `dmaSlots` simultaneous requests without
/// consuming inter-cluster communication patterns.
namespace hca::machine {

/// Per-level interconnect figures, derived from the config.
struct LevelSpec {
  int children = 0;   // PG nodes of a sub-problem at this level
  int inWires = 0;    // input wires per child (MUX capacity)
  int outWires = 0;   // output wires per child
  /// Cap on wires entering a *child* sub-problem from this level (the K
  /// crossbar inputs at the leaves; the child's own inWires elsewhere).
  int maxWiresIntoChild = 0;
};

struct DspFabricConfig {
  /// Fan-out of each hierarchy level (outermost first). {4,4,4} is the
  /// paper's 64-cluster instance.
  std::vector<int> branching = {4, 4, 4};
  int n = 8;  ///< level-0 MUX capacity (input/output wires per cluster set)
  int m = 8;  ///< level-1 MUX capacity
  int k = 8;  ///< level-1 wires accepted by each leaf crossbar
  int cnInWires = 2;   ///< incoming wires per computation node
  int cnOutWires = 1;  ///< outgoing wires per computation node
  int dmaSlots = 8;    ///< simultaneous DMA requests
  ddg::LatencyModel latency;

  [[nodiscard]] std::string toString() const;
};

/// Fault-aware interconnect figures of one concrete sub-problem (identified
/// by its path in the problem tree, unlike the per-level `LevelSpec`).
struct ProblemSpec {
  int level = 0;
  LevelSpec base;  ///< fault-free figures of this level
  /// Surviving wires per child (base minus dead wires, floored at 0).
  std::vector<int> inWiresOfChild;
  std::vector<int> outWiresOfChild;
  /// Surviving ILI budget into each child sub-problem (crossbar lanes for
  /// leaf children). All zeros at the leaf level (nothing below a CN).
  std::vector<int> maxWiresIntoChildOf;
  /// True when no computation node survives below the child.
  std::vector<bool> childDead;
  /// True when any figure deviates from the fault-free fabric (used to keep
  /// the zero-fault path byte-identical to the unfaulted model).
  bool touched = false;
};

class DspFabricModel {
 public:
  explicit DspFabricModel(DspFabricConfig config, FaultSet faults = {});

  [[nodiscard]] const DspFabricConfig& config() const { return config_; }
  [[nodiscard]] const FaultSet& faults() const { return faults_; }
  [[nodiscard]] bool hasFaults() const { return !faults_.empty(); }

  /// Number of interconnect levels (= depth of the problem tree).
  [[nodiscard]] int numLevels() const {
    return static_cast<int>(config_.branching.size());
  }
  [[nodiscard]] int totalCns() const { return totalCns_; }

  /// Interconnect figures of the problems at `level` (0 = root).
  [[nodiscard]] LevelSpec levelSpec(int level) const;

  /// Human-readable name of `level` for traces / reports / metric tables:
  /// "cluster-sets" at the root, "leaf-crossbars" at the last level,
  /// "sub-clusters[.d]" in between (d = depth for fabrics deeper than 3).
  [[nodiscard]] std::string levelName(int level) const;

  /// Aggregate resources of one PG node at `level` (all the CNs below it).
  [[nodiscard]] ResourceTable clusterResources(int level) const;

  /// SEE constraints at `level`: maxInNeighbors = MUX capacity, outputs
  /// unconstrained, output nodes unary fan-in (Section 4.1).
  [[nodiscard]] PgConstraints constraints(int level) const;

  /// Pattern graph of a sub-problem at `level`: `branching[level]` fully
  /// connected cluster nodes with the aggregated resource tables. Boundary
  /// (input/output) nodes are added by the HCA decomposition, not here.
  [[nodiscard]] PatternGraph patternGraph(int level) const;

  /// --- Fault-aware views --------------------------------------------------
  /// Liveness of one CN / count of surviving CNs / survivors below the
  /// problem-tree node at `path` (empty path = whole fabric, length
  /// numLevels() = a single CN).
  [[nodiscard]] bool cnAlive(CnId cn) const;
  [[nodiscard]] int aliveCns() const { return aliveCns_; }
  [[nodiscard]] int aliveCnsBelow(const std::vector<int>& path) const;

  /// Fault-aware interconnect figures of the sub-problem at `path`
  /// (path.size() = its level; must be < numLevels()).
  [[nodiscard]] ProblemSpec problemSpec(const std::vector<int>& path) const;

  /// Fault-aware variant of patternGraph() for the concrete sub-problem at
  /// `path`: dead children are kept as zero-resource nodes flagged `dead`,
  /// children with dead MUX wires carry reduced per-node wire caps. With no
  /// faults affecting the problem this returns exactly patternGraph().
  [[nodiscard]] PatternGraph patternGraphAt(const std::vector<int>& path) const;

  /// Validates that the surviving fabric is still connected: at least one
  /// CN is alive and every alive child of every sub-problem keeps >= 1
  /// input wire, >= 1 output wire, and (for leaf children) >= 1 crossbar
  /// lane. Returns an empty string when viable, else a description of the
  /// first disconnection found.
  [[nodiscard]] std::string faultViabilityError() const;

  /// --- CN addressing ------------------------------------------------------
  /// A CN is identified by its path (one child index per level) or by a
  /// linear id in row-major order.
  [[nodiscard]] CnId cnIdOf(const std::vector<int>& path) const;
  [[nodiscard]] std::vector<int> pathOfCn(CnId cn) const;
  /// Deepest level at which the two CNs still share a container: 0 if they
  /// are in different level-0 sets, numLevels()-1 if they share a leaf
  /// crossbar; numLevels() if identical.
  [[nodiscard]] int commonLevel(CnId a, CnId b) const;

  /// Latency of a copy between two CNs: one wire hop per level crossed,
  /// in each direction, times the per-hop copy latency. Same-CN = 0.
  [[nodiscard]] int copyLatency(CnId a, CnId b) const;

 private:
  struct WireFaultCount {
    int in = 0;
    int out = 0;
  };

  [[nodiscard]] std::string viabilityWalk(std::vector<int>& path) const;

  DspFabricConfig config_;
  FaultSet faults_;
  int totalCns_ = 1;
  int aliveCns_ = 1;
  /// alivePrefix_[i] = number of alive CNs with id < i (size totalCns_+1).
  std::vector<int> alivePrefix_;
  /// Dead-wire counts per sub-problem path, one entry per child.
  std::map<std::vector<int>, std::vector<WireFaultCount>> wireFaults_;
  /// Dead crossbar lanes per leaf-problem path.
  std::map<std::vector<int>, int> laneFaults_;
};

}  // namespace hca::machine
