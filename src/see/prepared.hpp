#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "see/problem.hpp"

/// Immutable, preprocessed view of a SeeProblem shared by every search
/// state: working-set membership, operand/consumer adjacency restricted to
/// the WS, the priority list, and per-node scheduling heights.
namespace hca::see {

/// One entry of the priority list: either a WS node or a relay value.
struct Item {
  enum class Kind { kNode, kRelay };
  Kind kind = Kind::kNode;
  DdgNodeId node;   // kNode
  ValueId value;    // kRelay
};

/// A co-location group: items that must land on the same cluster because
/// their values leave on a single output wire (outNode_MaxIn, Fig. 10).
/// Groups are assigned first — they are the most constrained decisions.
/// Singleton groups are ordinary priority-list entries.
struct ItemGroup {
  std::vector<Item> members;
};

/// One cross-cluster critical-path penalty term, keyed so that summing all
/// terms in ascending key order reproduces the exact floating-point
/// accumulation order of CriticalPathCriterion's full scan (working-set
/// position, then operand position). `num / maxWsHeight` is the term value.
struct CritTerm {
  std::uint64_t key = 0;   // wsIndex(consumer) << 32 | operandIndex
  std::int64_t num = 0;    // height(consumer) + 1
};

/// A potentially-critical operand of a WS node `n`: the j-th operand is an
/// intra-iteration dependence on another WS node. Once both endpoints are
/// assigned to *different* clusters the term (key(n, j), height(n)+1)
/// becomes part of the critical-path penalty — and never leaves, because
/// assignments are immutable.
struct CritOperand {
  std::int32_t operandIndex = 0;
  DdgNodeId src;
};

/// The reverse adjacency: `consumer`'s j-th operand depends on this node.
struct CritUse {
  DdgNodeId consumer;
  std::int32_t operandIndex = 0;
};

class FeasibilityOracle;

class PreparedProblem {
 public:
  PreparedProblem(const SeeProblem& problem, const SeeOptions& options);
  ~PreparedProblem();
  // The oracle keeps a back-reference; prepared problems live in place.
  PreparedProblem(PreparedProblem&&) = delete;
  PreparedProblem& operator=(PreparedProblem&&) = delete;

  [[nodiscard]] const SeeProblem& problem() const { return *problem_; }
  [[nodiscard]] const SeeOptions& options() const { return options_; }
  /// Static feasibility/reachability tables (see/feasibility.hpp), built
  /// once per prepared problem.
  [[nodiscard]] const FeasibilityOracle& oracle() const { return *oracle_; }

  [[nodiscard]] const std::vector<ItemGroup>& items() const { return items_; }
  [[nodiscard]] const std::vector<ClusterId>& clusters() const {
    return clusters_;
  }
  [[nodiscard]] bool inWorkingSet(DdgNodeId node) const {
    return node.valid() && node.index() < inWs_.size() &&
           inWs_[node.index()] != 0;
  }
  /// Distinct non-const operand values of a WS node (self-references from
  /// carried recurrences excluded).
  [[nodiscard]] const std::vector<ValueId>& operandValues(
      DdgNodeId node) const {
    return operandValues_[node.index()];
  }
  /// Consumers of a node's value inside the WS (distinct).
  [[nodiscard]] const std::vector<DdgNodeId>& wsConsumers(
      DdgNodeId node) const {
    return wsConsumers_[node.index()];
  }
  /// Output node a value must reach, or invalid if none.
  [[nodiscard]] ClusterId outputNodeOf(ValueId value) const;
  /// Input node (or assigned producer lookup key) for out-of-WS sources;
  /// invalid if the value has no registered source.
  [[nodiscard]] ClusterId valueSource(ValueId value) const;

  [[nodiscard]] std::int64_t height(DdgNodeId node) const {
    return heights_[node.index()];
  }

  /// Position of a WS node in `problem().workingSet` (-1 outside the WS):
  /// the major component of critical-path term keys.
  [[nodiscard]] std::int32_t wsIndex(DdgNodeId node) const {
    return wsIndexOf_[node.index()];
  }
  /// Tallest WS height, min 1 — the critical-path normalizer.
  [[nodiscard]] std::int64_t maxWsHeight() const { return maxWsHeight_; }
  /// Intra-iteration WS operands of `node` (see CritOperand).
  [[nodiscard]] const std::vector<CritOperand>& critOperands(
      DdgNodeId node) const {
    return critOperands_[node.index()];
  }
  /// WS consumers whose listed operand depends on `node` (see CritUse).
  [[nodiscard]] const std::vector<CritUse>& critUses(DdgNodeId node) const {
    return critUses_[node.index()];
  }
  [[nodiscard]] static std::uint64_t critKey(std::int32_t wsIndex,
                                             std::int32_t operandIndex) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(wsIndex))
            << 32) |
           static_cast<std::uint32_t>(operandIndex);
  }

 private:
  const SeeProblem* problem_;
  SeeOptions options_;
  std::vector<ItemGroup> items_;
  std::vector<ClusterId> clusters_;
  std::vector<char> inWs_;
  std::vector<std::vector<ValueId>> operandValues_;
  std::vector<std::vector<DdgNodeId>> wsConsumers_;
  /// Point lookups (find/count/emplace) only — never iterated, so hash
  /// order cannot reach the result.
  std::unordered_map<ValueId, ClusterId> valueToOutput_;
  std::vector<std::int64_t> heights_;
  std::vector<std::int32_t> wsIndexOf_;
  std::int64_t maxWsHeight_ = 1;
  std::vector<std::vector<CritOperand>> critOperands_;
  std::vector<std::vector<CritUse>> critUses_;
  std::unique_ptr<FeasibilityOracle> oracle_;
};

}  // namespace hca::see
