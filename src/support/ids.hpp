#pragma once

#include <cstdint>
#include <functional>
#include <string>

/// Strongly-typed integer identifiers.
///
/// Every layer of the tool chain manipulates several kinds of indices (DDG
/// nodes, pattern-graph clusters, machine wires, ...). Mixing them up is the
/// classic off-by-one-layer bug of a compiler back-end, so each gets its own
/// incompatible wrapper type. The wrapper is a trivially-copyable value type
/// with the same cost as a raw `int32_t`.
namespace hca {

template <class Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : value_(value) {}

  /// Sentinel used for "not assigned yet" states.
  static constexpr Id invalid() { return Id(-1); }

  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }
  [[nodiscard]] constexpr std::int32_t value() const { return value_; }
  /// Convenience for indexing into std::vector.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

 private:
  std::int32_t value_ = -1;
};

template <class Tag>
[[nodiscard]] inline std::string to_string(Id<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : std::string("<invalid>");
}

// Tags for the id types shared across modules.
struct DdgNodeTag {};
struct DdgEdgeTag {};
struct ClusterTag {};   // node of a PatternGraph
struct PgArcTag {};     // arc of a PatternGraph
struct WireTag {};      // physical wire of the machine model
struct CnTag {};        // linear index of a computation node
struct ValueTag {};     // a value carried by copies == producing DDG node

using DdgNodeId = Id<DdgNodeTag>;
using DdgEdgeId = Id<DdgEdgeTag>;
using ClusterId = Id<ClusterTag>;
using PgArcId = Id<PgArcTag>;
using WireId = Id<WireTag>;
using CnId = Id<CnTag>;
using ValueId = Id<ValueTag>;

}  // namespace hca

namespace std {
template <class Tag>
struct hash<hca::Id<Tag>> {
  size_t operator()(hca::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>()(id.value());
  }
};
}  // namespace std
