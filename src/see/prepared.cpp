#include "see/prepared.hpp"

#include <algorithm>

#include "see/feasibility.hpp"
#include "support/check.hpp"

namespace hca::see {

PreparedProblem::PreparedProblem(const SeeProblem& problem,
                                 const SeeOptions& options)
    : problem_(&problem), options_(options) {
  HCA_REQUIRE(problem.ddg != nullptr, "SeeProblem without DDG");
  HCA_REQUIRE(problem.pg != nullptr, "SeeProblem without PatternGraph");
  HCA_REQUIRE(problem.pg->numNodes() <= 64,
              "SEE supports pattern graphs of up to 64 nodes");
  const ddg::Ddg& ddg = *problem.ddg;

  clusters_ = problem.pg->clusterNodes();
  HCA_REQUIRE(!clusters_.empty(), "PatternGraph has no cluster nodes");

  inWs_.assign(static_cast<std::size_t>(ddg.numNodes()), 0);
  for (const DdgNodeId n : problem.workingSet) {
    HCA_REQUIRE(n.valid() && n.value() < ddg.numNodes(),
                "working-set node out of range");
    HCA_REQUIRE(ddg::isInstruction(ddg.node(n).op),
                "working set contains a non-instruction (const) node");
    HCA_REQUIRE(inWs_[n.index()] == 0, "duplicate working-set node");
    inWs_[n.index()] = 1;
  }

  for (const auto& [out, values] : problem.outputRequirements) {
    HCA_REQUIRE(
        problem.pg->node(out).kind == machine::PgNodeKind::kOutput,
        "output requirement target is not an output node");
    for (const ValueId v : values) {
      const auto [it, inserted] = valueToOutput_.emplace(v, out);
      HCA_REQUIRE(inserted, "value assigned to two output wires");
    }
  }
  // hca-lint: ordered-ok(validation only; visit order cannot affect result)
  for (const auto& [value, source] : problem.valueSources) {
    HCA_REQUIRE(problem.pg->node(source).kind != machine::PgNodeKind::kOutput,
                "value source cannot be an output node");
    (void)value;
  }

  // Operand values / consumer adjacency restricted to the problem.
  operandValues_.resize(static_cast<std::size_t>(ddg.numNodes()));
  wsConsumers_.resize(static_cast<std::size_t>(ddg.numNodes()));
  for (const DdgNodeId n : problem.workingSet) {
    auto& ops = operandValues_[n.index()];
    for (const auto& operand : ddg.node(n).operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;  // const
      if (operand.src == n) continue;  // self-recurrence: same cluster
      const ValueId v(operand.src.value());
      if (std::find(ops.begin(), ops.end(), v) == ops.end()) {
        ops.push_back(v);
      }
      if (inWs_[operand.src.index()] != 0) {
        auto& cons = wsConsumers_[operand.src.index()];
        if (std::find(cons.begin(), cons.end(), n) == cons.end()) {
          cons.push_back(n);
        }
      } else {
        // Out-of-WS producer: a source (input node) must be registered.
        HCA_REQUIRE(
            problem.valueSources.count(v) != 0,
            "operand value " << to_string(v)
                             << " has no registered source (missing ILI?)");
      }
    }
  }
  for (const ValueId v : problem.relayValues) {
    HCA_REQUIRE(problem.valueSources.count(v) != 0,
                "relay value without a source");
    HCA_REQUIRE(valueToOutput_.count(v) != 0,
                "relay value without an output wire");
  }

  heights_ = ddg.heights(problem.latency);

  // Critical-path adjacency for the incremental objective: every
  // intra-iteration WS->WS dependence, keyed by (working-set position of
  // the consumer, operand position) so the delta evaluator can sum penalty
  // terms in exactly the order CriticalPathCriterion's full scan visits
  // them. Self-references are skipped — equal clusters never pay.
  wsIndexOf_.assign(static_cast<std::size_t>(ddg.numNodes()), -1);
  for (std::size_t i = 0; i < problem.workingSet.size(); ++i) {
    wsIndexOf_[problem.workingSet[i].index()] = static_cast<std::int32_t>(i);
  }
  maxWsHeight_ = 1;
  for (const DdgNodeId n : problem.workingSet) {
    maxWsHeight_ = std::max(maxWsHeight_, heights_[n.index()]);
  }
  critOperands_.resize(static_cast<std::size_t>(ddg.numNodes()));
  critUses_.resize(static_cast<std::size_t>(ddg.numNodes()));
  for (const DdgNodeId n : problem.workingSet) {
    const auto& operands = ddg.node(n).operands;
    for (std::size_t j = 0; j < operands.size(); ++j) {
      const auto& operand = operands[j];
      if (operand.distance != 0) continue;
      if (operand.src == n) continue;
      if (wsIndexOf_[operand.src.index()] < 0) continue;
      critOperands_[n.index()].push_back(
          CritOperand{static_cast<std::int32_t>(j), operand.src});
      critUses_[operand.src.index()].push_back(
          CritUse{n, static_cast<std::int32_t>(j)});
    }
  }

  // Priority list (union-find over two kinds of cohesion):
  //  * mandatory unions — items whose values leave on one output wire must
  //    share a cluster (outNode_MaxIn, Fig. 10), so their placement is one
  //    combined move, decided first while the wire budget is free;
  //  * affinity unions — single-consumer dependence chains are kept
  //    together (the paper's SEE "picks a new DDG node (or a set of
  //    nodes)"), capped so a chain still fits a cluster at the target II.
  // Remaining items follow by decreasing height (list-scheduling order).
  const std::size_t numEntities =
      static_cast<std::size_t>(ddg.numNodes()) + problem.relayValues.size();
  std::vector<std::int32_t> parent(numEntities);
  for (std::size_t i = 0; i < numEntities; ++i) {
    parent[i] = static_cast<std::int32_t>(i);
  }
  std::vector<int> groupSize(numEntities, 1);
  std::vector<char> mandatory(numEntities, 0);
  const auto find = [&](std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto unite = [&](std::int32_t a, std::int32_t b, bool isMandatory) {
    a = find(a);
    b = find(b);
    if (a == b) {
      if (isMandatory) mandatory[static_cast<std::size_t>(a)] = 1;
      return;
    }
    parent[static_cast<std::size_t>(b)] = a;
    groupSize[static_cast<std::size_t>(a)] +=
        groupSize[static_cast<std::size_t>(b)];
    mandatory[static_cast<std::size_t>(a)] = static_cast<char>(
        mandatory[static_cast<std::size_t>(a)] != 0 ||
        mandatory[static_cast<std::size_t>(b)] != 0 || isMandatory);
  };
  const auto relayEntity = [&](ValueId v) {
    const auto it = std::find(problem.relayValues.begin(),
                              problem.relayValues.end(), v);
    HCA_CHECK(it != problem.relayValues.end(), "unknown relay value");
    return static_cast<std::int32_t>(
        ddg.numNodes() + (it - problem.relayValues.begin()));
  };

  // Mandatory unions per output wire.
  for (const auto& [out, values] : problem.outputRequirements) {
    (void)out;
    std::int32_t anchor = -1;
    for (const ValueId v : values) {
      const DdgNodeId producer(v.value());
      const std::int32_t entity = inWorkingSet(producer)
                                      ? producer.value()
                                      : relayEntity(v);
      if (anchor == -1) {
        anchor = entity;
        if (values.size() > 1) {
          mandatory[static_cast<std::size_t>(find(entity))] = 1;
        }
      } else {
        unite(anchor, entity, /*isMandatory=*/true);
      }
    }
  }

  // Affinity unions: single-WS-consumer chains, capped.
  if (options.chainGrouping) {
    int minIssue = 1 << 20;
    for (const ClusterId c : clusters_) {
      minIssue =
          std::min(minIssue, problem.pg->node(c).resources.issueSlots());
    }
    int cap = std::max(
        2, options.weights.targetIi * std::max(minIssue, 1) / 2);
    if (options.maxOpsPerUnit > 0) {
      cap = std::min(cap, options.maxOpsPerUnit * std::max(minIssue, 1));
    }
    for (const DdgNodeId n : problem.workingSet) {
      const auto& consumers = wsConsumers_[n.index()];
      if (consumers.size() != 1) continue;
      const std::int32_t a = find(n.value());
      const std::int32_t b = find(consumers[0].value());
      if (a == b) continue;
      if (groupSize[static_cast<std::size_t>(a)] +
              groupSize[static_cast<std::size_t>(b)] >
          cap) {
        continue;
      }
      unite(a, b, /*isMandatory=*/false);
    }
  }

  // Emit groups. Members sorted by height (desc); groups ordered:
  // mandatory first (largest first), then by tallest member.
  //
  // Buckets live in a flat vector indexed through a dense root -> slot
  // lookup (entity ids are small consecutive integers, so the lookup array
  // beats a std::map's node allocations at prepare time). Slots are
  // created in first-touch order and sorted by root afterwards, matching
  // the ascending-key iteration of the map this replaces; the final group
  // comparator is a strict total order (minId ties are impossible across
  // disjoint buckets), so the emitted group order is unchanged.
  struct Bucket {
    std::int32_t root = 0;
    std::vector<Item> members;
    bool isMandatory = false;
    std::int64_t maxHeight = 0;
    std::int32_t minId = 1 << 30;
    bool hasRelay = false;
  };
  std::vector<Bucket> ordered;
  std::vector<std::int32_t> bucketSlot(numEntities, -1);
  const auto bucketFor = [&](std::int32_t root) -> Bucket& {
    std::int32_t& slot = bucketSlot[static_cast<std::size_t>(root)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(ordered.size());
      ordered.emplace_back();
      ordered.back().root = root;
    }
    return ordered[static_cast<std::size_t>(slot)];
  };
  for (const DdgNodeId n : problem.workingSet) {
    Bucket& bucket = bucketFor(find(n.value()));
    Item item;
    item.kind = Item::Kind::kNode;
    item.node = n;
    bucket.members.push_back(item);
    bucket.maxHeight = std::max(bucket.maxHeight, heights_[n.index()]);
    bucket.minId = std::min(bucket.minId, n.value());
  }
  for (std::size_t i = 0; i < problem.relayValues.size(); ++i) {
    Bucket& bucket = bucketFor(find(
        static_cast<std::int32_t>(ddg.numNodes() + i)));
    Item item;
    item.kind = Item::Kind::kRelay;
    item.value = problem.relayValues[i];
    bucket.members.push_back(item);
    bucket.hasRelay = true;
    bucket.minId = std::min(
        bucket.minId, static_cast<std::int32_t>(ddg.numNodes() + i));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Bucket& a, const Bucket& b) { return a.root < b.root; });
  for (auto& bucket : ordered) {
    bucket.isMandatory =
        mandatory[static_cast<std::size_t>(bucket.root)] != 0;
    std::sort(bucket.members.begin(), bucket.members.end(),
              [&](const Item& a, const Item& b) {
                const auto ha = a.kind == Item::Kind::kNode
                                    ? heights_[a.node.index()]
                                    : 0;
                const auto hb = b.kind == Item::Kind::kNode
                                    ? heights_[b.node.index()]
                                    : 0;
                if (ha != hb) return ha > hb;
                const auto ia = a.kind == Item::Kind::kNode
                                    ? a.node.value()
                                    : a.value.value() + (1 << 20);
                const auto ib = b.kind == Item::Kind::kNode
                                    ? b.node.value()
                                    : b.value.value() + (1 << 20);
                return ia < ib;
              });
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Bucket& a, const Bucket& b) {
              if (a.isMandatory != b.isMandatory) return a.isMandatory;
              if (a.isMandatory) {
                if (a.members.size() != b.members.size()) {
                  return a.members.size() > b.members.size();
                }
              }
              if (a.hasRelay != b.hasRelay) return a.hasRelay;
              if (a.maxHeight != b.maxHeight) return a.maxHeight > b.maxHeight;
              return a.minId < b.minId;
            });
  for (auto& bucket : ordered) {
    items_.push_back(ItemGroup{std::move(bucket.members)});
  }

  oracle_ = std::make_unique<FeasibilityOracle>(*this);
}

PreparedProblem::~PreparedProblem() = default;

ClusterId PreparedProblem::outputNodeOf(ValueId value) const {
  const auto it = valueToOutput_.find(value);
  return it == valueToOutput_.end() ? ClusterId::invalid() : it->second;
}

ClusterId PreparedProblem::valueSource(ValueId value) const {
  const auto it = problem_->valueSources.find(value);
  return it == problem_->valueSources.end() ? ClusterId::invalid()
                                            : it->second;
}

}  // namespace hca::see
