#include "support/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/str.hpp"

namespace hca {

namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw IoError(strCat(what, " '", path, "': ", std::strerror(errno)));
}

/// Directory part of `path` ("." when there is none) — where the temporary
/// sibling lives and which must be fsynced for the rename to be durable.
std::string dirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  // Some filesystems refuse O_RDONLY on directories; the rename itself is
  // still atomic, only its durability ordering is weakened — not worth
  // failing the write over.
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = strCat(path, ".tmp.", ::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throwErrno("cannot create temporary", tmp);

  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int savedErrno = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = savedErrno;
      throwErrno("cannot write", tmp);
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // fsync before the rename: the rename must never become visible while
  // the file contents are still in flight (that is exactly the torn state
  // this function exists to rule out).
  if (::fsync(fd) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = savedErrno;
    throwErrno("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    const int savedErrno = errno;
    ::unlink(tmp.c_str());
    errno = savedErrno;
    throwErrno("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int savedErrno = errno;
    ::unlink(tmp.c_str());
    errno = savedErrno;
    throwErrno("cannot rename into", path);
  }
  fsyncDir(dirOf(path));
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throwErrno("cannot open", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throwErrno("cannot read", path);
  return buffer.str();
}

bool fileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void removeFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    throwErrno("cannot remove", path);
  }
}

}  // namespace hca
