#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "hca/records.hpp"
#include "hca/subproblem_cache.hpp"
#include "machine/dspfabric.hpp"
#include "machine/reconfig.hpp"
#include "see/engine.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

/// Hierarchical Cluster Assignment (paper Section 4).
///
/// The driver decomposes the ICA problem along the interconnect hierarchy:
/// at each level it runs the Space Exploration Engine on a 4-ish-node
/// Pattern Graph (completed with the boundary input/output nodes derived
/// from the parent's Inter-Level Interfaces), hands the resulting copy flow
/// to the Mapper — which distributes copies over the physical wires and
/// produces the children's ILIs — and recurses until the computation-node
/// level is reached. Pass-through values (created by route allocation at an
/// outer level) travel down as relay values and are parked on a concrete CN.
namespace hca::core {

class CheckpointManager;  // hca/checkpoint.hpp

/// What the driver does when a run cannot produce a legal mapping.
enum class FailurePolicy {
  /// Historical contract: invalid input throws, an unsolvable problem
  /// returns legal=false with only failureReason set.
  kStrict,
  /// Never throw: failures become a structured HcaFailureReport, and two
  /// extra fallback rungs (widened-beam retry, flat ICA on the surviving
  /// resources) are tried before giving up.
  kDegrade,
};

enum class FailureCause {
  kInvalidInput,        ///< the DDG or options failed validation
  kDisconnectedFabric,  ///< the fault set leaves the fabric unusable
  kDeadlineExpired,     ///< the wall-clock budget ran out first
  kNoLegalMapping,      ///< every rung of the ladder was exhausted
  kInternalError,       ///< an invariant violation inside the driver
};

[[nodiscard]] const char* to_string(FailureCause cause);

/// Structured description of a failed kDegrade run: what gave out, where
/// in the problem tree, and which fallback rungs were tried on the way.
struct HcaFailureReport {
  FailureCause cause = FailureCause::kNoLegalMapping;
  /// Interconnect level of the sub-problem that could not be solved
  /// (-1 when the failure is not tied to one sub-problem).
  int level = -1;
  std::vector<int> subproblemPath;
  std::string message;
  /// Human-readable labels of the escalation rungs that ran, in order.
  std::vector<std::string> escalationsTried;

  [[nodiscard]] std::string toString() const;
};

struct HcaOptions {
  HcaOptions() {
    // The hierarchical problems are small (4-node pattern graphs); a
    // wider-than-default beam is cheap and pays off in legality.
    see.beamWidth = 16;
    see.candidateKeep = 10;
  }

  see::SeeOptions see;
  /// Constraint tightening for problems whose children are leaf crossbars:
  /// the in-neighbor budget of each sub-cluster is capped so the wires
  /// funneled into it stay consumable by its CNs (each CN has only
  /// `cnInWires` static selects, and intra-leaf chains consume selects
  /// too). <= 0 disables the tightening and uses the raw MUX capacity.
  int leafParentMaxInNeighbors = 4;
  /// Hierarchical backtracking: when a child sub-problem turns out to be
  /// infeasible, up to this many runner-up assignments from the parent's
  /// final search frontier are tried before the parent itself fails.
  int maxAlternatives = 12;
  /// Global cap on backtracking attempts across the whole problem tree.
  int backtrackBudget = 256;
  /// Outer search loop: like modulo scheduling's II search, the driver
  /// first maps at the loop's iniMII and, when no legal clusterization is
  /// found, re-runs with one more cycle of target slack (which lets the
  /// cost function pack clusters harder and relaxes the wiring), up to
  /// iniMII + targetIiSlack. 0 = single attempt at iniMII.
  int targetIiSlack = 6;
  /// Heuristic profiles tried per target II (chain grouping on/off, beam
  /// variants). 1 = only the configured SeeOptions.
  int searchProfiles = 5;
  /// Last-resort fallback: when no legal clusterization is found, re-run
  /// against a bandwidth-degraded copy of the machine (N=M=K=2). Tighter
  /// budgets force the search into heavily packed, sparsely wired mappings
  /// — and any mapping that fits the degraded wires trivially fits the
  /// real ones. Trades MII for guaranteed-sound legality.
  bool degradedFallback = true;
  /// Portfolio parallelism of the outer sweep: every (target II, profile)
  /// attempt runs as an independent task on a thread pool of this size.
  /// 0 = hardware_concurrency, 1 = the exact legacy serial sweep. The
  /// returned result is deterministic and identical to the serial sweep's
  /// (the lowest-(target, profile) legal attempt wins; attempts that can no
  /// longer win are soft-cancelled).
  int numThreads = 1;
  /// By default the effective pool size is clamped to
  /// hardware_concurrency: requesting 64 workers on a 4-core box makes the
  /// CPU-bound portfolio strictly slower. Set to true to honor an
  /// oversubscribed `numThreads` verbatim (scheduling experiments).
  bool allowOversubscribe = false;
  /// Memoize SEE sub-problem results across outer attempts and backtracking
  /// alternatives (see subproblem_cache.hpp). Results are byte-identical
  /// with the cache on or off; the cache only saves wall-clock.
  bool enableSubproblemCache = true;
  /// See FailurePolicy. With zero faults, no deadline and a solvable
  /// problem, kDegrade produces byte-identical output to kStrict — the
  /// extra rungs only run after the primary sweep has already failed.
  FailurePolicy failurePolicy = FailurePolicy::kStrict;
  /// Wall-clock budget for the whole run in milliseconds; 0 = unlimited.
  /// On expiry every in-flight SEE search unwinds at its next cancellation
  /// poll and the run returns what it has (a legal result from an earlier
  /// rung, or — under kDegrade — a kDeadlineExpired report).
  int deadlineMs = 0;
  /// Per-attempt cap on SEE frontier expansions, applied on top of every
  /// search profile (see SeeOptions::maxBeamSteps); 0 = unlimited.
  int maxBeamSteps = 0;
  /// Span tracer for this run (see support/trace.hpp): one span per outer
  /// attempt / fallback rung / sub-problem / SEE invocation / mapper pass,
  /// nested like the problem tree. Not owned; must outlive the run.
  /// nullptr = tracing off — unless HCA_TRACE_FORCE is set in the
  /// environment, in which case the process-wide forced tracer is used.
  Tracer* tracer = nullptr;
  /// Run the registered invariant checks (verify/verify.hpp) between
  /// pipeline stages: the per-record checks after every successful mapper
  /// pass, the whole-result checks after every legal attempt. A violation
  /// is a driver bug and throws InternalError (which kDegrade folds into a
  /// kInternalError failure report). The flag propagates into the fallback
  /// rungs, so degraded-bandwidth and flat-ICA results are verified too.
  bool verifyEach = false;
  /// Restricts verifyEach to these check ids (empty = every registered
  /// check). Unknown ids throw InvalidArgumentError at the first use.
  std::vector<std::string> verifyChecks;
  /// Crash-safe checkpoint/resume (hca/checkpoint.hpp). When non-null, the
  /// sweeps record every completed failed outer attempt (plus the
  /// sub-problem cache) into this manager and skip attempts it restored
  /// from a previous run's file — the resumed run's result and HcaStats
  /// are byte-identical to an uninterrupted run. Not owned; must outlive
  /// the run.
  CheckpointManager* checkpoint = nullptr;
  /// External cancellation (SIGINT/SIGTERM, a batch driver's shutdown).
  /// Chained underneath the run's deadline token, so tripping it unwinds
  /// the search exactly like a deadline expiry: every in-flight SEE search
  /// stops at its next poll and the run returns best-so-far. Not owned;
  /// may be null. Deliberately excluded from the checkpoint fingerprint —
  /// it never changes results, only when the run stops.
  const CancellationToken* externalCancel = nullptr;
  /// Soft memory ceiling for the run in bytes; 0 = unlimited. Half the
  /// budget bounds the sub-problem cache (oldest entries are shed, trading
  /// hit rate for footprint), half becomes each SEE solve's
  /// SeeOptions::arenaBudgetBytes — an attempt that would blow it reports
  /// "memory budget exceeded" and the escalation ladder re-plans (the
  /// degraded-bandwidth rung shrinks per-problem state) instead of the
  /// process OOMing. Deterministic: the ceiling never depends on thread
  /// count or wall-clock, so serial/parallel parity is preserved.
  std::int64_t memoryBudgetBytes = 0;
  /// Checkpoint phase prefix ("" for the root ladder). Internal: set by
  /// the degraded-bandwidth rung on its nested driver so the two ladders'
  /// attempt indices and cache snapshots never collide in the checkpoint
  /// file. Leave empty.
  std::string checkpointScope;
};

struct RelayPlacement {
  ValueId value;
  CnId cn;
};

// HcaStats lives in records.hpp (it is part of the run's audit trail).

struct HcaResult {
  bool legal = false;
  std::string failureReason;

  /// Final placement: DDG node -> computation node (invalid for consts).
  std::vector<CnId> assignment;
  std::vector<RelayPlacement> relays;

  /// Complete reconfiguration stream (all levels).
  machine::ReconfigurationProgram reconfig;

  std::vector<std::unique_ptr<ProblemRecord>> records;
  /// On failure: the description of the sub-problem that could not be
  /// solved (its records entry may have been rolled back by backtracking).
  std::unique_ptr<ProblemRecord> failureRecord;
  HcaStats stats;
  /// Named observability counters and histograms (per-level SEE pressure,
  /// cache traffic, mapper distributions, pool latencies, ladder activity);
  /// aggregated across every attempt of the run exactly like `stats`. See
  /// DESIGN.md section 4e for the name catalogue. Serialized by
  /// `runReportJson()` (hca/report.hpp) and printed by `hcac --stats`.
  MetricsRegistry metrics;

  /// Which ladder rung produced the result: empty (primary sweep),
  /// "beam-backoff", "degraded-bandwidth" or "flat-ica".
  std::string fallbackUsed;
  /// kDegrade only: set iff !legal — the structured failure description.
  std::unique_ptr<HcaFailureReport> failure;
};

class HcaDriver {
 public:
  HcaDriver(machine::DspFabricModel model, HcaOptions options = {});

  [[nodiscard]] HcaResult run(const ddg::Ddg& ddg) const;

  [[nodiscard]] const machine::DspFabricModel& model() const { return model_; }

 private:
  struct Boundary {
    std::vector<mapper::WireValues> inputs;
    std::vector<mapper::WireValues> outputs;
  };

  /// Pre-resolved handles into one attempt's `MetricsRegistry` for one
  /// hierarchy level: `std::map` node addresses are stable, so resolving
  /// the `.L<level>` names once per attempt keeps the per-sub-problem
  /// instrumentation down to raw pointer bumps (no string building or map
  /// lookups on the solve hot path).
  struct LevelMetrics {
    std::int64_t* cacheHits;
    std::int64_t* cacheMisses;
    std::int64_t* seeProblems;
    std::int64_t* seeExpansions;
    std::int64_t* seePruned;
    std::int64_t* seeCandidates;
    std::int64_t* seeCandidateRejections;
    std::int64_t* seeRouteInvocations;
    std::int64_t* seeRouteFailures;
    std::int64_t* seeRoutedOperands;
    std::int64_t* seeCopiesAvoided;
    std::int64_t* seeSnapshots;
    std::int64_t* seeOracleRejects;
    std::int64_t* seeRouteMemoHits;
    std::int64_t* seeDominancePruned;
    std::int64_t* hcaBacktracks;
    std::int64_t* mapperFailures;
    Histogram* mapperMaxValuesPerWire;
    Histogram* mapperWireUtilization;
    Histogram* mapperCopiesPerIli;
  };

  /// Per-attempt execution context threaded through the recursion: the
  /// attempt's SEE options, the run-wide sub-problem cache (may be null),
  /// the portfolio's soft-cancellation token (may be null), the run's
  /// span tracer (may be null = tracing off) and the attempt's per-level
  /// metric handles (indexed by hierarchy level).
  struct SolveContext {
    const see::SeeOptions& seeOptions;
    SubproblemCache* cache = nullptr;
    const CancellationToken* cancel = nullptr;
    Tracer* tracer = nullptr;
    const std::vector<LevelMetrics>* levels = nullptr;
  };

  /// SEE options of one (target II, heuristic profile) outer attempt.
  [[nodiscard]] see::SeeOptions profileOptions(int target, int profile) const;

  /// Folds `memoryBudgetBytes` (when set) into a profile's SEE options:
  /// half the run budget becomes the per-solve arena ceiling.
  void applyMemoryBudget(see::SeeOptions& see) const;

  /// Runs one complete outer attempt (a full hierarchical solve). On
  /// success the result is validated and its stats finalized.
  [[nodiscard]] HcaResult runAttempt(const ddg::Ddg& ddg,
                                     const std::vector<DdgNodeId>& rootWs,
                                     int target, int profile,
                                     SubproblemCache* cache,
                                     const CancellationToken* cancel) const;

  /// The legacy serial sweep: attempts in (target asc, profile asc) order,
  /// first legal result wins. `deadline` (may be null) aborts the sweep
  /// between and inside attempts. `phase` is this sweep's checkpoint label
  /// and `cacheScope` the ladder scope owning `cache` (both ignored when
  /// no checkpoint manager is configured).
  [[nodiscard]] HcaResult runSerialSweep(const ddg::Ddg& ddg,
                                         const std::vector<DdgNodeId>& rootWs,
                                         int iniMii, SubproblemCache* cache,
                                         const CancellationToken* deadline,
                                         const std::string& phase,
                                         const std::string& cacheScope) const;

  /// The parallel portfolio: every attempt is a pool task; a shared
  /// best-so-far index soft-cancels attempts that can no longer win, and
  /// the lowest-index legal attempt is returned — deterministically the
  /// same result as the serial sweep. Per-attempt tokens chain to
  /// `deadline` (may be null). Checkpoint parameters as in runSerialSweep;
  /// attempts are recorded in completion order (the manager's lock
  /// serializes the writes).
  [[nodiscard]] HcaResult runParallelSweep(
      const ddg::Ddg& ddg, const std::vector<DdgNodeId>& rootWs, int iniMii,
      SubproblemCache* cache, int numThreads,
      const CancellationToken* deadline, const std::string& phase,
      const std::string& cacheScope) const;

  /// run() minus the input validation / report wrapping: computes iniMii,
  /// arms the deadline and walks the ladder.
  [[nodiscard]] HcaResult runChecked(const ddg::Ddg& ddg) const;

  /// The escalation ladder: primary sweep, then (kDegrade) a widened-beam
  /// retry, then the degraded-bandwidth re-run, then (kDegrade) flat ICA
  /// on the surviving resources. Returns the first legal result, or the
  /// primary failure annotated with a report under kDegrade.
  [[nodiscard]] HcaResult runLadder(const ddg::Ddg& ddg,
                                    const std::vector<DdgNodeId>& rootWs,
                                    int iniMii,
                                    const CancellationToken* deadline) const;

  /// Solves the sub-problem at `path`; returns false (and fills
  /// result.failureReason) on the first illegality.
  bool solve(const ddg::Ddg& ddg, const std::vector<int>& path,
             std::vector<DdgNodeId> workingSet,
             std::vector<ValueId> relayValues, const Boundary& boundary,
             const SolveContext& ctx, HcaResult& result) const;

  machine::DspFabricModel model_;
  HcaOptions options_;
  /// Resolved at construction: options_.tracer, or the HCA_TRACE_FORCE
  /// process tracer, or nullptr (tracing off).
  Tracer* tracer_ = nullptr;
};

}  // namespace hca::core
