#pragma once

#include <optional>
#include <vector>

#include "see/partial_solution.hpp"
#include "see/prepared.hpp"

/// The paper's configurable `no candidates action` (Section 3, Fig. 6):
/// when no cluster can take the current item directly — every candidate is
/// blocked by exhausted communication patterns — the Route Allocator tries
/// to assign the item anyway by routing the unreachable copies through
/// intermediate clusters. A relay cluster receives the value (one receive
/// slot of pressure) and re-sends it, consuming arc budget on both hops.
namespace hca::see {

class RouteAllocator {
 public:
  /// Attempts to place `item` on `cluster`, inserting relays for every
  /// operand source that cannot reach `cluster` directly (and, for values
  /// bound to an occupied output wire, routing the value to the wire's
  /// single feeder). Returns the extended solution, or nullopt when no
  /// routing exists within `options().maxRouteHops` relays per operand.
  [[nodiscard]] static std::optional<PartialSolution> tryAssign(
      const PreparedProblem& prepared, const PartialSolution& base,
      const Item& item, ClusterId cluster, int* routedOperands);

  /// Group variant: places every member of the co-location group on
  /// `cluster`, routing as needed; all-or-nothing.
  [[nodiscard]] static std::optional<PartialSolution> tryAssignGroup(
      const PreparedProblem& prepared, const PartialSolution& base,
      const ItemGroup& group, ClusterId cluster, int* routedOperands);

  /// BFS over cluster nodes: shortest relay path src -> dst for `value`,
  /// where every hop respects the in-neighbor budgets in `solution`.
  /// Returns the inclusive node path, empty when unreachable.
  static std::vector<ClusterId> findPath(const PreparedProblem& prepared,
                                         const PartialSolution& solution,
                                         ClusterId src, ClusterId dst,
                                         ValueId value, int maxHops);
};

}  // namespace hca::see
