// Failure-injection and edge-case tests across module boundaries: wrong
// inputs must fail loudly with typed errors, and degenerate-but-valid
// inputs must work.

#include <gtest/gtest.h>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "hca/visualize.hpp"
#include "machine/reconfig.hpp"
#include "mapper/mapper.hpp"
#include "sched/modulo.hpp"
#include "see/engine.hpp"
#include "support/check.hpp"

#include <algorithm>
#include <sstream>

namespace hca {
namespace {

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

// --- malformed inputs fail with typed errors -----------------------------------

TEST(FailureInjectionTest, SeeRejectsNullInputs) {
  see::SeeProblem problem;  // ddg and pg are null
  const see::SpaceExplorationEngine engine;
  EXPECT_THROW(engine.run(problem), InvalidArgumentError);
}

TEST(FailureInjectionTest, SeeRejectsOversizedPatternGraph) {
  machine::PatternGraph pg;
  for (int i = 0; i < 65; ++i) {
    pg.addCluster(machine::ResourceTable(1, 1));
  }
  ddg::Ddg empty;
  see::SeeProblem problem;
  problem.ddg = &empty;
  problem.pg = &pg;
  const see::SpaceExplorationEngine engine;
  EXPECT_THROW(engine.run(problem), InvalidArgumentError);
}

TEST(FailureInjectionTest, SeeRejectsBadOptions) {
  see::SeeOptions bad;
  bad.beamWidth = 0;
  EXPECT_THROW(see::SpaceExplorationEngine{bad}, InvalidArgumentError);
  bad = see::SeeOptions{};
  bad.candidateKeep = -1;
  EXPECT_THROW(see::SpaceExplorationEngine{bad}, InvalidArgumentError);
}

TEST(FailureInjectionTest, MapperRejectsNullAndBadWireCounts) {
  const mapper::Mapper mapperPass;
  mapper::MapperInput input;  // null pg/flow
  EXPECT_THROW(mapperPass.map(input), InvalidArgumentError);

  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable(1, 1));
  machine::CopyFlow flow(pg);
  input.pg = &pg;
  input.flow = &flow;
  input.inWiresPerChild = 0;
  EXPECT_THROW(mapperPass.map(input), InvalidArgumentError);
}

TEST(FailureInjectionTest, DriverRejectsCyclicDdg) {
  // Intra-iteration cycle: validate() must refuse before any search runs.
  ddg::Ddg ddg;
  ddg::DdgNode a;
  a.op = ddg::Op::kNeg;
  a.operands.push_back(ddg::Operand{DdgNodeId(1), 0, 0});
  ddg.addNode(a);
  ddg::DdgNode b;
  b.op = ddg::Op::kNeg;
  b.operands.push_back(ddg::Operand{DdgNodeId(0), 0, 0});
  ddg.addNode(b);
  const core::HcaDriver driver(paperFabric());
  EXPECT_THROW(driver.run(ddg), InvalidArgumentError);
}

TEST(FailureInjectionTest, PostprocessRejectsIllegalResult) {
  const auto model = paperFabric();
  core::HcaResult bogus;  // legal = false
  ddg::DdgBuilder b;
  b.store(b.cst(0), b.cst(1));
  const auto ddg = b.finish();
  EXPECT_THROW(core::buildFinalMapping(ddg, model, bogus),
               InvalidArgumentError);
}

TEST(FailureInjectionTest, SchedulerReportsExhaustedIi) {
  // maxIi = 0 can never schedule anything.
  ddg::DdgBuilder b;
  b.store(b.cst(0), b.cst(1));
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(ddg);
  ASSERT_TRUE(hca.legal);
  const auto mapping = core::buildFinalMapping(ddg, model, hca);
  sched::ModuloOptions options;
  options.maxIi = 0;
  const auto result = sched::moduloSchedule(mapping, model, 1, options);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.failureReason.empty());
}

TEST(FailureInjectionTest, ReconfigDecodeRejectsCorruptDepth) {
  // Depth lane beyond kMaxPathDepth.
  const std::uint64_t corrupt = 63ULL << (5 * 6);
  EXPECT_THROW(machine::decodeMuxSetting(corrupt), InvalidArgumentError);
}

TEST(FailureInjectionTest, CopyFlowBoundsChecked) {
  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable(1, 1));
  pg.addCluster(machine::ResourceTable(1, 1));
  pg.addArc(ClusterId(0), ClusterId(1));
  machine::CopyFlow flow(pg);
  EXPECT_THROW(flow.addCopy(PgArcId(5), ValueId(0)), InvalidArgumentError);
  EXPECT_THROW(flow.copiesOn(PgArcId::invalid()), InvalidArgumentError);
}

// --- degenerate but valid inputs ------------------------------------------------

TEST(EdgeCaseTest, SingleInstructionLoop) {
  ddg::DdgBuilder b;
  auto iv = b.carry(0);
  b.close(iv, b.add(iv, b.cst(1)), 1);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  ASSERT_TRUE(result.legal);
  const auto mii = core::computeMii(ddg, model, result);
  EXPECT_EQ(mii.finalMii, 1);
}

TEST(EdgeCaseTest, DeepCarriedDistance) {
  // Distance 7 through the whole pipeline.
  ddg::DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto old = b.at(next, 7, -1);
  b.store(b.and_(next, b.cst(31)), old, 64);
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  ASSERT_TRUE(result.legal);
  ddg::InterpConfig config;
  config.iterations = 10;
  config.memory.assign(128, 0);
  const auto out = ddg::interpret(ddg, config);
  // Iterations 0..6 store the init (-1), 7.. store iv from 7 back.
  EXPECT_EQ(out.storeTrace[0].value, -1);
  EXPECT_EQ(out.storeTrace[9].value, 3);
}

TEST(EdgeCaseTest, WideIndependentLoop) {
  // 48 completely independent store chains: stresses balance, no copies
  // needed anywhere.
  ddg::DdgBuilder b;
  for (int i = 0; i < 48; ++i) {
    b.store(b.cst(i), b.cst(i * 3));
  }
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;
  const auto mii = core::computeMii(ddg, model, result);
  // 48 stores / 8 DMA slots bounds the II.
  EXPECT_GE(mii.finalMii, 6);
}

TEST(EdgeCaseTest, VisualizationOutputsWellFormedDot) {
  const auto kernel = ddg::buildFir2Dim();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(kernel.ddg);
  ASSERT_TRUE(result.legal);

  std::ostringstream tree;
  core::problemTreeToDot(result, tree);
  const std::string treeText = tree.str();
  EXPECT_NE(treeText.find("digraph"), std::string::npos);
  EXPECT_NE(treeText.find("leaf"), std::string::npos);
  EXPECT_EQ(std::count(treeText.begin(), treeText.end(), '{'), 1);

  std::ostringstream assignment;
  core::assignmentToDot(kernel.ddg, model, result, assignment);
  const auto text = assignment.str();
  EXPECT_NE(text.find("cluster_set"), std::string::npos);
  EXPECT_NE(text.find("cluster_cn"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(EdgeCaseTest, SerializedKernelSurvivesFullPipeline) {
  // Round-trip through text, then clusterize the parsed DDG.
  const auto kernel = ddg::buildIdctHor();
  const auto parsed = ddg::fromText(ddg::toText(kernel.ddg));
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(parsed);
  EXPECT_TRUE(result.legal) << result.failureReason;
}

TEST(EdgeCaseTest, MiiReportOnEmptyLoop) {
  ddg::Ddg empty;
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(empty);
  ASSERT_TRUE(result.legal);
  const auto mii = core::computeMii(empty, model, result);
  EXPECT_EQ(mii.finalMii, 1);
  EXPECT_FALSE(mii.toString().empty());
}

}  // namespace
}  // namespace hca
