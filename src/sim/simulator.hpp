#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ddg/interp.hpp"
#include "mapper/final_mapping.hpp"
#include "machine/dspfabric.hpp"
#include "sched/modulo.hpp"

/// Functional DSPFabric simulator.
///
/// Executes a clusterized + modulo-scheduled kernel the way the fabric
/// would: iteration i issues op n at absolute cycle schedule(n) + i * II,
/// values travel between CNs with the wire transport latency baked into the
/// schedule, and memory requests hit the DMA in global issue order. The
/// simulator is the end-to-end check of the whole tool chain: its memory
/// image after R iterations must equal the reference DDG interpreter's.
namespace hca::sim {

struct SimConfig {
  int iterations = 8;
  std::vector<std::int64_t> memory;
};

struct SimResult {
  std::vector<std::int64_t> memory;
  /// Total cycles to drain the pipeline:
  /// (iterations - 1) * II + schedule length.
  int cycles = 0;
  /// Stores in global time order (diagnostics).
  std::vector<ddg::InterpTraceEntry> storeTrace;
};

/// Runs the schedule. Throws InvalidArgumentError on out-of-bounds memory
/// accesses or an invalid schedule.
SimResult simulate(const mapper::FinalMapping& mapping,
                   const machine::DspFabricModel& model,
                   const sched::Schedule& schedule, const SimConfig& config);

/// Convenience: true when the simulator and the reference interpreter
/// produce identical memory images for the given run.
bool matchesReference(const ddg::Ddg& originalDdg,
                      const mapper::FinalMapping& mapping,
                      const machine::DspFabricModel& model,
                      const sched::Schedule& schedule,
                      const SimConfig& config, std::string* whyNot = nullptr);

}  // namespace hca::sim
