#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

/// Minimal JSON support for the observability layer: a streaming writer
/// (escaping-correct, no intermediate DOM) used by the trace / report /
/// bench exporters, and a small strict parser used by tests and tooling to
/// round-trip what the writer produced. Neither aims to be a general JSON
/// library; both cover exactly RFC 8259 object/array/string/number/bool/
/// null syntax.
namespace hca {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Streaming JSON writer. Keys/values are emitted in call order; the
/// writer tracks nesting and inserts commas, so callers never hand-place
/// separators. Numbers are written via std::ostream (doubles get enough
/// digits to round-trip; NaN/inf — which JSON cannot represent — are
/// emitted as null).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits the key of the next object member.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null();

 private:
  void beforeValue();

  std::ostream& os_;
  /// One entry per open container: the number of elements emitted so far.
  std::vector<int> counts_;
  bool pendingKey_ = false;
};

/// Parsed JSON value (strict parser output).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (the parser rejects duplicate keys).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool isObject() const { return kind == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind == Kind::kArray; }
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& name) const;
};

/// Parses `text` as one JSON document. Returns false (and sets `*error`
/// when non-null) on any syntax violation, including trailing garbage and
/// objects with duplicate keys.
bool parseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace hca
