#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hca/driver.hpp"
#include "hca/postprocess.hpp"

/// Pipeline invariant verifier (the HCA analogue of LLVM's `-verify-each`).
///
/// The end-of-pipeline coherency checker (Section 4.1) can tell you *that*
/// a clusterization is broken but not *which stage* broke it. This module
/// is a registry of named, independently runnable invariant checks with
/// structured diagnostics; with `HcaOptions::verifyEach` (or
/// `hcac --verify-each`) set, the driver runs the per-record checks between
/// every pipeline stage (SEE solve -> mapper -> recursion) and the
/// whole-result checks after every legal attempt, so a corrupted
/// intermediate state is caught at the stage that produced it — the
/// per-constraint verifiability ILP/SAT mappers get from their solvers,
/// recovered for the heuristic pipeline.
///
/// Built-in checks, in pipeline order:
///   ddg-well-formed   input DDG validates (post build/serialize)
///   see-solution      SEE assignment legality per sub-problem record
///   ili-conservation  mapper copy-flow conservation and wire budgets
///   topology          MUX reconfiguration legality (per record and global)
///   fault-survivors   nothing placed on or routed through dead resources
///   recv-placement    post-process recv legality (needs a FinalMapping)
///   coherency         the Section 4.1 checker, registered as the final
///                     check rather than a special case
namespace hca::verify {

/// One invariant violation: which check, where in the problem tree, which
/// entities (value/node/CN/wire ids — check-specific), and a human message.
struct Diagnostic {
  std::string checkId;
  /// Sub-problem path of the violation ([] = whole-result scope).
  std::vector<int> subproblemPath;
  /// Offending entity ids, check-specific (e.g. the value and child index
  /// of a dropped ILI copy). May be empty.
  std::vector<std::int64_t> entities;
  std::string message;

  [[nodiscard]] std::string toString() const;
};

/// Everything a check may inspect. `ddg`, `model` and `result` are always
/// required; `record` non-null restricts per-record checks to that record
/// (the between-stages mode); `mapping` is only consumed by the
/// post-process checks and may be null elsewhere.
struct VerifyInput {
  const ddg::Ddg* ddg = nullptr;
  const machine::DspFabricModel* model = nullptr;
  const core::HcaResult* result = nullptr;
  const core::ProblemRecord* record = nullptr;
  const core::FinalMapping* mapping = nullptr;
};

/// Pipeline stage a check belongs to (ordering and reporting only).
enum class CheckStage { kInput, kSolve, kMap, kResult, kPostProcess };

[[nodiscard]] const char* to_string(CheckStage stage);

struct Check {
  std::string id;
  std::string description;
  CheckStage stage = CheckStage::kResult;
  /// True: the check can run against a single ProblemRecord between
  /// pipeline stages (input.record non-null). Whole-result runs iterate
  /// every record and add the cross-record invariants.
  bool perRecord = false;
  std::function<void(const VerifyInput&, std::vector<Diagnostic>&)> run;
};

/// Ordered collection of named checks. The built-in registry is immutable
/// and process-wide; tests can build private registries with `add()`.
class CheckRegistry {
 public:
  /// The built-in pipeline checks, in stage order (coherency last).
  static const CheckRegistry& builtin();

  CheckRegistry() = default;

  /// Registers a check. Ids must be unique within the registry.
  void add(Check check);

  [[nodiscard]] const std::vector<Check>& checks() const { return checks_; }
  /// nullptr when no check has this id.
  [[nodiscard]] const Check* find(const std::string& id) const;

  /// Runs the selected checks in whole-result scope (`ids` empty = all).
  /// Diagnostics come back in registration order, stamped with their check
  /// id. Throws InvalidArgumentError on an unknown id.
  [[nodiscard]] std::vector<Diagnostic> run(
      const VerifyInput& input,
      const std::vector<std::string>& ids = {}) const;

  /// Runs the selected *per-record* checks against `input.record` (must be
  /// non-null). Checks without per-record support are skipped.
  [[nodiscard]] std::vector<Diagnostic> runRecord(
      const VerifyInput& input,
      const std::vector<std::string>& ids = {}) const;

 private:
  [[nodiscard]] std::vector<const Check*> select(
      const std::vector<std::string>& ids) const;

  std::vector<Check> checks_;
};

/// Parses a comma-separated check list (`--verify=see-solution,coherency`).
/// Throws InvalidArgumentError on an unknown or empty name.
[[nodiscard]] std::vector<std::string> parseCheckList(const std::string& text);

/// One line per diagnostic, `toString()` format.
[[nodiscard]] std::string formatDiagnostics(
    const std::vector<Diagnostic>& diagnostics);

}  // namespace hca::verify
