#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "see/partial_solution.hpp"
#include "see/prepared.hpp"
#include "see/solution_ops.hpp"
#include "support/check.hpp"

/// The paper's configurable `no candidates action` (Section 3, Fig. 6):
/// when no cluster can take the current item directly — every candidate is
/// blocked by exhausted communication patterns — the Route Allocator tries
/// to assign the item anyway by routing the unreachable copies through
/// intermediate clusters. A relay cluster receives the value (one receive
/// slot of pressure) and re-sends it, consuming arc budget on both hops.
///
/// Like the assignment semantics (solution_ops.hpp), the routing logic is
/// templated over the solution representation so the legacy PartialSolution
/// entry points and the delta-based hot path run the same code.
namespace hca::see {

/// BFS over cluster nodes: shortest relay path src -> dst for `value`,
/// where every hop respects the in-neighbor budgets in `solution`.
/// Returns the inclusive node path, empty when unreachable.
template <typename Sol>
std::vector<ClusterId> findPathT(const PreparedProblem& prepared,
                                 const Sol& solution, ClusterId src,
                                 ClusterId dst, ValueId value, int maxHops) {
  const auto& pg = *prepared.problem().pg;
  const int maxPathNodes = maxHops + 2;  // src + relays + dst

  std::vector<ClusterId> parent(static_cast<std::size_t>(pg.numNodes()),
                                ClusterId::invalid());
  std::vector<int> depth(static_cast<std::size_t>(pg.numNodes()), -1);
  depth[src.index()] = 0;
  std::deque<ClusterId> queue{src};
  while (!queue.empty()) {
    const ClusterId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    if (depth[u.index()] + 1 >= maxPathNodes) continue;
    for (const PgArcId a : pg.outArcs(u)) {
      const ClusterId w = pg.arc(a).dst;
      if (depth[w.index()] != -1) continue;
      // Only relay through (alive) cluster nodes; the destination may be
      // anything — canAddCopy refuses dead destinations itself.
      if (w != dst && (pg.node(w).kind != machine::PgNodeKind::kCluster ||
                       pg.node(w).dead)) {
        continue;
      }
      if (!canAddCopyT(prepared, solution, u, w, value)) continue;
      depth[w.index()] = depth[u.index()] + 1;
      parent[w.index()] = u;
      queue.push_back(w);
    }
  }
  if (depth[dst.index()] == -1) return {};
  std::vector<ClusterId> path;
  for (ClusterId v = dst; v.valid(); v = parent[v.index()]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  HCA_CHECK(path.front() == src, "broken BFS parent chain");
  return path;
}

/// Routes the copies `item` needs at `cluster` into `sol`, then assigns.
/// Returns false (leaving `sol` partially modified — callers work on a
/// clone or a discardable delta) when some copy cannot be routed.
template <typename Sol>
bool routeAndAssignT(const PreparedProblem& prepared, Sol& sol,
                     const Item& item, ClusterId cluster,
                     int* routedOperands) {
  const int maxHops = prepared.options().maxRouteHops;

  // Values that must reach `cluster` (operands of a node item; the source
  // value of a relay item).
  std::vector<ValueId> incoming;
  if (item.kind == Item::Kind::kNode) {
    incoming = prepared.operandValues(item.node);
  } else {
    incoming.push_back(item.value);
  }
  for (const ValueId v : incoming) {
    const ClusterId loc = valueLocationT(prepared, sol, v);
    if (!loc.valid() || loc == cluster) continue;
    if (sol.valueDelivered(cluster, v)) continue;
    if (canAddCopyT(prepared, sol, loc, cluster, v)) continue;  // direct ok
    const auto path = findPathT(prepared, sol, loc, cluster, v, maxHops);
    if (path.empty()) return false;
    applyRouteT(prepared, sol, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  // Values produced here that must reach already-assigned consumers or a
  // (possibly already-fed) output wire.
  std::vector<std::pair<ValueId, ClusterId>> outgoing;
  if (item.kind == Item::Kind::kNode) {
    const ValueId produced(item.node.value());
    for (const DdgNodeId consumer : prepared.wsConsumers(item.node)) {
      const ClusterId d = sol.clusterOf(consumer);
      if (d.valid() && d != cluster) outgoing.emplace_back(produced, d);
    }
    const ClusterId out = prepared.outputNodeOf(produced);
    if (out.valid()) outgoing.emplace_back(produced, out);
  } else {
    outgoing.emplace_back(item.value, prepared.outputNodeOf(item.value));
  }
  for (const auto& [v, dst] : outgoing) {
    if (sol.valueDelivered(dst, v)) continue;
    if (canAddCopyT(prepared, sol, cluster, dst, v)) continue;
    const auto path = findPathT(prepared, sol, cluster, dst, v, maxHops);
    if (path.empty()) return false;
    applyRouteT(prepared, sol, v, path);
    if (routedOperands != nullptr) ++*routedOperands;
  }

  if (!canAssignT(prepared, sol, item, cluster)) return false;
  assignT(prepared, sol, item, cluster);
  return true;
}

/// Group variant over any Sol: places every member of the co-location group
/// on `cluster`, routing as needed. All-or-nothing from the caller's
/// perspective: on false, `sol` is partially modified and must be
/// discarded (clone) or rebased (delta).
template <typename Sol>
bool routeAssignGroupT(const PreparedProblem& prepared, Sol& sol,
                       const ItemGroup& group, ClusterId cluster,
                       int* routedOperands) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) {
    return false;
  }
  for (const Item& item : group.members) {
    if (canAssignT(prepared, sol, item, cluster)) {
      assignT(prepared, sol, item, cluster);
      continue;
    }
    if (!routeAndAssignT(prepared, sol, item, cluster, routedOperands)) {
      return false;
    }
  }
  return true;
}

class RouteAllocator {
 public:
  /// Attempts to place `item` on `cluster`, inserting relays for every
  /// operand source that cannot reach `cluster` directly (and, for values
  /// bound to an occupied output wire, routing the value to the wire's
  /// single feeder). Returns the extended solution, or nullopt when no
  /// routing exists within `options().maxRouteHops` relays per operand.
  [[nodiscard]] static std::optional<PartialSolution> tryAssign(
      const PreparedProblem& prepared, const PartialSolution& base,
      const Item& item, ClusterId cluster, int* routedOperands);

  /// Group variant: places every member of the co-location group on
  /// `cluster`, routing as needed; all-or-nothing.
  [[nodiscard]] static std::optional<PartialSolution> tryAssignGroup(
      const PreparedProblem& prepared, const PartialSolution& base,
      const ItemGroup& group, ClusterId cluster, int* routedOperands);

  /// BFS over cluster nodes: shortest relay path src -> dst for `value`,
  /// where every hop respects the in-neighbor budgets in `solution`.
  /// Returns the inclusive node path, empty when unreachable.
  static std::vector<ClusterId> findPath(const PreparedProblem& prepared,
                                         const PartialSolution& solution,
                                         ClusterId src, ClusterId dst,
                                         ValueId value, int maxHops);
};

}  // namespace hca::see
