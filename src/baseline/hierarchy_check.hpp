#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "mapper/problem_record.hpp"
#include "machine/dspfabric.hpp"
#include "machine/reconfig.hpp"
#include "support/ids.hpp"

/// Post-hoc hierarchy feasibility check for *flat* assignments.
///
/// The baselines (flat ICA, multilevel partitioning) produce a plain
/// DDG-node -> CN map without reasoning about the MUX hierarchy. This
/// checker derives, for every sub-problem of the interconnect tree, the
/// copy flow its assignment implies, and runs the Mapper on it level by
/// level (propagating the inter-level interfaces exactly like the HCA
/// driver). The assignment is hierarchy-legal iff every Mapper call
/// succeeds — i.e. the reconfigurable wires can actually carry the copies.
namespace hca::baseline {

struct HierarchyCheckResult {
  bool legal = false;
  std::string failureReason;
  /// Largest number of values time-sharing one wire across all levels.
  int maxWirePressure = 0;
  /// Total inter-cluster copies over all levels (arc/value pairs).
  int totalCopies = 0;
  int problemsChecked = 0;
};

/// Optional materialization of the per-level artifacts the check derives:
/// one ProblemRecord per sub-problem (in the same shape the HCA driver
/// records) plus the concatenated reconfiguration stream. This is how the
/// driver's flat-ICA fallback turns a flat assignment into a full,
/// coherency-checkable HcaResult.
struct HierarchyCollect {
  std::vector<std::unique_ptr<mapper::ProblemRecord>> records;
  machine::ReconfigurationProgram reconfig;
};

/// `assignment` maps every instruction node to a CN (consts ignored).
/// The check is fault-aware: on a faulty model the per-level Mapper runs
/// against the surviving wire budgets, so an assignment using dead
/// resources is reported illegal. When `collect` is non-null and the check
/// succeeds, the per-level records and reconfiguration are filled in.
HierarchyCheckResult checkHierarchyFeasibility(
    const ddg::Ddg& ddg, const machine::DspFabricModel& model,
    const std::vector<CnId>& assignment, HierarchyCollect* collect = nullptr);

}  // namespace hca::baseline
