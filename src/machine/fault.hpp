#pragma once

#include <string>
#include <vector>

#include "support/ids.hpp"

/// Hardware fault model for the DSPFabric (robustness layer).
///
/// A coarse-grain reconfigurable fabric is attractive partly because a
/// partially defective die can still be shipped: a mapping tool that can
/// route *around* dead resources rescues yield. A `FaultSet` describes which
/// resources of a concrete fabric instance are unusable:
///
///  - dead computation nodes (a whole cluster disappears from the resource
///    pool; its ancestors shrink accordingly),
///  - dead MUX wires (one input or output wire of a specific child at a
///    specific sub-problem of the interconnect tree — the MUX capacity seen
///    by the mapper drops by one per dead wire),
///  - dead ILI lanes (one of the K crossbar lanes feeding a leaf cluster —
///    the inter-level-interface bandwidth into that leaf shrinks).
///
/// The set is purely descriptive; `DspFabricModel` consumes it and exposes
/// fault-aware pattern graphs, wire budgets and viability checks so that
/// faulty resources never appear as SEE candidates or Mapper routes.
namespace hca::machine {

/// One dead MUX wire: input (or output) wire of child `child` of the
/// sub-problem addressed by `problemPath` (empty = root problem). Listing
/// the same wire position several times kills several wires of that MUX.
struct DeadWire {
  std::vector<int> problemPath;
  int child = 0;
  bool input = true;

  friend bool operator==(const DeadWire&, const DeadWire&) = default;
};

/// One dead crossbar lane into the leaf problem at `leafPath` (one child
/// index per non-leaf level). Each occurrence removes one of the K wires
/// the leaf crossbar accepts from the level above.
struct DeadLane {
  std::vector<int> leafPath;

  friend bool operator==(const DeadLane&, const DeadLane&) = default;
};

struct FaultSet {
  std::vector<CnId> deadCns;
  std::vector<DeadWire> deadWires;
  std::vector<DeadLane> deadLanes;

  [[nodiscard]] bool empty() const {
    return deadCns.empty() && deadWires.empty() && deadLanes.empty();
  }
  [[nodiscard]] int totalFaults() const {
    return static_cast<int>(deadCns.size() + deadWires.size() +
                            deadLanes.size());
  }

  /// Parses the textual fault list used by `hcac --faults`. Tokens are
  /// separated by commas and/or whitespace:
  ///   cn:<id>            dead computation node (linear id)
  ///   wire:<path>:<dir>  dead MUX wire; <path> is a dot-separated child
  ///                      path whose last element selects the child inside
  ///                      the problem named by the prefix (so `wire:2:out`
  ///                      kills an output wire of root child 2), <dir> is
  ///                      `in` or `out`
  ///   lane:<leafPath>    dead crossbar lane into the leaf at <leafPath>
  /// Repeated tokens accumulate (two `wire:2:out` = two dead wires).
  /// Throws InvalidArgumentError on malformed input; range validation
  /// against a concrete fabric happens in DspFabricModel.
  [[nodiscard]] static FaultSet parse(const std::string& text);

  /// Round-trippable textual form (the `parse` syntax).
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const FaultSet&, const FaultSet&) = default;
};

}  // namespace hca::machine
