#include "see/route_allocator.hpp"

namespace hca::see {

std::vector<ClusterId> RouteAllocator::findPath(
    const PreparedProblem& prepared, const PartialSolution& solution,
    ClusterId src, ClusterId dst, ValueId value, int maxHops,
    RouteScratch* scratch) {
  return findPathT(prepared, solution, src, dst, value, maxHops, scratch);
}

std::optional<PartialSolution> RouteAllocator::tryAssign(
    const PreparedProblem& prepared, const PartialSolution& base,
    const Item& item, ClusterId cluster, int* routedOperands,
    RouteScratch* scratch) {
  const auto& pg = *prepared.problem().pg;
  if (pg.node(cluster).kind != machine::PgNodeKind::kCluster) {
    return std::nullopt;
  }
  PartialSolution sol = base;
  if (!routeAndAssignT(prepared, sol, item, cluster, routedOperands,
                       scratch)) {
    return std::nullopt;
  }
  return sol;
}

std::optional<PartialSolution> RouteAllocator::tryAssignGroup(
    const PreparedProblem& prepared, const PartialSolution& base,
    const ItemGroup& group, ClusterId cluster, int* routedOperands,
    RouteScratch* scratch) {
  PartialSolution sol = base;
  if (!routeAssignGroupT(prepared, sol, group, cluster, routedOperands,
                         scratch)) {
    return std::nullopt;
  }
  return sol;
}

}  // namespace hca::see
