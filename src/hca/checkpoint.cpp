#include "hca/checkpoint.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ddg/serialize.hpp"
#include "see/serialize.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace hca::core {

namespace {

constexpr const char kMagic[] = "HCACHK";
constexpr int kVersion = 1;

[[noreturn]] void fail(CheckpointError::Kind kind, const std::string& message) {
  throw CheckpointError(kind, strCat("checkpoint: ", message));
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// --- binary-key hex transport ----------------------------------------------

std::string hexEncode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string hexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    fail(CheckpointError::Kind::kBadPayload, "odd-length hex cache key");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hexNibble(hex[i]);
    const int lo = hexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      fail(CheckpointError::Kind::kBadPayload, "bad hex in cache key");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

// --- strict payload accessors ----------------------------------------------

const JsonValue& member(const JsonValue& v, const char* name) {
  if (!v.isObject()) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("expected an object around '", name, "'"));
  }
  const JsonValue* m = v.find(name);
  if (m == nullptr) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("missing member '", name, "'"));
  }
  return *m;
}

std::int64_t asInt(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::kNumber || std::floor(v.number) != v.number ||
      std::abs(v.number) > 9007199254740992.0) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("'", what, "' must be an exact integer"));
  }
  return static_cast<std::int64_t>(v.number);
}

int asI32(const JsonValue& v, const char* what) {
  const std::int64_t i = asInt(v, what);
  if (i < INT32_MIN || i > INT32_MAX) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("'", what, "' out of int32 range"));
  }
  return static_cast<int>(i);
}

const std::string& asString(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::kString) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("'", what, "' must be a string"));
  }
  return v.string;
}

const std::vector<JsonValue>& asArray(const JsonValue& v, const char* what) {
  if (!v.isArray()) {
    fail(CheckpointError::Kind::kBadPayload,
         strCat("'", what, "' must be an array"));
  }
  return v.array;
}

// --- HcaStats ---------------------------------------------------------------

// Same field names as the run report (hca/report.cpp), so the two formats
// stay cross-readable by the same tooling.
void writeStats(JsonWriter& json, const HcaStats& s) {
  json.beginObject();
  json.key("problemsSolved").value(s.problemsSolved);
  json.key("backtrackAttempts").value(s.backtrackAttempts);
  json.key("outerAttempts").value(s.outerAttempts);
  json.key("achievedTargetIi").value(s.achievedTargetIi);
  json.key("attemptsCancelled").value(s.attemptsCancelled);
  json.key("statesExplored").value(s.statesExplored);
  json.key("candidatesEvaluated").value(s.candidatesEvaluated);
  json.key("routeInvocations").value(s.routeInvocations);
  json.key("cacheHits").value(s.cacheHits);
  json.key("cacheMisses").value(s.cacheMisses);
  json.key("maxWirePressure").value(s.maxWirePressure);
  json.key("seeCopiesAvoided").value(s.seeCopiesAvoided);
  json.key("seeSnapshotsMaterialized").value(s.seeSnapshotsMaterialized);
  json.key("seeArenaBytesPeak").value(s.seeArenaBytesPeak);
  json.key("seeOracleRejects").value(s.seeOracleRejects);
  json.key("seeRouteMemoHits").value(s.seeRouteMemoHits);
  json.key("seeDominancePruned").value(s.seeDominancePruned);
  json.endObject();
}

HcaStats parseStats(const JsonValue& v) {
  HcaStats s;
  s.problemsSolved = asI32(member(v, "problemsSolved"), "problemsSolved");
  s.backtrackAttempts =
      asI32(member(v, "backtrackAttempts"), "backtrackAttempts");
  s.outerAttempts = asI32(member(v, "outerAttempts"), "outerAttempts");
  s.achievedTargetIi =
      asI32(member(v, "achievedTargetIi"), "achievedTargetIi");
  s.attemptsCancelled =
      asI32(member(v, "attemptsCancelled"), "attemptsCancelled");
  s.statesExplored = asInt(member(v, "statesExplored"), "statesExplored");
  s.candidatesEvaluated =
      asInt(member(v, "candidatesEvaluated"), "candidatesEvaluated");
  s.routeInvocations =
      asInt(member(v, "routeInvocations"), "routeInvocations");
  s.cacheHits = asInt(member(v, "cacheHits"), "cacheHits");
  s.cacheMisses = asInt(member(v, "cacheMisses"), "cacheMisses");
  s.maxWirePressure = asI32(member(v, "maxWirePressure"), "maxWirePressure");
  s.seeCopiesAvoided =
      asInt(member(v, "seeCopiesAvoided"), "seeCopiesAvoided");
  s.seeSnapshotsMaterialized = asInt(member(v, "seeSnapshotsMaterialized"),
                                     "seeSnapshotsMaterialized");
  s.seeArenaBytesPeak =
      asInt(member(v, "seeArenaBytesPeak"), "seeArenaBytesPeak");
  // Counters added after the first checkpoint schema: absent in older
  // files, parsed as 0.
  const auto optInt = [&v](const char* key) {
    const JsonValue* m = v.find(key);
    return m == nullptr ? std::int64_t{0} : asInt(*m, key);
  };
  s.seeOracleRejects = optInt("seeOracleRejects");
  s.seeRouteMemoHits = optInt("seeRouteMemoHits");
  s.seeDominancePruned = optInt("seeDominancePruned");
  return s;
}

std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             monotonicNow().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(CheckpointError::Kind kind) {
  switch (kind) {
    case CheckpointError::Kind::kBadMagic:
      return "bad-magic";
    case CheckpointError::Kind::kBadVersion:
      return "bad-version";
    case CheckpointError::Kind::kTruncated:
      return "truncated";
    case CheckpointError::Kind::kBadChecksum:
      return "bad-checksum";
    case CheckpointError::Kind::kBadPayload:
      return "bad-payload";
    case CheckpointError::Kind::kWrongRun:
      return "wrong-run";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string serializeCheckpoint(const CheckpointData& data) {
  std::ostringstream payload;
  JsonWriter json(payload);
  json.beginObject();
  json.key("fingerprint").value(data.fingerprint);
  json.key("iniMii").value(data.iniMii);
  json.key("attempts").beginArray();
  for (const CheckpointAttempt& a : data.attempts) {
    json.beginObject();
    json.key("phase").value(a.phase);
    json.key("index").value(a.index);
    json.key("target").value(a.target);
    json.key("profile").value(a.profile);
    json.key("failureReason").value(a.failureReason);
    json.key("stats");
    writeStats(json, a.stats);
    json.endObject();
  }
  json.endArray();
  json.key("caches").beginArray();
  for (const auto& [scope, entries] : data.cacheByScope) {
    json.beginObject();
    json.key("scope").value(scope);
    json.key("entries").beginArray();
    for (const auto& [key, result] : entries) {
      json.beginObject();
      json.key("key").value(hexEncode(key));
      json.key("result");
      see::writeSeeResult(json, result);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();
  json.endObject();

  const std::string body = payload.str();
  return strCat(kMagic, " ", kVersion, " ", hex64(fnv1a64(body)), " ",
                body.size(), "\n", body);
}

CheckpointData parseCheckpoint(const std::string& text) {
  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos) {
    fail(CheckpointError::Kind::kBadMagic, "missing header line");
  }
  const std::string header = text.substr(0, eol);
  std::istringstream hs(header);
  std::string magic;
  int version = 0;
  std::string checksumHex;
  std::uint64_t payloadLen = 0;
  if (!(hs >> magic) || magic != kMagic) {
    fail(CheckpointError::Kind::kBadMagic,
         strCat("not a checkpoint file (header '", header, "')"));
  }
  if (!(hs >> version) || !(hs >> checksumHex) || !(hs >> payloadLen)) {
    fail(CheckpointError::Kind::kBadMagic,
         strCat("malformed header '", header, "'"));
  }
  if (version != kVersion) {
    fail(CheckpointError::Kind::kBadVersion,
         strCat("unsupported version ", version, " (expected ", kVersion,
                ")"));
  }
  const std::string body = text.substr(eol + 1);
  if (body.size() != payloadLen) {
    fail(CheckpointError::Kind::kTruncated,
         strCat("payload is ", body.size(), " bytes, header promises ",
                payloadLen));
  }
  if (checksumHex.size() != 16 || hex64(fnv1a64(body)) != checksumHex) {
    fail(CheckpointError::Kind::kBadChecksum,
         "payload does not match the header checksum");
  }

  JsonValue root;
  std::string error;
  if (!parseJson(body, &root, &error)) {
    fail(CheckpointError::Kind::kBadPayload, strCat("bad JSON: ", error));
  }

  // Shape errors from the SEE-result parser arrive as InvalidArgumentError;
  // rewrap so callers see one structured checkpoint error type.
  try {
    CheckpointData data;
    data.fingerprint = asString(member(root, "fingerprint"), "fingerprint");
    data.iniMii = asI32(member(root, "iniMii"), "iniMii");
    for (const JsonValue& a : asArray(member(root, "attempts"), "attempts")) {
      CheckpointAttempt attempt;
      attempt.phase = asString(member(a, "phase"), "attempt.phase");
      attempt.index = asI32(member(a, "index"), "attempt.index");
      attempt.target = asI32(member(a, "target"), "attempt.target");
      attempt.profile = asI32(member(a, "profile"), "attempt.profile");
      attempt.failureReason =
          asString(member(a, "failureReason"), "attempt.failureReason");
      attempt.stats = parseStats(member(a, "stats"));
      data.attempts.push_back(std::move(attempt));
    }
    for (const JsonValue& c : asArray(member(root, "caches"), "caches")) {
      const std::string& scope = asString(member(c, "scope"), "cache.scope");
      auto& entries = data.cacheByScope[scope];
      for (const JsonValue& e :
           asArray(member(c, "entries"), "cache.entries")) {
        entries.emplace_back(
            hexDecode(asString(member(e, "key"), "cache.key")),
            see::parseSeeResult(member(e, "result")));
      }
    }
    return data;
  } catch (const CheckpointError&) {
    throw;
  } catch (const InvalidArgumentError& e) {
    fail(CheckpointError::Kind::kBadPayload, e.what());
  }
}

std::string runFingerprint(const ddg::Ddg& ddg,
                           const machine::DspFabricModel& model,
                           const HcaOptions& o) {
  std::ostringstream id;
  id << ddg::toText(ddg) << '\n'
     << model.config().toString() << '\n'
     << model.faults().toString() << '\n';
  // Doubles go in as bit patterns: the fingerprint must not depend on
  // printer rounding.
  const auto bits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    return hex64(b);
  };
  const see::SeeOptions& s = o.see;
  id << "see:" << s.beamWidth << ',' << s.candidateKeep << ','
     << s.maxOpsPerUnit << ',' << s.enableRouteAllocator << ','
     << s.eagerRouting << ',' << s.retryLadder << ',' << s.maxRouteHops << ','
     << s.maxBeamSteps << ',' << s.arenaBudgetBytes << ',' << s.chainGrouping
     << ',' << s.dominancePruning
     << ',' << bits(s.weights.iiEstimate) << ',' << bits(s.weights.copyCount)
     << ',' << bits(s.weights.loadBalance) << ','
     << bits(s.weights.criticalPath) << ',' << bits(s.weights.wiringSlack)
     << ',' << s.weights.targetIi << '\n';
  // s.legacySearch is excluded (byte-identical to the delta path), and so
  // are the results-invisible driver options (deadline, threads, tracing,
  // verification) — see the header contract.
  id << "hca:" << o.leafParentMaxInNeighbors << ',' << o.maxAlternatives << ','
     << o.backtrackBudget << ',' << o.targetIiSlack << ',' << o.searchProfiles
     << ',' << o.degradedFallback << ',' << o.enableSubproblemCache << ','
     << static_cast<int>(o.failurePolicy) << ',' << o.maxBeamSteps << ','
     << o.memoryBudgetBytes << '\n';
  return hex64(fnv1a64(id.str()));
}

CheckpointManager::CheckpointManager(std::string path, int everyMs)
    : path_(std::move(path)), everyMs_(everyMs) {
  HCA_REQUIRE(!path_.empty(), "checkpoint path must not be empty");
}

bool CheckpointManager::loadForResume() {
  if (!fileExists(path_)) return false;
  CheckpointData data = parseCheckpoint(readFile(path_));
  MutexLock lock(mutex_);
  fingerprint_ = data.fingerprint;
  iniMii_ = data.iniMii;
  for (CheckpointAttempt& attempt : data.attempts) {
    const std::string key = strCat(attempt.phase, "\n", attempt.index);
    // Re-persist restored attempts on the next write: a resumed run's
    // checkpoint must stay a superset of the one it resumed from.
    recorded_.push_back(attempt);
    restored_.emplace(key, std::move(attempt));
  }
  for (auto& [scope, entries] : data.cacheByScope) {
    CacheSnapshot snapshot;
    snapshot.entries.reserve(entries.size());
    for (auto& [key, result] : entries) {
      snapshot.entries.emplace_back(
          key, std::make_shared<const see::SeeResult>(result));
    }
    snapshots_.emplace(scope, std::move(snapshot));
    restoredCaches_.emplace(scope, std::move(entries));
  }
  return true;
}

void CheckpointManager::bindRun(const std::string& fingerprint, int iniMii) {
  MutexLock lock(mutex_);
  if (!restored_.empty() || !restoredCaches_.empty()) {
    if (fingerprint_ != fingerprint) {
      fail(CheckpointError::Kind::kWrongRun,
           strCat("file was written by run ", fingerprint_,
                  ", this run is ", fingerprint,
                  " (different DDG, machine, faults or options)"));
    }
    if (iniMii_ != iniMii) {
      fail(CheckpointError::Kind::kWrongRun,
           strCat("file records iniMII ", iniMii_, ", this run computed ",
                  iniMii));
    }
  }
  fingerprint_ = fingerprint;
  iniMii_ = iniMii;
  bound_ = true;
}

const CheckpointAttempt* CheckpointManager::restoredAttempt(
    const std::string& phase, int index) const {
  MutexLock lock(mutex_);
  const auto it = restored_.find(strCat(phase, "\n", index));
  return it == restored_.end() ? nullptr : &it->second;
}

const std::vector<std::pair<std::string, see::SeeResult>>*
CheckpointManager::restoredCache(const std::string& scope) const {
  MutexLock lock(mutex_);
  const auto it = restoredCaches_.find(scope);
  return it == restoredCaches_.end() ? nullptr : &it->second;
}

void CheckpointManager::noteAttempt(CheckpointAttempt attempt,
                                    const std::string& cacheScope,
                                    const SubproblemCache* cache) {
  int total = 0;
  {
    MutexLock lock(mutex_);
    HCA_CHECK(bound_, "CheckpointManager::noteAttempt before bindRun");
    recorded_.push_back(std::move(attempt));
    if (cache != nullptr) {
      // Snapshot at the attempt boundary (cheap: shared_ptr copies). The
      // snapshot replaces the previous one, so the persisted cache always
      // corresponds to the last recorded attempt.
      CacheSnapshot snapshot;
      cache->forEach([&snapshot](const std::string& key,
                                 const std::shared_ptr<const see::SeeResult>&
                                     result) {
        snapshot.entries.emplace_back(key, result);
      });
      snapshots_[cacheScope] = std::move(snapshot);
    }
    dirty_ = true;
    total = static_cast<int>(recorded_.size());
    const std::int64_t now = nowMs();
    if (everyMs_ <= 0 || lastWriteMs_ < 0 || now - lastWriteMs_ >= everyMs_) {
      writeLocked();
    }
  }
  if (onAttemptRecorded) onAttemptRecorded(total);
}

void CheckpointManager::flush() {
  MutexLock lock(mutex_);
  if (dirty_) writeLocked();
}

int CheckpointManager::attemptsRecorded() const {
  MutexLock lock(mutex_);
  return static_cast<int>(recorded_.size());
}

void CheckpointManager::writeLocked() {
  CheckpointData data;
  data.fingerprint = fingerprint_;
  data.iniMii = iniMii_;
  data.attempts = recorded_;
  for (const auto& [scope, snapshot] : snapshots_) {
    auto& entries = data.cacheByScope[scope];
    entries.reserve(snapshot.entries.size());
    for (const auto& [key, result] : snapshot.entries) {
      entries.emplace_back(key, *result);
    }
  }
  atomicWriteFile(path_, serializeCheckpoint(data));
  lastWriteMs_ = nowMs();
  dirty_ = false;
}

}  // namespace hca::core
