// Fixture: a determinism-clock hit carrying a valid inline suppression on
// the line above. The raw rule sees it; runAllRules must drop it.
#include <chrono>

namespace hca::see {

[[nodiscard]] long long fixtureSuppressed() {
  // hca-lint: clock-ok(fixture: proves inline suppression round-trips)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace hca::see
