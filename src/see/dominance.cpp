#include "see/dominance.hpp"

#include "see/snapshot.hpp"

namespace hca::see {

namespace {

/// True when `a` strictly dominates `b`: componentwise no worse on the
/// objective and every resource residual, strictly better somewhere.
bool dominates(const PreparedProblem& prepared, const DeltaSolution& a,
               const DeltaSolution& b) {
  if (a.objective() > b.objective()) return false;
  if (a.totalCopies() > b.totalCopies()) return false;
  bool strict =
      a.objective() < b.objective() || a.totalCopies() < b.totalCopies();
  const auto& pg = *prepared.problem().pg;
  for (const ClusterId c : prepared.clusters()) {
    if (pg.node(c).dead) continue;
    const auto& ua = a.usage(c);
    const auto& ub = b.usage(c);
    if (ua.instructions > ub.instructions || ua.alu > ub.alu ||
        ua.ag > ub.ag) {
      return false;
    }
    const std::uint64_t ma = a.inNbrMask(c);
    const std::uint64_t mb = b.inNbrMask(c);
    if ((ma & ~mb) != 0) return false;
    if (a.distinctValuesIn(c) > b.distinctValuesIn(c)) return false;
    if (a.distinctValuesOut(c) > b.distinctValuesOut(c)) return false;
    strict = strict || ua.instructions < ub.instructions || ua.alu < ub.alu ||
             ua.ag < ub.ag || ma != mb ||
             a.distinctValuesIn(c) < b.distinctValuesIn(c) ||
             a.distinctValuesOut(c) < b.distinctValuesOut(c);
  }
  return strict;
}

}  // namespace

std::size_t markDominated(const PreparedProblem& prepared,
                          const std::vector<DeltaSolution*>& states,
                          const std::vector<char>& selected,
                          std::vector<char>& dominated) {
  dominated.assign(states.size(), 0);
  std::size_t marked = 0;
  for (std::size_t j = 0; j < states.size(); ++j) {
    if (selected[j] != 0) continue;  // beam survivors are never pruned
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (i == j) continue;
      // Marked states may still dominate others: strict dominance is
      // transitive, so their own dominator dominates `j` too.
      if (dominates(prepared, *states[i], *states[j])) {
        dominated[j] = 1;
        ++marked;
        break;
      }
    }
  }
  return marked;
}

}  // namespace hca::see
