#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/dot.hpp"
#include "support/ids.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"

namespace hca {
namespace {

// --- ids -------------------------------------------------------------------

TEST(IdsTest, DefaultIsInvalid) {
  DdgNodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, DdgNodeId::invalid());
}

TEST(IdsTest, ValueRoundTrip) {
  ClusterId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7);
  EXPECT_EQ(id.index(), 7u);
}

TEST(IdsTest, Ordering) {
  EXPECT_LT(WireId(1), WireId(2));
  EXPECT_GT(WireId(5), WireId(2));
  EXPECT_LE(WireId(2), WireId(2));
  EXPECT_GE(WireId(2), WireId(2));
  EXPECT_NE(WireId(1), WireId(2));
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<DdgNodeId, ClusterId>);
  static_assert(!std::is_same_v<WireId, CnId>);
}

TEST(IdsTest, Hashable) {
  std::unordered_set<ValueId> set;
  set.insert(ValueId(1));
  set.insert(ValueId(2));
  set.insert(ValueId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdsTest, ToString) {
  EXPECT_EQ(to_string(CnId(12)), "12");
  EXPECT_EQ(to_string(CnId::invalid()), "<invalid>");
}

// --- check -----------------------------------------------------------------

TEST(CheckTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(HCA_REQUIRE(false, "message " << 42), InvalidArgumentError);
}

TEST(CheckTest, CheckThrowsInternalError) {
  EXPECT_THROW(HCA_CHECK(false, "broken"), InternalError);
}

TEST(CheckTest, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(HCA_REQUIRE(true, "ok"));
  EXPECT_NO_THROW(HCA_CHECK(1 + 1 == 2, "ok"));
}

TEST(CheckTest, MessageContainsContext) {
  try {
    HCA_REQUIRE(false, "value was " << 7);
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 7"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, ErrorsShareBase) {
  EXPECT_THROW(HCA_REQUIRE(false, ""), Error);
  EXPECT_THROW(HCA_CHECK(false, ""), Error);
}

// --- rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(5);
  const auto first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

// --- stats -----------------------------------------------------------------

TEST(StatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(StatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(StatsTest, SumMatches) {
  RunningStats s;
  double expected = 0;
  for (int i = 1; i <= 10; ++i) {
    s.add(i);
    expected += i;
  }
  EXPECT_DOUBLE_EQ(s.sum(), expected);
}

TEST(StatsTest, MergeEmptyIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_TRUE(std::isnan(a.min()));
  EXPECT_TRUE(std::isnan(a.max()));
}

TEST(StatsTest, MergeEmptyOperandIsNoOp) {
  // The empty side's NaN min()/max() must not propagate into the
  // populated accumulator.
  RunningStats a, empty;
  a.add(3.0);
  a.add(7.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
  EXPECT_FALSE(std::isnan(a.mean()));
}

TEST(StatsTest, MergeIntoEmptyAdoptsOperand) {
  RunningStats a, b;
  b.add(-2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.mean(), 1.0);
}

TEST(StatsTest, MergeMatchesSequentialAdd) {
  // Splitting a sample stream across two accumulators and merging must
  // reproduce the single-accumulator moments (Chan combine).
  const std::vector<double> samples{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats whole, left, right;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.add(samples[i]);
    (i < 3 ? left : right).add(samples[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
}

// --- log -------------------------------------------------------------------

TEST(LogTest, LevelFromString) {
  EXPECT_EQ(logLevelFromString("debug"), LogLevel::kDebug);
  EXPECT_EQ(logLevelFromString("WARN"), LogLevel::kWarn);
  EXPECT_EQ(logLevelFromString("warning"), LogLevel::kWarn);
  EXPECT_EQ(logLevelFromString("off"), LogLevel::kOff);
  EXPECT_EQ(logLevelFromString("0"), LogLevel::kTrace);
  EXPECT_EQ(logLevelFromString("4"), LogLevel::kOff);
  EXPECT_EQ(logLevelFromString("bogus"), std::nullopt);
  EXPECT_EQ(logLevelFromString(""), std::nullopt);
}

TEST(LogTest, FormatLineCarriesTimestampLevelAndThread) {
  const std::string line = Logger::formatLine(LogLevel::kInfo, "hello");
  // `[YYYY-MM-DDTHH:MM:SS.mmmZ hca:INFO t<id>] hello`
  ASSERT_GE(line.size(), 30u);
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[8], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[14], ':');
  EXPECT_EQ(line[17], ':');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
  EXPECT_NE(line.find(" hca:INFO t"), std::string::npos);
  EXPECT_EQ(line.substr(line.size() - 7), "] hello");
}

TEST(LogTest, FormatLineLevels) {
  EXPECT_NE(Logger::formatLine(LogLevel::kTrace, "x").find("hca:TRACE"),
            std::string::npos);
  EXPECT_NE(Logger::formatLine(LogLevel::kWarn, "x").find("hca:WARN"),
            std::string::npos);
}

// --- str -------------------------------------------------------------------

TEST(StrTest, StrCat) {
  EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(strCat(), "");
}

TEST(StrTest, StrJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(strJoin(v, ", "), "1, 2, 3");
  EXPECT_EQ(strJoin(std::vector<int>{}, ","), "");
}

TEST(StrTest, StrSplit) {
  const auto parts = strSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

// --- dot -------------------------------------------------------------------

TEST(DotTest, EmitsWellFormedGraph) {
  std::ostringstream os;
  {
    DotWriter dot(os, "g");
    dot.node("a", "label \"x\"");
    dot.edge("a", "b", "copy");
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(out.find("\\\"x\\\""), std::string::npos);  // quote escaping
  EXPECT_NE(out.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.find("}"), std::string::npos);
}

// --- arena -----------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena(256);
  auto* a = arena.allocateArray<std::uint64_t>(4);
  auto* b = arena.allocateArray<std::uint32_t>(3);
  void* c = arena.allocate(1, 1);
  void* d = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % 8, 0u);
  // Disjoint: writing one block must not disturb another.
  for (int i = 0; i < 4; ++i) a[i] = 0x1111111111111111ULL * (i + 1);
  for (int i = 0; i < 3; ++i) b[i] = 0x22222222U;
  *static_cast<char*>(c) = 'x';
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], 0x1111111111111111ULL * (i + 1));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], 0x22222222U);
}

TEST(ArenaTest, ResetKeepsChunksAndTracksPeak) {
  MonotonicArena arena(1024);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  const auto usedBefore = arena.bytesUsed();
  const auto reservedBefore = arena.bytesReserved();
  EXPECT_GE(usedBefore, 64u * 64u);
  EXPECT_GE(arena.peakBytesUsed(), usedBefore);

  arena.reset();
  EXPECT_EQ(arena.bytesUsed(), 0u);
  EXPECT_EQ(arena.peakBytesUsed(), usedBefore);  // peak survives reset
  EXPECT_EQ(arena.bytesReserved(), reservedBefore);  // chunks kept

  // Steady state: re-filling to the same high-water mark reuses the kept
  // chunks and reserves nothing new.
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytesReserved(), reservedBefore);
  EXPECT_EQ(arena.peakBytesUsed(), usedBefore);
}

TEST(ArenaTest, OversizeRequestsGetDedicatedChunks) {
  MonotonicArena arena(128);
  auto* big = arena.allocateArray<std::byte>(4096);
  ASSERT_NE(big, nullptr);
  big[0] = std::byte{1};
  big[4095] = std::byte{2};
  EXPECT_GE(arena.bytesReserved(), 4096u);
  // Small allocations still work after an oversize one.
  void* small = arena.allocate(16, 8);
  EXPECT_NE(small, nullptr);
}

TEST(ArenaTest, ArenaAllocatorWorksWithStdVector) {
  MonotonicArena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GT(arena.bytesUsed(), 0u);
}

// --- json ------------------------------------------------------------------

TEST(JsonTest, RejectsDuplicateObjectKeys) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parseJson(R"({"a": 1, "b": 2, "a": 3})", &doc, &error));
  EXPECT_NE(error.find("duplicate object key \"a\""), std::string::npos);

  // Nested objects are checked too, but keys in distinct objects may repeat.
  EXPECT_FALSE(parseJson(R"({"o": {"x": 1, "x": 2}})", &doc, &error));
  EXPECT_NE(error.find("duplicate object key \"x\""), std::string::npos);
  EXPECT_TRUE(parseJson(R"({"o": {"x": 1}, "p": {"x": 2}})", &doc, &error))
      << error;
}

}  // namespace
}  // namespace hca
