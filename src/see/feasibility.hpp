#pragma once

#include <cstdint>

#include "see/prepared.hpp"
#include "see/solution_ops.hpp"

/// Feasibility oracle of the SEE beam loop: answers "can this candidate
/// cluster possibly survive the direct-assignment check?" with one AND+test
/// before the engine pays for a DeltaSolution acquire (dense-state memcpy)
/// and a member-by-member canAssignT walk.
///
/// The contract that keeps the search byte-identical: a cluster the oracle
/// rejects must *provably* fail the direct-assignment loop — some member's
/// canAssignT must return false — so skipping it changes no candidate set,
/// no ordering, and (with the engine mirroring the counter increments of
/// the skipped code path) no statistics. The oracle therefore only encodes
/// rejection reasons that are sound against the *parent* frontier snapshot:
///
///  * static facts (dead clusters, missing resource classes, missing arcs,
///    senders with no surviving output wire) — valid in any state;
///  * monotone parent-state facts: in-neighbor masks only gain bits and
///    usage only grows while a group's members are placed, and a value can
///    only become delivered to a cluster through an arc from its (fixed)
///    location — so "budget already exhausted and the source is not an
///    in-neighbor yet" or "the single output-wire feeder is already chosen"
///    remain rejections mid-group (see DESIGN.md §4k for the case analysis).
///
/// Anything whose mid-group evolution could *help* a later member (shared
/// flows, out-neighbor counts of the candidate itself) is deliberately left
/// to canAssignT.
///
/// The oracle also precomputes the static relay-hop distance matrix over
/// the alive pattern graph (budgets ignored — a strict over-approximation
/// of dynamic routability), which lets findPathT refuse provably
/// unreachable (src, dst) pairs without running a BFS.
namespace hca::see {

class FeasibilityOracle {
 public:
  /// Static hop distance marking an unreachable pair.
  static constexpr std::uint8_t kUnreachable = 0xff;

  explicit FeasibilityOracle(const PreparedProblem& prepared);

  /// Alive kCluster nodes — the only clusters any item can ever land on.
  [[nodiscard]] std::uint64_t aliveMask() const { return aliveMask_; }

  /// State-independent feasible-cluster mask of one priority-list group:
  /// alive, resource-class-capable for every node member, and able to feed
  /// every output wire a node member's value must leave on.
  [[nodiscard]] std::uint64_t groupMask(std::size_t groupIndex) const {
    return groupMask_[groupIndex];
  }

  /// Shortest relay path length (in arcs) from `src` to `dst` where every
  /// intermediate node is an alive cluster with a surviving output wire —
  /// the static over-approximation of findPathT's search graph.
  /// kUnreachable when no such path exists at any length.
  ///
  /// The matrix is built lazily on first call: most prepared problems never
  /// invoke the route allocator (route_invocations.L0 is typically zero),
  /// and the numPg² BFS sweep is the most expensive part of oracle
  /// construction. Lazy `mutable` state is safe because a PreparedProblem
  /// and its oracle are private to one solve attempt (one thread).
  [[nodiscard]] std::uint8_t hopDistance(ClusterId src, ClusterId dst) const {
    if (!hopsBuilt_) buildHopMatrix();
    return hop_[static_cast<std::size_t>(src.index()) * numPg_ + dst.index()];
  }

  /// Mask of clusters on which the *direct* (unrouted) assignment of the
  /// whole group might succeed when expanding `state`; every cluster
  /// outside the mask provably fails canAssignT for some member. Sound
  /// only for the direct-candidate loop: a rejected cluster may still be
  /// reachable through the route allocator.
  template <typename Sol>
  [[nodiscard]] std::uint64_t directFeasibleMask(const Sol& state,
                                                 std::size_t groupIndex) const;

 private:
  void buildHopMatrix() const;

  const PreparedProblem* prepared_;
  std::size_t numPg_ = 0;
  std::uint64_t aliveMask_ = 0;
  /// Clusters able to originate a new copy (alive, outWireCap != 0).
  std::uint64_t sendMask_ = 0;
  /// Per resource class (kAlu, kAg): clusters owning at least one unit.
  std::uint64_t rcMask_[ddg::kNumResourceClasses] = {};
  /// Per PG node u: heads of u's out-arcs, zeroed when u is dead or has no
  /// surviving output wire (the static prefix of canAddCopyT).
  std::vector<std::uint64_t> arcOutMask_;
  /// Per PG node w: alive-cluster tails of w's in-arcs that can still send.
  std::vector<std::uint64_t> arcInMask_;
  /// Per group: the static mask documented at groupMask().
  std::vector<std::uint64_t> groupMask_;
  /// Row-major static hop-distance matrix (kUnreachable = no path), built
  /// on first hopDistance() call — see the accessor comment.
  mutable std::vector<std::uint8_t> hop_;
  mutable bool hopsBuilt_ = false;
};

template <typename Sol>
std::uint64_t FeasibilityOracle::directFeasibleMask(
    const Sol& state, std::size_t groupIndex) const {
  const PreparedProblem& prep = *prepared_;
  const auto& pg = *prep.problem().pg;
  const auto& constraints = prep.problem().constraints;
  const auto& options = prep.options();
  const ItemGroup& group = prep.items()[groupIndex];
  std::uint64_t m = groupMask_[groupIndex];
  if (m == 0) return 0;

  // Clusters with a free in-neighbor slot (or no MUX cap) in the parent
  // state. Masks only gain bits mid-group, so "no room and the source is
  // not an in-neighbor yet" stays a rejection for every member. Built
  // lazily: groups with no placed producers/consumers (the early beam
  // steps) never need it.
  std::uint64_t room = 0;
  bool roomBuilt = false;
  const auto ensureRoom = [&] {
    if (roomBuilt) return;
    roomBuilt = true;
    for (const ClusterId c : prep.clusters()) {
      const int cap = detail::effectiveInCap(pg.node(c), constraints);
      if (cap < 0 ||
          __builtin_popcountll(state.inNbrMask(c)) < cap) {
        room |= detail::pgBit(c);
      }
    }
  };

  // Candidate clusters where the copy loc -> candidate required for value
  // `v` could still be added: the location itself, arc-connected receivers
  // with budget room or with loc already among their in-neighbors, and
  // clusters already holding v.
  const auto restrictByCopyFrom = [&](ClusterId loc, ValueId v) {
    ensureRoom();
    const std::uint64_t viaArc = arcOutMask_[loc.index()];
    std::uint64_t keep = detail::pgBit(loc);
    std::uint64_t rest = m & ~keep;
    while (rest != 0) {
      const std::uint64_t bit = rest & (~rest + 1);
      rest ^= bit;
      const ClusterId c(__builtin_ctzll(bit));
      if ((viaArc & bit) != 0 &&
          ((room & bit) != 0 ||
           (state.inNbrMask(c) & detail::pgBit(loc)) != 0)) {
        keep |= bit;
      } else if (state.valueDelivered(c, v)) {
        keep |= bit;
      }
    }
    m &= keep;
  };

  // Candidate clusters that could still send a (not-yet-existing) value to
  // the fixed cluster `d`: d itself, or arc-connected senders while d has
  // budget room / already lists the sender as an in-neighbor.
  const auto restrictByCopyTo = [&](ClusterId d) {
    ensureRoom();
    std::uint64_t allowed = detail::pgBit(d);
    const std::uint64_t senders = sendMask_ & arcInMask_[d.index()];
    if ((room & detail::pgBit(d)) != 0) {
      allowed |= senders;
    } else {
      allowed |= senders & state.inNbrMask(d);
    }
    m &= allowed;
  };

  // A claimed output wire pins the group to its single feeder (the paper's
  // outNode_MaxIn): once some cluster feeds `out`, only that cluster can
  // add further values to the wire.
  const auto restrictByOutputWire = [&](ClusterId out) {
    if (!constraints.outputNodeUnaryFanIn) return;
    const std::uint64_t s = state.inNbrMask(out);
    if (s == 0) return;
    m &= (__builtin_popcountll(s) == 1) ? s : 0;
  };

  bool needAlu = false;
  bool needAg = false;
  for (const Item& item : group.members) {
    if (m == 0) return 0;
    if (item.kind == Item::Kind::kRelay) {
      // Source -> candidate (delivered values short-circuit inside), then
      // candidate -> output wire unless the value already reached it.
      restrictByCopyFrom(prep.valueSource(item.value), item.value);
      const ClusterId out = prep.outputNodeOf(item.value);
      if (!state.valueDelivered(out, item.value)) {
        m &= arcInMask_[out.index()];
        restrictByOutputWire(out);
      }
      continue;
    }
    const DdgNodeId n = item.node;
    const ddg::ResourceClass rc =
        ddg::opResource(prep.problem().ddg->node(n).op);
    needAlu = needAlu || rc == ddg::ResourceClass::kAlu;
    needAg = needAg || rc == ddg::ResourceClass::kAg;
    for (const ValueId v : prep.operandValues(n)) {
      const ClusterId loc = valueLocationT(prep, state, v);
      if (!loc.valid()) continue;  // producer unplaced: no constraint yet
      restrictByCopyFrom(loc, v);
      if (m == 0) return 0;
    }
    const ValueId produced(n.value());
    for (const DdgNodeId consumer : prep.wsConsumers(n)) {
      const ClusterId d = state.clusterOf(consumer);
      if (d.valid()) restrictByCopyTo(d);
    }
    const ClusterId out = prep.outputNodeOf(produced);
    if (out.valid()) restrictByOutputWire(out);
  }

  // Functional-unit exhaustion: usage only grows mid-group, so a cluster
  // already at its cap in the parent state fails the first member needing
  // that unit.
  if (options.maxOpsPerUnit > 0 && m != 0) {
    std::uint64_t rest = m;
    while (rest != 0) {
      const std::uint64_t bit = rest & (~rest + 1);
      rest ^= bit;
      const ClusterId c(__builtin_ctzll(bit));
      const auto& rt = pg.node(c).resources;
      const auto& usage = state.usage(c);
      if (usage.instructions + 1 > rt.issueSlots() * options.maxOpsPerUnit ||
          (needAlu && usage.alu + 1 > rt.alu() * options.maxOpsPerUnit) ||
          (needAg && usage.ag + 1 > rt.ag() * options.maxOpsPerUnit)) {
        m &= ~bit;
      }
    }
  }
  return m;
}

}  // namespace hca::see
