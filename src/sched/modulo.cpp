#include "sched/modulo.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::sched {

int edgeLatency(const mapper::FinalMapping& mapping,
                const machine::DspFabricModel& model, DdgNodeId producer,
                DdgNodeId consumer) {
  const int base = model.config().latency.of(
      mapping.finalDdg.node(producer).op);
  const CnId src = mapping.cnOf[producer.index()];
  const CnId dst = mapping.cnOf[consumer.index()];
  if (!src.valid() || !dst.valid() || src == dst) return base;
  return base + model.copyLatency(src, dst);
}

namespace {

struct ReservationTable {
  int ii;
  int dmaSlots;
  // cnBusy[cycle mod ii] = set of CNs issuing that cycle (bitmask).
  std::vector<std::uint64_t> cnBusy;
  std::vector<int> dmaUsed;

  ReservationTable(int ii_, int dmaSlots_, int numCns)
      : ii(ii_), dmaSlots(dmaSlots_),
        cnBusy(static_cast<std::size_t>(ii_), 0),
        dmaUsed(static_cast<std::size_t>(ii_), 0) {
    HCA_CHECK(numCns <= 64, "reservation table supports up to 64 CNs");
  }

  [[nodiscard]] bool fits(int cycle, CnId cn, bool isMem) const {
    const auto slot = static_cast<std::size_t>(((cycle % ii) + ii) % ii);
    if ((cnBusy[slot] >> cn.index()) & 1) return false;
    if (isMem && dmaUsed[slot] >= dmaSlots) return false;
    return true;
  }
  void reserve(int cycle, CnId cn, bool isMem) {
    const auto slot = static_cast<std::size_t>(((cycle % ii) + ii) % ii);
    cnBusy[slot] |= 1ULL << cn.index();
    if (isMem) ++dmaUsed[slot];
  }
  void release(int cycle, CnId cn, bool isMem) {
    const auto slot = static_cast<std::size_t>(((cycle % ii) + ii) % ii);
    cnBusy[slot] &= ~(1ULL << cn.index());
    if (isMem) --dmaUsed[slot];
  }
  /// Who occupies the CN's slot at this cycle (for eviction).
  [[nodiscard]] bool occupied(int cycle, CnId cn) const {
    const auto slot = static_cast<std::size_t>(((cycle % ii) + ii) % ii);
    return ((cnBusy[slot] >> cn.index()) & 1) != 0;
  }
};

}  // namespace

ModuloResult moduloSchedule(const mapper::FinalMapping& mapping,
                            const machine::DspFabricModel& model, int startIi,
                            const ModuloOptions& options) {
  const auto& ddg = mapping.finalDdg;
  ModuloResult result;

  std::vector<DdgNodeId> ops;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) ops.emplace_back(v);
  }
  if (ops.empty()) {
    result.ok = true;
    result.schedule.ii = std::max(1, startIi);
    result.schedule.cycleOf.assign(
        static_cast<std::size_t>(ddg.numNodes()), -1);
    return result;
  }

  // Priority: height under the transport-aware latencies.
  const auto heights = ddg.heights(model.config().latency);
  std::vector<DdgNodeId> priority = ops;
  std::sort(priority.begin(), priority.end(),
            [&](DdgNodeId a, DdgNodeId b) {
              if (heights[a.index()] != heights[b.index()]) {
                return heights[a.index()] > heights[b.index()];
              }
              return a < b;
            });

  // Uses (consumer lists) for dependence checks.
  std::vector<std::vector<std::pair<DdgNodeId, const ddg::Operand*>>> usesOf(
      static_cast<std::size_t>(ddg.numNodes()));
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      usesOf[operand.src.index()].emplace_back(DdgNodeId(v), &operand);
    }
  }

  for (int ii = std::max(1, startIi); ii <= options.maxIi; ++ii) {
    ++result.attemptedIis;
    ReservationTable table(ii, model.config().dmaSlots, model.totalCns());
    std::vector<int> cycle(static_cast<std::size_t>(ddg.numNodes()), -1);
    std::vector<int> lastTried(static_cast<std::size_t>(ddg.numNodes()), -1);

    // Worklist in priority order; evictions re-insert.
    std::vector<DdgNodeId> worklist(priority.rbegin(), priority.rend());
    std::int64_t budget =
        static_cast<std::int64_t>(ops.size()) * options.budgetFactor;
    bool failed = false;

    while (!worklist.empty()) {
      if (budget-- <= 0) {
        failed = true;
        break;
      }
      const DdgNodeId n = worklist.back();
      worklist.pop_back();
      const auto& node = ddg.node(n);
      const CnId cn = mapping.cnOf[n.index()];
      const bool isMem = ddg::isMemoryOp(node.op);

      // Earliest start from scheduled predecessors.
      int est = 0;
      for (const auto& operand : node.operands) {
        if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
        const int tp = cycle[operand.src.index()];
        if (tp < 0) continue;
        est = std::max(est, tp + edgeLatency(mapping, model, operand.src, n) -
                                ii * operand.distance);
      }
      // Never re-try the same slot forever.
      if (lastTried[n.index()] >= 0) {
        est = std::max(est, lastTried[n.index()] + 1);
      }

      int chosen = -1;
      for (int t = est; t < est + ii; ++t) {
        if (table.fits(t, cn, isMem)) {
          chosen = t;
          break;
        }
      }
      if (chosen < 0) {
        // Force placement at est, evicting the CN's occupant (Rau's
        // eviction step keeps the search moving through tight tables).
        chosen = est;
        for (const DdgNodeId other : ops) {
          if (other == n || cycle[other.index()] < 0) continue;
          if (mapping.cnOf[other.index()] != cn) continue;
          if (((cycle[other.index()] % ii) + ii) % ii ==
              ((chosen % ii) + ii) % ii) {
            table.release(cycle[other.index()], cn,
                          ddg::isMemoryOp(ddg.node(other).op));
            cycle[other.index()] = -1;
            worklist.push_back(other);
            ++result.evictions;
          }
        }
        if (!table.fits(chosen, cn, isMem)) {
          // DMA still saturated at this slot: evict one memory op there.
          for (const DdgNodeId other : ops) {
            if (cycle[other.index()] < 0) continue;
            if (!ddg::isMemoryOp(ddg.node(other).op)) continue;
            if (((cycle[other.index()] % ii) + ii) % ii ==
                ((chosen % ii) + ii) % ii) {
              table.release(cycle[other.index()],
                            mapping.cnOf[other.index()], true);
              cycle[other.index()] = -1;
              worklist.push_back(other);
              ++result.evictions;
              break;
            }
          }
        }
        if (!table.fits(chosen, cn, isMem)) {
          failed = true;
          break;
        }
      }
      table.reserve(chosen, cn, isMem);
      cycle[n.index()] = chosen;
      lastTried[n.index()] = chosen;

      // Evict scheduled consumers whose dependence is now violated.
      for (const auto& [consumer, operand] : usesOf[n.index()]) {
        const int tc = cycle[consumer.index()];
        if (tc < 0) continue;
        if (tc < chosen + edgeLatency(mapping, model, n, consumer) -
                     ii * operand->distance) {
          table.release(tc, mapping.cnOf[consumer.index()],
                        ddg::isMemoryOp(ddg.node(consumer).op));
          cycle[consumer.index()] = -1;
          worklist.push_back(consumer);
          ++result.evictions;
        }
      }
    }

    if (failed) continue;
    result.ok = true;
    result.schedule.ii = ii;
    result.schedule.cycleOf = std::move(cycle);
    int length = 0;
    for (const DdgNodeId n : ops) {
      length = std::max(length, result.schedule.cycleOf[n.index()] + 1);
    }
    result.schedule.length = length;
    return result;
  }
  result.failureReason = strCat("no schedule up to II ", options.maxIi);
  return result;
}

std::vector<std::string> validateSchedule(const mapper::FinalMapping& mapping,
                                          const machine::DspFabricModel& model,
                                          const Schedule& schedule) {
  const auto& ddg = mapping.finalDdg;
  std::vector<std::string> violations;
  const int ii = schedule.ii;
  if (ii <= 0) return {"non-positive II"};

  std::map<std::pair<int, std::int32_t>, int> cnSlotUse;
  std::map<int, int> dmaUse;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    const int t = schedule.cycleOf[static_cast<std::size_t>(v)];
    if (t < 0) {
      violations.push_back(strCat("op ", v, " unscheduled"));
      continue;
    }
    const int slot = ((t % ii) + ii) % ii;
    const CnId cn = mapping.cnOf[static_cast<std::size_t>(v)];
    if (++cnSlotUse[{slot, cn.value()}] > 1) {
      violations.push_back(strCat("CN ", cn.value(),
                                  " double-issues at slot ", slot));
    }
    if (ddg::isMemoryOp(node.op) &&
        ++dmaUse[slot] > model.config().dmaSlots) {
      violations.push_back(strCat("DMA over-subscribed at slot ", slot));
    }
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      const int tp = schedule.cycleOf[operand.src.index()];
      const int lat = edgeLatency(mapping, model, operand.src, DdgNodeId(v));
      if (t < tp + lat - ii * operand.distance) {
        violations.push_back(
            strCat("dependence ", operand.src.value(), " -> ", v,
                   " violated: ", t, " < ", tp, " + ", lat, " - ", ii, "*",
                   operand.distance));
      }
    }
  }
  return violations;
}

}  // namespace hca::sched
