#include "mapper/final_mapping.hpp"

namespace hca::mapper {

int FinalMapping::instructionsOn(CnId cn) const {
  int count = 0;
  for (std::int32_t v = 0; v < finalDdg.numNodes(); ++v) {
    if (cnOf[static_cast<std::size_t>(v)] == cn &&
        ddg::isInstruction(finalDdg.node(DdgNodeId(v)).op)) {
      ++count;
    }
  }
  return count;
}

}  // namespace hca::mapper
