#include "hca/visualize.hpp"

#include <map>
#include <ostream>

#include "support/dot.hpp"
#include "support/str.hpp"

namespace hca::core {

void problemTreeToDot(const HcaResult& result, std::ostream& os) {
  DotWriter dot(os, "hca_problem_tree");
  for (const auto& record : result.records) {
    const std::string id = strCat("p", strJoin(record->path, "_"));
    const std::string label = strCat(
        "[", strJoin(record->path, "."), "]\\nlevel ", record->level,
        record->leaf ? " (leaf)" : "", "\\nws=", record->workingSet.size(),
        " relays=", record->relayValues.size(),
        "\\nwirePressure=", record->mapResult.maxValuesPerWire);
    dot.node(id, label, record->leaf ? "style=filled, fillcolor=lightgrey"
                                     : "");
    if (!record->path.empty()) {
      auto parentPath = record->path;
      parentPath.pop_back();
      dot.edge(strCat("p", strJoin(parentPath, "_")), id);
    }
  }
}

void assignmentToDot(const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     const HcaResult& result, std::ostream& os) {
  os << "digraph \"hca_assignment\" {\n";
  os << "  node [shape=box, fontname=\"Helvetica\"];\n";
  os << "  compound=true;\n";

  // Group nodes per CN, CNs per level-0 set.
  std::map<int, std::map<int, std::vector<std::int32_t>>> bySetAndCn;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (!ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) continue;
    const CnId cn = result.assignment[static_cast<std::size_t>(v)];
    const int set = model.pathOfCn(cn)[0];
    bySetAndCn[set][cn.value()].push_back(v);
  }
  for (const auto& [set, cns] : bySetAndCn) {
    os << "  subgraph cluster_set" << set << " {\n";
    os << "    label=\"set " << set << "\";\n";
    for (const auto& [cn, nodes] : cns) {
      os << "    subgraph cluster_cn" << cn << " {\n";
      os << "      label=\"CN " << cn << "\"; style=filled; "
            "fillcolor=\"#eeeeee\";\n";
      for (const std::int32_t v : nodes) {
        const auto& node = ddg.node(DdgNodeId(v));
        os << "      n" << v << " [label="
           << DotWriter::quote(strCat("#", v, " ", opName(node.op)))
           << "];\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      const bool cross = result.assignment[operand.src.index()] !=
                         result.assignment[static_cast<std::size_t>(v)];
      os << "  n" << operand.src.value() << " -> n" << v;
      if (cross) os << " [color=red, penwidth=1.5]";
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace hca::core
