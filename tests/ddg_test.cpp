#include <gtest/gtest.h>

#include <sstream>

#include "ddg/builder.hpp"
#include "ddg/ddg.hpp"
#include "ddg/interp.hpp"
#include "ddg/opcode.hpp"
#include "support/check.hpp"

namespace hca::ddg {
namespace {

// --- opcode ----------------------------------------------------------------

TEST(OpcodeTest, ArityMatchesSemantics) {
  EXPECT_EQ(opArity(Op::kConst), 0);
  EXPECT_EQ(opArity(Op::kAbs), 1);
  EXPECT_EQ(opArity(Op::kAdd), 2);
  EXPECT_EQ(opArity(Op::kMac), 3);
  EXPECT_EQ(opArity(Op::kSelect), 3);
  EXPECT_EQ(opArity(Op::kStore), 2);
  EXPECT_EQ(opArity(Op::kLoad), 1);
}

TEST(OpcodeTest, ResourceClasses) {
  EXPECT_EQ(opResource(Op::kAdd), ResourceClass::kAlu);
  EXPECT_EQ(opResource(Op::kLoad), ResourceClass::kAg);
  EXPECT_EQ(opResource(Op::kStore), ResourceClass::kAg);
  EXPECT_EQ(opResource(Op::kConst), ResourceClass::kNone);
  EXPECT_EQ(opResource(Op::kRecv), ResourceClass::kNone);
}

TEST(OpcodeTest, InstructionPredicate) {
  EXPECT_FALSE(isInstruction(Op::kConst));
  EXPECT_TRUE(isInstruction(Op::kAdd));
  EXPECT_TRUE(isInstruction(Op::kRecv));
}

TEST(OpcodeTest, LatencyModelDefaults) {
  const LatencyModel lat;
  EXPECT_EQ(lat.of(Op::kAdd), 1);
  EXPECT_EQ(lat.of(Op::kMul), 2);
  EXPECT_EQ(lat.of(Op::kMac), 3);
  EXPECT_EQ(lat.of(Op::kLoad), 3);
  EXPECT_EQ(lat.of(Op::kConst), 0);
  EXPECT_EQ(lat.of(Op::kRecv), 1);
}

TEST(OpcodeTest, NamesAreUnique) {
  for (int a = 0; a < kNumOps; ++a) {
    for (int b = a + 1; b < kNumOps; ++b) {
      EXPECT_NE(opName(static_cast<Op>(a)), opName(static_cast<Op>(b)));
    }
  }
}

// --- builder ---------------------------------------------------------------

TEST(BuilderTest, SimpleExpression) {
  DdgBuilder b;
  const auto x = b.cst(3);
  const auto y = b.cst(4);
  const auto sum = b.add(x, y);
  const auto addr = b.cst(0);
  b.store(addr, sum);
  const Ddg ddg = b.finish();
  EXPECT_EQ(ddg.numNodes(), 5);
  const auto stats = ddg.stats();
  EXPECT_EQ(stats.numInstructions, 2);  // add + store
  EXPECT_EQ(stats.numConsts, 3);
  EXPECT_EQ(stats.numMemOps, 1);
}

TEST(BuilderTest, UnclosedCarryThrows) {
  DdgBuilder b;
  auto slot = b.carry(0, "iv");
  b.add(slot, b.cst(1));
  EXPECT_THROW(b.finish(), InvalidArgumentError);
}

TEST(BuilderTest, DoubleCloseThrows) {
  DdgBuilder b;
  auto slot = b.carry(0);
  const auto next = b.add(slot, b.cst(1));
  b.close(slot, next, 1);
  EXPECT_THROW(b.close(slot, next, 1), InvalidArgumentError);
}

TEST(BuilderTest, CarriedOperandResolved) {
  DdgBuilder b;
  auto iv = b.carry(7, "iv");
  const auto next = b.add(iv, b.cst(1), "next");
  b.close(iv, next, 1);
  const Ddg ddg = b.finish();
  // The add's first operand must point at itself with distance 1, init 7.
  const auto& add = ddg.node(ddg.usesOf(DdgNodeId(1))[0].consumer);
  (void)add;
  bool found = false;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& n = ddg.node(DdgNodeId(v));
    if (n.op != Op::kAdd) continue;
    ASSERT_EQ(n.operands.size(), 2u);
    EXPECT_EQ(n.operands[0].src, DdgNodeId(v));
    EXPECT_EQ(n.operands[0].distance, 1);
    EXPECT_EQ(n.operands[0].init, 7);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BuilderTest, AtZeroDistanceIsIdentity) {
  DdgBuilder b;
  const auto x = b.cst(5);
  const auto y = b.at(x, 0);
  const auto s = b.add(x, y);
  b.store(b.cst(0), s);
  const Ddg ddg = b.finish();
  // Both operands of the add reference the const directly.
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& n = ddg.node(DdgNodeId(v));
    if (n.op == Op::kAdd) {
      EXPECT_EQ(n.operands[0].src, n.operands[1].src);
      EXPECT_EQ(n.operands[1].distance, 0);
    }
  }
}

TEST(BuilderTest, AtCarriedDistance) {
  DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto lagged = b.at(next, 2, 99);
  b.store(b.cst(0), lagged);
  const Ddg ddg = b.finish();
  bool found = false;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& n = ddg.node(DdgNodeId(v));
    if (n.op == Op::kStore) {
      EXPECT_EQ(n.operands[1].distance, 2);
      EXPECT_EQ(n.operands[1].init, 99);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- validation ------------------------------------------------------------

TEST(ValidateTest, RejectsIntraIterationCycle) {
  Ddg ddg;
  DdgNode a;
  a.op = Op::kNeg;
  a.operands.push_back(Operand{DdgNodeId(1), 0, 0});
  ddg.addNode(a);
  DdgNode b;
  b.op = Op::kNeg;
  b.operands.push_back(Operand{DdgNodeId(0), 0, 0});
  ddg.addNode(b);
  EXPECT_THROW(ddg.validate(), InvalidArgumentError);
}

TEST(ValidateTest, AcceptsCarriedCycle) {
  Ddg ddg;
  DdgNode a;
  a.op = Op::kNeg;
  a.operands.push_back(Operand{DdgNodeId(0), 1, 0});  // self, distance 1
  ddg.addNode(a);
  EXPECT_NO_THROW(ddg.validate());
}

TEST(ValidateTest, RejectsWrongArity) {
  Ddg ddg;
  DdgNode a;
  a.op = Op::kAdd;  // needs 2 operands
  ddg.addNode(a);
  EXPECT_THROW(ddg.validate(), InvalidArgumentError);
}

TEST(ValidateTest, RejectsStoreResultUse) {
  Ddg ddg;
  DdgNode c;
  c.op = Op::kConst;
  const auto cid = ddg.addNode(c);
  DdgNode st;
  st.op = Op::kStore;
  st.operands = {Operand{cid, 0, 0}, Operand{cid, 0, 0}};
  const auto sid = ddg.addNode(st);
  DdgNode use;
  use.op = Op::kNeg;
  use.operands = {Operand{sid, 0, 0}};
  ddg.addNode(use);
  EXPECT_THROW(ddg.validate(), InvalidArgumentError);
}

// --- miiRec / heights ------------------------------------------------------

TEST(MiiRecTest, PointerWrapCycleIsThree) {
  // add -> cmplt -> select -> (d1) -> add : the fir2dim recurrence shape.
  DdgBuilder b;
  auto p = b.carry(0, "p");
  const auto pn = b.add(p, b.cst(3));
  const auto w = b.cmplt(pn, b.cst(100));
  const auto next = b.select(w, pn, b.cst(0));
  b.close(p, next, 1);
  b.store(b.cst(0), pn);
  const Ddg ddg = b.finish();
  EXPECT_EQ(ddg.miiRec(LatencyModel{}), 3);
}

TEST(MiiRecTest, PlainInductionIsOne) {
  DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  b.store(b.cst(0), next);
  EXPECT_EQ(b.finish().miiRec(LatencyModel{}), 1);
}

TEST(MiiRecTest, MacAccumulatorUsesLatency) {
  DdgBuilder b;
  auto acc = b.carry(0);
  const auto next = b.mac(acc, b.cst(2), b.cst(3));
  b.close(acc, next, 1);
  b.store(b.cst(0), next);
  EXPECT_EQ(b.finish().miiRec(LatencyModel{}), 3);  // mac latency
}

TEST(HeightsTest, ChainHeights) {
  DdgBuilder b;
  const auto x = b.cst(1);
  const auto m = b.mul(x, x);    // latency 2
  const auto a = b.add(m, x);    // latency 1
  b.store(b.cst(0), a);
  const Ddg ddg = b.finish();
  const auto h = ddg.heights(LatencyModel{});
  // store is a sink: height 0; add: 1 (its own latency to the store);
  // mul: lat(mul)+lat(add) = 3.
  std::int64_t mulH = -1, addH = -1, storeH = -1;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    switch (ddg.node(DdgNodeId(v)).op) {
      case Op::kMul: mulH = h[static_cast<std::size_t>(v)]; break;
      case Op::kAdd: addH = h[static_cast<std::size_t>(v)]; break;
      case Op::kStore: storeH = h[static_cast<std::size_t>(v)]; break;
      default: break;
    }
  }
  EXPECT_EQ(storeH, 0);
  EXPECT_EQ(addH, 1);
  EXPECT_EQ(mulH, 3);
}

// --- interpreter -----------------------------------------------------------

TEST(InterpTest, AccumulatorSum) {
  // acc += 2 each iteration; store acc to mem[0].
  DdgBuilder b;
  auto acc = b.carry(0, "acc");
  const auto next = b.add(acc, b.cst(2));
  b.close(acc, next, 1);
  b.store(b.cst(0), next);
  const Ddg ddg = b.finish();

  InterpConfig cfg;
  cfg.iterations = 5;
  cfg.memory.assign(4, 0);
  const auto result = interpret(ddg, cfg);
  EXPECT_EQ(result.memory[0], 10);
  ASSERT_EQ(result.storeTrace.size(), 5u);
  EXPECT_EQ(result.storeTrace[0].value, 2);
  EXPECT_EQ(result.storeTrace[4].value, 10);
}

TEST(InterpTest, CarriedInitValueUsedEarly) {
  // Reads a value at distance 2: first two iterations see init = 42.
  DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto lag = b.at(next, 2, 42);
  const auto addr = b.and_(next, b.cst(7));
  b.store(addr, lag);
  const Ddg ddg = b.finish();
  InterpConfig cfg;
  cfg.iterations = 4;
  cfg.memory.assign(8, 0);
  const auto result = interpret(ddg, cfg);
  ASSERT_EQ(result.storeTrace.size(), 4u);
  EXPECT_EQ(result.storeTrace[0].value, 42);  // it 0: init
  EXPECT_EQ(result.storeTrace[1].value, 42);  // it 1: init
  EXPECT_EQ(result.storeTrace[2].value, 1);   // it 2: next(it0) = 1
  EXPECT_EQ(result.storeTrace[3].value, 2);
}

TEST(InterpTest, LoadStoreRoundTrip) {
  // mem[i+4] = mem[i] * 2 for i in 0..3.
  DdgBuilder b;
  auto iv = b.carry(0);
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  const auto x = b.load(iv, 0);
  const auto doubled = b.mul(x, b.cst(2));
  b.store(iv, doubled, 4);
  const Ddg ddg = b.finish();
  InterpConfig cfg;
  cfg.iterations = 4;
  cfg.memory = {1, 2, 3, 4, 0, 0, 0, 0};
  const auto result = interpret(ddg, cfg);
  EXPECT_EQ(result.memory[4], 2);
  EXPECT_EQ(result.memory[5], 4);
  EXPECT_EQ(result.memory[6], 6);
  EXPECT_EQ(result.memory[7], 8);
}

TEST(InterpTest, OutOfBoundsLoadThrows) {
  DdgBuilder b;
  const auto x = b.load(b.cst(100), 0);
  b.store(b.cst(0), x);
  const Ddg ddg = b.finish();
  InterpConfig cfg;
  cfg.iterations = 1;
  cfg.memory.assign(4, 0);
  EXPECT_THROW(interpret(ddg, cfg), InvalidArgumentError);
}

TEST(InterpTest, AllPureOpsEvaluate) {
  DdgBuilder b;
  const auto a = b.cst(-7);
  const auto c = b.cst(3);
  const auto results = std::vector<std::pair<DdgBuilder::Value, std::int64_t>>{
      {b.add(a, c), -4},     {b.sub(a, c), -10},   {b.mul(a, c), -21},
      {b.mac(c, a, c), -18}, {b.neg(a), 7},        {b.abs(a), 7},
      {b.min(a, c), -7},     {b.max(a, c), 3},     {b.shl(c, c), 24},
      {b.shr(b.cst(16), c), 2}, {b.and_(b.cst(6), c), 2},
      {b.or_(b.cst(4), c), 7},  {b.xor_(b.cst(6), c), 5},
      {b.cmplt(a, c), 1},    {b.select(c, a, c), -7},
      {b.clip(a, -2, 2), -2}};
  // Anchor everything with stores so nothing is dead.
  int addr = 0;
  for (const auto& [value, expected] : results) {
    b.store(b.cst(addr++), value);
  }
  const Ddg ddg = b.finish();
  InterpConfig cfg;
  cfg.iterations = 1;
  cfg.memory.assign(32, 0);
  const auto out = interpret(ddg, cfg);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(out.memory[i], results[i].second) << "op #" << i;
  }
}

TEST(InterpTest, ZeroIterationsIsIdentity) {
  DdgBuilder b;
  b.store(b.cst(0), b.cst(9));
  const Ddg ddg = b.finish();
  InterpConfig cfg;
  cfg.iterations = 0;
  cfg.memory = {5};
  const auto out = interpret(ddg, cfg);
  EXPECT_EQ(out.memory[0], 5);
  EXPECT_TRUE(out.storeTrace.empty());
}

// --- dot / uses ------------------------------------------------------------

TEST(DdgDotTest, ProducesGraph) {
  DdgBuilder b;
  const auto x = b.load(b.cst(0), 0, "x");
  b.store(b.cst(1), x);
  const Ddg ddg = b.finish();
  std::ostringstream os;
  ddg.toDot(os, "test");
  const auto out = os.str();
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("load"), std::string::npos);
}

TEST(DdgUsesTest, FindsAllUses) {
  DdgBuilder b;
  const auto x = b.cst(1);
  const auto s = b.add(x, x);
  b.store(b.cst(0), s);
  const Ddg ddg = b.finish();
  const auto uses = ddg.usesOf(b.idOf(x));
  EXPECT_EQ(uses.size(), 2u);  // both operands of the add
}

}  // namespace
}  // namespace hca::ddg
