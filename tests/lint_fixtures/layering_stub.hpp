// Fixture helper: the include target of bad_layering.cpp. The test maps it
// to src/hca/layering_stub.hpp; the file itself is clean.
#pragma once

namespace hca::core {

[[nodiscard]] inline int fixtureStubValue() { return 42; }

}  // namespace hca::core
