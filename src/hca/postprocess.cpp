#include "hca/postprocess.hpp"

#include <map>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::core {

FinalMapping buildFinalMapping(const ddg::Ddg& ddg,
                               const machine::DspFabricModel& model,
                               const HcaResult& result) {
  HCA_REQUIRE(result.legal, "buildFinalMapping on an illegal HCA result");
  (void)model;

  FinalMapping mapping;
  mapping.numOriginalNodes = ddg.numNodes();
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    mapping.finalDdg.addNode(ddg.node(DdgNodeId(v)));
    mapping.cnOf.push_back(result.assignment[static_cast<std::size_t>(v)]);
  }

  // One recv per (value, receiving CN).
  std::map<std::pair<ValueId, CnId>, DdgNodeId> recvFor;
  const auto makeRecv = [&](ValueId value, CnId cn, bool isRelay) {
    const auto key = std::make_pair(value, cn);
    const auto it = recvFor.find(key);
    if (it != recvFor.end()) return it->second;
    ddg::DdgNode recv;
    recv.op = ddg::Op::kRecv;
    recv.operands.push_back(
        ddg::Operand{DdgNodeId(value.value()), 0, 0});
    recv.name = strCat("rcv.v", value.value(), ".cn", cn.value());
    const DdgNodeId id = mapping.finalDdg.addNode(std::move(recv));
    mapping.cnOf.push_back(cn);
    mapping.recvs.push_back(
        FinalMapping::RecvInfo{id, value, cn, isRelay});
    recvFor.emplace(key, id);
    return id;
  };

  // Rewrite cross-CN operands to read the CN-local recv.
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const CnId myCn = result.assignment[static_cast<std::size_t>(v)];
    auto& node = mapping.finalDdg.node(DdgNodeId(v));
    for (auto& operand : node.operands) {
      const auto& producer = ddg.node(operand.src);
      if (!ddg::isInstruction(producer.op)) continue;  // immediates are free
      const CnId srcCn = result.assignment[operand.src.index()];
      if (srcCn == myCn) continue;
      operand.src =
          makeRecv(ValueId(operand.src.value()), myCn, /*isRelay=*/false);
    }
  }

  // Relay placements: receive-and-forward recvs with no local consumer.
  for (const RelayPlacement& relay : result.relays) {
    const DdgNodeId id = makeRecv(relay.value, relay.cn, /*isRelay=*/true);
    // If the recv pre-existed (the relay CN also consumes the value), mark
    // it as a relay too.
    for (auto& info : mapping.recvs) {
      if (info.recvNode == id) info.isRelay = true;
    }
  }

  mapping.finalDdg.validate();
  return mapping;
}

}  // namespace hca::core
