#pragma once

#include <cstdint>
#include <string_view>

/// Operation set and machine latency model of the DDG.
///
/// The operation set is the word-level repertoire a DSPFabric computation
/// node exposes (Section 2.2 of the paper): ALU arithmetic/logic, a
/// load/store pair whose address request is issued by the per-CN Address
/// Generator towards the programmable DMA, and the `recv` primitive that the
/// destination cluster executes to pull an inter-cluster copy out of its
/// input buffer. `kConst` nodes are immediates materialized in the
/// instruction encoding — they are *not* instructions and consume no
/// resources.
namespace hca::ddg {

enum class Op : std::uint8_t {
  kConst,    // immediate literal (imm0 = value); not an instruction
  kAdd,      // a + b
  kSub,      // a - b
  kMul,      // a * b
  kMac,      // acc + a * b (3 operands: acc, a, b)
  kNeg,      // -a
  kAbs,      // |a|
  kMin,      // min(a, b)
  kMax,      // max(a, b)
  kShl,      // a << b (b taken mod 64)
  kShr,      // a >> b, arithmetic
  kAnd,      // a & b
  kOr,       // a | b
  kXor,      // a ^ b
  kCmpLt,    // a < b ? 1 : 0
  kSelect,   // c ? a : b (3 operands: c, a, b)
  kClip,     // clamp(a, imm0, imm1)
  kLoad,     // mem[a + imm0]; AG issues the DMA request
  kStore,    // mem[a + imm0] = b; AG issues the DMA request
  kRecv,     // identity; materialized inter-cluster copy (post-HCA only)
};

inline constexpr int kNumOps = static_cast<int>(Op::kRecv) + 1;

/// Which functional unit of a computation node an operation occupies.
/// Every instruction additionally occupies the CN's single issue slot.
enum class ResourceClass : std::uint8_t {
  kAlu,   // arithmetic / logic unit
  kAg,    // address generator (DMA request)
  kNone,  // no functional unit (recv: issue slot only; const: free)
};

inline constexpr int kNumResourceClasses = 2;  // kAlu, kAg are countable

[[nodiscard]] std::string_view opName(Op op);

/// Number of value operands the op consumes.
[[nodiscard]] int opArity(Op op);

[[nodiscard]] ResourceClass opResource(Op op);

/// True for every op that occupies an issue slot (everything but kConst).
[[nodiscard]] inline bool isInstruction(Op op) { return op != Op::kConst; }

/// True for ops whose AG sends a request to the DMA engine.
[[nodiscard]] inline bool isMemoryOp(Op op) {
  return op == Op::kLoad || op == Op::kStore;
}

/// Per-op result latencies in cycles, i.e. the number of cycles after issue
/// at which a dependent instruction may read the result. The defaults model
/// the DSPFabric CN pipeline used throughout the evaluation and are the
/// latency model under which the four paper kernels reproduce Table 1's
/// MIIRec column (see DESIGN.md §4).
struct LatencyModel {
  int alu = 1;        // add/sub/logic/shift/min/max/abs/cmp/select/clip/neg
  int mul = 2;        // multiply
  int mac = 3;        // multiply-accumulate
  int load = 3;       // DMA round trip as seen by the consumer (FIFO-masked)
  int store = 1;      // request hand-off
  int recv = 1;       // input-buffer read
  int interCluster = 1;  // extra cycles for a copy crossing one wire

  [[nodiscard]] int of(Op op) const;
};

}  // namespace hca::ddg
