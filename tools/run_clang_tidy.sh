#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over the main sources.
#
# Needs a compile_commands.json, which the top-level CMakeLists exports by
# default; pass a build directory as $1 (default: build). Exits 0 with a
# notice when clang-tidy is not installed, so CI images without the LLVM
# toolchain (the GCC-only container included) still pass the lint stage —
# the profile then only gates machines that can actually run it.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-${root}/build}"
shift $(( $# > 0 ? 1 : 0 ))

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "run_clang_tidy: ${tidy} not found; skipping lint (install LLVM to enable)"
  exit 0
fi

if [ ! -f "${build}/compile_commands.json" ]; then
  echo "run_clang_tidy: ${build}/compile_commands.json missing." >&2
  echo "run_clang_tidy: configure first: cmake -B ${build} -S ${root}" >&2
  exit 1
fi

# Main sources only: third-party-free by construction, and the test bodies'
# deliberate corruptions (tests/verify_test.cpp) would trip bugprone checks.
mapfile -t sources < <(cd "${root}" && find src tools examples -name '*.cpp' | sort)

echo "run_clang_tidy: $(${tidy} --version | head -1)"
echo "run_clang_tidy: linting ${#sources[@]} files against ${build}/compile_commands.json"

cd "${root}"
"${tidy}" -p "${build}" --quiet "$@" "${sources[@]}"
echo "run_clang_tidy: clean"
