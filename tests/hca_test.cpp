#include <gtest/gtest.h>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "verify/coherency.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "support/check.hpp"

namespace hca::core {
namespace {

machine::DspFabricModel paperFabric(int n = 8, int m = 8, int k = 8) {
  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  return machine::DspFabricModel(config);
}

/// Runs HCA and asserts a legal, coherent clusterization.
HcaResult runLegal(const ddg::Ddg& ddg, const machine::DspFabricModel& model,
                   HcaOptions options = {}) {
  const HcaDriver driver(model, options);
  auto result = driver.run(ddg);
  EXPECT_TRUE(result.legal) << result.failureReason;
  if (result.legal) {
    const auto violations = checkCoherency(ddg, model, result);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " coherency violations, first: "
        << (violations.empty() ? "" : violations.front().message);
  }
  return result;
}

// --- end-to-end on the paper's kernels (Table 1 machine: N=M=K=8) -----------

class KernelHcaTest : public ::testing::TestWithParam<int> {
 protected:
  ddg::Kernel kernel() const {
    auto kernels = ddg::table1Kernels();
    return std::move(kernels[static_cast<std::size_t>(GetParam())]);
  }
};

// h264deblocking (214 instructions) exceeds what our search heuristics can
// legally wire at N=M=K=8 within test budgets (see EXPERIMENTS.md); the
// end-to-end kernel tests cover the three kernels the pipeline handles.

TEST_P(KernelHcaTest, LegalAndCoherentOnPaperMachine) {
  const auto k = kernel();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  // The successful problem tree: 1 root + 4 sets + 16 subclusters.
  EXPECT_EQ(result.records.size(), 21u);
}

TEST_P(KernelHcaTest, FinalMiiWithinPaperBallpark) {
  // The paper's Table 1 shows final MIIs close to the unified optimum; we
  // check ours stays within 2x of the published number (different
  // heuristics, same qualitative result).
  const auto k = kernel();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  const auto mii = computeMii(k.ddg, model, result);
  EXPECT_EQ(mii.miiRec, k.paper.miiRec);
  EXPECT_EQ(mii.miiRes, k.paper.miiRes);
  EXPECT_GE(mii.finalMii, mii.iniMii);
  EXPECT_LE(mii.finalMii, 2 * k.paper.finalMii + 2)
      << "final MII " << mii.finalMii << " too far above paper's "
      << k.paper.finalMii;
}

TEST_P(KernelHcaTest, FinalMappingValidatesAndPreservesPlacement) {
  const auto k = kernel();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  const auto mapping = buildFinalMapping(k.ddg, model, result);
  EXPECT_NO_THROW(mapping.finalDdg.validate());
  EXPECT_EQ(mapping.numOriginalNodes, k.ddg.numNodes());
  // Originals keep their CN; recvs sit on consumer CNs distinct from the
  // producer's.
  for (std::int32_t v = 0; v < k.ddg.numNodes(); ++v) {
    EXPECT_EQ(mapping.cnOf[static_cast<std::size_t>(v)],
              result.assignment[static_cast<std::size_t>(v)]);
  }
  for (const auto& recv : mapping.recvs) {
    const CnId producerCn = result.assignment[recv.value.index()];
    EXPECT_NE(recv.cn, producerCn);
  }
}

TEST_P(KernelHcaTest, CrossCnOperandsReadLocalRecvs) {
  const auto k = kernel();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  const auto mapping = buildFinalMapping(k.ddg, model, result);
  for (std::int32_t v = 0; v < mapping.finalDdg.numNodes(); ++v) {
    const auto& node = mapping.finalDdg.node(DdgNodeId(v));
    const CnId myCn = mapping.cnOf[static_cast<std::size_t>(v)];
    for (const auto& operand : node.operands) {
      const auto& producer = mapping.finalDdg.node(operand.src);
      if (!ddg::isInstruction(producer.op)) continue;
      if (node.op == ddg::Op::kRecv) continue;  // recvs read remote by design
      EXPECT_EQ(mapping.cnOf[operand.src.index()], myCn)
          << "node " << v << " reads a non-local value without a recv";
    }
  }
}

std::string kernelName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelHcaTest, ::testing::Range(0, 3),
                         kernelName);

TEST(H264HcaTest, LegalViaDegradedBandwidthFallback) {
  // h264deblocking (214 instructions) defeats the direct search at
  // N=M=K=8, but the degraded-bandwidth fallback produces a legal —
  // heavily packed — clusterization whose wiring uses a subset of the
  // real wires (see EXPERIMENTS.md for the MII gap vs the paper).
  auto kernels = ddg::table1Kernels();
  auto k = std::move(kernels[3]);
  const auto model = paperFabric();
  HcaOptions fast;
  fast.targetIiSlack = 0;  // go straight to the fallback in tests
  fast.searchProfiles = 1;
  const HcaDriver driver(model, fast);
  const auto result = driver.run(k.ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;
  const auto mii = computeMii(k.ddg, model, result);
  EXPECT_GE(mii.finalMii, k.paper.finalMii);
  // End-to-end check still holds on the packed mapping.
  const auto mapping = buildFinalMapping(k.ddg, model, result);
  EXPECT_NO_THROW(mapping.finalDdg.validate());
}

// --- decomposition invariants -------------------------------------------------

TEST(DecomposeTest, WorkingSetsPartitionThePaperWay) {
  // WS(DDG_{..i,j}) = { x in DDG_{..i} | assigned to cluster j } — child
  // working sets partition the parent's (Section 4.1).
  const auto k = ddg::buildFir2Dim();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);

  for (const auto& record : result.records) {
    if (record->leaf) continue;
    // Collect children records.
    std::vector<const ProblemRecord*> children;
    for (const auto& other : result.records) {
      if (other->path.size() == record->path.size() + 1 &&
          std::equal(record->path.begin(), record->path.end(),
                     other->path.begin())) {
        children.push_back(other.get());
      }
    }
    ASSERT_EQ(children.size(), 4u);
    std::size_t total = 0;
    for (const auto* child : children) total += child->workingSet.size();
    EXPECT_EQ(total, record->workingSet.size());
    // And each child WS node was assigned to that child at the parent.
    for (const auto* child : children) {
      const int childIdx = child->path.back();
      for (const DdgNodeId n : child->workingSet) {
        const auto it = std::find(record->workingSet.begin(),
                                  record->workingSet.end(), n);
        ASSERT_NE(it, record->workingSet.end());
        const auto pos =
            static_cast<std::size_t>(it - record->workingSet.begin());
        EXPECT_EQ(record->wsChild[pos], childIdx);
      }
    }
  }
}

TEST(DecomposeTest, AssignmentAgreesWithEveryLevel) {
  // The final CN of every instruction must lie under the child it was
  // assigned to at each level of the problem tree.
  const auto k = ddg::buildMpeg2Inter();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  for (const auto& record : result.records) {
    for (std::size_t i = 0; i < record->workingSet.size(); ++i) {
      const CnId cn = result.assignment[record->workingSet[i].index()];
      const auto path = model.pathOfCn(cn);
      EXPECT_EQ(path[record->path.size()], record->wsChild[i]);
    }
  }
}

TEST(DecomposeTest, PaperFigure10OutputWireValuesShareCluster) {
  // Values leaving on one output wire must be fed by a single child
  // (outNode_MaxIn): verify on all non-root records of a real run.
  const auto k = ddg::buildMpeg2Inter();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  int outputNodesSeen = 0;
  for (const auto& record : result.records) {
    for (const ClusterId out : record->pg.outputNodes()) {
      ++outputNodesSeen;
      int feeders = 0;
      for (const PgArcId arc : record->pg.inArcs(out)) {
        if (record->flow.isReal(arc)) ++feeders;
      }
      EXPECT_LE(feeders, 1);
    }
  }
  EXPECT_GT(outputNodesSeen, 0);  // the run actually exercised boundaries
}

TEST(DecomposeTest, InNeighborBudgetHoldsEverywhere) {
  const auto k = ddg::buildIdctHor();
  const auto model = paperFabric(4, 4, 4);
  const HcaDriver driver(model);
  const auto result = driver.run(k.ddg);
  if (!result.legal) GTEST_SKIP() << "tight config may be illegal";
  for (const auto& record : result.records) {
    const auto constraints = model.constraints(record->level);
    for (const ClusterId c : record->pg.clusterNodes()) {
      EXPECT_LE(static_cast<int>(
                    record->flow.realInNeighbors(record->pg, c).size()),
                constraints.maxInNeighbors);
    }
  }
}

// --- bandwidth sensitivity (Section 5 narration) -------------------------------

TEST(BandwidthTest, GenerousBandwidthIsLegalForTableOneKernels) {
  const auto model = paperFabric(8, 8, 8);
  auto kernels = ddg::table1Kernels();
  for (std::size_t i = 0; i < 3; ++i) {  // h264: see H264HcaTest
    const HcaDriver driver(model);
    const auto result = driver.run(kernels[i].ddg);
    EXPECT_TRUE(result.legal)
        << kernels[i].name << ": " << result.failureReason;
  }
}

TEST(BandwidthTest, MiiDegradesMonotonicallyWithBandwidth) {
  // Lower N/M/K must never improve the final MII (Section 5: "lower
  // bandwidths cause a rapid degradation of the clusterization quality").
  const auto k = ddg::buildFir2Dim();
  int miiAt8 = -1, miiAt2 = -1;
  for (const int bw : {8, 2}) {
    const auto model = paperFabric(bw, bw, bw);
    const HcaDriver driver(model);
    const auto result = driver.run(k.ddg);
    if (!result.legal) {
      // Failure at low bandwidth IS the degradation the paper reports.
      EXPECT_LT(bw, 8) << result.failureReason;
      continue;
    }
    const auto mii = computeMii(k.ddg, model, result);
    (bw == 8 ? miiAt8 : miiAt2) = mii.finalMii;
  }
  ASSERT_GT(miiAt8, 0) << "full bandwidth must be legal";
  if (miiAt2 > 0) {
    EXPECT_GE(miiAt2, miiAt8) << "MII improved when bandwidth shrank";
  }
}

// --- coherency checker sensitivity ---------------------------------------------

TEST(CoherencyTest, DetectsTamperedFlow) {
  // Remove a copy from a record: the checker must flag it.
  const auto k = ddg::buildFir2Dim();
  const auto model = paperFabric();
  HcaDriver driver(model);
  auto result = driver.run(k.ddg);
  ASSERT_TRUE(result.legal);
  ASSERT_TRUE(checkCoherency(k.ddg, model, result).empty());

  // Find a record with a real arc and strip its copies.
  bool tampered = false;
  for (auto& record : result.records) {
    for (std::int32_t a = 0; a < record->pg.numArcs() && !tampered; ++a) {
      if (record->flow.isReal(PgArcId(a))) {
        machine::CopyFlow empty(record->pg);
        record->flow = empty;
        tampered = true;
      }
    }
    if (tampered) break;
  }
  ASSERT_TRUE(tampered);
  EXPECT_FALSE(checkCoherency(k.ddg, model, result).empty());
}

TEST(CoherencyTest, DetectsTamperedAssignment) {
  const auto k = ddg::buildIdctHor();
  const auto model = paperFabric();
  HcaDriver driver(model);
  auto result = driver.run(k.ddg);
  ASSERT_TRUE(result.legal);

  // Teleport an instruction that has a consumer other than itself to a far
  // CN without updating any flow: incoherent.
  for (std::int32_t v = 0; v < k.ddg.numNodes(); ++v) {
    if (!ddg::isInstruction(k.ddg.node(DdgNodeId(v)).op)) continue;
    bool hasRealConsumer = false;
    for (const auto& use : k.ddg.usesOf(DdgNodeId(v))) {
      if (use.consumer != DdgNodeId(v)) hasRealConsumer = true;
    }
    if (!hasRealConsumer) continue;
    auto& cn = result.assignment[static_cast<std::size_t>(v)];
    cn = CnId(cn.value() >= 32 ? cn.value() - 32 : cn.value() + 32);
    break;
  }
  EXPECT_FALSE(checkCoherency(k.ddg, model, result).empty());
}

// --- options / edge cases -------------------------------------------------------

TEST(HcaOptionsTest, BeamWidthAffectsSearchEffort) {
  const auto k = ddg::buildMpeg2Inter();
  const auto model = paperFabric();
  HcaOptions narrow;
  narrow.see.beamWidth = 2;
  narrow.see.candidateKeep = 2;
  narrow.targetIiSlack = 2;
  HcaOptions wide;  // defaults: beam 16
  const auto r1 = HcaDriver(model, narrow).run(k.ddg);
  const auto r2 = HcaDriver(model, wide).run(k.ddg);
  ASSERT_TRUE(r2.legal) << r2.failureReason;
  if (r1.legal) {
    // A narrow beam that still succeeds must have evaluated fewer
    // candidates per solved problem.
    EXPECT_LT(r1.stats.candidatesEvaluated / r1.stats.problemsSolved,
              r2.stats.candidatesEvaluated / r2.stats.problemsSolved);
  }
}

TEST(HcaOptionsTest, DeterministicRuns) {
  const auto k = ddg::buildMpeg2Inter();
  const auto model = paperFabric();
  const HcaDriver driver(model);
  const auto r1 = driver.run(k.ddg);
  const auto r2 = driver.run(k.ddg);
  ASSERT_TRUE(r1.legal);
  for (std::size_t i = 0; i < r1.assignment.size(); ++i) {
    EXPECT_EQ(r1.assignment[i], r2.assignment[i]);
  }
  EXPECT_EQ(r1.reconfig.settings.size(), r2.reconfig.settings.size());
}

TEST(HcaOptionsTest, TwoLevelFabricWorks) {
  machine::DspFabricConfig config;
  config.branching = {4, 4};  // 16 CNs
  const machine::DspFabricModel model(config);
  // A loop sized for a 16-CN fabric.
  ddg::DdgBuilder b;
  auto iv = b.carry(0, "iv");
  const auto next = b.add(iv, b.cst(1));
  b.close(iv, next, 1);
  auto acc = b.carry(0, "acc");
  const auto x = b.load(next, 0);
  const auto y = b.load(next, 64);
  const auto prod = b.mul(x, y);
  const auto accNext = b.add(acc, prod);
  b.close(acc, accNext, 1);
  b.store(next, accNext, 128);
  const auto small = b.finish();
  const auto result = runLegal(small, model);
  ASSERT_TRUE(result.legal);
  EXPECT_EQ(result.records.size(), 5u);  // root + 4 leaves
}

TEST(HcaOptionsTest, TinyDdgOnBigMachine) {
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), b.add(x, b.cst(3)));
  const auto ddg = b.finish();
  const auto model = paperFabric();
  const auto result = runLegal(ddg, model);
  ASSERT_TRUE(result.legal);
  const auto mii = computeMii(ddg, model, result);
  EXPECT_EQ(mii.finalMii, std::max(1, mii.maxClusterMii));
}

TEST(HcaOptionsTest, ReconfigurationRoundTrips) {
  const auto k = ddg::buildIdctHor();
  const auto model = paperFabric();
  const auto result = runLegal(k.ddg, model);
  ASSERT_TRUE(result.legal);
  const auto words = result.reconfig.encode();
  const auto decoded = machine::ReconfigurationProgram::decode(words);
  ASSERT_EQ(decoded.settings.size(), result.reconfig.settings.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(decoded.settings[i], result.reconfig.settings[i]);
  }
}

}  // namespace
}  // namespace hca::core
