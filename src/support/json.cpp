#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace hca {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::beforeValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!counts_.empty() && counts_.back()++ > 0) os_ << ',';
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  counts_.push_back(0);
  os_ << '{';
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  HCA_CHECK(!counts_.empty(), "JsonWriter::endObject without beginObject");
  counts_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  counts_.push_back(0);
  os_ << '[';
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  HCA_CHECK(!counts_.empty(), "JsonWriter::endArray without beginArray");
  counts_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  HCA_CHECK(!pendingKey_, "JsonWriter::key while a key is already pending");
  if (!counts_.empty() && counts_.back()++ > 0) os_ << ',';
  os_ << '"' << jsonEscape(name) << "\":";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  os_ << '"' << jsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  os_ << "null";
  return *this;
}

const JsonValue* JsonValue::find(const std::string& name) const {
  if (kind != Kind::kObject) return nullptr;
  // The parser rejects duplicate keys, so at most one member can match;
  // hand-built objects with duplicates resolve to the last occurrence.
  const JsonValue* found = nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) found = &value;
  }
  return found;
}

namespace {

/// Recursive-descent parser over a bounded character range.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skipWs();
    if (!parseValue(out, /*depth=*/0)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default: return parseNumber(out);
    }
  }

  bool parseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parseString(&key)) return false;
      for (const auto& [existing, unused] : out->object) {
        if (existing == key) return fail("duplicate object key \"" + key + "\"");
      }
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      JsonValue value;
      if (!parseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue value;
      if (!parseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode (surrogate pairs are kept as two separate
          // 3-byte sequences; the writer never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digit required after '.'");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parseJson(const std::string& text, JsonValue* out, std::string* error) {
  HCA_CHECK(out != nullptr, "parseJson needs an output value");
  Parser parser(text, error);
  return parser.parse(out);
}

}  // namespace hca
