// E1 + E3: reproduces Table 1 of the paper ("HCA test on four multimedia
// application loops") and the Section 5 narration that the final MII stays
// close to the theoretical optimum of an equivalent unified-bank machine.
//
// Columns: the paper's inputs (N_Instr, MIIRec, MIIRes), the legality
// verdict and final MII of our HCA implementation, the paper's published
// final MII, and — beyond the paper — the II actually achieved by the
// modulo scheduler plus the end-to-end simulator verdict. `sec` is
// wall-clock (the portfolio sweep is multi-threaded when HCA_THREADS != 1)
// and `cache%` is the sub-problem memoization hit rate. `legacy_s` re-runs
// the same kernel with the pre-CoW deep-copy SEE expansion
// (SeeOptions::legacySearch) and `speedup` is legacy_s / sec — the
// before/after record for the copy-on-write beam search.
//
// Environment variables:
//   HCA_THREADS        outer-sweep thread count (default 1, 0 = hardware
//                      concurrency, clamped to the core count)
//   HCA_TABLE1_LEGACY  set to 0 to skip the legacy re-run (halves runtime;
//                      legacy_s/speedup columns report "-")

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "hca/report.hpp"
#include "sched/modulo.hpp"
#include "sim/simulator.hpp"
#include "support/context.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

using namespace hca;

int main(int argc, char** argv) {
  bool strictBuild = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict-build") == 0) strictBuild = true;
  }
  if (warnIfDebugBuild("bench_table1") && strictBuild) return 1;
  const RunContext context = RunContext::current();

  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;  // the paper's best configuration
  const machine::DspFabricModel model(config);

  core::HcaOptions options;
  if (const char* threadsEnv = std::getenv("HCA_THREADS")) {
    options.numThreads = std::atoi(threadsEnv);
  }
  bool runLegacy = true;
  if (const char* legacyEnv = std::getenv("HCA_TABLE1_LEGACY")) {
    runLegacy = std::atoi(legacyEnv) != 0;
  }
  const int threads = ThreadPool::effectiveThreads(
      options.numThreads, options.allowOversubscribe);

  std::printf("Table 1 — HCA test on four multimedia application loops\n");
  std::printf("Machine: %s, threads: %d\n\n", config.toString().c_str(),
              threads);
  std::printf(
      "%-16s %7s %6s %6s %6s | %5s %8s %9s | %8s %6s %5s %6s %8s %7s\n",
      "Loop", "N_Instr", "MIIRec", "MIIRes", "iniMII", "legal", "finalMII",
      "paperMII", "schedII", "simOK", "sec", "cache%", "legacy_s", "speedup");
  std::printf("%s\n", std::string(128, '-').c_str());

  // Machine-readable twin of the printed table: one row per kernel, each
  // embedding the full per-phase run report (levels, metrics registry).
  std::ostringstream jsonOut;
  JsonWriter json(jsonOut);
  json.beginObject();
  json.key("bench").value("table1");
  json.key("machine").value(config.toString());
  json.key("threads").value(threads);
  json.key("context");
  context.writeJson(json);
  json.key("rows").beginArray();

  for (auto& kernel : ddg::table1Kernels()) {
    const auto stats = kernel.ddg.stats();
    const int miiRec =
        static_cast<int>(kernel.ddg.miiRec(model.config().latency));
    const int miiRes = core::unifiedMiiRes(stats, model);

    const auto t0 = std::chrono::steady_clock::now();
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Before/after record: the same kernel through the pre-CoW deep-copy
    // SEE path. Results are byte-identical by contract; only time differs.
    double legacySeconds = -1.0;
    if (runLegacy) {
      core::HcaOptions legacyOptions = options;
      legacyOptions.see.legacySearch = true;
      const auto l0 = std::chrono::steady_clock::now();
      const core::HcaDriver legacyDriver(model, legacyOptions);
      const auto legacyResult = legacyDriver.run(kernel.ddg);
      legacySeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - l0)
              .count();
      if (legacyResult.legal != result.legal) {
        std::fprintf(stderr, "WARNING: legacy/delta legality mismatch on %s\n",
                     kernel.name.c_str());
      }
    }
    const double speedup =
        legacySeconds > 0.0 && seconds > 0.0 ? legacySeconds / seconds : -1.0;
    char legacyCol[32], speedupCol[32];
    if (runLegacy) {
      std::snprintf(legacyCol, sizeof legacyCol, "%8.1f", legacySeconds);
      std::snprintf(speedupCol, sizeof speedupCol, "%6.2fx", speedup);
    } else {
      std::snprintf(legacyCol, sizeof legacyCol, "%8s", "-");
      std::snprintf(speedupCol, sizeof speedupCol, "%7s", "-");
    }

    const auto cacheTotal =
        result.stats.cacheHits + result.stats.cacheMisses;
    const double cachePct =
        cacheTotal == 0 ? 0.0
                        : 100.0 * static_cast<double>(result.stats.cacheHits) /
                              static_cast<double>(cacheTotal);

    json.beginObject();
    json.key("kernel").value(kernel.name);
    json.key("nInstr").value(stats.numInstructions);
    json.key("miiRec").value(miiRec);
    json.key("miiRes").value(miiRes);
    json.key("legal").value(result.legal);
    json.key("paperMii").value(kernel.paper.finalMii);
    json.key("seconds").value(seconds);
    json.key("legacySeconds").value(legacySeconds);
    json.key("speedup").value(speedup);
    json.key("cachePct").value(cachePct);

    if (!result.legal) {
      std::printf(
          "%-16s %7d %6d %6d %6d | %5s %8s %9d | %8s %6s %5.1f %5.1f%% %s "
          "%s\n",
          kernel.name.c_str(), stats.numInstructions, miiRec, miiRes,
          std::max(miiRec, miiRes), "no", "-", kernel.paper.finalMii, "-",
          "-", seconds, cachePct, legacyCol, speedupCol);
      json.key("iniMii").value(std::max(miiRec, miiRes));
      core::ReportMeta meta;
      meta.workload = kernel.name;
      meta.machine = config.toString();
      meta.threads = threads;
      meta.context = context;
      json.key("report");
      core::writeRunReport(json, result, &model, &meta);
      json.endObject();
      continue;
    }
    const auto mii = core::computeMii(kernel.ddg, model, result);
    const auto mapping = core::buildFinalMapping(kernel.ddg, model, result);
    const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);

    const char* simVerdict = "-";
    if (sched.ok) {
      const int iterations = std::min(kernel.safeIterations, 8);
      sim::SimConfig simConfig;
      simConfig.iterations = iterations;
      simConfig.memory =
          ddg::kernelInterpConfig(kernel, iterations).memory;
      simVerdict = sim::matchesReference(kernel.ddg, mapping, model,
                                         sched.schedule, simConfig)
                       ? "yes"
                       : "NO";
    }
    std::printf(
        "%-16s %7d %6d %6d %6d | %5s %8d %9d | %8d %6s %5.1f %5.1f%% %s "
        "%s\n",
        kernel.name.c_str(), stats.numInstructions, miiRec, miiRes,
        mii.iniMii, "yes", mii.finalMii, kernel.paper.finalMii,
        sched.ok ? sched.schedule.ii : -1, simVerdict, seconds, cachePct,
        legacyCol, speedupCol);
    json.key("iniMii").value(mii.iniMii);
    json.key("finalMii").value(mii.finalMii);
    json.key("schedII").value(sched.ok ? sched.schedule.ii : -1);
    json.key("simOK").value(simVerdict);
    core::ReportMeta meta;
    meta.workload = kernel.name;
    meta.machine = config.toString();
    meta.threads = threads;
    meta.context = context;
    json.key("report");
    core::writeRunReport(json, result, &model, &meta);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  jsonOut << "\n";
  // Atomic write: a crash (or full disk) mid-write must not leave a
  // truncated BENCH JSON that downstream tracking parses as a regression.
  atomicWriteFile("BENCH_table1.json", jsonOut.str());
  std::printf(
      "\nNotes: N_Instr/MIIRec/MIIRes reproduce the paper exactly (input\n"
      "calibration, DESIGN.md §4). finalMII is our heuristic's result; the\n"
      "paper reports 3/3/8/6 with months of hand-tuning. schedII is the\n"
      "modulo scheduler's achieved II (>= finalMII by construction); simOK\n"
      "verifies the scheduled fabric execution against the reference\n"
      "interpreter. legacy_s/speedup compare the pre-CoW deep-copy SEE\n"
      "expansion against the default delta path (identical results).\n"
      "See bench_parallel for the threads/cache scaling sweep.\n"
      "Per-kernel rows with embedded per-phase run reports: "
      "BENCH_table1.json\n");
  return 0;
}
