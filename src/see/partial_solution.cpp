#include "see/partial_solution.hpp"

#include <algorithm>

#include "see/solution_ops.hpp"
#include "support/check.hpp"

namespace hca::see {

namespace {
void addDistinct(std::vector<ValueId>& list, ValueId v) {
  if (std::find(list.begin(), list.end(), v) == list.end()) list.push_back(v);
}
}  // namespace

PartialSolution PartialSolution::initial(const PreparedProblem& prepared) {
  const auto& pg = *prepared.problem().pg;
  PartialSolution sol;
  sol.nodeCluster_.assign(
      static_cast<std::size_t>(prepared.problem().ddg->numNodes()),
      ClusterId::invalid());
  sol.relayCluster_.assign(prepared.problem().relayValues.size(),
                           ClusterId::invalid());
  sol.usage_.resize(static_cast<std::size_t>(pg.numNodes()));
  sol.flow_ = machine::CopyFlow(pg);
  sol.inNbrMask_.assign(static_cast<std::size_t>(pg.numNodes()), 0);
  sol.inValues_.resize(static_cast<std::size_t>(pg.numNodes()));
  sol.outValues_.resize(static_cast<std::size_t>(pg.numNodes()));
  // Input nodes already "send" their boundary values.
  for (const ClusterId in : pg.inputNodes()) {
    for (const ValueId v : pg.node(in).boundaryValues) {
      addDistinct(sol.outValues_[in.index()], v);
    }
  }
  return sol;
}

ClusterId PartialSolution::valueLocation(const PreparedProblem& prepared,
                                         ValueId value) const {
  return valueLocationT(prepared, *this, value);
}

bool PartialSolution::valueDelivered(ClusterId dst, ValueId value) const {
  const auto& list = inValues_[dst.index()];
  return std::find(list.begin(), list.end(), value) != list.end();
}

bool PartialSolution::flowContains(PgArcId arc, ValueId value) const {
  const auto& onArc = flow_.copiesOn(arc);
  return std::find(onArc.begin(), onArc.end(), value) != onArc.end();
}

bool PartialSolution::canAddCopy(const PreparedProblem& prepared,
                                 ClusterId src, ClusterId dst,
                                 ValueId value) const {
  return canAddCopyT(prepared, *this, src, dst, value);
}

bool PartialSolution::canAssign(const PreparedProblem& prepared,
                                const Item& item, ClusterId cluster) const {
  return canAssignT(prepared, *this, item, cluster);
}

bool PartialSolution::addFlowCopy(PgArcId arc, ClusterId src, ClusterId dst,
                                  ValueId value) {
  if (!flow_.addCopy(arc, value)) return false;
  inNbrMask_[dst.index()] |= detail::pgBit(src);
  addDistinct(inValues_[dst.index()], value);
  addDistinct(outValues_[src.index()], value);
  return true;
}

void PartialSolution::assign(const PreparedProblem& prepared, const Item& item,
                             ClusterId cluster) {
  assignT(prepared, *this, item, cluster);
}

void PartialSolution::applyRoute(const PreparedProblem& prepared,
                                 ValueId value,
                                 const std::vector<ClusterId>& path) {
  applyRouteT(prepared, *this, value, path);
}

std::uint64_t PartialSolution::signature() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&](std::int32_t v) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  };
  for (const ClusterId c : nodeCluster_) mix(c.value());
  for (const ClusterId c : relayCluster_) mix(c.value());
  return h;
}

std::size_t PartialSolution::approxBytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += nodeCluster_.capacity() * sizeof(ClusterId);
  bytes += relayCluster_.capacity() * sizeof(ClusterId);
  bytes += usage_.capacity() * sizeof(machine::ResourceUsage);
  bytes += inNbrMask_.capacity() * sizeof(std::uint64_t);
  for (std::size_t arc = 0; arc < flow_.numArcLists(); ++arc) {
    bytes += sizeof(std::vector<ValueId>) +
             flow_.copiesOn(PgArcId(static_cast<std::int32_t>(arc))).capacity() *
                 sizeof(ValueId);
  }
  for (const auto& values : inValues_) {
    bytes += sizeof(values) + values.capacity() * sizeof(ValueId);
  }
  for (const auto& values : outValues_) {
    bytes += sizeof(values) + values.capacity() * sizeof(ValueId);
  }
  return bytes;
}

}  // namespace hca::see
