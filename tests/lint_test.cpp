// hca-lint test suite (ctest label `lint`).
//
// Covers the lexer's token-awareness (comments, strings, raw strings,
// includes, suppression markers), module classification, and — via the
// fixtures in tests/lint_fixtures/ — each rule family: one known-bad file
// per rule flagged by exactly that rule, one clean file flagged by none,
// plus the inline-suppression and baseline round trips.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "analysis/source_model.hpp"
#include "support/io.hpp"

using namespace hca;
using namespace hca::analysis;

namespace {

[[nodiscard]] std::string fixture(const std::string& name) {
  return readFile(std::string(HCA_LINT_FIXTURE_DIR) + "/" + name);
}

/// Loads one fixture at a chosen repo-relative path (the path decides its
/// module, and with it which rules apply).
[[nodiscard]] SourceModel modelWith(
    const std::vector<std::pair<std::string, std::string>>& pathToFixture) {
  std::map<std::string, std::string> files;
  for (const auto& [relPath, fixtureName] : pathToFixture) {
    files[relPath] = fixture(fixtureName);
  }
  return SourceModel::loadFromMemory(files);
}

[[nodiscard]] std::set<std::string> rulesIn(
    const std::vector<Diagnostic>& diagnostics) {
  std::set<std::string> rules;
  for (const Diagnostic& d : diagnostics) rules.insert(d.rule);
  return rules;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, StripsCommentsAndStrings) {
  const LexedFile lexed = lex(
      "// steady_clock in a line comment\n"
      "/* steady_clock in a block */\n"
      "const char* s = \"steady_clock in a string\";\n"
      "int steady = 1;\n");
  for (const Token& tok : lexed.tokens) {
    EXPECT_NE(tok.text, "steady_clock") << "leaked from comment/string";
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 2);
}

TEST(LintLexer, RawStringsDoNotLeakTokens) {
  const LexedFile lexed = lex(
      "const char* j = R\"x(steady_clock \" // not a comment)x\";\n"
      "int after = 2;\n");
  for (const Token& tok : lexed.tokens) {
    EXPECT_NE(tok.text, "steady_clock");
  }
  // The raw string must terminate at )x" — `after` still tokenizes, on the
  // right line.
  bool sawAfter = false;
  for (const Token& tok : lexed.tokens) {
    if (tok.text == "after") {
      sawAfter = true;
      EXPECT_EQ(tok.line, 2);
    }
  }
  EXPECT_TRUE(sawAfter);
}

TEST(LintLexer, ExtractsIncludes) {
  const LexedFile lexed = lex(
      "#include <vector>\n"
      "#include \"support/io.hpp\"\n"
      "// #include \"support/not_real.hpp\" (commented out)\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_TRUE(lexed.includes[0].angled);
  EXPECT_EQ(lexed.includes[0].path, "vector");
  EXPECT_FALSE(lexed.includes[1].angled);
  EXPECT_EQ(lexed.includes[1].path, "support/io.hpp");
  EXPECT_EQ(lexed.includes[1].line, 2);
}

TEST(LintLexer, ExtractsSuppressionMarkers) {
  const LexedFile lexed = lex(
      "int a;  // hca-lint: ordered-ok(proven order-insensitive)\n"
      "int b;  // hca-lint: clock-ok()\n"  // empty reason: not a marker
      "int c;  // hca-lint: mutex-ok no parens\n");
  ASSERT_EQ(lexed.suppressions.size(), 1u);
  EXPECT_EQ(lexed.suppressions[0].key, "ordered-ok");
  EXPECT_EQ(lexed.suppressions[0].reason, "proven order-insensitive");
  EXPECT_EQ(lexed.suppressions[0].line, 1);
}

TEST(LintLexer, TracksLineNumbers) {
  const LexedFile lexed = lex("int a;\n\n/* two\nlines */ int b;\n");
  bool sawB = false;
  for (const Token& tok : lexed.tokens) {
    if (tok.text == "b") {
      sawB = true;
      EXPECT_EQ(tok.line, 4);
    }
  }
  EXPECT_TRUE(sawB);
}

// ---------------------------------------------------------------------------
// Module classification

TEST(LintModel, ClassifiesModules) {
  EXPECT_EQ(classifyModule("src/support/io.hpp").rank, 0);
  EXPECT_EQ(classifyModule("src/graph/graph.hpp").rank, 1);
  EXPECT_EQ(classifyModule("src/ddg/ddg.hpp").rank, 2);
  EXPECT_EQ(classifyModule("src/machine/fault.hpp").rank, 2);
  EXPECT_EQ(classifyModule("src/see/engine.cpp").rank, 3);
  EXPECT_EQ(classifyModule("src/hca/driver.cpp").rank, 4);
  EXPECT_EQ(classifyModule("src/verify/checks.cpp").rank, 5);
  EXPECT_EQ(classifyModule("src/analysis/rules.cpp").rank, 6);
  EXPECT_EQ(classifyModule("tools/hcac.cpp").rank, 7);
  EXPECT_EQ(classifyModule("tests/lint_test.cpp").rank, 7);
  EXPECT_EQ(classifyModule("bench/bench_micro.cpp").rank, 7);
  EXPECT_EQ(classifyModule("README.md").rank, -1);
}

TEST(LintModel, ParsesCompileCommands) {
  const std::vector<CompileCommand> commands = parseCompileCommands(
      R"([{"directory": "/repo/build", "file": "../src/see/engine.cpp",
           "command": "c++ -c ../src/see/engine.cpp"},
          {"directory": "/repo/build", "file": "/repo/src/hca/driver.cpp",
           "command": "c++ -c /repo/src/hca/driver.cpp"}])");
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].file, "/repo/src/see/engine.cpp");
  EXPECT_EQ(commands[1].file, "/repo/src/hca/driver.cpp");
}

// ---------------------------------------------------------------------------
// Rule fixtures: each bad file trips exactly its own rule.

TEST(LintRules, ClockFixtureTripsOnlyClockRule) {
  const SourceModel model =
      modelWith({{"src/see/bad_clock.cpp", "bad_clock.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  EXPECT_EQ(rulesIn(all), std::set<std::string>{"determinism-clock"});
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].entity, "steady_clock");
  EXPECT_EQ(all[0].suppressionKey,
            "determinism-clock:src/see/bad_clock.cpp:steady_clock");
}

TEST(LintRules, ClockRuleIgnoresAllowlistedFiles) {
  // The same content mapped into bench/ (allowlisted) is clean.
  const SourceModel model =
      modelWith({{"bench/bad_clock.cpp", "bad_clock.cpp"}});
  EXPECT_TRUE(runAllRules(model).empty());
}

TEST(LintRules, OrderedFixtureTripsOnlyOrderedRule) {
  const SourceModel model =
      modelWith({{"src/see/bad_ordered.cpp", "bad_ordered.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  EXPECT_EQ(rulesIn(all), std::set<std::string>{"determinism-ordered"});
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].entity, "weights");
}

TEST(LintRules, OrderedRuleOnlyFiresInResultAffectingModules) {
  // Same content mapped into sched/ (not order-sensitive) is clean.
  const SourceModel model =
      modelWith({{"src/sched/bad_ordered.cpp", "bad_ordered.cpp"}});
  EXPECT_TRUE(runAllRules(model).empty());
}

TEST(LintRules, LayeringFixtureTripsOnlyLayeringRule) {
  const SourceModel model =
      modelWith({{"src/support/bad_layering.cpp", "bad_layering.cpp"},
                 {"src/hca/layering_stub.hpp", "layering_stub.hpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  EXPECT_EQ(rulesIn(all), std::set<std::string>{"layering"});
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].file, "src/support/bad_layering.cpp");
  EXPECT_EQ(all[0].entity, "src/hca/layering_stub.hpp");
}

TEST(LintRules, LayeringAllowsForwardEdges) {
  // hca including support is the DAG's forward direction: clean.
  const SourceModel model =
      modelWith({{"src/hca/bad_layering.cpp", "bad_layering.cpp"},
                 {"src/hca/layering_stub.hpp", "layering_stub.hpp"}});
  EXPECT_TRUE(runAllRules(model).empty());
}

TEST(LintRules, LayeringReportsIncludeCycles) {
  std::map<std::string, std::string> files;
  files["src/see/a.hpp"] = "#include \"see/b.hpp\"\n";
  files["src/see/b.hpp"] = "#include \"see/a.hpp\"\n";
  const SourceModel model = SourceModel::loadFromMemory(files);
  const std::vector<Diagnostic> all = runLayeringRule(model);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_NE(all[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(all[0].message.find("src/see/a.hpp -> src/see/b.hpp"),
            std::string::npos);
}

TEST(LintRules, LockingFixtureTripsOnlyLockingRule) {
  const SourceModel model =
      modelWith({{"src/see/bad_locking.cpp", "bad_locking.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  EXPECT_EQ(rulesIn(all), std::set<std::string>{"locking"});
  // Both shapes: the raw std::mutex and the unguarded hca::Mutex member.
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].entity, "std::mutex");
  EXPECT_EQ(all[1].entity, "mu_");
}

TEST(LintRules, LockingAllowsGuardedMutex) {
  std::map<std::string, std::string> files;
  files["src/see/guarded.hpp"] =
      "#include \"support/mutex.hpp\"\n"
      "namespace hca::see {\n"
      "struct Guarded {\n"
      "  Mutex mu_;\n"
      "  int depth HCA_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace hca::see\n";
  const SourceModel model = SourceModel::loadFromMemory(files);
  EXPECT_TRUE(runLockingRule(model).empty());
}

TEST(LintRules, ExitFixtureTripsOnlyExitRule) {
  const SourceModel model =
      modelWith({{"src/see/bad_exit.cpp", "bad_exit.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  EXPECT_EQ(rulesIn(all), std::set<std::string>{"exit-contract"});
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].entity, "exit");
}

TEST(LintRules, ExitRuleAllowsToolsAndSignals) {
  const SourceModel toolModel =
      modelWith({{"tools/bad_exit.cpp", "bad_exit.cpp"}});
  EXPECT_TRUE(runAllRules(toolModel).empty());
  const SourceModel signalsModel =
      modelWith({{"src/support/signals.cpp", "bad_exit.cpp"}});
  EXPECT_TRUE(runAllRules(signalsModel).empty());
}

TEST(LintRules, CleanFixtureTripsNothing) {
  const SourceModel model = modelWith({{"src/see/clean.cpp", "clean.cpp"}});
  EXPECT_TRUE(runAllRules(model).empty());
}

// ---------------------------------------------------------------------------
// Suppressions and baseline

TEST(LintSuppression, InlineMarkerDropsDiagnostic) {
  const SourceModel model =
      modelWith({{"src/see/suppressed_clock.cpp", "suppressed_clock.cpp"}});
  // The raw rule sees the hit; the suppression-aware entry point drops it.
  EXPECT_FALSE(runDeterminismClockRule(model).empty());
  EXPECT_TRUE(runAllRules(model).empty());
}

TEST(LintSuppression, WrongKeyDoesNotSuppress) {
  std::map<std::string, std::string> files;
  files["src/see/wrong_key.cpp"] =
      "// hca-lint: ordered-ok(wrong key for a clock hit)\n"
      "long long f() { return std::chrono::steady_clock::now()\n"
      "    .time_since_epoch().count(); }\n";
  const SourceModel model = SourceModel::loadFromMemory(files);
  EXPECT_FALSE(runAllRules(model).empty());
}

TEST(LintBaseline, RoundTripsThroughJson) {
  Baseline baseline;
  baseline.suppressions.insert("locking:src/see/x.cpp:mu_");
  baseline.suppressions.insert("layering:src/support/y.cpp:src/hca/z.hpp");
  const Baseline reparsed = parseBaseline(formatBaseline(baseline));
  EXPECT_EQ(reparsed.suppressions, baseline.suppressions);
}

TEST(LintBaseline, SplitsFreshBaselinedAndStale) {
  const SourceModel model =
      modelWith({{"src/see/bad_clock.cpp", "bad_clock.cpp"},
                 {"src/see/bad_exit.cpp", "bad_exit.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  ASSERT_EQ(all.size(), 2u);

  Baseline baseline;
  baseline.suppressions.insert(
      "determinism-clock:src/see/bad_clock.cpp:steady_clock");
  baseline.suppressions.insert("locking:src/see/gone.cpp:mu_");  // stale

  const BaselineSplit split = splitAgainstBaseline(baseline, all);
  ASSERT_EQ(split.fresh.size(), 1u);
  EXPECT_EQ(split.fresh[0].rule, "exit-contract");
  ASSERT_EQ(split.baselined.size(), 1u);
  EXPECT_EQ(split.baselined[0].rule, "determinism-clock");
  ASSERT_EQ(split.stale.size(), 1u);
  EXPECT_EQ(split.stale[0], "locking:src/see/gone.cpp:mu_");
}

TEST(LintBaseline, UpdateFromDiagnosticsMakesRunClean) {
  const SourceModel model =
      modelWith({{"src/see/bad_clock.cpp", "bad_clock.cpp"},
                 {"src/see/bad_exit.cpp", "bad_exit.cpp"}});
  const std::vector<Diagnostic> all = runAllRules(model);
  const Baseline updated = baselineFromDiagnostics(all);
  const BaselineSplit split = splitAgainstBaseline(updated, all);
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.baselined.size(), all.size());
  EXPECT_TRUE(split.stale.empty());
}

TEST(LintReport, JsonNamesEveryDiagnostic) {
  const SourceModel model =
      modelWith({{"src/see/bad_clock.cpp", "bad_clock.cpp"}});
  const BaselineSplit split =
      splitAgainstBaseline(Baseline{}, runAllRules(model));
  const std::string json = formatReportJson(split);
  EXPECT_NE(json.find("\"determinism-clock\""), std::string::npos);
  EXPECT_NE(json.find("\"src/see/bad_clock.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"fresh\""), std::string::npos);
}

}  // namespace
