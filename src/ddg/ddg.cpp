#include "ddg/ddg.hpp"

#include <ostream>

#include "graph/algorithms.hpp"
#include "support/check.hpp"
#include "support/dot.hpp"
#include "support/str.hpp"

namespace hca::ddg {

DdgNodeId Ddg::addNode(DdgNode node) {
  const auto id = DdgNodeId(static_cast<std::int32_t>(nodes_.size()));
  nodes_.push_back(std::move(node));
  return id;
}

const DdgNode& Ddg::node(DdgNodeId id) const {
  HCA_REQUIRE(id.valid() && id.value() < numNodes(),
              "DDG node id out of range: " << to_string(id));
  return nodes_[id.index()];
}

DdgNode& Ddg::node(DdgNodeId id) {
  HCA_REQUIRE(id.valid() && id.value() < numNodes(),
              "DDG node id out of range: " << to_string(id));
  return nodes_[id.index()];
}

std::vector<Ddg::Use> Ddg::usesOf(DdgNodeId id) const {
  std::vector<Use> uses;
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const auto& ops = nodes_[static_cast<std::size_t>(v)].operands;
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(ops.size()); ++i) {
      if (ops[static_cast<std::size_t>(i)].src == id) {
        uses.push_back(Use{DdgNodeId(v), i});
      }
    }
  }
  return uses;
}

DdgStats Ddg::stats() const {
  DdgStats s;
  for (const auto& n : nodes_) {
    if (!isInstruction(n.op)) {
      ++s.numConsts;
      continue;
    }
    ++s.numInstructions;
    if (isMemoryOp(n.op)) {
      ++s.numMemOps;
    } else if (opResource(n.op) == ResourceClass::kAlu) {
      ++s.numAluOps;
    }
  }
  return s;
}

void Ddg::validate() const {
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const auto& n = nodes_[static_cast<std::size_t>(v)];
    HCA_REQUIRE(static_cast<int>(n.operands.size()) == opArity(n.op),
                "node " << v << " (" << opName(n.op) << ") has "
                        << n.operands.size() << " operands, expected "
                        << opArity(n.op));
    for (const auto& operand : n.operands) {
      HCA_REQUIRE(operand.src.valid() && operand.src.value() < numNodes(),
                  "node " << v << " has dangling operand");
      HCA_REQUIRE(operand.distance >= 0,
                  "node " << v << " has negative dependence distance");
      HCA_REQUIRE(
          nodes_[operand.src.index()].op != Op::kStore,
          "node " << v << " consumes the (void) result of a store");
    }
  }
  const auto view = graphView();
  const auto intraOnly = [&](std::int32_t e) {
    const auto [consumer, idx] = view.edgeOperand[static_cast<std::size_t>(e)];
    return nodes_[static_cast<std::size_t>(consumer)]
               .operands[static_cast<std::size_t>(idx)]
               .distance == 0;
  };
  HCA_REQUIRE(!graph::hasCycle(view.graph, intraOnly),
              "DDG has an intra-iteration dependence cycle");
}

Ddg::GraphView Ddg::graphView() const {
  GraphView view;
  view.graph.resize(numNodes());
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const auto& ops = nodes_[static_cast<std::size_t>(v)].operands;
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(ops.size()); ++i) {
      view.graph.addEdge(ops[static_cast<std::size_t>(i)].src.value(), v);
      view.edgeOperand.emplace_back(v, i);
    }
  }
  return view;
}

std::int64_t Ddg::miiRec(const LatencyModel& lat) const {
  const auto view = graphView();
  const auto latency = [&](std::int32_t e) -> std::int64_t {
    const std::int32_t src = view.graph.edge(e).src;
    return lat.of(nodes_[static_cast<std::size_t>(src)].op);
  };
  const auto distance = [&](std::int32_t e) -> std::int64_t {
    const auto [consumer, idx] = view.edgeOperand[static_cast<std::size_t>(e)];
    return nodes_[static_cast<std::size_t>(consumer)]
        .operands[static_cast<std::size_t>(idx)]
        .distance;
  };
  return graph::minFeasibleInitiationInterval(view.graph, latency, distance);
}

std::vector<std::int64_t> Ddg::heights(const LatencyModel& lat) const {
  const auto view = graphView();
  const auto intraOnly = [&](std::int32_t e) {
    const auto [consumer, idx] = view.edgeOperand[static_cast<std::size_t>(e)];
    return nodes_[static_cast<std::size_t>(consumer)]
               .operands[static_cast<std::size_t>(idx)]
               .distance == 0;
  };
  const auto latency = [&](std::int32_t e) -> std::int64_t {
    const std::int32_t src = view.graph.edge(e).src;
    return lat.of(nodes_[static_cast<std::size_t>(src)].op);
  };
  return graph::longestPathToSinks(view.graph, intraOnly, latency);
}

std::vector<DdgNodeId> Ddg::topoOrder() const {
  const auto view = graphView();
  const auto intraOnly = [&](std::int32_t e) {
    const auto [consumer, idx] = view.edgeOperand[static_cast<std::size_t>(e)];
    return nodes_[static_cast<std::size_t>(consumer)]
               .operands[static_cast<std::size_t>(idx)]
               .distance == 0;
  };
  const auto order = graph::topologicalOrder(view.graph, intraOnly);
  HCA_REQUIRE(order.has_value(), "DDG has an intra-iteration cycle");
  std::vector<DdgNodeId> out;
  out.reserve(order->size());
  for (std::int32_t v : *order) out.emplace_back(v);
  return out;
}

void Ddg::toDot(std::ostream& os, const std::string& title) const {
  DotWriter dot(os, title);
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const auto& n = nodes_[static_cast<std::size_t>(v)];
    std::string label = strCat("#", v, " ", opName(n.op));
    if (n.op == Op::kConst) label = strCat("#", v, " ", n.imm0);
    if (!n.name.empty()) label += strCat("\\n", n.name);
    const char* shape = isMemoryOp(n.op) ? "shape=ellipse"
                        : n.op == Op::kConst ? "shape=plaintext"
                                             : "";
    dot.node(strCat("n", v), label, shape);
  }
  for (std::int32_t v = 0; v < numNodes(); ++v) {
    const auto& n = nodes_[static_cast<std::size_t>(v)];
    for (const auto& operand : n.operands) {
      const std::string label =
          operand.distance > 0 ? strCat("d=", operand.distance) : "";
      const std::string attrs = operand.distance > 0 ? "style=dashed" : "";
      dot.edge(strCat("n", operand.src.value()), strCat("n", v), label, attrs);
    }
  }
}

}  // namespace hca::ddg
