#pragma once

#include <ostream>
#include <string>

/// Tiny GraphViz DOT writer, shared by the DDG / PatternGraph / topology
/// dumpers. Keeps quoting rules in one place.
namespace hca {

class DotWriter {
 public:
  /// Begins a digraph with the given name; writes the header immediately.
  DotWriter(std::ostream& os, const std::string& name);
  ~DotWriter();

  DotWriter(const DotWriter&) = delete;
  DotWriter& operator=(const DotWriter&) = delete;

  void node(const std::string& id, const std::string& label,
            const std::string& extraAttrs = "");
  void edge(const std::string& from, const std::string& to,
            const std::string& label = "", const std::string& extraAttrs = "");
  /// Raw line inside the graph body (rank constraints, subgraphs, ...).
  void raw(const std::string& line);

  static std::string quote(const std::string& s);

 private:
  std::ostream& os_;
};

}  // namespace hca
