#include "baseline/hierarchy_check.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "machine/pattern_graph.hpp"
#include "mapper/mapper.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::baseline {

namespace {

struct Checker {
  const ddg::Ddg& ddg;
  const machine::DspFabricModel& model;
  const std::vector<CnId>& assignment;
  HierarchyCollect* collect = nullptr;
  HierarchyCheckResult result;

  /// Consumers per value (instruction nodes only).
  std::map<ValueId, std::vector<DdgNodeId>> consumers;

  bool check(const std::vector<int>& path,
             const std::vector<mapper::WireValues>& boundaryIn,
             const std::vector<mapper::WireValues>& boundaryOut) {
    const int level = static_cast<int>(path.size());
    const bool leaf = level == model.numLevels() - 1;
    const machine::LevelSpec spec = model.levelSpec(level);

    // Child index of a CN under this problem, or -1 if outside.
    const auto childOf = [&](CnId cn) {
      const auto cnPath = model.pathOfCn(cn);
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (cnPath[i] != path[static_cast<std::size_t>(i)]) return -1;
      }
      return cnPath[path.size()];
    };

    machine::PatternGraph pg = model.patternGraphAt(path);
    std::map<ValueId, ClusterId> valueSource;
    for (const auto& wire : boundaryIn) {
      const ClusterId in = pg.addInputNode(wire.values);
      for (const ValueId v : wire.values) valueSource.emplace(v, in);
    }
    std::vector<ClusterId> outNodes;
    for (const auto& wire : boundaryOut) {
      outNodes.push_back(pg.addOutputNode(strCat("out", wire.wire),
                                          wire.values));
    }
    pg.connectBoundaryNodes();
    const auto clusters = pg.clusterNodes();

    // Derive the copy flow this assignment implies at this level.
    machine::CopyFlow flow(pg);
    const auto sourceNode = [&](ValueId v) -> ClusterId {
      const DdgNodeId producer(v.value());
      const CnId cn = assignment[producer.index()];
      const int child = cn.valid() ? childOf(cn) : -1;
      if (child >= 0) return clusters[static_cast<std::size_t>(child)];
      const auto it = valueSource.find(v);
      return it == valueSource.end() ? ClusterId::invalid() : it->second;
    };

    std::set<ValueId> relevant;
    for (const auto& [v, list] : consumers) {
      (void)list;
      relevant.insert(v);
    }
    for (const auto& wire : boundaryIn) {
      relevant.insert(wire.values.begin(), wire.values.end());
    }
    for (const ValueId v : relevant) {
      const ClusterId src = sourceNode(v);
      // Destinations: children consuming v (other than the source child).
      std::set<ClusterId> dests;
      const auto consIt = consumers.find(v);
      if (consIt != consumers.end()) {
        for (const DdgNodeId consumer : consIt->second) {
          const int child = childOf(assignment[consumer.index()]);
          if (child < 0) continue;
          const ClusterId c = clusters[static_cast<std::size_t>(child)];
          if (c != src) dests.insert(c);
        }
      }
      for (std::size_t w = 0; w < boundaryOut.size(); ++w) {
        const auto& values = boundaryOut[w].values;
        if (std::find(values.begin(), values.end(), v) != values.end()) {
          dests.insert(outNodes[w]);
        }
      }
      if (dests.empty()) continue;
      if (!src.valid()) {
        result.failureReason = strCat(
            "value ", to_string(v), " consumed in sub-problem [",
            strJoin(path, "."), "] but not available there");
        return false;
      }
      for (const ClusterId dst : dests) {
        const auto arc = pg.arcBetween(src, dst);
        HCA_CHECK(arc.has_value(), "missing PG arc in hierarchy check");
        flow.addCopy(*arc, v);
      }
    }
    result.totalCopies += flow.totalCopies();

    mapper::MapperInput input;
    input.pg = &pg;
    input.flow = &flow;
    input.inWiresPerChild = spec.inWires;
    input.outWiresPerChild = spec.outWires;
    input.maxWiresIntoChild = leaf ? 0 : spec.maxWiresIntoChild;
    if (model.hasFaults()) {
      const machine::ProblemSpec pspec = model.problemSpec(path);
      if (pspec.touched) {
        input.inWiresOfChild = pspec.inWiresOfChild;
        input.outWiresOfChild = pspec.outWiresOfChild;
        if (!leaf) input.maxWiresIntoChildOf = pspec.maxWiresIntoChildOf;
      }
    }
    input.problemPath = path;
    const mapper::Mapper mapperPass;
    const auto mapped = mapperPass.map(input);
    ++result.problemsChecked;
    if (!mapped.legal) {
      result.failureReason = strCat("sub-problem [", strJoin(path, "."),
                                    "]: ", mapped.failureReason);
      return false;
    }
    result.maxWirePressure =
        std::max(result.maxWirePressure, mapped.maxValuesPerWire);

    if (collect != nullptr) {
      auto record = std::make_unique<mapper::ProblemRecord>();
      record->path = path;
      record->level = level;
      record->leaf = leaf;
      record->pg = pg;
      record->flow = flow;
      // Working set of this sub-problem: every instruction assigned below
      // `path`, with its child index at this level.
      for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
        if (!ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) continue;
        const CnId cn = assignment[static_cast<std::size_t>(v)];
        const int child = cn.valid() ? childOf(cn) : -1;
        if (child < 0) continue;
        record->workingSet.emplace_back(v);
        record->wsChild.push_back(child);
      }
      // Per-cluster occupancy, derived the same way the driver's records
      // are (instructions + copy traffic), so computeMii works unchanged.
      for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
        mapper::ClusterSummary summary;
        summary.cluster = clusters[ci];
        std::set<ValueId> valuesIn, valuesOut;
        for (const PgArcId a : pg.inArcs(clusters[ci])) {
          for (const ValueId v : flow.copiesOn(a)) valuesIn.insert(v);
        }
        for (const PgArcId a : pg.outArcs(clusters[ci])) {
          for (const ValueId v : flow.copiesOn(a)) valuesOut.insert(v);
        }
        summary.distinctValuesIn = static_cast<int>(valuesIn.size());
        summary.distinctValuesOut = static_cast<int>(valuesOut.size());
        record->clusterSummaries.push_back(summary);
      }
      for (std::size_t i = 0; i < record->workingSet.size(); ++i) {
        auto& summary =
            record->clusterSummaries[static_cast<std::size_t>(
                record->wsChild[i])];
        ++summary.instructions;
        switch (ddg::opResource(ddg.node(record->workingSet[i]).op)) {
          case ddg::ResourceClass::kAlu: ++summary.aluOps; break;
          case ddg::ResourceClass::kAg: ++summary.agOps; break;
          case ddg::ResourceClass::kNone: break;
        }
      }
      record->mapResult = mapped;
      for (const auto& setting : mapped.reconfig.settings) {
        collect->reconfig.settings.push_back(setting);
      }
      collect->records.push_back(std::move(record));
    }
    if (leaf) return true;

    for (int i = 0; i < spec.children; ++i) {
      auto childPath = path;
      childPath.push_back(i);
      if (!check(childPath,
                 mapped.ilis[static_cast<std::size_t>(i)].inputs,
                 mapped.ilis[static_cast<std::size_t>(i)].outputs)) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

HierarchyCheckResult checkHierarchyFeasibility(
    const ddg::Ddg& ddg, const machine::DspFabricModel& model,
    const std::vector<CnId>& assignment, HierarchyCollect* collect) {
  HCA_REQUIRE(static_cast<std::int32_t>(assignment.size()) == ddg.numNodes(),
              "assignment size mismatch");
  Checker checker{ddg, model, assignment, collect, {}, {}};
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    HCA_REQUIRE(assignment[static_cast<std::size_t>(v)].valid(),
                "instruction " << v << " unassigned");
    if (model.hasFaults() &&
        !model.cnAlive(assignment[static_cast<std::size_t>(v)])) {
      checker.result.legal = false;
      checker.result.failureReason =
          strCat("instruction ", v, " assigned to dead CN ",
                 to_string(assignment[static_cast<std::size_t>(v)]));
      return checker.result;
    }
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      if (assignment[operand.src.index()] ==
          assignment[static_cast<std::size_t>(v)]) {
        continue;  // CN-local
      }
      auto& list = checker.consumers[ValueId(operand.src.value())];
      if (std::find(list.begin(), list.end(), DdgNodeId(v)) == list.end()) {
        list.push_back(DdgNodeId(v));
      }
    }
  }
  checker.result.legal = checker.check({}, {}, {});
  return checker.result;
}

}  // namespace hca::baseline
