#include "see/serialize.hpp"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::see {

namespace {

// --- strict, field-naming parse helpers (ddg/serialize contract) -----------

const JsonValue& member(const JsonValue& v, const char* name) {
  HCA_REQUIRE(v.isObject(), "SEE snapshot: expected an object around '"
                                << name << "'");
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr, "SEE snapshot: missing member '" << name << "'");
  return *m;
}

std::int64_t asInt(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.kind == JsonValue::Kind::kNumber,
              "SEE snapshot: '" << what << "' must be a number");
  const double d = v.number;
  HCA_REQUIRE(std::floor(d) == d && std::abs(d) <= 9007199254740992.0,
              "SEE snapshot: '" << what << "' is not an exact integer");
  return static_cast<std::int64_t>(d);
}

std::int32_t asI32(const JsonValue& v, const char* what) {
  const std::int64_t i = asInt(v, what);
  HCA_REQUIRE(i >= INT32_MIN && i <= INT32_MAX,
              "SEE snapshot: '" << what << "' out of int32 range");
  return static_cast<std::int32_t>(i);
}

const std::vector<JsonValue>& asArray(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.isArray(), "SEE snapshot: '" << what << "' must be an array");
  return v.array;
}

const std::string& asString(const JsonValue& v, const char* what) {
  HCA_REQUIRE(v.kind == JsonValue::Kind::kString,
              "SEE snapshot: '" << what << "' must be a string");
  return v.string;
}

// --- bit-exact scalar encodings --------------------------------------------

std::string hexBits(std::uint64_t bits) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

std::uint64_t parseHexBits(const std::string& text, const char* what) {
  HCA_REQUIRE(text.size() == 18 && text[0] == '0' && text[1] == 'x',
              "SEE snapshot: '" << what << "' must be an 0x-prefixed 16-digit "
                                   "hex string, got '" << text << "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long bits = std::strtoull(text.c_str() + 2, &end, 16);
  HCA_REQUIRE(errno == 0 && end == text.c_str() + text.size(),
              "SEE snapshot: bad hex in '" << what << "': '" << text << "'");
  return static_cast<std::uint64_t>(bits);
}

std::string doubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return hexBits(bits);
}

double parseDoubleBits(const std::string& text, const char* what) {
  const std::uint64_t bits = parseHexBits(text, what);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --- vector-of-id helpers ---------------------------------------------------

template <class Id>
void writeIds(JsonWriter& json, const std::vector<Id>& ids) {
  json.beginArray();
  for (const Id id : ids) json.value(id.value());
  json.endArray();
}

template <class Id>
std::vector<Id> parseIds(const JsonValue& v, const char* what) {
  std::vector<Id> out;
  out.reserve(asArray(v, what).size());
  for (const JsonValue& e : v.array) out.emplace_back(asI32(e, what));
  return out;
}

// --- Item -------------------------------------------------------------------

void writeItem(JsonWriter& json, const Item& item) {
  json.beginObject();
  json.key("k").value(item.kind == Item::Kind::kRelay ? 1 : 0);
  json.key("n").value(item.node.value());
  json.key("v").value(item.value.value());
  json.endObject();
}

Item parseItem(const JsonValue& v) {
  Item item;
  const std::int32_t kind = asI32(member(v, "k"), "item.k");
  HCA_REQUIRE(kind == 0 || kind == 1, "SEE snapshot: item kind out of range");
  item.kind = kind == 1 ? Item::Kind::kRelay : Item::Kind::kNode;
  item.node = DdgNodeId(asI32(member(v, "n"), "item.n"));
  item.value = ValueId(asI32(member(v, "v"), "item.v"));
  return item;
}

// --- SeeStats ---------------------------------------------------------------

void writeStats(JsonWriter& json, const SeeStats& s) {
  json.beginObject();
  json.key("se").value(s.statesExplored);
  json.key("ce").value(s.candidatesEvaluated);
  json.key("sp").value(s.statesPruned);
  json.key("ri").value(s.routeInvocations);
  json.key("ro").value(s.routedOperands);
  json.key("cr").value(s.candidateRejections);
  json.key("rf").value(s.routeFailures);
  json.key("ca").value(s.copiesAvoided);
  json.key("sm").value(s.snapshotsMaterialized);
  json.key("ap").value(s.arenaBytesPeak);
  json.key("or").value(s.oracleRejects);
  json.key("mh").value(s.routeMemoHits);
  json.key("dp").value(s.dominancePruned);
  json.endObject();
}

/// Optional integer member: snapshots written before the counter existed
/// parse as 0 (checkpoint back-compat).
std::int64_t asIntOr0(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  return m == nullptr ? 0 : asInt(*m, key);
}

SeeStats parseStats(const JsonValue& v) {
  SeeStats s;
  s.statesExplored = asInt(member(v, "se"), "stats.se");
  s.candidatesEvaluated = asInt(member(v, "ce"), "stats.ce");
  s.statesPruned = asInt(member(v, "sp"), "stats.sp");
  s.routeInvocations = asInt(member(v, "ri"), "stats.ri");
  s.routedOperands = asInt(member(v, "ro"), "stats.ro");
  s.candidateRejections = asInt(member(v, "cr"), "stats.cr");
  s.routeFailures = asInt(member(v, "rf"), "stats.rf");
  s.copiesAvoided = asInt(member(v, "ca"), "stats.ca");
  s.snapshotsMaterialized = asInt(member(v, "sm"), "stats.sm");
  s.arenaBytesPeak = asInt(member(v, "ap"), "stats.ap");
  s.oracleRejects = asIntOr0(v, "or");
  s.routeMemoHits = asIntOr0(v, "mh");
  s.dominancePruned = asIntOr0(v, "dp");
  return s;
}

}  // namespace

/// Private-state access point (friend of PartialSolution). All the heavy
/// members are plain id/int vectors; the two bit-sensitive scalars
/// (objective, in-neighbor masks) go through the hex encodings above.
struct SolutionSerializer {
  static void write(JsonWriter& json, const PartialSolution& s) {
    json.beginObject();
    json.key("nc");
    writeIds(json, s.nodeCluster_);
    json.key("rc");
    writeIds(json, s.relayCluster_);
    json.key("us").beginArray();
    for (const machine::ResourceUsage& u : s.usage_) {
      json.beginArray();
      json.value(u.alu);
      json.value(u.ag);
      json.value(u.instructions);
      json.endArray();
    }
    json.endArray();
    json.key("fl").beginArray();
    for (std::size_t arc = 0; arc < s.flow_.numArcLists(); ++arc) {
      writeIds(json, s.flow_.copiesOn(PgArcId(static_cast<std::int32_t>(arc))));
    }
    json.endArray();
    json.key("nm").beginArray();
    for (const std::uint64_t mask : s.inNbrMask_) json.value(hexBits(mask));
    json.endArray();
    json.key("iv").beginArray();
    for (const auto& values : s.inValues_) writeIds(json, values);
    json.endArray();
    json.key("ov").beginArray();
    for (const auto& values : s.outValues_) writeIds(json, values);
    json.endArray();
    json.key("as").value(s.assigned_);
    json.key("ob").value(doubleBits(s.objective_));
    json.endObject();
  }

  static PartialSolution parse(const JsonValue& v) {
    PartialSolution s;
    s.nodeCluster_ = parseIds<ClusterId>(member(v, "nc"), "solution.nc");
    s.relayCluster_ = parseIds<ClusterId>(member(v, "rc"), "solution.rc");
    for (const JsonValue& e : asArray(member(v, "us"), "solution.us")) {
      const auto& triple = asArray(e, "solution.us[]");
      HCA_REQUIRE(triple.size() == 3,
                  "SEE snapshot: usage entry must be [alu, ag, instructions]");
      machine::ResourceUsage u;
      u.alu = asI32(triple[0], "usage.alu");
      u.ag = asI32(triple[1], "usage.ag");
      u.instructions = asI32(triple[2], "usage.instructions");
      s.usage_.push_back(u);
    }
    const auto& flowLists = asArray(member(v, "fl"), "solution.fl");
    s.flow_.resetArcs(flowLists.size());
    for (std::size_t arc = 0; arc < flowLists.size(); ++arc) {
      for (const ValueId value :
           parseIds<ValueId>(flowLists[arc], "solution.fl[]")) {
        s.flow_.addCopy(PgArcId(static_cast<std::int32_t>(arc)), value);
      }
    }
    for (const JsonValue& e : asArray(member(v, "nm"), "solution.nm")) {
      s.inNbrMask_.push_back(parseHexBits(asString(e, "solution.nm[]"),
                                          "solution.nm[]"));
    }
    for (const JsonValue& e : asArray(member(v, "iv"), "solution.iv")) {
      s.inValues_.push_back(parseIds<ValueId>(e, "solution.iv[]"));
    }
    for (const JsonValue& e : asArray(member(v, "ov"), "solution.ov")) {
      s.outValues_.push_back(parseIds<ValueId>(e, "solution.ov[]"));
    }
    s.assigned_ = asI32(member(v, "as"), "solution.as");
    s.objective_ = parseDoubleBits(asString(member(v, "ob"), "solution.ob"),
                                   "solution.ob");
    const std::size_t nodes = s.usage_.size();
    HCA_REQUIRE(s.inNbrMask_.size() == nodes && s.inValues_.size() == nodes &&
                    s.outValues_.size() == nodes,
                "SEE snapshot: per-cluster vectors disagree on node count");
    return s;
  }
};

void writeSeeResult(JsonWriter& json, const SeeResult& result) {
  json.beginObject();
  json.key("legal").value(result.legal);
  json.key("solution");
  SolutionSerializer::write(json, result.solution);
  json.key("alternatives").beginArray();
  for (const PartialSolution& alt : result.alternatives) {
    SolutionSerializer::write(json, alt);
  }
  json.endArray();
  json.key("stats");
  writeStats(json, result.stats);
  json.key("failedItem");
  writeItem(json, result.failedItem);
  json.key("failureReason").value(result.failureReason);
  json.endObject();
}

SeeResult parseSeeResult(const JsonValue& value) {
  SeeResult result;
  const JsonValue& legal = member(value, "legal");
  HCA_REQUIRE(legal.kind == JsonValue::Kind::kBool,
              "SEE snapshot: 'legal' must be a bool");
  result.legal = legal.boolean;
  result.solution = SolutionSerializer::parse(member(value, "solution"));
  for (const JsonValue& alt :
       asArray(member(value, "alternatives"), "alternatives")) {
    result.alternatives.push_back(SolutionSerializer::parse(alt));
  }
  result.stats = parseStats(member(value, "stats"));
  result.failedItem = parseItem(member(value, "failedItem"));
  result.failureReason =
      asString(member(value, "failureReason"), "failureReason");
  return result;
}

}  // namespace hca::see
