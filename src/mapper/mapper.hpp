#pragma once

#include <string>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "machine/reconfig.hpp"
#include "support/ids.hpp"

/// The Mapper (paper Section 3, Figures 9 and 11).
///
/// Takes the assigned Pattern Graph of one hierarchy level (the copy flow on
/// its arcs) and distributes the copies over the physical wires of the MUX
/// interconnect:
///  * a value broadcast to several destinations uses a single output wire of
///    its producer (Fig. 9b);
///  * the remaining copies are spread over the available wires to minimize
///    the per-wire serialization pressure;
///  * every value bound to a boundary output node rides the one wire that
///    drives that outgoing MUX line (unary fan-in);
///  * wires carrying boundary values are pre-allocated by the parent level
///    and cannot be re-purposed (Fig. 11).
///
/// The result is one Inter-Level Interface per child — the input/output
/// wires (with their value lists) of the child's own sub-problem — plus the
/// MUX settings of this level and the wire-pressure statistics.
namespace hca::mapper {

struct WireValues {
  int wire = 0;  // wire index local to its owner (child or boundary)
  std::vector<ValueId> values;
};

/// Inter-Level Interface of one child (Fig. 9c).
struct Ili {
  int child = 0;
  /// Wires entering the child, each carrying the listed values.
  std::vector<WireValues> inputs;
  /// The child's used output wires with the values that must leave on them.
  std::vector<WireValues> outputs;
};

struct MapperInput {
  const machine::PatternGraph* pg = nullptr;
  const machine::CopyFlow* flow = nullptr;
  /// Interconnect figures at this level (machine::LevelSpec).
  int inWiresPerChild = 1;
  int outWiresPerChild = 1;
  /// Additional cap on wires entering one child's sub-problem (the K
  /// crossbar inputs at the leaves); <= 0 means "no extra cap".
  int maxWiresIntoChild = 0;
  /// Per-child overrides of the uniform figures above, used when the fabric
  /// carries faults (dead MUX wires / dead ILI lanes shrink individual
  /// children's budgets). Empty = every child uses the uniform figures;
  /// otherwise one entry per cluster node, 0 entries are legal (a fully
  /// dead child has no surviving wires — and must carry no traffic).
  std::vector<int> inWiresOfChild;
  std::vector<int> outWiresOfChild;
  std::vector<int> maxWiresIntoChildOf;
  /// Identifies this problem in emitted MUX settings.
  std::vector<int> problemPath;
};

struct MapResult {
  bool legal = false;
  std::string failureReason;
  std::vector<Ili> ilis;  // one per child, in cluster order
  machine::ReconfigurationProgram reconfig;
  /// Serialization pressure: the largest number of values time-sharing one
  /// wire (a lower bound on the II contribution of this level's wiring).
  int maxValuesPerWire = 0;
  int wiresUsed = 0;
  /// Output-wire slots the children could have driven (surviving budgets
  /// summed); `wiresUsed / wiresAvailable` is the level's wire-budget
  /// utilization reported by the observability layer.
  int wiresAvailable = 0;
  /// Total value copies distributed over the used wires (sum of per-wire
  /// value-list lengths, boundary input wires included).
  int valuesMapped = 0;
};

/// In emitted MuxSettings, connections feeding boundary *output* wires use
/// dstChild = numChildren + outputNodeIndex (dstWire 0).
class Mapper {
 public:
  [[nodiscard]] MapResult map(const MapperInput& input) const;
};

}  // namespace hca::mapper
