#pragma once

#include <string>
#include <vector>

#include "mapper/final_mapping.hpp"
#include "machine/dspfabric.hpp"
#include "sched/modulo.hpp"

/// DMA engine occupancy model (paper Section 2.2).
///
/// Each cluster sends address requests straight to the programmable DMA;
/// only `dmaSlots` requests can be *accepted* per cycle, and a request is
/// outstanding for the memory service latency. The DMA provides "input and
/// output FIFOs — of depth equal to the serving time — for handling high
/// memory pressure": with at most `dmaSlots` accepts per cycle for
/// `serviceLatency` cycles, at most dmaSlots * serviceLatency requests are
/// ever in flight, which is exactly the FIFO capacity. This module replays
/// a modulo schedule against that model and reports the steady-state
/// occupancy profile — the check "the compiler must ensure that the amount
/// of simultaneous requests does not exceed that limit".
namespace hca::sim {

struct DmaProfile {
  int ii = 0;
  int serviceLatency = 0;
  int fifoCapacity = 0;  // dmaSlots * serviceLatency
  /// Requests accepted at each steady-state cycle (mod II).
  std::vector<int> acceptsPerSlot;
  /// Outstanding requests at each steady-state cycle (mod II).
  std::vector<int> outstandingPerSlot;
  int peakAccepts = 0;
  int peakOutstanding = 0;

  /// True when the schedule never overruns the accept rate or the FIFOs.
  [[nodiscard]] bool withinCapacity(int dmaSlots) const {
    return peakAccepts <= dmaSlots && peakOutstanding <= fifoCapacity;
  }

  [[nodiscard]] std::string toString() const;
};

/// Replays the schedule's memory operations through the DMA model. The
/// service latency defaults to the load latency of the machine's latency
/// model (the FIFO depth the paper describes).
DmaProfile profileDma(const mapper::FinalMapping& mapping,
                      const machine::DspFabricModel& model,
                      const sched::Schedule& schedule,
                      int serviceLatency = 0);

}  // namespace hca::sim
