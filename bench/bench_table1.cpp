// E1 + E3: reproduces Table 1 of the paper ("HCA test on four multimedia
// application loops") and the Section 5 narration that the final MII stays
// close to the theoretical optimum of an equivalent unified-bank machine.
//
// Columns: the paper's inputs (N_Instr, MIIRec, MIIRes), the legality
// verdict and final MII of our HCA implementation, the paper's published
// final MII, and — beyond the paper — the II actually achieved by the
// modulo scheduler plus the end-to-end simulator verdict.

#include <cstdio>
#include <ctime>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "sched/modulo.hpp"
#include "sim/simulator.hpp"

using namespace hca;

int main() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;  // the paper's best configuration
  const machine::DspFabricModel model(config);

  std::printf("Table 1 — HCA test on four multimedia application loops\n");
  std::printf("Machine: %s\n\n", config.toString().c_str());
  std::printf(
      "%-16s %7s %6s %6s %6s | %5s %8s %9s | %8s %6s %5s\n", "Loop",
      "N_Instr", "MIIRec", "MIIRes", "iniMII", "legal", "finalMII",
      "paperMII", "schedII", "simOK", "sec");
  std::printf("%s\n", std::string(104, '-').c_str());

  for (auto& kernel : ddg::table1Kernels()) {
    const auto stats = kernel.ddg.stats();
    const int miiRec =
        static_cast<int>(kernel.ddg.miiRec(model.config().latency));
    const int miiRes = core::unifiedMiiRes(stats, model);

    const std::clock_t t0 = std::clock();
    const core::HcaDriver driver(model);
    const auto result = driver.run(kernel.ddg);
    const double seconds =
        static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;

    if (!result.legal) {
      std::printf("%-16s %7d %6d %6d %6d | %5s %8s %9d | %8s %6s %5.1f\n",
                  kernel.name.c_str(), stats.numInstructions, miiRec, miiRes,
                  std::max(miiRec, miiRes), "no", "-", kernel.paper.finalMii,
                  "-", "-", seconds);
      continue;
    }
    const auto mii = core::computeMii(kernel.ddg, model, result);
    const auto mapping = core::buildFinalMapping(kernel.ddg, model, result);
    const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);

    const char* simVerdict = "-";
    if (sched.ok) {
      const int iterations = std::min(kernel.safeIterations, 8);
      sim::SimConfig simConfig;
      simConfig.iterations = iterations;
      simConfig.memory =
          ddg::kernelInterpConfig(kernel, iterations).memory;
      simVerdict = sim::matchesReference(kernel.ddg, mapping, model,
                                         sched.schedule, simConfig)
                       ? "yes"
                       : "NO";
    }
    std::printf("%-16s %7d %6d %6d %6d | %5s %8d %9d | %8d %6s %5.1f\n",
                kernel.name.c_str(), stats.numInstructions, miiRec, miiRes,
                mii.iniMii, "yes", mii.finalMii, kernel.paper.finalMii,
                sched.ok ? sched.schedule.ii : -1, simVerdict, seconds);
  }
  std::printf(
      "\nNotes: N_Instr/MIIRec/MIIRes reproduce the paper exactly (input\n"
      "calibration, DESIGN.md §4). finalMII is our heuristic's result; the\n"
      "paper reports 3/3/8/6 with months of hand-tuning. schedII is the\n"
      "modulo scheduler's achieved II (>= finalMII by construction); simOK\n"
      "verifies the scheduled fabric execution against the reference\n"
      "interpreter.\n");
  return 0;
}
