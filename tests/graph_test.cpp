#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "support/check.hpp"

namespace hca::graph {
namespace {

Digraph chain(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

// --- Digraph ---------------------------------------------------------------

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g;
  EXPECT_EQ(g.numNodes(), 0);
  const auto a = g.addNode();
  const auto b = g.addNode();
  const auto e = g.addEdge(a, b);
  EXPECT_EQ(g.numNodes(), 2);
  EXPECT_EQ(g.numEdges(), 1);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_EQ(g.outDegree(a), 1);
  EXPECT_EQ(g.inDegree(b), 1);
  EXPECT_EQ(g.inDegree(a), 0);
}

TEST(DigraphTest, ParallelEdgesAllowed) {
  Digraph g(2);
  g.addEdge(0, 1);
  g.addEdge(0, 1);
  EXPECT_EQ(g.numEdges(), 2);
  EXPECT_EQ(g.outDegree(0), 2);
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(1);
  g.addEdge(0, 0);
  EXPECT_EQ(g.inDegree(0), 1);
  EXPECT_EQ(g.outDegree(0), 1);
}

TEST(DigraphTest, OutOfRangeEdgeThrows) {
  Digraph g(1);
  EXPECT_THROW(g.addEdge(0, 1), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(-1, 0), InvalidArgumentError);
}

TEST(DigraphTest, ResizeCannotShrink) {
  Digraph g(4);
  EXPECT_THROW(g.resize(2), InvalidArgumentError);
  g.resize(6);
  EXPECT_EQ(g.numNodes(), 6);
}

// --- topological order -----------------------------------------------------

TEST(TopoTest, ChainOrder) {
  const auto g = chain(5);
  const auto order = topologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(TopoTest, DetectsCycle) {
  Digraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  EXPECT_FALSE(topologicalOrder(g).has_value());
  EXPECT_TRUE(hasCycle(g, [](std::int32_t) { return true; }));
}

TEST(TopoTest, FilteredEdgesBreakCycle) {
  Digraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const auto back = g.addEdge(2, 0);
  const auto order =
      topologicalOrder(g, [&](std::int32_t e) { return e != back; });
  ASSERT_TRUE(order.has_value());
  EXPECT_FALSE(hasCycle(g, [&](std::int32_t e) { return e != back; }));
}

TEST(TopoTest, RespectsAllEdges) {
  Digraph g(4);
  g.addEdge(2, 0);
  g.addEdge(0, 1);
  g.addEdge(3, 1);
  const auto order = topologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>((*order)[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[3], pos[1]);
}

// --- SCC -------------------------------------------------------------------

TEST(SccTest, SingletonComponents) {
  const auto g = chain(4);
  const auto scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 4);
}

TEST(SccTest, OneBigComponent) {
  Digraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  const auto scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 1);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
}

TEST(SccTest, MixedComponents) {
  // 0<->1 cycle, 2 alone, 3<->4 cycle; 1->2->3 connects them weakly.
  Digraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  g.addEdge(4, 3);
  const auto scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 3);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_NE(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  const auto groups = scc.groups();
  std::size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 5u);
}

TEST(SccTest, DeepGraphNoStackOverflow) {
  // 20k-node cycle: recursive Tarjan would overflow the stack.
  const int n = 20000;
  Digraph g(n);
  for (int i = 0; i < n; ++i) g.addEdge(i, (i + 1) % n);
  const auto scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 1);
}

// --- longest paths ---------------------------------------------------------

TEST(LongestPathTest, FromSources) {
  Digraph g(4);
  const auto e01 = g.addEdge(0, 1);
  const auto e12 = g.addEdge(1, 2);
  const auto e02 = g.addEdge(0, 2);
  g.addEdge(2, 3);
  const auto keep = [](std::int32_t) { return true; };
  const auto w = [&](std::int32_t e) -> std::int64_t {
    if (e == e01) return 1;
    if (e == e12) return 1;
    if (e == e02) return 5;
    return 2;
  };
  const auto dist = longestPathFromSources(g, keep, w);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 5);
  EXPECT_EQ(dist[3], 7);
}

TEST(LongestPathTest, ToSinks) {
  Digraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const auto keep = [](std::int32_t) { return true; };
  const auto w = [](std::int32_t) -> std::int64_t { return 3; };
  const auto h = longestPathToSinks(g, keep, w);
  EXPECT_EQ(h[0], 6);
  EXPECT_EQ(h[1], 3);
  EXPECT_EQ(h[2], 0);
}

TEST(LongestPathTest, ThrowsOnCycle) {
  Digraph g(2);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  const auto keep = [](std::int32_t) { return true; };
  const auto w = [](std::int32_t) -> std::int64_t { return 1; };
  EXPECT_THROW(longestPathFromSources(g, keep, w), InvalidArgumentError);
}

// --- positive cycle / MII --------------------------------------------------

TEST(PositiveCycleTest, DetectsPositive) {
  Digraph g(2);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  EXPECT_TRUE(hasPositiveCycle(g, [](std::int32_t) { return 1; }));
  EXPECT_FALSE(hasPositiveCycle(g, [](std::int32_t) { return 0; }));
  EXPECT_FALSE(hasPositiveCycle(g, [](std::int32_t) { return -1; }));
}

TEST(PositiveCycleTest, AcyclicNeverPositive) {
  const auto g = chain(6);
  EXPECT_FALSE(hasPositiveCycle(g, [](std::int32_t) { return 100; }));
}

TEST(MiiTest, SimpleRecurrence) {
  // Self-recurrence: latency 3, distance 1 -> MII 3.
  Digraph g(1);
  g.addEdge(0, 0);
  const auto mii = minFeasibleInitiationInterval(
      g, [](std::int32_t) { return 3; }, [](std::int32_t) { return 1; });
  EXPECT_EQ(mii, 3);
}

TEST(MiiTest, DistanceTwoHalvesRatio) {
  // Cycle latency 5, total distance 2 -> ceil(5/2) = 3.
  Digraph g(2);
  const auto e0 = g.addEdge(0, 1);
  g.addEdge(1, 0);
  const auto lat = [&](std::int32_t e) -> std::int64_t {
    return e == e0 ? 2 : 3;
  };
  const auto dist = [&](std::int32_t e) -> std::int64_t {
    return e == e0 ? 0 : 2;
  };
  EXPECT_EQ(minFeasibleInitiationInterval(g, lat, dist), 3);
}

TEST(MiiTest, MaxOverCycles) {
  // Two disjoint cycles, ratios 2 and 4 -> MII 4.
  Digraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.addEdge(2, 3);
  g.addEdge(3, 2);
  // Cycle {0,1}: latency 1+1 = 2, distance 1 -> ratio 2.
  // Cycle {2,3}: latency 2+2 = 4, distance 1 -> ratio 4.
  const auto lat = [&](std::int32_t e) -> std::int64_t {
    return e < 2 ? 1 : 2;
  };
  const auto dist = [&](std::int32_t e) -> std::int64_t {
    return (e == 1 || e == 3) ? 1 : 0;
  };
  EXPECT_EQ(minFeasibleInitiationInterval(g, lat, dist), 4);
}

TEST(MiiTest, AcyclicIsOne) {
  const auto g = chain(5);
  EXPECT_EQ(minFeasibleInitiationInterval(
                g, [](std::int32_t) { return 9; },
                [](std::int32_t) { return 0; }),
            1);
}

TEST(MiiTest, ZeroDistanceCycleThrows) {
  Digraph g(2);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  EXPECT_THROW(minFeasibleInitiationInterval(
                   g, [](std::int32_t) { return 1; },
                   [](std::int32_t) { return 0; }),
               InvalidArgumentError);
}

// Parameterized sweep: self-loop of latency L, distance D -> ceil(L/D).
class MiiRatioTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MiiRatioTest, MatchesCeilRatio) {
  const auto [lat, dist] = GetParam();
  Digraph g(1);
  g.addEdge(0, 0);
  const auto mii = minFeasibleInitiationInterval(
      g, [&](std::int32_t) { return lat; },
      [&](std::int32_t) { return dist; });
  const std::int64_t expected = std::max<std::int64_t>(1, (lat + dist - 1) / dist);
  EXPECT_EQ(mii, expected) << "lat=" << lat << " dist=" << dist;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MiiRatioTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 30),
                       ::testing::Values(1, 2, 3, 4)));

// --- paths / reachability ---------------------------------------------------

TEST(PathTest, FindsShortest) {
  Digraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 4);
  g.addEdge(0, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  const auto keep = [](std::int32_t) { return true; };
  const auto path = shortestPath(g, 0, 4, keep);
  EXPECT_EQ(path, (std::vector<std::int32_t>{0, 1, 4}));
}

TEST(PathTest, UnreachableReturnsEmpty) {
  Digraph g(3);
  g.addEdge(0, 1);
  const auto keep = [](std::int32_t) { return true; };
  EXPECT_TRUE(shortestPath(g, 1, 0, keep).empty());
  EXPECT_TRUE(shortestPath(g, 0, 2, keep).empty());
}

TEST(PathTest, RespectsEdgeFilter) {
  Digraph g(3);
  const auto e01 = g.addEdge(0, 1);
  g.addEdge(1, 2);
  const auto path =
      shortestPath(g, 0, 2, [&](std::int32_t e) { return e != e01; });
  EXPECT_TRUE(path.empty());
}

TEST(PathTest, TrivialPath) {
  Digraph g(1);
  const auto keep = [](std::int32_t) { return true; };
  EXPECT_EQ(shortestPath(g, 0, 0, keep), (std::vector<std::int32_t>{0}));
}

TEST(ReachabilityTest, Basic) {
  Digraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const auto keep = [](std::int32_t) { return true; };
  const auto seen = reachableFrom(g, 0, keep);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

}  // namespace
}  // namespace hca::graph
