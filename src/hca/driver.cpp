#include "hca/driver.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <set>

#include "mapper/mapper.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace hca::core {

HcaDriver::HcaDriver(machine::DspFabricModel model, HcaOptions options)
    : model_(std::move(model)), options_(options) {}

see::SeeOptions HcaDriver::profileOptions(int target, int profile) const {
  see::SeeOptions seeOptions = options_.see;
  seeOptions.weights.targetIi = target;
  switch (profile) {
    case 0: break;  // configured options
    case 1:
      seeOptions.chainGrouping = !seeOptions.chainGrouping;
      break;
    case 2:
      seeOptions.beamWidth = seeOptions.beamWidth * 2;
      seeOptions.candidateKeep = seeOptions.candidateKeep + 2;
      break;
    case 3:
      // Locality-heavy: copies and wiring budget dominate.
      seeOptions.weights.copyCount *= 3;
      seeOptions.weights.wiringSlack *= 2;
      seeOptions.weights.criticalPath *= 2;
      break;
    default:
      // Spread-heavy with deep routing.
      seeOptions.chainGrouping = !seeOptions.chainGrouping;
      seeOptions.weights.loadBalance *= 4;
      seeOptions.maxRouteHops += 2;
      seeOptions.beamWidth = seeOptions.beamWidth * 2;
      break;
  }
  return seeOptions;
}

HcaResult HcaDriver::runAttempt(const ddg::Ddg& ddg,
                                const std::vector<DdgNodeId>& rootWs,
                                int target, int profile,
                                SubproblemCache* cache,
                                const CancellationToken* cancel) const {
  const see::SeeOptions seeOptions = profileOptions(target, profile);
  HcaResult result;
  result.assignment.assign(static_cast<std::size_t>(ddg.numNodes()),
                           CnId::invalid());
  const SolveContext ctx{seeOptions, cache, cancel};
  result.legal = solve(ddg, /*path=*/{}, rootWs, /*relayValues=*/{},
                       Boundary{}, ctx, result);
  result.stats.outerAttempts = 1;
  if (result.legal) {
    result.stats.achievedTargetIi = target;
    // Every instruction must have landed on a CN.
    for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
      if (!ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) continue;
      HCA_CHECK(result.assignment[static_cast<std::size_t>(v)].valid(),
                "instruction " << v << " left unassigned by HCA");
    }
    result.reconfig.validate();
    // Recompute from the surviving records: the running value may include
    // pressure from backtracked (rolled-back) attempts.
    result.stats.maxWirePressure = 0;
    for (const auto& record : result.records) {
      result.stats.maxWirePressure =
          std::max(result.stats.maxWirePressure,
                   record->mapResult.maxValuesPerWire);
    }
  }
  return result;
}

HcaResult HcaDriver::runSerialSweep(const ddg::Ddg& ddg,
                                    const std::vector<DdgNodeId>& rootWs,
                                    int iniMii, SubproblemCache* cache) const {
  HcaStats sweepStats;
  HcaResult best;
  for (int target = iniMii;
       target <= iniMii + std::max(0, options_.targetIiSlack); ++target) {
    for (int profile = 0; profile < std::max(1, options_.searchProfiles);
         ++profile) {
      HcaResult result =
          runAttempt(ddg, rootWs, target, profile, cache, nullptr);
      if (result.legal) {
        result.stats.merge(sweepStats);
        return result;
      }
      sweepStats.merge(result.stats);
      best = std::move(result);
    }
  }
  // No attempt succeeded: the last attempt's failure with the sweep's
  // aggregate counters (achievedTargetIi = 0 means "none").
  const int lastMaxWire = best.stats.maxWirePressure;
  best.stats = sweepStats;
  best.stats.maxWirePressure = lastMaxWire;
  best.stats.achievedTargetIi = 0;
  return best;
}

HcaResult HcaDriver::runParallelSweep(const ddg::Ddg& ddg,
                                      const std::vector<DdgNodeId>& rootWs,
                                      int iniMii, SubproblemCache* cache,
                                      int numThreads) const {
  const int numProfiles = std::max(1, options_.searchProfiles);
  const int numTargets = 1 + std::max(0, options_.targetIiSlack);
  const int numAttempts = numTargets * numProfiles;

  struct AttemptSlot {
    HcaResult result;
    bool completed = false;  // runAttempt returned
    bool skipped = false;    // soft-cancelled before it started
    std::exception_ptr error;
  };
  std::vector<AttemptSlot> slots(static_cast<std::size_t>(numAttempts));
  std::vector<CancellationToken> tokens(static_cast<std::size_t>(numAttempts));
  // Lowest attempt index known to be legal: attempts above it can no
  // longer be the returned result (the sweep is ordered), so they are
  // soft-cancelled.
  std::atomic<int> bestLegal{numAttempts};

  ThreadPool pool(numThreads);
  for (int i = 0; i < numAttempts; ++i) {
    pool.submit([&, i] {
      AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
      CancellationToken& token = tokens[static_cast<std::size_t>(i)];
      if (token.cancelled() ||
          bestLegal.load(std::memory_order_acquire) < i) {
        slot.skipped = true;
        return;
      }
      try {
        const int target = iniMii + i / numProfiles;
        const int profile = i % numProfiles;
        HcaResult result =
            runAttempt(ddg, rootWs, target, profile, cache, &token);
        if (result.legal) {
          int current = bestLegal.load(std::memory_order_acquire);
          while (i < current &&
                 !bestLegal.compare_exchange_weak(current, i,
                                                  std::memory_order_acq_rel)) {
          }
          for (int j = i + 1; j < numAttempts; ++j) {
            tokens[static_cast<std::size_t>(j)].cancel();
          }
        }
        slot.result = std::move(result);
        slot.completed = true;
      } catch (...) {
        slot.error = std::current_exception();
      }
    });
  }
  pool.wait();

  int winner = -1;
  for (int i = 0; i < numAttempts; ++i) {
    const AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
    if (slot.completed && slot.result.legal) {
      winner = i;
      break;
    }
  }
  // Serial parity for exceptions: only errors the serial sweep would have
  // reached (before its first legal attempt) propagate.
  const int errorHorizon = winner < 0 ? numAttempts : winner;
  for (int i = 0; i < errorHorizon; ++i) {
    if (slots[static_cast<std::size_t>(i)].error != nullptr) {
      std::rethrow_exception(slots[static_cast<std::size_t>(i)].error);
    }
  }

  HcaStats aggregate;
  for (int i = 0; i < numAttempts; ++i) {
    AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
    if (i == winner) continue;
    if (slot.skipped) {
      ++aggregate.attemptsCancelled;
      continue;
    }
    if (!slot.completed) continue;  // errored past the winner
    aggregate.merge(slot.result.stats);
    if (!slot.result.legal && tokens[static_cast<std::size_t>(i)].cancelled()) {
      ++aggregate.attemptsCancelled;
    }
  }

  if (winner >= 0) {
    HcaResult result = std::move(slots[static_cast<std::size_t>(winner)].result);
    result.stats.merge(aggregate);
    return result;
  }
  // No attempt succeeded; nothing was cancelled (cancellation only follows
  // a legal result), so every slot completed. Mirror the serial sweep:
  // return the last attempt's failure with the aggregate counters.
  HcaResult best =
      std::move(slots[static_cast<std::size_t>(numAttempts - 1)].result);
  const int lastMaxWire = best.stats.maxWirePressure;
  best.stats = aggregate;
  best.stats.maxWirePressure = lastMaxWire;
  best.stats.achievedTargetIi = 0;
  return best;
}

HcaResult HcaDriver::run(const ddg::Ddg& ddg) const {
  ddg.validate();

  // Base target II for the cost function (Section 4.2): clusters below
  // iniMII are never the bottleneck, so the search may pack them for
  // locality.
  int iniMii = options_.see.weights.targetIi;
  if (iniMii <= 1) {
    const auto stats = ddg.stats();
    const int issue = (stats.numInstructions + model_.totalCns() - 1) /
                      model_.totalCns();
    const int mem = (stats.numMemOps + model_.config().dmaSlots - 1) /
                    model_.config().dmaSlots;
    iniMii = static_cast<int>(std::max<std::int64_t>(
        {ddg.miiRec(model_.config().latency), issue, mem, 1}));
  }

  std::vector<DdgNodeId> rootWs;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) rootWs.emplace_back(v);
  }

  // One cache per run: the DDG (the part of a sub-problem the cache key
  // does not serialize) is fixed for its lifetime.
  SubproblemCache cache;
  SubproblemCache* cachePtr =
      options_.enableSubproblemCache ? &cache : nullptr;

  // Outer loop: smallest target II first (the modulo-scheduling II search
  // applied to clusterization), a few heuristic profiles per target —
  // serially, or as a parallel portfolio with deterministic selection.
  const int numAttempts = (1 + std::max(0, options_.targetIiSlack)) *
                          std::max(1, options_.searchProfiles);
  const int threads =
      std::min(ThreadPool::resolveThreads(options_.numThreads), numAttempts);
  HcaResult best =
      threads <= 1
          ? runSerialSweep(ddg, rootWs, iniMii, cachePtr)
          : runParallelSweep(ddg, rootWs, iniMii, cachePtr, threads);
  if (best.legal) return best;

  // Degraded-bandwidth fallback: solve on a copy of the machine whose MUX
  // capacities are clamped to 2. The produced wiring uses a subset of the
  // real wires, so the result is valid (if slow) on the real fabric.
  if (options_.degradedFallback &&
      (model_.config().n > 2 || model_.config().m > 2 ||
       model_.config().k > 2)) {
    machine::DspFabricConfig degradedConfig = model_.config();
    degradedConfig.n = std::min(degradedConfig.n, 2);
    degradedConfig.m = std::min(degradedConfig.m, 2);
    degradedConfig.k = std::min(degradedConfig.k, 2);
    HcaOptions degradedOptions = options_;
    degradedOptions.degradedFallback = false;
    degradedOptions.targetIiSlack = std::max(options_.targetIiSlack, 6);
    const HcaDriver degraded(
        machine::DspFabricModel(degradedConfig), degradedOptions);
    HcaResult result = degraded.run(ddg);
    if (result.legal) {
      result.stats.merge(best.stats);
      return result;
    }
    best.stats.merge(result.stats);
  }
  return best;
}

bool HcaDriver::solve(const ddg::Ddg& ddg, const std::vector<int>& path,
                      std::vector<DdgNodeId> workingSet,
                      std::vector<ValueId> relayValues,
                      const Boundary& boundary, const SolveContext& ctx,
                      HcaResult& result) const {
  if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
    result.failureReason = "attempt cancelled";
    return false;
  }
  const int level = static_cast<int>(path.size());
  const bool leaf = level == model_.numLevels() - 1;
  const machine::LevelSpec spec = model_.levelSpec(level);

  auto record = std::make_unique<ProblemRecord>();
  record->path = path;
  record->level = level;
  record->leaf = leaf;
  record->workingSet = workingSet;
  record->relayValues = relayValues;

  // --- Pattern graph with boundary nodes (Section 4.1, Fig. 10b). ---------
  record->pg = model_.patternGraph(level);
  see::SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = std::move(workingSet);
  problem.relayValues = std::move(relayValues);
  problem.constraints = model_.constraints(level);
  // Keep the next level solvable: a leaf's CNs can only absorb a handful
  // of incoming wires (Section 4.1: "the constraints must ensure that the
  // module Mapper will be able to map PG onto the Machine Model").
  const bool childrenAreLeaves = level + 1 == model_.numLevels() - 1;
  if (childrenAreLeaves && options_.leafParentMaxInNeighbors > 0 &&
      problem.constraints.maxInNeighbors > 0) {
    problem.constraints.maxInNeighbors =
        std::min(problem.constraints.maxInNeighbors,
                 options_.leafParentMaxInNeighbors);
  }
  problem.latency = model_.config().latency;
  problem.inWiresPerCluster = spec.inWires;
  problem.outWiresPerCluster = spec.outWires;

  for (const auto& wire : boundary.inputs) {
    const ClusterId in = record->pg.addInputNode(
        wire.values, strCat("in", wire.wire));
    for (const ValueId v : wire.values) {
      problem.valueSources.emplace(v, in);
    }
  }
  for (const auto& wire : boundary.outputs) {
    const ClusterId out =
        record->pg.addOutputNode(strCat("out", wire.wire), wire.values);
    problem.outputRequirements.push_back({out, wire.values});
  }
  record->pg.connectBoundaryNodes();
  problem.pg = &record->pg;

  // --- Single-level cluster assignment (Section 4.2), memoized. ------------
  // The cache key covers everything the (deterministic) SEE result depends
  // on except the fixed DDG; see subproblem_cache.hpp. A hit replays the
  // recorded result — including its stats, so aggregate counters stay
  // byte-identical with the cache off.
  std::shared_ptr<const see::SeeResult> cacheEntry;
  std::string cacheKey;
  if (ctx.cache != nullptr) {
    cacheKey = subproblemKey(record->pg, problem.constraints, problem.latency,
                             spec.inWires, spec.outWires, boundary.inputs,
                             boundary.outputs, problem.workingSet,
                             problem.relayValues, ctx.seeOptions);
    cacheEntry = ctx.cache->lookup(cacheKey);
  }
  see::SeeResult freshResult;
  const see::SeeResult* seePtr = nullptr;
  if (cacheEntry != nullptr) {
    ++result.stats.cacheHits;
    seePtr = cacheEntry.get();
  } else {
    const see::SpaceExplorationEngine engine(ctx.seeOptions);
    freshResult = engine.run(problem, ctx.cancel);
    // Never cache a search aborted by cancellation: its "illegal" verdict
    // is an artifact of the abort, not a property of the sub-problem. A
    // legal result is always a complete computation and safe to cache.
    const bool aborted = !freshResult.legal && ctx.cancel != nullptr &&
                         ctx.cancel->cancelled();
    if (ctx.cache != nullptr && !aborted) {
      ++result.stats.cacheMisses;
      cacheEntry = ctx.cache->insert(cacheKey, std::move(freshResult));
      seePtr = cacheEntry.get();
    } else {
      seePtr = &freshResult;
    }
  }
  const see::SeeResult& seeResult = *seePtr;

  record->seeStats = seeResult.stats;
  ++result.stats.problemsSolved;
  result.stats.statesExplored += seeResult.stats.statesExplored;
  result.stats.candidatesEvaluated += seeResult.stats.candidatesEvaluated;
  result.stats.routeInvocations += seeResult.stats.routeInvocations;

  if (!seeResult.legal) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      result.failureReason = "attempt cancelled";
      return false;
    }
    result.failureReason = strCat("sub-problem [", strJoin(path, "."),
                                  "] (level ", level,
                                  "): ", seeResult.failureReason);
    result.failureRecord = std::move(record);
    return false;
  }

  // --- Try the frontier's assignments in order; backtrack on deep failure.
  const auto clusters = record->pg.clusterNodes();
  const int numAlternatives = std::min<int>(
      std::max(1, options_.maxAlternatives),
      static_cast<int>(seeResult.alternatives.size()));
  std::string lastFailure;
  for (int alt = 0; alt < numAlternatives; ++alt) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      result.failureReason = "attempt cancelled";
      return false;
    }
    if (alt > 0) {
      if (result.stats.backtrackAttempts >= options_.backtrackBudget) break;
      ++result.stats.backtrackAttempts;
    }
    const auto& solution = seeResult.alternatives[static_cast<std::size_t>(alt)];

    // Snapshot for rollback.
    const std::size_t savedRecords = result.records.size();
    const std::size_t savedSettings = result.reconfig.settings.size();
    const std::size_t savedRelays = result.relays.size();

    auto attempt = std::make_unique<ProblemRecord>(*record);
    attempt->flow = solution.flow();
    attempt->clusterSummaries.clear();
    for (const ClusterId c : clusters) {
      ClusterSummary summary;
      summary.cluster = c;
      summary.instructions = solution.usage(c).instructions;
      summary.aluOps = solution.usage(c).alu;
      summary.agOps = solution.usage(c).ag;
      summary.distinctValuesIn = solution.distinctValuesIn(c);
      summary.distinctValuesOut = solution.distinctValuesOut(c);
      attempt->clusterSummaries.push_back(summary);
    }
    const auto childOf = [&](ClusterId c) {
      const auto it = std::find(clusters.begin(), clusters.end(), c);
      HCA_CHECK(it != clusters.end(), "assignment to a non-cluster node");
      return static_cast<int>(it - clusters.begin());
    };
    attempt->wsChild.clear();
    attempt->wsChild.reserve(attempt->workingSet.size());
    for (const DdgNodeId n : attempt->workingSet) {
      attempt->wsChild.push_back(childOf(solution.clusterOf(n)));
    }
    attempt->relayChild.clear();
    attempt->relayChild.reserve(attempt->relayValues.size());
    for (std::size_t i = 0; i < attempt->relayValues.size(); ++i) {
      attempt->relayChild.push_back(
          childOf(solution.relayCluster(static_cast<int>(i))));
    }

    // --- Map copies onto wires, derive the children's ILIs (Fig. 9/11). ----
    mapper::MapperInput mapInput;
    mapInput.pg = &attempt->pg;
    mapInput.flow = &attempt->flow;
    mapInput.inWiresPerChild = spec.inWires;
    mapInput.outWiresPerChild = spec.outWires;
    mapInput.maxWiresIntoChild = leaf ? 0 : spec.maxWiresIntoChild;
    mapInput.problemPath = path;
    const mapper::Mapper mapperPass;
    attempt->mapResult = mapperPass.map(mapInput);
    if (!attempt->mapResult.legal) {
      lastFailure = strCat("sub-problem [", strJoin(path, "."), "] (level ",
                           level, ") mapper: ",
                           attempt->mapResult.failureReason);
      continue;
    }
    result.stats.maxWirePressure = std::max(
        result.stats.maxWirePressure, attempt->mapResult.maxValuesPerWire);
    for (const auto& setting : attempt->mapResult.reconfig.settings) {
      result.reconfig.settings.push_back(setting);
    }

    if (leaf) {
      // Children are computation nodes: record final placements.
      for (std::size_t i = 0; i < attempt->workingSet.size(); ++i) {
        auto cnPath = path;
        cnPath.push_back(attempt->wsChild[i]);
        result.assignment[attempt->workingSet[i].index()] =
            model_.cnIdOf(cnPath);
      }
      for (std::size_t i = 0; i < attempt->relayValues.size(); ++i) {
        auto cnPath = path;
        cnPath.push_back(attempt->relayChild[i]);
        result.relays.push_back(
            RelayPlacement{attempt->relayValues[i], model_.cnIdOf(cnPath)});
      }
      result.records.push_back(std::move(attempt));
      return true;
    }

    // --- Recurse into the children. ----------------------------------------
    const int numChildren = spec.children;
    std::vector<std::vector<DdgNodeId>> childWs(
        static_cast<std::size_t>(numChildren));
    for (std::size_t i = 0; i < attempt->workingSet.size(); ++i) {
      childWs[static_cast<std::size_t>(attempt->wsChild[i])].push_back(
          attempt->workingSet[i]);
    }
    // A child relays every value that leaves it without being produced by
    // its working set (parked parent relays and route-allocated
    // pass-throughs created at this level).
    std::vector<std::vector<ValueId>> childRelays(
        static_cast<std::size_t>(numChildren));
    for (int i = 0; i < numChildren; ++i) {
      std::set<ValueId> produced;
      for (const DdgNodeId n : childWs[static_cast<std::size_t>(i)]) {
        produced.insert(ValueId(n.value()));
      }
      std::set<ValueId> seen;
      for (const auto& wire :
           attempt->mapResult.ilis[static_cast<std::size_t>(i)].outputs) {
        for (const ValueId v : wire.values) {
          if (produced.count(v) == 0 && seen.insert(v).second) {
            childRelays[static_cast<std::size_t>(i)].push_back(v);
          }
        }
      }
    }

    if (Logger::instance().enabled(LogLevel::kDebug)) {
      for (int i = 0; i < numChildren; ++i) {
        for (const auto& wire :
             attempt->mapResult.ilis[static_cast<std::size_t>(i)].outputs) {
          if (wire.values.size() < 4) continue;
          std::string vals;
          for (const ValueId v : wire.values) {
            vals += std::to_string(v.value()) + " ";
          }
          HCA_DEBUG("problem [" << strJoin(path, ".") << "] child " << i
                                << " fat out wire " << wire.wire << ": "
                                << vals);
        }
      }
    }
    const ProblemRecord* recordPtr = attempt.get();
    result.records.push_back(std::move(attempt));

    bool childrenOk = true;
    for (int i = 0; i < numChildren; ++i) {
      Boundary childBoundary;
      childBoundary.inputs =
          recordPtr->mapResult.ilis[static_cast<std::size_t>(i)].inputs;
      childBoundary.outputs =
          recordPtr->mapResult.ilis[static_cast<std::size_t>(i)].outputs;
      auto childPath = path;
      childPath.push_back(i);
      if (!solve(ddg, childPath, childWs[static_cast<std::size_t>(i)],
                 childRelays[static_cast<std::size_t>(i)], childBoundary,
                 ctx, result)) {
        childrenOk = false;
        break;
      }
    }
    if (childrenOk) return true;

    // Roll back this attempt's contributions and try the next alternative.
    lastFailure = result.failureReason;
    result.records.resize(savedRecords);
    result.reconfig.settings.resize(savedSettings);
    result.relays.resize(savedRelays);
    for (const DdgNodeId n : problem.workingSet) {
      result.assignment[n.index()] = CnId::invalid();
    }
  }

  result.failureReason = lastFailure.empty()
                             ? strCat("sub-problem [", strJoin(path, "."),
                                      "] exhausted alternatives")
                             : lastFailure;
  // Keep the problem description (without flow) for diagnostics.
  if (result.failureRecord == nullptr) {
    result.failureRecord = std::move(record);
  }
  return false;
}

}  // namespace hca::core
