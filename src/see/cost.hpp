#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "see/partial_solution.hpp"
#include "see/prepared.hpp"

/// Pluggable cost criteria (paper Section 3: "the assignment n -> c is
/// evaluated by an objective function based on a collection of cost
/// criteria"). Each criterion scores a whole partial solution; the
/// WeightedObjective combines them. Lower is better.
namespace hca::see {

class CostCriterion {
 public:
  virtual ~CostCriterion() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double score(const PreparedProblem& prepared,
                                     const PartialSolution& solution)
      const = 0;
};

/// The paper's main cost factor (Section 4.2): an estimate of
/// maxClsMII = max over clusters of the per-cluster MII, accounting for the
/// issue slots (instructions plus one receive per distinct incoming value)
/// and the copy pressure the Mapper will have to serialize over the
/// cluster's input/output wires.
class IiEstimateCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "ii-estimate"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;

  /// The per-cluster MII estimate itself, exposed for the final metric.
  static int clusterMii(const PreparedProblem& prepared,
                        const PartialSolution& solution, ClusterId cluster);
  static int maxClusterMii(const PreparedProblem& prepared,
                           const PartialSolution& solution);
};

/// Total number of inter-cluster copies (arc/value pairs).
class CopyCountCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "copy-count"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Spread of issue-slot occupancy across clusters (max - mean, normalized
/// by issue width): keeps the assignment from piling work on one cluster
/// before the II term starts to bite.
class LoadBalanceCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "load-balance"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Penalizes consumed reconfiguration budget: every distinct real
/// in-neighbor eats one of a cluster's few input-wire selects, and a
/// saturated cluster blocks all later assignments that need to reach it.
/// Quadratic in the per-cluster utilization so saturation hurts most.
class WiringSlackCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "wiring-slack"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

/// Penalizes copies on dependence edges with little slack: separating the
/// critical path across clusters adds its copy latency to the schedule
/// even when the II is unaffected.
class CriticalPathCriterion : public CostCriterion {
 public:
  [[nodiscard]] std::string name() const override { return "critical-path"; }
  [[nodiscard]] double score(const PreparedProblem& prepared,
                             const PartialSolution& solution) const override;
};

// --- Shared score implementations -----------------------------------------
//
// The formulas below are templates over the solution representation so the
// legacy criteria (scoring a materialized PartialSolution) and the
// incremental evaluator of the delta-based hot path (scoring a
// DeltaSolution overlay) are the *same code* — per-cluster loops iterate
// `prepared.clusters()` in order, so the floating-point accumulation
// sequence, and therefore the resulting bits, are identical for equal
// inputs. A `Sol` must provide usage(c), distinctValuesIn/Out(c), and
// realInNeighborCount(c).

namespace cost_detail {
inline int ceilDiv(int a, int b) { return b <= 0 ? 0 : (a + b - 1) / b; }
}  // namespace cost_detail

template <typename Sol>
int clusterMiiT(const PreparedProblem& prepared, const Sol& solution,
                ClusterId cluster) {
  using cost_detail::ceilDiv;
  const auto& pg = *prepared.problem().pg;
  const auto& rt = pg.node(cluster).resources;
  const auto& usage = solution.usage(cluster);
  const int recvs = solution.distinctValuesIn(cluster);
  // Issue pressure: every instruction plus one receive per incoming value,
  // spread over the CNs the cluster embraces.
  const int issue = ceilDiv(usage.instructions + recvs, rt.issueSlots());
  // Functional-unit pressure.
  const int alu = ceilDiv(usage.alu, std::max(rt.alu(), 1));
  const int ag = rt.ag() > 0 ? ceilDiv(usage.ag, rt.ag()) : 0;
  // Wire serialization: distinct values crossing the cluster boundary,
  // spread over the wires the Mapper can balance them on.
  const int inPressure = ceilDiv(solution.distinctValuesIn(cluster),
                                 prepared.problem().inWiresPerCluster);
  const int outPressure = ceilDiv(solution.distinctValuesOut(cluster),
                                  prepared.problem().outWiresPerCluster);
  return std::max({issue, alu, ag, inPressure, outPressure, 1});
}

template <typename Sol>
double iiEstimateScoreT(const PreparedProblem& prepared, const Sol& solution) {
  // Per-cluster MIIs are clamped to the loop's target II (iniMII): the
  // final MII is max(iniMII, maxClsMII), so only excess above the target
  // costs anything. The max dominates; the clamped average (scaled down)
  // breaks ties between states with equal bottlenecks.
  const int target = std::max(1, prepared.options().weights.targetIi);
  double sum = 0;
  int maxMii = target;
  for (const ClusterId c : prepared.clusters()) {
    const int mii = std::max(clusterMiiT(prepared, solution, c), target);
    sum += mii;
    maxMii = std::max(maxMii, mii);
  }
  const auto numClusters = static_cast<double>(prepared.clusters().size());
  return maxMii + 0.1 * (sum / numClusters);
}

template <typename Sol>
double loadBalanceScoreT(const PreparedProblem& prepared,
                         const Sol& solution) {
  const auto& pg = *prepared.problem().pg;
  double sum = 0;
  double maxLoad = 0;
  for (const ClusterId c : prepared.clusters()) {
    const double load =
        static_cast<double>(solution.usage(c).instructions) /
        std::max(1, pg.node(c).resources.issueSlots());
    sum += load;
    maxLoad = std::max(maxLoad, load);
  }
  const double mean = sum / static_cast<double>(prepared.clusters().size());
  return maxLoad - mean;
}

template <typename Sol>
double wiringSlackScoreT(const PreparedProblem& prepared,
                         const Sol& solution) {
  const int maxIn = prepared.problem().constraints.maxInNeighbors;
  if (maxIn <= 0) return 0.0;
  double penalty = 0;
  for (const ClusterId c : prepared.clusters()) {
    const double used = static_cast<double>(solution.realInNeighborCount(c)) /
                        static_cast<double>(maxIn);
    penalty += used * used;
  }
  return penalty;
}

/// Weighted combination of the standard criteria.
class WeightedObjective {
 public:
  explicit WeightedObjective(const CostWeights& weights);

  /// Adds a custom criterion with the given weight.
  void add(std::unique_ptr<CostCriterion> criterion, double weight);

  [[nodiscard]] double evaluate(const PreparedProblem& prepared,
                                const PartialSolution& solution) const;

  /// Per-criterion breakdown (diagnostics).
  [[nodiscard]] std::vector<std::pair<std::string, double>> breakdown(
      const PreparedProblem& prepared, const PartialSolution& solution) const;

 private:
  std::vector<std::pair<std::unique_ptr<CostCriterion>, double>> criteria_;
};

}  // namespace hca::see
