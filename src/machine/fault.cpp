#include "machine/fault.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::machine {

namespace {

std::vector<std::string> splitTokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\n') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

int parseSmallInt(const std::string& s, const std::string& token) {
  HCA_REQUIRE(!s.empty(), "fault token '" << token << "': empty number");
  int value = 0;
  for (const char c : s) {
    HCA_REQUIRE(c >= '0' && c <= '9',
                "fault token '" << token << "': bad number '" << s << "'");
    value = value * 10 + (c - '0');
    HCA_REQUIRE(value <= 1'000'000,
                "fault token '" << token << "': number out of range");
  }
  return value;
}

std::vector<int> parsePath(const std::string& s, const std::string& token) {
  std::vector<int> path;
  for (const std::string& part : splitOn(s, '.')) {
    path.push_back(parseSmallInt(part, token));
  }
  return path;
}

}  // namespace

FaultSet FaultSet::parse(const std::string& text) {
  FaultSet faults;
  for (const std::string& token : splitTokens(text)) {
    const std::vector<std::string> parts = splitOn(token, ':');
    const std::string& kind = parts.front();
    if (kind == "cn") {
      HCA_REQUIRE(parts.size() == 2,
                  "fault token '" << token << "': expected cn:<id>");
      faults.deadCns.emplace_back(parseSmallInt(parts[1], token));
    } else if (kind == "wire") {
      HCA_REQUIRE(parts.size() == 3,
                  "fault token '" << token << "': expected wire:<path>:<dir>");
      DeadWire wire;
      std::vector<int> path = parsePath(parts[1], token);
      wire.child = path.back();
      path.pop_back();
      wire.problemPath = std::move(path);
      if (parts[2] == "in") {
        wire.input = true;
      } else if (parts[2] == "out") {
        wire.input = false;
      } else {
        HCA_REQUIRE(false, "fault token '" << token
                                           << "': direction must be in|out");
      }
      faults.deadWires.push_back(std::move(wire));
    } else if (kind == "lane") {
      HCA_REQUIRE(parts.size() == 2,
                  "fault token '" << token << "': expected lane:<leafPath>");
      faults.deadLanes.push_back(DeadLane{parsePath(parts[1], token)});
    } else {
      HCA_REQUIRE(false, "unknown fault token '" << token
                                                 << "' (want cn:/wire:/lane:)");
    }
  }
  return faults;
}

std::string FaultSet::toString() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const CnId cn : deadCns) {
    sep();
    os << "cn:" << cn.value();
  }
  for (const DeadWire& w : deadWires) {
    sep();
    os << "wire:";
    for (const int p : w.problemPath) os << p << ".";
    os << w.child << (w.input ? ":in" : ":out");
  }
  for (const DeadLane& l : deadLanes) {
    sep();
    os << "lane:";
    for (std::size_t i = 0; i < l.leafPath.size(); ++i) {
      if (i > 0) os << ".";
      os << l.leafPath[i];
    }
  }
  return os.str();
}

}  // namespace hca::machine
