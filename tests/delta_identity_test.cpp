#include <gtest/gtest.h>

#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "hca/driver.hpp"
#include "hca/postprocess.hpp"

/// Byte-identity contract of the copy-on-write SEE beam search: the default
/// delta/arena path (SeeOptions::legacySearch = false) must reproduce the
/// pre-CoW deep-copy path exactly — same placement, same relays, same
/// reconfiguration stream, same FinalMapping, same aggregate HcaStats — for
/// every Table 1 kernel, under both failure policies. Only the wall-clock
/// and the CoW-specific counters (copies avoided, snapshots, arena bytes)
/// may differ. Carries the ctest `tsan` label: the delta pools and arenas
/// are per-attempt, so a ThreadSanitizer build of the parallel sweep is the
/// proof that no state leaked across portfolio threads.
namespace hca::core {
namespace {

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

/// Everything but wall-clock and the CoW counters must match.
void expectIdenticalStats(const HcaStats& legacy, const HcaStats& delta) {
  EXPECT_EQ(legacy.problemsSolved, delta.problemsSolved);
  EXPECT_EQ(legacy.backtrackAttempts, delta.backtrackAttempts);
  EXPECT_EQ(legacy.outerAttempts, delta.outerAttempts);
  EXPECT_EQ(legacy.achievedTargetIi, delta.achievedTargetIi);
  EXPECT_EQ(legacy.attemptsCancelled, delta.attemptsCancelled);
  EXPECT_EQ(legacy.statesExplored, delta.statesExplored);
  EXPECT_EQ(legacy.candidatesEvaluated, delta.candidatesEvaluated);
  EXPECT_EQ(legacy.routeInvocations, delta.routeInvocations);
  EXPECT_EQ(legacy.cacheHits, delta.cacheHits);
  EXPECT_EQ(legacy.cacheMisses, delta.cacheMisses);
  EXPECT_EQ(legacy.maxWirePressure, delta.maxWirePressure);
  // The CoW counters are the one permitted difference — and they must
  // land on the expected side: zero for the legacy path, live for delta.
  EXPECT_EQ(legacy.seeCopiesAvoided, 0);
  EXPECT_EQ(legacy.seeSnapshotsMaterialized, 0);
  EXPECT_EQ(legacy.seeArenaBytesPeak, 0);
  if (delta.statesExplored > 0) {
    EXPECT_GT(delta.seeSnapshotsMaterialized, 0);
    EXPECT_GT(delta.seeArenaBytesPeak, 0);
  }
}

/// Placement, relays and reconfiguration stream — the search outputs every
/// identity contract in this file shares, independent of which counters
/// the contract lets differ.
void expectIdenticalOutputs(const HcaResult& a, const HcaResult& b) {
  ASSERT_EQ(a.legal, b.legal) << a.failureReason << " vs " << b.failureReason;
  EXPECT_EQ(a.failureReason, b.failureReason);
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    ASSERT_EQ(a.assignment[i], b.assignment[i])
        << "assignment diverges at node " << i;
  }
  ASSERT_EQ(a.relays.size(), b.relays.size());
  for (std::size_t i = 0; i < a.relays.size(); ++i) {
    EXPECT_EQ(a.relays[i].value, b.relays[i].value);
    EXPECT_EQ(a.relays[i].cn, b.relays[i].cn);
  }
  ASSERT_EQ(a.reconfig.settings.size(), b.reconfig.settings.size());
  for (std::size_t i = 0; i < a.reconfig.settings.size(); ++i) {
    EXPECT_EQ(a.reconfig.settings[i], b.reconfig.settings[i]);
  }
}

void expectIdenticalResults(const HcaResult& legacy, const HcaResult& delta) {
  expectIdenticalOutputs(legacy, delta);
  expectIdenticalStats(legacy.stats, delta.stats);
}

void expectIdenticalMappings(const FinalMapping& legacy,
                             const FinalMapping& delta) {
  // toText round-trips every node, operand, immediate and name, so equal
  // text means equal final DDGs.
  EXPECT_EQ(ddg::toText(legacy.finalDdg), ddg::toText(delta.finalDdg));
  EXPECT_EQ(legacy.numOriginalNodes, delta.numOriginalNodes);
  ASSERT_EQ(legacy.cnOf.size(), delta.cnOf.size());
  for (std::size_t i = 0; i < legacy.cnOf.size(); ++i) {
    EXPECT_EQ(legacy.cnOf[i], delta.cnOf[i]) << "cnOf diverges at " << i;
  }
  ASSERT_EQ(legacy.recvs.size(), delta.recvs.size());
  for (std::size_t i = 0; i < legacy.recvs.size(); ++i) {
    EXPECT_EQ(legacy.recvs[i].recvNode, delta.recvs[i].recvNode);
    EXPECT_EQ(legacy.recvs[i].value, delta.recvs[i].value);
    EXPECT_EQ(legacy.recvs[i].cn, delta.recvs[i].cn);
    EXPECT_EQ(legacy.recvs[i].isRelay, delta.recvs[i].isRelay);
  }
}

/// (kernel index, failure policy) — all four Table 1 kernels, both ladders.
class DeltaIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, FailurePolicy>> {};

TEST_P(DeltaIdentityTest, DeltaPathByteMatchesLegacyPath) {
  auto kernels = ddg::table1Kernels();
  const auto kernelIndex = static_cast<std::size_t>(std::get<0>(GetParam()));
  auto k = std::move(kernels[kernelIndex]);
  const auto model = paperFabric();

  HcaOptions options;
  options.failurePolicy = std::get<1>(GetParam());
  if (kernelIndex == 3) {
    // h264deblocking defeats the direct search at N=M=K=8; a minimal sweep
    // reaches the fallback ladder quickly and still runs SEE on both the
    // failing and the fallback attempts.
    options.targetIiSlack = 0;
    options.searchProfiles = 1;
  } else {
    // A small sweep is enough: the point is legacy/delta equivalence on
    // every code path, not search quality.
    options.targetIiSlack = 1;
    options.searchProfiles = 2;
  }

  HcaOptions legacyOptions = options;
  legacyOptions.see.legacySearch = true;

  const auto legacy = HcaDriver(model, legacyOptions).run(k.ddg);
  const auto delta = HcaDriver(model, options).run(k.ddg);
  expectIdenticalResults(legacy, delta);

  if (legacy.legal) {
    expectIdenticalMappings(buildFinalMapping(k.ddg, model, legacy),
                            buildFinalMapping(k.ddg, model, delta));
  }
}

std::string paramName(
    const ::testing::TestParamInfo<std::tuple<int, FailurePolicy>>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  const char* policy = std::get<1>(info.param) == FailurePolicy::kStrict
                           ? "strict"
                           : "degrade";
  return std::string(kNames[std::get<0>(info.param)]) + "_" + policy;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DeltaIdentityTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(FailurePolicy::kStrict,
                                         FailurePolicy::kDegrade)),
    paramName);

/// Dominance pruning's identity contract: the pass only marks states the
/// node filter already discarded, so with the flag on or off the surviving
/// beam — and with it every placement, relay, reconfiguration setting and
/// deterministic counter — is byte-identical. Only seeDominancePruned
/// itself may (and must, on these workloads) move off zero.
class DominanceIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(DominanceIdentityTest, PruningIsInvisibleToTheSearch) {
  auto kernels = ddg::table1Kernels();
  const auto kernelIndex = static_cast<std::size_t>(GetParam());
  auto k = std::move(kernels[kernelIndex]);
  const auto model = paperFabric();

  HcaOptions options;
  options.failurePolicy = FailurePolicy::kStrict;
  if (kernelIndex == 3) {
    options.targetIiSlack = 0;
    options.searchProfiles = 1;
  } else {
    options.targetIiSlack = 1;
    options.searchProfiles = 2;
  }
  HcaOptions prunedOptions = options;
  prunedOptions.see.dominancePruning = true;

  const auto off = HcaDriver(model, options).run(k.ddg);
  const auto on = HcaDriver(model, prunedOptions).run(k.ddg);
  expectIdenticalOutputs(off, on);

  EXPECT_EQ(off.stats.problemsSolved, on.stats.problemsSolved);
  EXPECT_EQ(off.stats.backtrackAttempts, on.stats.backtrackAttempts);
  EXPECT_EQ(off.stats.outerAttempts, on.stats.outerAttempts);
  EXPECT_EQ(off.stats.achievedTargetIi, on.stats.achievedTargetIi);
  EXPECT_EQ(off.stats.statesExplored, on.stats.statesExplored);
  EXPECT_EQ(off.stats.candidatesEvaluated, on.stats.candidatesEvaluated);
  EXPECT_EQ(off.stats.routeInvocations, on.stats.routeInvocations);
  EXPECT_EQ(off.stats.cacheHits, on.stats.cacheHits);
  EXPECT_EQ(off.stats.cacheMisses, on.stats.cacheMisses);
  EXPECT_EQ(off.stats.maxWirePressure, on.stats.maxWirePressure);
  EXPECT_EQ(off.stats.seeOracleRejects, on.stats.seeOracleRejects);
  EXPECT_EQ(off.stats.seeRouteMemoHits, on.stats.seeRouteMemoHits);
  EXPECT_EQ(off.stats.seeDominancePruned, 0);
  EXPECT_GT(on.stats.seeDominancePruned, 0);

  if (off.legal) {
    expectIdenticalMappings(buildFinalMapping(k.ddg, model, off),
                            buildFinalMapping(k.ddg, model, on));
  }
}

std::string dominanceParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Table1, DominanceIdentityTest, ::testing::Range(0, 4),
                         dominanceParamName);

}  // namespace
}  // namespace hca::core
