#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ddg/opcode.hpp"
#include "support/check.hpp"

/// Resource tables (paper Section 3): each Pattern Graph node carries the
/// union of the functional units of the computation nodes it embraces.
namespace hca::machine {

class ResourceTable {
 public:
  ResourceTable() = default;
  ResourceTable(int alu, int ag) : counts_{alu, ag} {
    HCA_REQUIRE(alu >= 0 && ag >= 0, "negative resource count");
  }

  /// Resource table of one DSPFabric computation node: one ALU, one AG.
  static ResourceTable computationNode() { return ResourceTable(1, 1); }

  [[nodiscard]] int count(ddg::ResourceClass rc) const {
    return rc == ddg::ResourceClass::kNone
               ? 0
               : counts_[static_cast<std::size_t>(rc)];
  }
  [[nodiscard]] int alu() const { return counts_[0]; }
  [[nodiscard]] int ag() const { return counts_[1]; }
  /// Issue slots: one per CN; a CN is identified by its ALU here (every CN
  /// has exactly one).
  [[nodiscard]] int issueSlots() const { return counts_[0]; }

  ResourceTable& operator+=(const ResourceTable& other) {
    counts_[0] += other.counts_[0];
    counts_[1] += other.counts_[1];
    return *this;
  }
  friend ResourceTable operator+(ResourceTable a, const ResourceTable& b) {
    return a += b;
  }
  friend ResourceTable operator*(ResourceTable a, int factor) {
    HCA_REQUIRE(factor >= 0, "negative resource scale");
    a.counts_[0] *= factor;
    a.counts_[1] *= factor;
    return a;
  }

  friend bool operator==(const ResourceTable&, const ResourceTable&) = default;

  [[nodiscard]] std::string toString() const;

 private:
  std::array<int, ddg::kNumResourceClasses> counts_ = {0, 0};
};

/// Running usage against a table, used by assignability checks. Usage counts
/// *per-II occupancy* is handled by the cost layer; here we only track op
/// counts per class.
struct ResourceUsage {
  int alu = 0;
  int ag = 0;
  int instructions = 0;  // issue-slot consumers (includes recv)

  void addOp(ddg::Op op) {
    if (!ddg::isInstruction(op)) return;
    ++instructions;
    switch (ddg::opResource(op)) {
      case ddg::ResourceClass::kAlu: ++alu; break;
      case ddg::ResourceClass::kAg: ++ag; break;
      case ddg::ResourceClass::kNone: break;
    }
  }

  friend bool operator==(const ResourceUsage&, const ResourceUsage&) = default;
};

}  // namespace hca::machine
