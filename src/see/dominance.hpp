#pragma once

#include <cstddef>
#include <vector>

#include "see/prepared.hpp"

/// Frontier dominance pruning for the SEE beam loop
/// (SeeOptions::dominancePruning).
///
/// Expansion A *strictly dominates* expansion B when A is no worse on the
/// objective and on every resource residual — copy total, per-cluster
/// functional-unit usage, in-neighbor masks (subset-wise) and distinct
/// value in/out counts — and strictly better on at least one of them.
/// Under a monotone-assignability assumption B's lineage can reach nothing
/// A's cannot reach at equal-or-lower cost. That assumption is *not* a
/// theorem (the balance and wiring-slack criteria can favor a fuller
/// cluster), which is why the pass never overrides beam selection: the
/// node filter picks the surviving beam exactly as it would with the flag
/// off, and dominance is then evaluated over the discarded expansions
/// only. A dominated discard is pruned from the search either way, so the
/// surviving beam, every downstream counter, and the final mapping stay
/// byte-identical with the flag on or off — the oracle work's hard
/// constraint — while `SeeStats::dominancePruned` quantifies how much of
/// the frontier churn a sibling covered outright (the signal to watch
/// before widening the beam: a high ratio means width buys redundancy,
/// not diversity).
///
/// Exact duplicates (same assignment signature) are *not* handled here —
/// the node filter already drops those during beam selection.
namespace hca::see {

class DeltaSolution;

/// Marks every *discarded* expansion (`selected[i] == 0`) in `states` that
/// is strictly dominated by some other expansion (selected or not).
/// `dominated` is resized to `states.size()`; returns the number of marked
/// entries. The relation is a strict partial order, so at least one
/// element of every comparable chain survives.
std::size_t markDominated(const PreparedProblem& prepared,
                          const std::vector<DeltaSolution*>& states,
                          const std::vector<char>& selected,
                          std::vector<char>& dominated);

}  // namespace hca::see
