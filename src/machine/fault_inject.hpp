#pragma once

#include "machine/dspfabric.hpp"
#include "machine/fault.hpp"
#include "support/rng.hpp"

/// Deterministic random fault injection for tests and benchmarks.
///
/// The generator draws dead CNs, dead MUX wires and dead ILI lanes for a
/// concrete fabric so that the result is always *viable* (the surviving
/// fabric stays connected — see DspFabricModel::faultViabilityError).
///
/// CN kills are nested: for the same entry RNG state, the CNs killed with
/// `deadCns = k` are a subset of those killed with `deadCns = k' > k`
/// (the generator draws one full Fisher-Yates permutation and takes its
/// prefix). This is what makes "MII degrades monotonically with the fault
/// count" a well-posed property — each larger fault set strictly contains
/// the smaller one.
namespace hca::machine {

struct FaultInjectParams {
  int deadCns = 0;    ///< random dead computation nodes (< totalCns)
  int deadWires = 0;  ///< random dead MUX wires
  int deadLanes = 0;  ///< random dead crossbar lanes (needs >= 2 levels)
  /// Wire/lane draws that would disconnect the surviving fabric are
  /// re-sampled up to this many times each before giving up on that draw.
  int maxResample = 64;
};

[[nodiscard]] FaultSet injectRandomFaults(Rng& rng,
                                          const DspFabricModel& model,
                                          const FaultInjectParams& params);

}  // namespace hca::machine
