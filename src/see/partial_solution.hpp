#pragma once

#include <cstdint>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "see/prepared.hpp"

/// One node of the space-exploration tree (paper Fig. 5): a partial
/// assignment of the working set, with everything needed to check
/// assignability and evaluate cost incrementally — per-cluster resource
/// usage, the copy flow on the PG arcs, the real in-neighbor masks (the
/// reconfiguration budget), and the distinct values entering/leaving each
/// cluster (the copy pressure the Mapper will have to distribute over
/// wires).
///
/// This is the *materialized* representation: plain value semantics, full
/// deep copies. The beam-search hot path works on `DeltaSolution` overlays
/// (see snapshot.hpp) instead and materializes a PartialSolution only at
/// the engine boundary; both representations run the same assignment
/// semantics from solution_ops.hpp.
namespace hca::see {

class FlatSolution;

class PartialSolution {
 public:
  /// Empty assignment; input nodes pre-count their boundary values as sent
  /// values so wire pressure is measured from the start.
  static PartialSolution initial(const PreparedProblem& prepared);

  /// The paper's isAssignable interface: cluster kind, resource
  /// availability, and availability of communication patterns under the
  /// current reconfiguration budget.
  [[nodiscard]] bool canAssign(const PreparedProblem& prepared,
                               const Item& item, ClusterId cluster) const;

  /// Applies the assignment (must be canAssign). Adds the implied copies:
  /// operand sources -> cluster, cluster -> already-assigned consumers,
  /// cluster -> output wire if the produced value leaves the sub-problem.
  void assign(const PreparedProblem& prepared, const Item& item,
              ClusterId cluster);

  /// Routes `value` from `from` to `to` through intermediate clusters
  /// (inclusive path, from -> ... -> to). Every hop must be addable; used
  /// by the route allocator which validates hops beforehand.
  void applyRoute(const PreparedProblem& prepared, ValueId value,
                  const std::vector<ClusterId>& path);

  /// True when the arc src->dst exists and adding a copy of `value` on it
  /// respects the in-neighbor budget (and unary fan-in for output nodes).
  [[nodiscard]] bool canAddCopy(const PreparedProblem& prepared,
                                ClusterId src, ClusterId dst,
                                ValueId value) const;

  /// True when `value` already flows into `dst` on some arc (e.g. via a
  /// relay route), so no further copy is needed to make it available there.
  [[nodiscard]] bool valueDelivered(ClusterId dst, ValueId value) const;

  // --- accessors -------------------------------------------------------
  [[nodiscard]] ClusterId clusterOf(DdgNodeId node) const {
    return nodeCluster_[node.index()];
  }
  [[nodiscard]] ClusterId relayCluster(int relayIndex) const {
    return relayCluster_[static_cast<std::size_t>(relayIndex)];
  }
  /// Cluster currently holding `value` (producer's cluster, or the input
  /// node it arrives on); invalid if not available yet.
  [[nodiscard]] ClusterId valueLocation(const PreparedProblem& prepared,
                                        ValueId value) const;
  [[nodiscard]] const machine::CopyFlow& flow() const { return flow_; }
  [[nodiscard]] const machine::ResourceUsage& usage(ClusterId c) const {
    return usage_[c.index()];
  }
  [[nodiscard]] int distinctValuesIn(ClusterId c) const {
    return static_cast<int>(inValues_[c.index()].size());
  }
  [[nodiscard]] int distinctValuesOut(ClusterId c) const {
    return static_cast<int>(outValues_[c.index()].size());
  }
  [[nodiscard]] int realInNeighborCount(ClusterId c) const {
    return __builtin_popcountll(inNbrMask_[c.index()]);
  }
  [[nodiscard]] int assignedCount() const { return assigned_; }

  [[nodiscard]] double objective() const { return objective_; }
  void setObjective(double value) { objective_ = value; }

  /// Stable hash of the assignment vector (frontier deduplication).
  [[nodiscard]] std::uint64_t signature() const;

  /// Approximate heap footprint in bytes (sub-problem cache accounting).
  [[nodiscard]] std::size_t approxBytes() const;

  // --- Sol interface (solution_ops.hpp) --------------------------------
  [[nodiscard]] std::uint64_t inNbrMask(ClusterId c) const {
    return inNbrMask_[c.index()];
  }
  [[nodiscard]] bool flowContains(PgArcId arc, ValueId value) const;
  [[nodiscard]] bool flowIsReal(PgArcId arc) const {
    return flow_.isReal(arc);
  }
  void setNodeCluster(DdgNodeId node, ClusterId cluster) {
    nodeCluster_[node.index()] = cluster;
  }
  void setRelayCluster(std::size_t relayIndex, ClusterId cluster) {
    relayCluster_[relayIndex] = cluster;
  }
  void addOp(ClusterId cluster, ddg::Op op) {
    usage_[cluster.index()].addOp(op);
  }
  /// Registers a copy (idempotent per arc/value); maintains the
  /// in-neighbor mask and the distinct in/out value lists.
  bool addFlowCopy(PgArcId arc, ClusterId src, ClusterId dst, ValueId value);
  void noteAssigned() { ++assigned_; }
  /// Materialized states don't track critical-path terms — the legacy
  /// CriticalPathCriterion rescans; only DeltaSolution accumulates them.
  void addCritTerm(std::uint64_t /*key*/, std::int64_t /*num*/) {}

 private:
  friend class FlatSolution;
  /// Checkpoint (de)serialization (see/serialize.cpp) reconstructs the
  /// private state field-for-field; it lives outside the class so the
  /// search hot path never sees the JSON machinery.
  friend struct SolutionSerializer;

  std::vector<ClusterId> nodeCluster_;   // per DDG node
  std::vector<ClusterId> relayCluster_;  // per relay value (problem order)
  std::vector<machine::ResourceUsage> usage_;       // per PG node
  machine::CopyFlow flow_;
  std::vector<std::uint64_t> inNbrMask_;            // per PG node
  std::vector<std::vector<ValueId>> inValues_;      // distinct, per PG node
  std::vector<std::vector<ValueId>> outValues_;     // distinct, per PG node
  int assigned_ = 0;
  double objective_ = 0.0;
};

}  // namespace hca::see
