#pragma once

#include <memory>
#include <string>
#include <vector>

#include "machine/pattern_graph.hpp"
#include "mapper/mapper.hpp"
#include "see/problem.hpp"
#include "support/ids.hpp"

/// Per-sub-problem records kept by the HCA driver. They are the audit trail
/// of the decomposition: the coherency checker re-derives value routability
/// from them, and the MII computation reads the per-cluster summaries and
/// wire pressures.
namespace hca::core {

/// Occupancy snapshot of one PG cluster after single-level assignment.
struct ClusterSummary {
  ClusterId cluster;
  int instructions = 0;  // WS ops + parked relays
  int aluOps = 0;
  int agOps = 0;
  int distinctValuesIn = 0;
  int distinctValuesOut = 0;
};

struct ProblemRecord {
  std::vector<int> path;  // problem path: one child index per solved level
  int level = 0;
  bool leaf = false;

  machine::PatternGraph pg;  // including boundary nodes
  machine::CopyFlow flow;    // copy flow after assignment
  std::vector<DdgNodeId> workingSet;
  std::vector<ValueId> relayValues;
  /// Cluster (child index) of each WS node, parallel to workingSet.
  std::vector<int> wsChild;
  /// Child index parking each relay value, parallel to relayValues.
  std::vector<int> relayChild;

  std::vector<ClusterSummary> clusterSummaries;
  mapper::MapResult mapResult;
  see::SeeStats seeStats;
};

}  // namespace hca::core
