// Cross-run observability tests (ctest label `obs`): provenance context,
// baseline history, differential run reports (hca/diff.hpp) and the batch
// progress heartbeat log — including seq continuity across kill-and-resume.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ddg/kernels.hpp"
#include "hca/batch.hpp"
#include "hca/diff.hpp"
#include "hca/driver.hpp"
#include "hca/progress.hpp"
#include "hca/report.hpp"
#include "support/check.hpp"
#include "support/context.hpp"
#include "support/history.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace hca {
namespace {

std::string tmpPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  removeFileIfExists(path);
  return path;
}

// --- provenance context -----------------------------------------------------

TEST(RunContextTest, JsonRoundTrips) {
  const RunContext original = RunContext::current("ci-1234");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parseJson(original.toJson(), &doc, &error)) << error;
  const RunContext parsed = RunContext::fromJson(doc);
  EXPECT_EQ(parsed.schemaVersion, original.schemaVersion);
  EXPECT_EQ(parsed.gitSha, original.gitSha);
  EXPECT_EQ(parsed.buildType, original.buildType);
  EXPECT_EQ(parsed.ndebug, original.ndebug);
  EXPECT_EQ(parsed.hostname, original.hostname);
  EXPECT_EQ(parsed.hardwareConcurrency, original.hardwareConcurrency);
  EXPECT_EQ(parsed.runId, "ci-1234");
}

TEST(RunContextTest, CurrentIsDeterministicPerProcess) {
  // No wall-clock leaks in: two snapshots are byte-identical.
  EXPECT_EQ(RunContext::current("x").toJson(), RunContext::current("x").toJson());
}

TEST(RunContextTest, StrictParseRejectsUnknownAndMissingMembers) {
  JsonValue doc;
  std::string error;
  std::string text = RunContext::current().toJson();
  // Unknown member.
  text.insert(text.size() - 1, ",\"surprise\":1");
  ASSERT_TRUE(parseJson(text, &doc, &error)) << error;
  EXPECT_THROW((void)RunContext::fromJson(doc), InvalidArgumentError);
  // Missing member.
  JsonValue partial;
  ASSERT_TRUE(parseJson("{\"schema_version\":1}", &partial, &error)) << error;
  EXPECT_THROW((void)RunContext::fromJson(partial), InvalidArgumentError);
}

// --- baseline history -------------------------------------------------------

HistoryRecord sampleRecord(double wallUs, bool legal = true) {
  HistoryRecord record;
  record.context = RunContext::current("run-7");
  record.workload = "fir2dim";
  record.machine = "TestFabric[1]";
  record.legal = legal;
  record.wallUs = wallUs;
  record.counters = {{"outerAttempts", 2}, {"cacheHits", 409}};
  return record;
}

TEST(HistoryTest, LineRoundTripsThroughParse) {
  const HistoryRecord record = sampleRecord(1234.5);
  const auto parsed = parseHistory(historyLineJson(record) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].workload, "fir2dim");
  EXPECT_EQ(parsed[0].machine, "TestFabric[1]");
  EXPECT_TRUE(parsed[0].legal);
  EXPECT_DOUBLE_EQ(parsed[0].wallUs, 1234.5);
  EXPECT_EQ(parsed[0].counters.at("outerAttempts"), 2);
  EXPECT_EQ(parsed[0].context.runId, "run-7");
}

TEST(HistoryTest, AppendAndLoadAccumulates) {
  const std::string path = tmpPath("history_append.jsonl");
  appendHistoryLine(path, historyLineJson(sampleRecord(100.0)));
  appendHistoryLine(path, historyLineJson(sampleRecord(200.0)));
  const auto records = loadHistory(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].wallUs, 100.0);
  EXPECT_DOUBLE_EQ(records[1].wallUs, 200.0);
  removeFileIfExists(path);
}

TEST(HistoryTest, MissingFileIsEmptyHistory) {
  EXPECT_TRUE(loadHistory(tmpPath("no_such_history.jsonl")).empty());
}

TEST(HistoryTest, StrictParseNamesTheBadLine) {
  const std::string good = historyLineJson(sampleRecord(1.0));
  try {
    (void)parseHistory(good + "\n{\"not\": \"a record\"}\n");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(HistoryTest, BlankLinesAreTolerated) {
  const std::string good = historyLineJson(sampleRecord(1.0));
  EXPECT_EQ(parseHistory("\n" + good + "\n\n").size(), 1u);
}

TEST(HistoryTest, SeriesSelectAndExtract) {
  std::vector<HistoryRecord> records = {sampleRecord(10.0), sampleRecord(20.0),
                                        sampleRecord(999.0, /*legal=*/false)};
  records.push_back(sampleRecord(30.0));
  records.back().workload = "idcthor";

  EXPECT_EQ(selectHistory(records, "fir2dim").size(), 3u);
  EXPECT_EQ(selectHistory(records, "fir2dim", "OtherFabric").size(), 0u);
  // wallSeries keeps only legal runs (failed ones are deadline-bound).
  const auto wall = wallSeries(records, "fir2dim", "TestFabric[1]");
  ASSERT_EQ(wall.size(), 2u);
  EXPECT_DOUBLE_EQ(wall[0], 10.0);
  EXPECT_DOUBLE_EQ(wall[1], 20.0);
  const auto hits = counterSeries(records, "fir2dim", "cacheHits");
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_TRUE(counterSeries(records, "fir2dim", "absent").empty());
}

// --- differential reports ---------------------------------------------------

/// A minimal synthetic run report with the full meta block — every value
/// under test control (real-driver reports are exercised separately below).
std::string syntheticReport(const std::string& workload, double wallUs,
                            std::int64_t outerAttempts,
                            bool includeExtraCounter = false) {
  std::ostringstream os;
  os << "{\"workload\":\"" << workload << "\","
     << "\"machine\":\"TestFabric[1]\",\"threads\":1,"
     << "\"context\":" << RunContext::current().toJson() << ","
     << "\"legal\":true,\"fallbackUsed\":\"\","
     << "\"stats\":{\"outerAttempts\":" << outerAttempts
     << ",\"cacheHits\":409,\"attemptsCancelled\":7},"
     << "\"metrics\":{\"counters\":{\"see.expansions.L1\":100,"
     << "\"pool.tasks\":55,\"mapper.wall_shim\":1"
     << (includeExtraCounter ? ",\"ladder.rung.flat\":1" : "") << "},"
     << "\"histograms\":{\"attempt.wall_us\":{\"count\":2,\"sum\":" << wallUs
     << "}}}}";
  return os.str();
}

TEST(DiffTest, IdenticalSyntheticReportsAreClean) {
  const std::string report = syntheticReport("fir2dim", 1000.0, 2);
  const core::ReportDiff diff = core::diffReportTexts(report, report);
  EXPECT_FALSE(diff.regression());
  // stats.outerAttempts, stats.cacheHits, metrics.see.expansions.L1 — the
  // pool counter, the wall-named counter and attemptsCancelled stay out of
  // the exact-compare set.
  EXPECT_EQ(diff.seriesCompared, 3);
  EXPECT_FALSE(diff.hasWallThreshold);
}

TEST(DiffTest, PerturbedCounterNamesTheRegressedSeries) {
  const core::ReportDiff diff =
      core::diffReportTexts(syntheticReport("fir2dim", 1000.0, 2),
                            syntheticReport("fir2dim", 1000.0, 9));
  ASSERT_TRUE(diff.regression());
  ASSERT_EQ(diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.mismatches[0].series, "stats.outerAttempts");
  EXPECT_DOUBLE_EQ(diff.mismatches[0].oldValue, 2.0);
  EXPECT_DOUBLE_EQ(diff.mismatches[0].newValue, 9.0);
  // The verdict JSON carries the same series name for CI logs.
  EXPECT_NE(core::reportDiffJson(diff).find("stats.outerAttempts"),
            std::string::npos);
}

TEST(DiffTest, SeriesAbsentFromOneSideIsAMismatch) {
  const core::ReportDiff diff = core::diffReportTexts(
      syntheticReport("fir2dim", 1000.0, 2),
      syntheticReport("fir2dim", 1000.0, 2, /*includeExtraCounter=*/true));
  ASSERT_EQ(diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.mismatches[0].series, "metrics.ladder.rung.flat");
  EXPECT_EQ(diff.mismatches[0].note, "absent from old report");
}

TEST(DiffTest, WorkloadMismatchIsInvalidInputNotARegression) {
  EXPECT_THROW((void)core::diffReportTexts(
                   syntheticReport("fir2dim", 1000.0, 2),
                   syntheticReport("idcthor", 1000.0, 2)),
               InvalidArgumentError);
}

TEST(DiffTest, MissingMetaBlockIsInvalidInput) {
  EXPECT_THROW(
      (void)core::diffReportTexts("{\"legal\":true}",
                                  syntheticReport("fir2dim", 1000.0, 2)),
      InvalidArgumentError);
}

TEST(DiffTest, WallGateArmsOnlyWithEnoughHistory) {
  core::DiffOptions options;
  options.wallSigma = 3.0;
  // 5 legal baseline runs around 1000us (stddev ~ 15.8).
  for (const double w : {980.0, 990.0, 1000.0, 1010.0, 1020.0}) {
    HistoryRecord record = sampleRecord(w);
    record.machine = "TestFabric[1]";
    options.history.push_back(record);
  }
  // A wall-clock blowup with identical counters: gated.
  core::ReportDiff slow =
      core::diffReportTexts(syntheticReport("fir2dim", 1000.0, 2),
                            syntheticReport("fir2dim", 5000.0, 2), options);
  EXPECT_TRUE(slow.hasWallThreshold);
  EXPECT_EQ(slow.historyRuns, 5);
  EXPECT_TRUE(slow.wall.regressed);
  EXPECT_TRUE(slow.regression());

  // Within threshold: clean.
  core::ReportDiff ok =
      core::diffReportTexts(syntheticReport("fir2dim", 1000.0, 2),
                            syntheticReport("fir2dim", 1005.0, 2), options);
  EXPECT_FALSE(ok.wall.regressed);
  EXPECT_FALSE(ok.regression());

  // Too little history: the same blowup is informational only.
  options.history.resize(2);
  core::ReportDiff unarmed =
      core::diffReportTexts(syntheticReport("fir2dim", 1000.0, 2),
                            syntheticReport("fir2dim", 5000.0, 2), options);
  EXPECT_FALSE(unarmed.hasWallThreshold);
  EXPECT_FALSE(unarmed.regression());
}

TEST(DiffTest, RealDriverReportsSelfCompareClean) {
  // End-to-end: two runs of the same deterministic search produce reports
  // that diff clean, and the history record extracted from them matches the
  // report's own counters.
  const auto kernels = ddg::table1Kernels();
  const ddg::Kernel* fir2dim = nullptr;
  for (const auto& kernel : kernels) {
    if (kernel.name == "fir2dim") fir2dim = &kernel;
  }
  ASSERT_NE(fir2dim, nullptr);
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;  // the paper's best configuration
  const machine::DspFabricModel model(config);
  const core::HcaDriver driver(model);

  core::ReportMeta meta;
  meta.workload = "fir2dim";
  meta.machine = model.config().toString();
  meta.context = RunContext::current();

  const core::HcaResult a = driver.run(fir2dim->ddg);
  const core::HcaResult b = driver.run(fir2dim->ddg);
  const core::ReportDiff diff =
      core::diffReportTexts(core::runReportJson(a, &model, &meta),
                            core::runReportJson(b, &model, &meta));
  EXPECT_FALSE(diff.regression()) << core::reportDiffJson(diff);
  EXPECT_GT(diff.seriesCompared, 10);

  const HistoryRecord record = core::historyRecordFor(a, meta);
  EXPECT_EQ(record.counters.at("outerAttempts"),
            static_cast<std::int64_t>(a.stats.outerAttempts));
  EXPECT_EQ(record.counters.count("attemptsCancelled"), 0u);
  EXPECT_DOUBLE_EQ(record.wallUs, core::runWallUs(a));
}

// --- progress heartbeat log -------------------------------------------------

core::ProgressEvent heartbeatEvent(int jobsDone) {
  core::ProgressEvent event;
  event.event = "heartbeat";
  event.job = "j";
  event.phase = "compiling";
  event.jobsTotal = 3;
  event.jobsDone = jobsDone;
  event.elapsedMs = 50;
  return event;
}

std::vector<core::ProgressLine> readProgressLog(const std::string& path) {
  std::istringstream in(readFile(path));
  std::vector<core::ProgressLine> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(core::parseProgressLine(line));
  }
  return lines;
}

TEST(ProgressLogTest, WriteParseRoundTripsAndSeqIncreases) {
  const std::string path = tmpPath("progress_roundtrip.jsonl");
  {
    core::ProgressLog log(path);
    EXPECT_FALSE(log.resumedLog());
    log.write(heartbeatEvent(0));
    log.write(heartbeatEvent(1));
  }
  const auto lines = readProgressLog(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].seq, 0);
  EXPECT_EQ(lines[1].seq, 1);
  EXPECT_EQ(lines[1].event, "heartbeat");
  EXPECT_EQ(lines[1].jobsDone, 1);
  EXPECT_EQ(lines[1].etaMs, -1);  // serialized as null
  removeFileIfExists(path);
}

TEST(ProgressLogTest, SeqContinuesAcrossReopen) {
  const std::string path = tmpPath("progress_reopen.jsonl");
  {
    core::ProgressLog log(path);
    log.write(heartbeatEvent(0));
    log.write(heartbeatEvent(1));
  }
  {
    core::ProgressLog log(path);
    EXPECT_TRUE(log.resumedLog());
    log.write(heartbeatEvent(2));
  }
  const auto lines = readProgressLog(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2].seq, 2);
  removeFileIfExists(path);
}

TEST(ProgressLogTest, TornTailIsToleratedCorruptTailIsNot) {
  const std::string path = tmpPath("progress_torn.jsonl");
  {
    core::ProgressLog log(path);
    log.write(heartbeatEvent(0));
  }
  // A kill mid-write leaves a half line (no trailing newline): tolerated,
  // appends continue after it on a fresh line's worth of seq.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema_version\":1,\"seq\":9,\"ev", f);
    std::fclose(f);
  }
  {
    core::ProgressLog log(path);
    log.write(heartbeatEvent(1));
  }
  // A corrupt *complete* line means the file is not ours: refuse.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("\nnot json at all\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(core::ProgressLog bad(path), InvalidArgumentError);
  removeFileIfExists(path);
}

TEST(ProgressLogTest, ParseIsStrict) {
  EXPECT_THROW((void)core::parseProgressLine("{"), InvalidArgumentError);
  EXPECT_THROW((void)core::parseProgressLine("{\"seq\":1}"),
               InvalidArgumentError);
  EXPECT_THROW((void)core::parseProgressLine(
                   "{\"schema_version\":99,\"seq\":1,\"event\":\"heartbeat\"}"),
               InvalidArgumentError);
  EXPECT_THROW(
      (void)core::parseProgressLine(
          "{\"schema_version\":1,\"seq\":1,\"event\":\"party\"}"),
      InvalidArgumentError);
}

// --- batch integration: monotonic job-state order across kill-and-resume ----

/// Asserts the invariants an external monitor relies on: strictly
/// increasing seq across the whole file, done-counters non-decreasing
/// within one batch run (they are per-process and restart at batch-start).
void checkProgressInvariants(const std::vector<core::ProgressLine>& lines) {
  std::int64_t lastSeq = -1;
  int lastDone = 0;
  for (const auto& line : lines) {
    EXPECT_GT(line.seq, lastSeq);
    lastSeq = line.seq;
    if (line.event == "batch-start") lastDone = 0;
    EXPECT_GE(line.jobsDone, lastDone) << "seq " << line.seq;
    lastDone = line.jobsDone;
    EXPECT_LE(line.jobsDone, line.jobsTotal);
    EXPECT_LE(line.jobsOk + line.jobsFailed, line.jobsDone);
  }
}

TEST(ProgressBatchTest, TwoBatchRunsAppendOneHonestLog) {
  const std::string path = tmpPath("progress_batch.jsonl");
  // Jobs that terminate without a compile: invalid input (missing DDG
  // file) exercises the full start -> done pipeline in milliseconds.
  std::vector<core::BatchJob> jobs;
  for (const char* name : {"a", "b"}) {
    core::BatchJob job;
    job.name = name;
    job.ddgPath = tmpPath("no_such_kernel.ddg");
    jobs.push_back(job);
  }
  core::BatchOptions options;
  options.progressPath = path;
  options.heartbeatMs = 10'000;  // no heartbeat noise in this test

  const core::BatchSummary first = core::runBatch(jobs, options);
  EXPECT_EQ(first.invalid, 2);
  const std::size_t firstLines = readProgressLog(path).size();

  // "Resume": a second batch process appends to the same log.
  const core::BatchSummary second = core::runBatch(jobs, options);
  EXPECT_EQ(second.invalid, 2);

  const auto lines = readProgressLog(path);
  ASSERT_GT(lines.size(), firstLines);
  checkProgressInvariants(lines);

  // Both runs open with batch-start; the second knows it resumed the log.
  ASSERT_EQ(lines[0].event, "batch-start");
  EXPECT_FALSE(lines[0].resumed);
  EXPECT_EQ(lines[firstLines].event, "batch-start");
  EXPECT_TRUE(lines[firstLines].resumed);

  // One terminal "done" line per job per run, outcome recorded.
  int doneLines = 0;
  for (const auto& line : lines) {
    if (line.event == "job-state" && line.state == "done") {
      ++doneLines;
      EXPECT_EQ(line.outcome, "invalid");
    }
  }
  EXPECT_EQ(doneLines, 4);
  EXPECT_EQ(lines.back().event, "batch-end");
  removeFileIfExists(path);
}

}  // namespace
}  // namespace hca
