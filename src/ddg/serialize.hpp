#pragma once

#include <string>

#include "ddg/ddg.hpp"

/// Plain-text DDG serialization.
///
/// One node per line, implicitly numbered from 0 in file order:
///
///     # fir-like accumulator
///     node const imm0=1
///     node add ops=1:1:0,0:0:0 name=i.next      # self-carried induction
///     node load imm0=64 ops=1:0:0 name=x
///     node mac ops=3:1:0,2:0:0,0:0:0 name=acc
///     node store imm0=128 ops=1:0:0,3:0:0
///
/// `ops` lists operands as src:distance:init triples (distance and init
/// may be omitted: `src`, `src:distance`). Blank lines and `#` comments are
/// ignored. The format round-trips: fromText(toText(ddg)) reproduces every
/// node, operand, immediate and name.
namespace hca::ddg {

[[nodiscard]] std::string toText(const Ddg& ddg);

/// Parses the format above; throws InvalidArgumentError with a line number
/// on malformed input. The resulting DDG is validate()d.
[[nodiscard]] Ddg fromText(const std::string& text);

}  // namespace hca::ddg
