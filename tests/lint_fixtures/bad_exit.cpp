// Fixture: flagged by exit-contract and no other rule. The test maps this
// file to src/see/bad_exit.cpp — library code must throw, not exit.
#include <cstdlib>

namespace hca::see {

void fixtureFail(bool fatal) {
  if (fatal) std::exit(2);
}

}  // namespace hca::see
