// Randomized whole-pipeline property tests: for a fleet of random
// loop-body DDGs, every stage of the tool chain must uphold its contract —
// HCA legality implies coherency, working sets partition, the scheduler's
// result validates, and the simulated fabric execution equals the
// reference interpreter.

#include <gtest/gtest.h>

#include <set>

#include "ddg/kernels.hpp"
#include "verify/coherency.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "sched/modulo.hpp"
#include "sched/regpressure.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace hca {
namespace {

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

ddg::Ddg randomLoop(std::uint64_t seed) {
  Rng rng(seed);
  ddg::RandomDdgParams params;
  params.numInstructions = 30 + static_cast<int>(seed % 45);
  params.memorySize = 256;
  params.memOpFraction = 0.12;
  params.carryFraction = 0.08;
  return ddg::randomDdg(rng, params);
}

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinePropertyTest, LegalityImpliesCoherencyAndPartition) {
  const auto ddg = randomLoop(GetParam());
  const auto model = paperFabric();
  core::HcaOptions options;
  options.targetIiSlack = 4;
  options.searchProfiles = 3;
  const core::HcaDriver driver(model, options);
  const auto result = driver.run(ddg);
  if (!result.legal) GTEST_SKIP() << result.failureReason;

  // Coherency: every cross-cluster dependence is routed.
  EXPECT_TRUE(core::checkCoherency(ddg, model, result).empty());

  // Every instruction landed exactly once; working sets partition at every
  // non-leaf record.
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(v)].valid(),
              ddg::isInstruction(ddg.node(DdgNodeId(v)).op));
  }
  for (const auto& record : result.records) {
    std::set<std::int32_t> seen;
    for (const DdgNodeId n : record->workingSet) {
      EXPECT_TRUE(seen.insert(n.value()).second);
    }
    // Final CN agrees with the per-level child choice.
    for (std::size_t i = 0; i < record->workingSet.size(); ++i) {
      const auto path =
          model.pathOfCn(result.assignment[record->workingSet[i].index()]);
      EXPECT_EQ(path[record->path.size()], record->wsChild[i]);
    }
  }
}

TEST_P(PipelinePropertyTest, ScheduleValidatesAndSimulationMatches) {
  const auto ddg = randomLoop(GetParam() * 977 + 5);
  const auto model = paperFabric();
  core::HcaOptions options;
  options.targetIiSlack = 4;
  options.searchProfiles = 3;
  const core::HcaDriver driver(model, options);
  const auto result = driver.run(ddg);
  if (!result.legal) GTEST_SKIP() << result.failureReason;

  const auto mapping = core::buildFinalMapping(ddg, model, result);
  EXPECT_NO_THROW(mapping.finalDdg.validate());

  const auto mii = core::computeMii(ddg, model, result);
  const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  ASSERT_TRUE(sched.ok) << sched.failureReason;
  EXPECT_TRUE(
      sched::validateSchedule(mapping, model, sched.schedule).empty());
  EXPECT_GE(sched.schedule.ii, mii.finalMii);

  // End-to-end functional equivalence on the random loop.
  sim::SimConfig config;
  config.iterations = 6;
  config.memory.assign(256, 3);
  std::string why;
  EXPECT_TRUE(sim::matchesReference(ddg, mapping, model, sched.schedule,
                                    config, &why))
      << why;

  // Register pressure is well-formed on any valid schedule.
  const auto pressure =
      sched::analyzeRegisterPressure(mapping, model, sched.schedule);
  EXPECT_GE(pressure.maxRegistersPerCn, 1);
}

TEST_P(PipelinePropertyTest, RecvCountMatchesCrossCnValueConsumers) {
  const auto ddg = randomLoop(GetParam() * 31 + 17);
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto result = driver.run(ddg);
  if (!result.legal) GTEST_SKIP();
  const auto mapping = core::buildFinalMapping(ddg, model, result);

  // Count distinct (value, consumer CN != producer CN) pairs, plus relay
  // placements on CNs that do not already have a consumer-recv.
  std::set<std::pair<std::int32_t, std::int32_t>> expected;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      const CnId src = result.assignment[operand.src.index()];
      const CnId dst = result.assignment[static_cast<std::size_t>(v)];
      if (src != dst) expected.insert({operand.src.value(), dst.value()});
    }
  }
  for (const auto& relay : result.relays) {
    expected.insert({relay.value.value(), relay.cn.value()});
  }
  EXPECT_EQ(mapping.recvs.size(), expected.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- reduced fabric ----------------------------------------------------------

class SmallFabricPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallFabricPropertyTest, TwoLevelPipelineHolds) {
  Rng rng(GetParam() * 7 + 3);
  ddg::RandomDdgParams params;
  params.numInstructions = 16 + static_cast<int>(GetParam() % 12);
  params.memorySize = 128;
  params.memOpFraction = 0.1;
  const auto ddg = ddg::randomDdg(rng, params);

  machine::DspFabricConfig config;
  config.branching = {4, 4};
  config.n = config.m = config.k = 4;
  const machine::DspFabricModel model(config);
  core::HcaOptions options;
  options.targetIiSlack = 6;
  const core::HcaDriver driver(model, options);
  const auto result = driver.run(ddg);
  if (!result.legal) GTEST_SKIP() << result.failureReason;

  EXPECT_TRUE(core::checkCoherency(ddg, model, result).empty());
  const auto mapping = core::buildFinalMapping(ddg, model, result);
  const auto mii = core::computeMii(ddg, model, result);
  const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  ASSERT_TRUE(sched.ok);
  sim::SimConfig simConfig;
  simConfig.iterations = 5;
  simConfig.memory.assign(128, 1);
  std::string why;
  EXPECT_TRUE(sim::matchesReference(ddg, mapping, model, sched.schedule,
                                    simConfig, &why))
      << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallFabricPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- sanity: skips must be rare ------------------------------------------------

TEST(PipelinePropertyCoverage, MostRandomLoopsAreLegal) {
  // The property tests above skip illegal clusterizations; guard against
  // the suite silently skipping everything.
  const auto model = paperFabric();
  int legal = 0;
  const int total = 12;
  for (std::uint64_t seed = 1; seed <= total; ++seed) {
    core::HcaOptions options;
    options.targetIiSlack = 4;
    options.searchProfiles = 3;
    const core::HcaDriver driver(model, options);
    if (driver.run(randomLoop(seed)).legal) ++legal;
  }
  EXPECT_GE(legal, total / 2) << "random-loop legality collapsed";
}

}  // namespace
}  // namespace hca
