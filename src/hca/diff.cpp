#include "hca/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"

namespace hca::core {

namespace {

/// Everything the differ needs from one parsed report.
struct ReportView {
  RunContext context;
  std::string workload;
  std::string machine;
  int threads = 1;
  bool legal = false;
  std::string fallbackUsed;
  /// Deterministic series, keyed "stats.<name>" / "metrics.<name>".
  std::map<std::string, double> series;
  double wallUs = 0.0;
};

const JsonValue& member(const JsonValue& v, const char* name,
                        const char* which) {
  const JsonValue* m = v.find(name);
  HCA_REQUIRE(m != nullptr, "compare: " << which << " report has no '" << name
                                        << "' member — was it written with "
                                           "a meta block (hcac --report-out)?");
  return *m;
}

/// Timing-dependent series never enter the exact-compare set: pool
/// behaviour depends on scheduling, and anything wall-based is noise.
bool deterministicMetricName(const std::string& name) {
  if (name.rfind("pool.", 0) == 0) return false;
  if (name.find("wall") != std::string::npos) return false;
  return true;
}

ReportView viewOf(const JsonValue& report, const char* which) {
  HCA_REQUIRE(report.isObject(),
              "compare: " << which << " report is not a JSON object");
  ReportView view;
  view.context = RunContext::fromJson(member(report, "context", which));
  view.workload = member(report, "workload", which).string;
  view.machine = member(report, "machine", which).string;
  view.threads = static_cast<int>(member(report, "threads", which).number);
  view.legal = member(report, "legal", which).boolean;
  const JsonValue* fallback = report.find("fallbackUsed");
  if (fallback != nullptr) view.fallbackUsed = fallback->string;

  const JsonValue& stats = member(report, "stats", which);
  HCA_REQUIRE(stats.isObject(),
              "compare: " << which << " report 'stats' is not an object");
  for (const auto& [name, value] : stats.object) {
    if (name == "attemptsCancelled") continue;  // wall-clock dependent
    HCA_REQUIRE(value.kind == JsonValue::Kind::kNumber,
                "compare: " << which << " report stats." << name
                            << " is not a number");
    view.series["stats." + name] = value.number;
  }

  const JsonValue& metrics = member(report, "metrics", which);
  const JsonValue& counters = member(metrics, "counters", which);
  HCA_REQUIRE(counters.isObject(), "compare: " << which
                                               << " report metrics.counters "
                                                  "is not an object");
  for (const auto& [name, value] : counters.object) {
    if (!deterministicMetricName(name)) continue;
    HCA_REQUIRE(value.kind == JsonValue::Kind::kNumber,
                "compare: " << which << " report metrics counter " << name
                            << " is not a number");
    view.series["metrics." + name] = value.number;
  }

  const JsonValue* histograms = metrics.find("histograms");
  if (histograms != nullptr && histograms->isObject()) {
    const JsonValue* wall = histograms->find("attempt.wall_us");
    if (wall != nullptr && wall->isObject()) {
      const JsonValue* sum = wall->find("sum");
      if (sum != nullptr) view.wallUs = sum->number;
    }
  }
  return view;
}

std::string fmtValue(double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

ReportDiff diffReports(const JsonValue& oldReport, const JsonValue& newReport,
                       const DiffOptions& options) {
  const ReportView oldView = viewOf(oldReport, "old");
  const ReportView newView = viewOf(newReport, "new");

  // Identity gate: a cross-workload or cross-schema diff is user error,
  // not a regression verdict.
  HCA_REQUIRE(oldView.context.schemaVersion == newView.context.schemaVersion,
              "compare: schema version mismatch (old "
                  << oldView.context.schemaVersion << ", new "
                  << newView.context.schemaVersion << ")");
  HCA_REQUIRE(oldView.workload == newView.workload,
              "compare: workload mismatch (old '" << oldView.workload
                                                  << "', new '"
                                                  << newView.workload << "')");
  HCA_REQUIRE(oldView.machine == newView.machine,
              "compare: machine mismatch (old '" << oldView.machine
                                                 << "', new '"
                                                 << newView.machine << "')");

  ReportDiff diff;
  diff.workload = newView.workload;
  diff.machine = newView.machine;

  // Provenance observations: never gate, always surface.
  if (!oldView.context.ndebug || !newView.context.ndebug) {
    diff.notes.push_back(
        "at least one report comes from a debug build — wall-clock is not "
        "meaningful");
  }
  if (oldView.context.gitSha != newView.context.gitSha) {
    diff.notes.push_back(strCat("comparing commits ", oldView.context.gitSha,
                                " -> ", newView.context.gitSha));
  }
  if (oldView.context.hostname != newView.context.hostname) {
    diff.notes.push_back(strCat("reports come from different hosts (",
                                oldView.context.hostname, " vs ",
                                newView.context.hostname,
                                ") — wall-clock comparison is unreliable"));
  }
  if (oldView.threads != 1 || newView.threads != 1) {
    diff.notes.push_back(
        "at least one report used a parallel outer sweep — cache and "
        "outer-attempt counters may legitimately differ");
  }

  // Outcome series first: a legality or fallback-rung change outranks any
  // counter delta.
  if (oldView.legal != newView.legal) {
    SeriesDiff d;
    d.series = "legal";
    d.oldValue = oldView.legal ? 1.0 : 0.0;
    d.newValue = newView.legal ? 1.0 : 0.0;
    d.regressed = true;
    d.note = "legality changed";
    diff.mismatches.push_back(std::move(d));
  }
  if (oldView.fallbackUsed != newView.fallbackUsed) {
    SeriesDiff d;
    d.series = "fallbackUsed";
    d.regressed = true;
    d.note = strCat("'", oldView.fallbackUsed, "' -> '", newView.fallbackUsed,
                    "'");
    diff.mismatches.push_back(std::move(d));
  }

  // Exact compare over the union of deterministic series.
  std::set<std::string> names;
  for (const auto& [name, value] : oldView.series) {
    (void)value;
    names.insert(name);
  }
  for (const auto& [name, value] : newView.series) {
    (void)value;
    names.insert(name);
  }
  for (const std::string& name : names) {
    // An entry ending in '*' ignores every series with that prefix — the
    // per-level metric families (see.dominance_pruned.L0, .L1, ...) have a
    // workload-dependent level count no caller can enumerate up front.
    const bool ignored = std::any_of(
        options.ignoreCounters.begin(), options.ignoreCounters.end(),
        [&](const std::string& pat) {
          if (!pat.empty() && pat.back() == '*') {
            return name.compare(0, pat.size() - 1, pat, 0, pat.size() - 1) ==
                   0;
          }
          return name == pat;
        });
    const auto oldIt = oldView.series.find(name);
    const auto newIt = newView.series.find(name);
    if (ignored) {
      // Ignored series never gate; a differing or one-sided value is
      // surfaced as a note so the verdict stays honest.
      const double ov = oldIt != oldView.series.end() ? oldIt->second : 0.0;
      const double nv = newIt != newView.series.end() ? newIt->second : 0.0;
      if (ov != nv) {
        diff.notes.push_back(strCat("ignored series ", name, ": ",
                                    fmtValue(ov), " -> ",
                                    fmtValue(nv)));
      }
      continue;
    }
    if (oldIt != oldView.series.end() && newIt != newView.series.end()) {
      ++diff.seriesCompared;
      if (oldIt->second == newIt->second) continue;
      SeriesDiff d;
      d.series = name;
      d.oldValue = oldIt->second;
      d.newValue = newIt->second;
      d.regressed = true;
      diff.mismatches.push_back(std::move(d));
    } else {
      SeriesDiff d;
      d.series = name;
      d.oldValue = oldIt != oldView.series.end() ? oldIt->second : 0.0;
      d.newValue = newIt != newView.series.end() ? newIt->second : 0.0;
      d.regressed = true;
      d.note = oldIt != oldView.series.end() ? "absent from new report"
                                             : "absent from old report";
      diff.mismatches.push_back(std::move(d));
    }
  }

  // Wall-clock: gated only by a history-derived threshold.
  diff.wall.series = "wall_us";
  diff.wall.oldValue = oldView.wallUs;
  diff.wall.newValue = newView.wallUs;
  const std::vector<double> wallHistory =
      wallSeries(options.history, diff.workload, diff.machine);
  diff.historyRuns = static_cast<int>(wallHistory.size());
  if (diff.historyRuns >= options.minHistoryRuns) {
    RunningStats stats;
    for (const double w : wallHistory) stats.add(w);
    diff.hasWallThreshold = true;
    diff.wallThresholdUs =
        stats.mean() + options.wallSigma * stats.stddev();
    if (newView.wallUs > diff.wallThresholdUs) {
      diff.wall.regressed = true;
      diff.wall.note = strCat("exceeds history mean + ", options.wallSigma,
                              "*stddev over ", diff.historyRuns, " runs");
    } else {
      diff.wall.note = strCat("within history threshold (", diff.historyRuns,
                              " runs)");
    }
  } else if (diff.historyRuns > 0) {
    diff.wall.note = strCat("only ", diff.historyRuns,
                            " matching history runs (need ",
                            options.minHistoryRuns, ") — informational");
  } else {
    diff.wall.note = "no baseline history — informational";
  }
  return diff;
}

ReportDiff diffReportTexts(const std::string& oldText,
                           const std::string& newText,
                           const DiffOptions& options) {
  JsonValue oldDoc, newDoc;
  std::string error;
  HCA_REQUIRE(parseJson(oldText, &oldDoc, &error),
              "compare: old report: bad JSON: " << error);
  HCA_REQUIRE(parseJson(newText, &newDoc, &error),
              "compare: new report: bad JSON: " << error);
  return diffReports(oldDoc, newDoc, options);
}

std::string reportDiffJson(const ReportDiff& diff) {
  std::ostringstream os;
  JsonWriter json(os);
  json.beginObject();
  json.key("workload").value(diff.workload);
  json.key("machine").value(diff.machine);
  json.key("regression").value(diff.regression());
  json.key("series_compared").value(diff.seriesCompared);
  json.key("mismatches").beginArray();
  for (const SeriesDiff& d : diff.mismatches) {
    json.beginObject();
    json.key("series").value(d.series);
    json.key("old").value(d.oldValue);
    json.key("new").value(d.newValue);
    json.key("note").value(d.note);
    json.endObject();
  }
  json.endArray();
  json.key("wall").beginObject();
  json.key("old_us").value(diff.wall.oldValue);
  json.key("new_us").value(diff.wall.newValue);
  json.key("regressed").value(diff.wall.regressed);
  json.key("history_runs").value(diff.historyRuns);
  json.key("threshold_us");
  if (diff.hasWallThreshold) {
    json.value(diff.wallThresholdUs);
  } else {
    json.null();
  }
  json.key("note").value(diff.wall.note);
  json.endObject();
  json.key("notes").beginArray();
  for (const std::string& note : diff.notes) json.value(note);
  json.endArray();
  json.endObject();
  return os.str();
}

void printReportDiff(std::ostream& os, const ReportDiff& diff) {
  os << "=== run report diff: " << diff.workload << " on " << diff.machine
     << " ===\n";
  for (const std::string& note : diff.notes) {
    os << "note: " << note << "\n";
  }
  std::size_t width = 12;
  for (const SeriesDiff& d : diff.mismatches) {
    width = std::max(width, d.series.size());
  }
  char buf[512];
  if (diff.mismatches.empty()) {
    os << "deterministic series: " << diff.seriesCompared
       << " compared, all identical\n";
  } else {
    os << "deterministic series: " << diff.seriesCompared << " compared, "
       << diff.mismatches.size() << " MISMATCH(ES)\n";
    std::snprintf(buf, sizeof(buf), "  %-*s %14s %14s  %s\n",
                  static_cast<int>(width), "series", "old", "new", "note");
    os << buf;
    for (const SeriesDiff& d : diff.mismatches) {
      std::snprintf(buf, sizeof(buf), "  %-*s %14s %14s  %s\n",
                    static_cast<int>(width), d.series.c_str(),
                    fmtValue(d.oldValue).c_str(), fmtValue(d.newValue).c_str(),
                    d.note.c_str());
      os << buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "wall-clock: %.0f us -> %.0f us (%+.1f%%)%s\n",
                diff.wall.oldValue, diff.wall.newValue,
                diff.wall.oldValue > 0.0
                    ? 100.0 * (diff.wall.newValue - diff.wall.oldValue) /
                          diff.wall.oldValue
                    : 0.0,
                diff.wall.regressed ? "  REGRESSION" : "");
  os << buf;
  if (diff.hasWallThreshold) {
    std::snprintf(buf, sizeof(buf),
                  "  history threshold: %.0f us over %d matching runs — %s\n",
                  diff.wallThresholdUs, diff.historyRuns,
                  diff.wall.note.c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "  %s\n", diff.wall.note.c_str());
  }
  os << buf;
  os << "verdict: " << (diff.regression() ? "REGRESSION" : "ok") << "\n";
}

}  // namespace hca::core
