#include "ddg/kernels.hpp"

#include <array>

#include "ddg/builder.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::ddg {

namespace {
using V = DdgBuilder::Value;
}  // namespace

InterpConfig kernelInterpConfig(const Kernel& kernel, int iterations,
                                std::uint64_t seed) {
  HCA_REQUIRE(iterations <= kernel.safeIterations,
              "kernel '" << kernel.name << "' is in-bounds only for "
                         << kernel.safeIterations << " iterations");
  InterpConfig config;
  config.iterations = iterations;
  config.memory.resize(static_cast<std::size_t>(kernel.memorySize));
  Rng rng(seed);
  for (auto& word : config.memory) {
    word = static_cast<std::int64_t>(rng.below(256));  // pixel-like data
  }
  return config;
}

// ---------------------------------------------------------------------------
// fir2dim — DSPStone 2-D FIR filter (3x3 taps), 3 output pixels/iteration.
//
// Three input-row pointers walk a circular line buffer; rows 0 and 1 carry a
// wrap check (add -> cmplt -> select: the 3-cycle recurrence that yields
// MIIRec = 3), row 2 and the output pointer advance linearly. Each iteration
// loads the 3 new columns of each row (9 loads) and reuses the 2 previous
// columns through loop-carried reads of last iteration's loads (the sliding
// window). Each of the 3 outputs is a 9-tap multiply-accumulate with
// rounding, descaling shift, clip, and a store.
//
// Instruction tally (57):
//   loop counter                      add                      =  1
//   row ptr 0 (circular)              add cmplt select         =  3
//   row ptr 1 (circular)              add cmplt select         =  3
//   row ptr 2 (linear)                add                      =  1
//   output ptr                        add                      =  1
//   loads (3 rows x 3 new columns)                             =  9
//   3 outputs x (mul + 8 mac + round-add + shr + clip)         = 36
//   stores                                                     =  3
// Memory ops: 9 loads + 3 stores = 12 -> ceil(12/8) = 2 = MIIRes
// (issue bound ceil(57/64) = 1). Recurrence bound: 3.
// ---------------------------------------------------------------------------
Kernel buildFir2Dim() {
  constexpr int kLen = 64;       // circular line-buffer length
  constexpr int kR0 = 0, kR1 = kLen, kR2 = 2 * kLen, kOut = 3 * kLen;
  constexpr int kMemSize = 4 * kLen;
  // Row pointers advance by 3 and loads reach offset +4; wrap before
  // base + kLen - 4 keeps every access in the row.
  constexpr int kWrapLimit0 = kR0 + kLen - 5;
  constexpr int kWrapLimit1 = kR1 + kLen - 5;

  DdgBuilder b;
  const V three = b.cst(3, "stride");
  const V one = b.cst(1);

  // Loop counter (kernel-only modulo-scheduled loops keep the counter live).
  V cnt = b.carry(0, "cnt");
  b.close(cnt, b.add(cnt, one, "cnt.next"), 1);

  // Row pointer 0: circular with wrap (the MIIRec=3 recurrence).
  V r0 = b.carry(kR0, "r0");
  const V r0n = b.add(r0, three, "r0.adv");
  const V w0 = b.cmplt(r0n, b.cst(kWrapLimit0), "r0.inrange");
  const V r0next = b.select(w0, r0n, b.cst(kR0), "r0.next");
  b.close(r0, r0next, 1);

  // Row pointer 1: circular with wrap.
  V r1 = b.carry(kR1, "r1");
  const V r1n = b.add(r1, three, "r1.adv");
  const V w1 = b.cmplt(r1n, b.cst(kWrapLimit1), "r1.inrange");
  const V r1next = b.select(w1, r1n, b.cst(kR1), "r1.next");
  b.close(r1, r1next, 1);

  // Row pointer 2 and the output pointer: plain linear advance.
  V r2 = b.carry(kR2, "r2");
  b.close(r2, b.add(r2, three, "r2.next"), 1);
  V op = b.carry(kOut, "out");
  const V opNext = b.add(op, three, "out.next");
  b.close(op, opNext, 1);

  // Loads: columns j+2, j+3, j+4 of each row (pointer value = column j).
  const std::array<V, 3> rowPtr = {r0, r1, r2};
  // window[r][k] = pixel of row r at column j+k, k in 0..4.
  std::array<std::array<V, 5>, 3> window;
  for (int r = 0; r < 3; ++r) {
    std::array<V, 3> newLoads;
    for (int k = 0; k < 3; ++k) {
      newLoads[static_cast<std::size_t>(k)] =
          b.load(rowPtr[static_cast<std::size_t>(r)], 2 + k,
                 strCat("x", r, ".", 2 + k));
    }
    // Columns j and j+1 were loaded (as offsets +3, +4) one iteration ago.
    window[static_cast<std::size_t>(r)][0] = b.at(newLoads[1], 1);
    window[static_cast<std::size_t>(r)][1] = b.at(newLoads[2], 1);
    for (int k = 0; k < 3; ++k) {
      window[static_cast<std::size_t>(r)][static_cast<std::size_t>(2 + k)] =
          newLoads[static_cast<std::size_t>(k)];
    }
  }

  // 3x3 coefficient matrix (Gaussian-ish blur), immediates.
  const std::array<std::array<int, 3>, 3> kCoef = {
      {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}};
  std::array<std::array<V, 3>, 3> coef;
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 3; ++k) {
      coef[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] =
          b.cst(kCoef[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(k)],
                strCat("c", r, k));
    }
  }
  const V half = b.cst(8, "round");  // sum of coefficients = 16 -> >>4
  const V shift = b.cst(4, "shift");

  for (int o = 0; o < 3; ++o) {
    V acc = b.mul(window[0][static_cast<std::size_t>(o)], coef[0][0],
                  strCat("y", o, ".mul"));
    for (int r = 0; r < 3; ++r) {
      for (int k = 0; k < 3; ++k) {
        if (r == 0 && k == 0) continue;
        acc = b.mac(acc,
                    window[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(o + k)],
                    coef[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(k)],
                    strCat("y", o, ".mac", r, k));
      }
    }
    const V rounded = b.add(acc, half, strCat("y", o, ".rnd"));
    const V scaled = b.shr(rounded, shift, strCat("y", o, ".shr"));
    const V clipped = b.clip(scaled, 0, 255, strCat("y", o, ".clip"));
    b.store(op, clipped, o, strCat("st", o));
  }

  Kernel kernel;
  kernel.name = "fir2dim";
  kernel.description =
      "DSPStone 2-D FIR filter, 3x3 taps, 3 output pixels per iteration, "
      "circular input line buffer";
  kernel.ddg = b.finish();
  kernel.paper = Table1Row{57, 3, 2, true, 3};
  kernel.memorySize = kMemSize;
  // Output pointer is the only non-wrapping address: kOut + 3*it + 2 < mem.
  kernel.safeIterations = (kLen - 3) / 3;
  return kernel;
}

// ---------------------------------------------------------------------------
// idcthor — OpenDivx horizontal 8-point IDCT (one row per iteration),
// classic even/odd fixed-point butterfly network (W1..W7 constants).
//
// Instruction tally (82):
//   loop counter          add                                  =  1
//   row read pointer      add                                  =  1
//   row write pointer     add                                  =  1
//   loads s0..s7                                               =  8
//   even part:  x0 = (s0<<11)+128 ; x1 = s4<<11      (shl add shl) =  3
//   odd  stage: 6 lines of (add/sub + mul) pairs                = 12
//   mid  stage: x8/x0 +- ; W6 block (3 lines x 2) ; 4 +/-       = 12
//   last stage: 4 +/- ; two (181*(a+-b)+128)>>8 blocks (4 each)  = 12
//   outputs: 8 x (add/sub + shr)                                = 16
//   clips:   8                                                  =  8
//   stores s'0..s'7                                             =  8
// Memory ops: 16 -> ceil(16/8) = 2; issue bound ceil(82/64) = 2 -> MIIRes 2.
// All recurrences are single carried adds -> MIIRec 1.
// ---------------------------------------------------------------------------
Kernel buildIdctHor() {
  constexpr int kRows = 64;
  constexpr int kIn = 0, kOutBase = 8 * kRows;
  constexpr int kMemSize = 16 * kRows;

  DdgBuilder b;
  const V eight = b.cst(8, "rowstride");
  const V one = b.cst(1);

  V cnt = b.carry(0, "cnt");
  b.close(cnt, b.add(cnt, one, "cnt.next"), 1);
  V rp = b.carry(kIn, "rp");
  b.close(rp, b.add(rp, eight, "rp.next"), 1);
  V wp = b.carry(kOutBase, "wp");
  b.close(wp, b.add(wp, eight, "wp.next"), 1);

  std::array<V, 8> s;
  for (int k = 0; k < 8; ++k) {
    s[static_cast<std::size_t>(k)] = b.load(rp, k, strCat("s", k));
  }

  // Fixed-point DCT constants (<<11), as in the classic idct_int32 kernel.
  const V w1 = b.cst(2841, "W1"), w2 = b.cst(2676, "W2"),
          w3 = b.cst(2408, "W3"), w5 = b.cst(1609, "W5"),
          w6 = b.cst(1108, "W6"), w7 = b.cst(565, "W7");
  const V w1mw7 = b.cst(2841 - 565), w1pw7 = b.cst(2841 + 565);
  const V w3mw5 = b.cst(2408 - 1609), w3pw5 = b.cst(2408 + 1609);
  const V w2mw6 = b.cst(2676 - 1108), w2pw6 = b.cst(2676 + 1108);
  const V c128 = b.cst(128), c181 = b.cst(181);
  const V sh11 = b.cst(11), sh8 = b.cst(8);

  // Even part.
  V x0 = b.add(b.shl(s[0], sh11, "x0.shl"), c128, "x0");
  V x1 = b.shl(s[4], sh11, "x1");
  V x2 = s[6], x3 = s[2], x4 = s[1], x5 = s[7], x6 = s[5], x7 = s[3];

  // Odd part, first stage.
  V x8 = b.mul(b.add(x4, x5, "o1.add"), w7, "x8");
  x4 = b.add(x8, b.mul(x4, w1mw7, "o2.mul"), "x4'");
  x5 = b.sub(x8, b.mul(x5, w1pw7, "o3.mul"), "x5'");
  x8 = b.mul(b.add(x6, x7, "o4.add"), w3, "x8'");
  x6 = b.sub(x8, b.mul(x6, w3mw5, "o5.mul"), "x6'");
  x7 = b.sub(x8, b.mul(x7, w3pw5, "o6.mul"), "x7'");

  // Second stage.
  x8 = b.add(x0, x1, "x8''");
  x0 = b.sub(x0, x1, "x0'");
  x1 = b.mul(b.add(x3, x2, "m1.add"), w6, "x1'");
  x2 = b.sub(x1, b.mul(x2, w2pw6, "m2.mul"), "x2'");
  x3 = b.add(x1, b.mul(x3, w2mw6, "m3.mul"), "x3'");
  x1 = b.add(x4, x6, "x1''");
  x4 = b.sub(x4, x6, "x4''");
  x6 = b.add(x5, x7, "x6''");
  x5 = b.sub(x5, x7, "x5''");

  // Third stage.
  x7 = b.add(x8, x3, "x7''");
  x8 = b.sub(x8, x3, "x8'''");
  x3 = b.add(x0, x2, "x3''");
  x0 = b.sub(x0, x2, "x0''");
  x2 = b.shr(b.add(b.mul(b.add(x4, x5, "l1.add"), c181, "l1.mul"), c128,
                   "l1.rnd"),
             sh8, "x2''");
  x4 = b.shr(b.add(b.mul(b.sub(x4, x5, "l2.sub"), c181, "l2.mul"), c128,
                   "l2.rnd"),
             sh8, "x4'''");

  // Outputs: (a +/- b) >> 8, clipped.
  const std::array<std::pair<V, V>, 8> outPairs = {
      {{x7, x1}, {x3, x2}, {x0, x4}, {x8, x6},
       {x8, x6}, {x0, x4}, {x3, x2}, {x7, x1}}};
  for (int k = 0; k < 8; ++k) {
    const auto [a, bv] = outPairs[static_cast<std::size_t>(k)];
    const V combined = k < 4 ? b.add(a, bv, strCat("y", k, ".comb"))
                             : b.sub(a, bv, strCat("y", k, ".comb"));
    const V scaled = b.shr(combined, sh8, strCat("y", k, ".shr"));
    const V clipped = b.clip(scaled, -256, 255, strCat("y", k, ".clip"));
    b.store(wp, clipped, k, strCat("st", k));
  }
  (void)w1;
  (void)w2;
  (void)w3;
  (void)w5;

  Kernel kernel;
  kernel.name = "idcthor";
  kernel.description =
      "OpenDivx horizontal 8-point inverse DCT, one row per iteration, "
      "fixed-point even/odd butterfly";
  kernel.ddg = b.finish();
  kernel.paper = Table1Row{82, 1, 2, true, 3};
  kernel.memorySize = kMemSize;
  kernel.safeIterations = kRows;
  return kernel;
}

// ---------------------------------------------------------------------------
// mpeg2inter — MPEG-2 bidirectional prediction interpolation, 4 output
// pixels per iteration. Forward reference uses h+v half-pel (4-point
// average of two rows out of a circular line buffer), backward reference
// uses horizontal half-pel; the two predictions are averaged and clipped.
//
// The forward row-0 pointer walks the circular buffer one pixel load at a
// time: four chained adds plus the wrap check (cmplt + select) form the
// 6-latency / distance-1 recurrence that sets MIIRec = 6.
//
// Instruction tally (79):
//   fwd row-0 ptr  add add add add cmplt select                =  6
//   fwd row-1 ptr  add cmplt select                            =  3
//   bwd ptr        add cmplt select                            =  3
//   out ptr        add                                         =  1
//   counter        add ; exit predicate cmplt                  =  2
//   loads: 4 fwd row0 + 4 fwd row1 + 4 bwd                     = 12
//   per pixel (x4):
//     fwd 4-pt avg   add add add add shr                       = 20
//     bwd 2-pt avg   add add shr                               = 12
//     combine        add add shr clip                          = 16
//   stores                                                     =  4
// Memory ops: 16 -> ceil(16/8) = 2; issue bound ceil(79/64) = 2 -> MIIRes 2.
// ---------------------------------------------------------------------------
Kernel buildMpeg2Inter() {
  constexpr int kLen = 64;
  constexpr int kF0 = 0, kF1 = kLen, kB = 2 * kLen, kOut = 3 * kLen;
  constexpr int kMemSize = 4 * kLen;

  DdgBuilder b;
  const V one = b.cst(1), two = b.cst(2), four = b.cst(4);

  // Forward row 0: circular, advanced by four chained unit increments
  // (per-pixel circular-buffer addressing), wrap at the end. This is the
  // MIIRec = 6 recurrence.
  V p0 = b.carry(kF0, "p0");
  const V p1 = b.add(p0, one, "p.1");
  const V p2 = b.add(p1, one, "p.2");
  const V p3 = b.add(p2, one, "p.3");
  const V p4 = b.add(p3, one, "p.4");
  const V pw = b.cmplt(p4, b.cst(kF0 + kLen - 5), "p.inrange");
  const V pNext = b.select(pw, p4, b.cst(kF0), "p.next");
  b.close(p0, pNext, 1);

  // Forward row 1: linear advance by 4 with wrap.
  V q = b.carry(kF1, "q");
  const V qn = b.add(q, four, "q.adv");
  const V qw = b.cmplt(qn, b.cst(kF1 + kLen - 5), "q.inrange");
  b.close(q, b.select(qw, qn, b.cst(kF1), "q.next"), 1);

  // Backward reference: linear advance by 4 with wrap.
  V r = b.carry(kB, "r");
  const V rn = b.add(r, four, "r.adv");
  const V rw = b.cmplt(rn, b.cst(kB + kLen - 5), "r.inrange");
  b.close(r, b.select(rw, rn, b.cst(kB), "r.next"), 1);

  V op = b.carry(kOut, "out");
  b.close(op, b.add(op, four, "out.next"), 1);

  V cnt = b.carry(0, "cnt");
  const V cntNext = b.add(cnt, one, "cnt.next");
  b.cmplt(cntNext, b.cst(1 << 20), "cnt.exit");  // loop-exit predicate
  b.close(cnt, cntNext, 1);

  // Loads: columns j+1..j+4 of each reference row; column j is the carried
  // last load of the previous iteration (sliding window).
  std::array<V, 5> f0, f1, bw;
  const std::array<V, 4> p1to4 = {p1, p2, p3, p4};
  for (int k = 1; k <= 4; ++k) {
    f0[static_cast<std::size_t>(k)] =
        b.load(p1to4[static_cast<std::size_t>(k - 1)], 0, strCat("f0.", k));
    f1[static_cast<std::size_t>(k)] = b.load(q, k, strCat("f1.", k));
    bw[static_cast<std::size_t>(k)] = b.load(r, k, strCat("b.", k));
  }
  f0[0] = b.at(f0[4], 1);
  f1[0] = b.at(f1[4], 1);
  bw[0] = b.at(bw[4], 1);

  for (int i = 0; i < 4; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // Forward h+v half-pel: (f0[i] + f0[i+1] + f1[i] + f1[i+1] + 2) >> 2.
    V t = b.add(f0[idx], f0[idx + 1], strCat("fa", i, ".h0"));
    V t2 = b.add(f1[idx], f1[idx + 1], strCat("fa", i, ".h1"));
    V t3 = b.add(t, t2, strCat("fa", i, ".sum"));
    V t4 = b.add(t3, two, strCat("fa", i, ".rnd"));
    const V favg = b.shr(t4, two, strCat("fa", i));
    // Backward horizontal half-pel: (b[i] + b[i+1] + 1) >> 1.
    V u = b.add(bw[idx], bw[idx + 1], strCat("ba", i, ".h"));
    V u2 = b.add(u, one, strCat("ba", i, ".rnd"));
    const V bavg = b.shr(u2, one, strCat("ba", i));
    // Bidirectional combine: (favg + bavg + 1) >> 1, clipped.
    V v = b.add(favg, bavg, strCat("av", i, ".sum"));
    V v2 = b.add(v, one, strCat("av", i, ".rnd"));
    V av = b.shr(v2, one, strCat("av", i));
    const V res = b.clip(av, 0, 255, strCat("res", i));
    b.store(op, res, i, strCat("st", i));
  }

  Kernel kernel;
  kernel.name = "mpeg2inter";
  kernel.description =
      "MPEG-2 bidirectional prediction interpolation (fwd h+v half-pel, bwd "
      "h half-pel), 4 pixels per iteration";
  kernel.ddg = b.finish();
  kernel.paper = Table1Row{79, 6, 2, true, 8};
  kernel.memorySize = kMemSize;
  kernel.safeIterations = (kLen - 4) / 4;
  return kernel;
}

// ---------------------------------------------------------------------------
// h264deblocking — H.264 luma row deblocking (normal filter, bS < 4) across
// a horizontal edge, 3 columns per iteration.
//
// The p-side rows (p2, p1, p0) and q0 live in a line buffer at fixed
// offsets; q1 and q2 are addressed in the frame buffer with a runtime
// stride, which costs two address adds per column. Filtering follows the
// standard: filterSampleFlag from alpha/beta thresholds, tc from tc0 plus
// the ap/aq activity bits, delta clipping, p0/q0 update, conditional p1/q1
// update — all predicated with selects (Kernel-Only Modulo Scheduling fully
// predicates the body).
//
// Instruction tally (214):
//   column ptr (circular) add cmplt select                     =   3
//   counter add ; exit predicate cmplt                         =   2
//   column addresses c1, c2 (c0 is the pointer itself)          =   2
//   per column (x3):
//     q-side address adds (stride is a runtime value)   2      =   6
//     loads p2 p1 p0 q0 q1 q2                           6      =  18
//     filter body (see below)                          57      = 171
//     stores p1' p0' q0' q1'                            4      =  12
// Filter body (57): |p0-q0|,|p1-p0|,|q1-q0| (sub abs x3 = 6);
//   flag cmplt x3 + and x2 (5); ap = sub abs cmplt (3); aq (3);
//   delta = ((q0-p0)<<2 + (p1-q1) + 4)>>3 (sub shl sub add add shr = 6);
//   tc = tc0+ap+aq (2); clip3 = neg min max (3); p0' add clip select (3);
//   q0' sub clip select (3); p1 update (13); q1 update (10).
// Memory ops: 18 loads + 12 stores = 30 -> ceil(30/8) = 4;
// issue bound ceil(214/64) = 4 -> MIIRes 4. Column-pointer recurrence:
// add+cmplt+select -> MIIRec 3.
// ---------------------------------------------------------------------------
Kernel buildH264Deblocking() {
  constexpr int kW = 64;  // line-buffer width
  // Rows: p2 @ 0, p1 @ 64, p0 @ 128, q0 @ 192, q1 @ 256, q2 @ 320.
  constexpr int kMemSize = 6 * kW;
  constexpr int kAlpha = 40, kBeta = 12, kTc0 = 4;

  DdgBuilder b;
  const V one = b.cst(1), threeC = b.cst(3);
  const V strideV = b.cst(kW, "stride");  // runtime image stride (live-in)
  const V alpha = b.cst(kAlpha, "alpha"), beta = b.cst(kBeta, "beta");
  const V tc0 = b.cst(kTc0, "tc0");
  const V fourC = b.cst(4), twoC = b.cst(2);

  // Circular column pointer: 3 columns per iteration (MIIRec = 3 cycle).
  V colp = b.carry(0, "colp");
  const V cn = b.add(colp, threeC, "colp.adv");
  const V cw = b.cmplt(cn, b.cst(kW - 3), "colp.inrange");
  b.close(colp, b.select(cw, cn, b.cst(0), "colp.next"), 1);

  V cnt = b.carry(0, "cnt");
  const V cntNext = b.add(cnt, one, "cnt.next");
  b.cmplt(cntNext, b.cst(1 << 20), "cnt.exit");
  b.close(cnt, cntNext, 1);

  const V c1 = b.add(colp, one, "col.1");
  const V c2 = b.add(colp, twoC, "col.2");
  const std::array<V, 3> cols = {colp, c1, c2};

  for (int col = 0; col < 3; ++col) {
    const V c = cols[static_cast<std::size_t>(col)];
    const std::string tag = strCat("c", col, ".");
    // q-side rows addressed with the runtime stride.
    const V aq1 = b.add(c, strideV, tag + "aq1");
    const V aq2 = b.add(aq1, strideV, tag + "aq2");

    const V p2v = b.load(c, 0, tag + "p2");
    const V p1v = b.load(c, kW, tag + "p1");
    const V p0v = b.load(c, 2 * kW, tag + "p0");
    const V q0v = b.load(c, 3 * kW, tag + "q0");
    const V q1v = b.load(aq1, 3 * kW, tag + "q1");   // row q1 @ 256 = c+64+192
    const V q2v = b.load(aq2, 3 * kW, tag + "q2");   // row q2 @ 320

    // Edge activity and filterSampleFlag.
    const V d0 = b.abs(b.sub(p0v, q0v, tag + "d0.sub"), tag + "d0");
    const V d1 = b.abs(b.sub(p1v, p0v, tag + "d1.sub"), tag + "d1");
    const V d2 = b.abs(b.sub(q1v, q0v, tag + "d2.sub"), tag + "d2");
    const V f0 = b.cmplt(d0, alpha, tag + "f0");
    const V f1 = b.cmplt(d1, beta, tag + "f1");
    const V f2 = b.cmplt(d2, beta, tag + "f2");
    const V fs = b.and_(b.and_(f0, f1, tag + "fs.a"), f2, tag + "fs");
    const V ap = b.cmplt(b.abs(b.sub(p2v, p0v, tag + "ap.sub"), tag + "ap.abs"),
                         beta, tag + "ap");
    const V aq = b.cmplt(b.abs(b.sub(q2v, q0v, tag + "aq.sub"), tag + "aq.abs"),
                         beta, tag + "aq");

    // delta = clip3(-tc, tc, ((q0-p0)<<2 + (p1-q1) + 4) >> 3).
    const V t1 = b.sub(q0v, p0v, tag + "t1");
    const V t2 = b.shl(t1, twoC, tag + "t2");
    const V t3 = b.sub(p1v, q1v, tag + "t3");
    const V t4 = b.add(t2, t3, tag + "t4");
    const V t5 = b.add(t4, fourC, tag + "t5");
    const V t6 = b.shr(t5, threeC, tag + "t6");
    const V tc = b.add(b.add(tc0, ap, tag + "tc.a"), aq, tag + "tc");
    const V ntc = b.neg(tc, tag + "ntc");
    const V delta = b.max(ntc, b.min(tc, t6, tag + "dl.min"), tag + "delta");

    // p0 / q0 updates, predicated by fs.
    const V p0f = b.clip(b.add(p0v, delta, tag + "p0.add"), 0, 255,
                         tag + "p0.clip");
    const V p0out = b.select(fs, p0f, p0v, tag + "p0.out");
    const V q0f = b.clip(b.sub(q0v, delta, tag + "q0.sub"), 0, 255,
                         tag + "q0.clip");
    const V q0out = b.select(fs, q0f, q0v, tag + "q0.out");

    // p1 update (when ap): p1 += clip3(-tc0, tc0,
    //   (p2 + ((p0+q0+1)>>1) - 2*p1) >> 1).
    const V avg = b.add(p0v, q0v, tag + "avg");
    const V avg1 = b.add(avg, one, tag + "avg1");
    const V havg = b.shr(avg1, one, tag + "havg");
    const V pw = b.add(p2v, havg, tag + "p1.w");
    const V p1x2 = b.shl(p1v, one, tag + "p1.x2");
    const V pw2 = b.sub(pw, p1x2, tag + "p1.w2");
    const V pw3 = b.shr(pw2, one, tag + "p1.w3");
    const V ntc0 = b.neg(tc0, tag + "ntc0");
    const V dp1 = b.max(ntc0, b.min(tc0, pw3, tag + "p1.min"), tag + "p1.d");
    const V p1n = b.add(p1v, dp1, tag + "p1.new");
    const V apfs = b.and_(fs, ap, tag + "p1.pred");
    const V p1out = b.select(apfs, p1n, p1v, tag + "p1.out");

    // q1 update (when aq), reusing havg.
    const V qw = b.add(q2v, havg, tag + "q1.w");
    const V q1x2 = b.shl(q1v, one, tag + "q1.x2");
    const V qw2 = b.sub(qw, q1x2, tag + "q1.w2");
    const V qw3 = b.shr(qw2, one, tag + "q1.w3");
    const V dq1 = b.max(b.neg(tc0, tag + "q1.ntc0"),
                        b.min(tc0, qw3, tag + "q1.min"), tag + "q1.d");
    const V q1n = b.add(q1v, dq1, tag + "q1.new");
    const V aqfs = b.and_(fs, aq, tag + "q1.pred");
    const V q1out = b.select(aqfs, q1n, q1v, tag + "q1.out");

    // In-place writeback.
    b.store(c, p1out, kW, tag + "st.p1");
    b.store(c, p0out, 2 * kW, tag + "st.p0");
    b.store(c, q0out, 3 * kW, tag + "st.q0");
    b.store(aq1, q1out, 3 * kW, tag + "st.q1");
  }

  Kernel kernel;
  kernel.name = "h264deblocking";
  kernel.description =
      "H.264 luma row deblocking, normal (bS<4) filter, 3 columns per "
      "iteration, fully predicated";
  kernel.ddg = b.finish();
  kernel.paper = Table1Row{214, 3, 4, true, 6};
  kernel.memorySize = kMemSize;
  kernel.safeIterations = 1 << 20;  // circular addressing never escapes
  return kernel;
}

std::vector<Kernel> table1Kernels() {
  std::vector<Kernel> kernels;
  kernels.push_back(buildFir2Dim());
  kernels.push_back(buildIdctHor());
  kernels.push_back(buildMpeg2Inter());
  kernels.push_back(buildH264Deblocking());
  return kernels;
}

// ---------------------------------------------------------------------------
// Random DDG generator for property tests.
// ---------------------------------------------------------------------------
Ddg randomDdg(Rng& rng, const RandomDdgParams& params) {
  HCA_REQUIRE(params.numInstructions >= 4, "randomDdg: too few instructions");
  HCA_REQUIRE(params.memorySize >= 64 &&
                  (params.memorySize & (params.memorySize - 1)) == 0,
              "randomDdg: memory size must be a power of two >= 64");
  DdgBuilder b;
  const V one = b.cst(1);
  // The paper's kernels have "largely independent data, low memory
  // aliasing" and the DDG carries no memory-dependence edges, so the
  // generator keeps loads and stores alias-free by construction: loads
  // read the lower half of the image, and every store node owns a private
  // 16-word slice of the upper half.
  const int loadRegion = params.memorySize / 2;
  const V loadMask = b.cst(loadRegion - 1);
  const V storeMask = b.cst(15);
  const int storeSlices = std::max(1, (params.memorySize - loadRegion) / 16);
  int storeCount = 0;

  std::vector<V> pool;  // values usable as operands
  int budget = params.numInstructions;

  // A couple of carried induction chains seed the pool and give the graph
  // the loop-carried structure real kernels have.
  const int numIvs = 2;
  for (int i = 0; i < numIvs && budget > 0; ++i) {
    V iv = b.carry(static_cast<std::int64_t>(rng.below(8)), strCat("iv", i));
    const V next = b.add(iv, one, strCat("iv", i, ".next"));
    b.close(iv, next, 1);
    pool.push_back(next);
    --budget;
  }

  const auto pick = [&]() -> V {
    return pool[rng.below(pool.size())];
  };
  const auto pickCarried = [&](V v) -> V {
    if (rng.uniform() < params.carryFraction) {
      const auto d =
          static_cast<std::int32_t>(rng.range(1, params.maxDistance));
      return b.at(v, d, static_cast<std::int64_t>(rng.below(16)));
    }
    return v;
  };

  // Keep one store for the very end so the DDG always has a sink.
  while (budget > 1) {
    const double roll = rng.uniform();
    if (roll < params.memOpFraction && budget >= 3) {
      if (rng.chance(0.7)) {
        const V addr = b.and_(pick(), loadMask, "addr");
        pool.push_back(b.load(addr));
        budget -= 2;
      } else if (budget >= 3 && storeCount + 1 < storeSlices) {
        // Keep one slice in reserve for the final sink store.
        const V addr = b.and_(pick(), storeMask, "st.addr");
        b.store(addr, pickCarried(pick()), loadRegion + storeCount++ * 16);
        budget -= 2;
      }
      continue;
    }
    // Arithmetic node with random op and operands.
    static constexpr Op kArith[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kMac,
                                    Op::kMin, Op::kMax, Op::kAnd, Op::kOr,
                                    Op::kXor, Op::kCmpLt, Op::kSelect,
                                    Op::kAbs, Op::kNeg};
    const Op op = kArith[rng.below(std::size(kArith))];
    std::vector<V> operands;
    operands.reserve(static_cast<std::size_t>(opArity(op)));
    for (int i = 0; i < opArity(op); ++i) {
      operands.push_back(pickCarried(pick()));
    }
    pool.push_back(b.emit(op, std::move(operands)));
    --budget;
  }
  // Final sink store (its own slice, like every other store).
  const V addr = b.and_(pick(), storeMask, "sink.addr");
  b.store(addr, pick(), loadRegion + storeCount * 16, "sink");

  return b.finish();
}

}  // namespace hca::ddg
