#include "baseline/multilevel.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace hca::baseline {

namespace {

/// Undirected dependence adjacency between instruction nodes.
std::map<DdgNodeId, std::vector<DdgNodeId>> buildAdjacency(
    const ddg::Ddg& ddg) {
  std::map<DdgNodeId, std::vector<DdgNodeId>> adj;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    adj[DdgNodeId(v)];  // ensure entry
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      if (operand.src == DdgNodeId(v)) continue;
      adj[DdgNodeId(v)].push_back(operand.src);
      adj[operand.src].push_back(DdgNodeId(v));
    }
  }
  return adj;
}

struct Partitioner {
  const ddg::Ddg& ddg;
  const machine::DspFabricModel& model;
  const MultilevelOptions& options;
  std::map<DdgNodeId, std::vector<DdgNodeId>> adjacency;
  Rng rng;
  MultilevelResult result;

  /// Splits `nodes` into `parts` balanced groups with greedy BFS growth
  /// followed by FM-style refinement. Returns the part of each node
  /// (parallel to `nodes`).
  std::vector<int> split(const std::vector<DdgNodeId>& nodes, int parts) {
    const int n = static_cast<int>(nodes.size());
    std::vector<int> part(static_cast<std::size_t>(n), -1);
    if (n == 0) return part;
    std::map<DdgNodeId, int> indexOf;
    for (int i = 0; i < n; ++i) {
      indexOf[nodes[static_cast<std::size_t>(i)]] = i;
    }
    const int capacity = std::max(
        1, static_cast<int>(
               static_cast<double>(n) / parts * (1.0 + options.balanceTolerance) +
               0.999));

    // Greedy seed: grow each part by BFS from an unassigned node, stopping
    // at the balanced size. Keeps connected regions together.
    const int targetSize = (n + parts - 1) / parts;
    int cursor = 0;
    for (int p = 0; p < parts; ++p) {
      int size = 0;
      std::deque<int> queue;
      while (size < targetSize) {
        if (queue.empty()) {
          while (cursor < n && part[static_cast<std::size_t>(cursor)] != -1) {
            ++cursor;
          }
          if (cursor >= n) break;
          queue.push_back(cursor);
          part[static_cast<std::size_t>(cursor)] = p;
          ++size;
        }
        const int u = queue.front();
        queue.pop_front();
        for (const DdgNodeId nbr :
             adjacency[nodes[static_cast<std::size_t>(u)]]) {
          const auto it = indexOf.find(nbr);
          if (it == indexOf.end()) continue;
          const int w = it->second;
          if (part[static_cast<std::size_t>(w)] != -1) continue;
          if (size >= targetSize) break;
          part[static_cast<std::size_t>(w)] = p;
          ++size;
          queue.push_back(w);
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      if (part[static_cast<std::size_t>(i)] == -1) {
        part[static_cast<std::size_t>(i)] =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(parts)));
      }
    }

    // FM-style refinement: move nodes to the part holding most of their
    // neighbors when the balance allows it.
    std::vector<int> sizes(static_cast<std::size_t>(parts), 0);
    for (int i = 0; i < n; ++i) ++sizes[static_cast<std::size_t>(part[static_cast<std::size_t>(i)])];
    for (int pass = 0; pass < options.refinementPasses; ++pass) {
      bool moved = false;
      for (int i = 0; i < n; ++i) {
        const int own = part[static_cast<std::size_t>(i)];
        std::vector<int> affinity(static_cast<std::size_t>(parts), 0);
        for (const DdgNodeId nbr :
             adjacency[nodes[static_cast<std::size_t>(i)]]) {
          const auto it = indexOf.find(nbr);
          if (it == indexOf.end()) continue;
          ++affinity[static_cast<std::size_t>(
              part[static_cast<std::size_t>(it->second)])];
        }
        int best = own;
        for (int p = 0; p < parts; ++p) {
          if (p == own || sizes[static_cast<std::size_t>(p)] >= capacity) {
            continue;
          }
          if (affinity[static_cast<std::size_t>(p)] >
              affinity[static_cast<std::size_t>(best)]) {
            best = p;
          }
        }
        if (best != own && sizes[static_cast<std::size_t>(own)] > 1) {
          part[static_cast<std::size_t>(i)] = best;
          --sizes[static_cast<std::size_t>(own)];
          ++sizes[static_cast<std::size_t>(best)];
          ++result.refinementMoves;
          moved = true;
        }
      }
      if (!moved) break;
    }
    return part;
  }

  void assign(const std::vector<DdgNodeId>& nodes, std::vector<int> path) {
    const int level = static_cast<int>(path.size());
    if (level == model.numLevels()) {
      const CnId cn = model.cnIdOf(path);
      for (const DdgNodeId n : nodes) {
        result.assignment[n.index()] = cn;
      }
      result.maxCnLoad =
          std::max(result.maxCnLoad, static_cast<int>(nodes.size()));
      return;
    }
    const int parts = model.levelSpec(level).children;
    const auto part = split(nodes, parts);
    std::vector<std::vector<DdgNodeId>> groups(
        static_cast<std::size_t>(parts));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      groups[static_cast<std::size_t>(part[i])].push_back(nodes[i]);
    }
    for (int p = 0; p < parts; ++p) {
      auto childPath = path;
      childPath.push_back(p);
      assign(groups[static_cast<std::size_t>(p)], std::move(childPath));
    }
  }
};

}  // namespace

MultilevelResult runMultilevel(const ddg::Ddg& ddg,
                               const machine::DspFabricModel& model,
                               const MultilevelOptions& options) {
  Partitioner partitioner{ddg, model, options, buildAdjacency(ddg),
                          Rng(options.seed), {}};
  partitioner.result.assignment.assign(
      static_cast<std::size_t>(ddg.numNodes()), CnId::invalid());

  std::vector<DdgNodeId> all;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) all.emplace_back(v);
  }
  partitioner.assign(all, {});

  MultilevelResult result = std::move(partitioner.result);
  // Cut metric: dependence edges crossing CNs.
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const auto& node = ddg.node(DdgNodeId(v));
    if (!ddg::isInstruction(node.op)) continue;
    for (const auto& operand : node.operands) {
      if (!ddg::isInstruction(ddg.node(operand.src).op)) continue;
      if (result.assignment[operand.src.index()] !=
          result.assignment[static_cast<std::size_t>(v)]) {
        ++result.cutEdges;
      }
    }
  }
  result.hierarchy = checkHierarchyFeasibility(ddg, model, result.assignment);
  result.hierarchyLegal = result.hierarchy.legal;
  if (!result.hierarchyLegal) {
    result.failureReason = result.hierarchy.failureReason;
  }
  return result;
}

}  // namespace hca::baseline
