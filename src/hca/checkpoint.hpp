#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "hca/records.hpp"
#include "hca/subproblem_cache.hpp"
#include "support/check.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

/// Crash-safe checkpoint/resume of the outer hierarchical search.
///
/// The outer portfolio sweep is a sequence of independent, deterministic
/// (target II, profile) attempts; the unit of saved work is one *completed,
/// failed* attempt. A checkpoint records, per attempt: its phase-qualified
/// identity (ladder rung + index), its failure reason and its HcaStats — plus
/// a snapshot of the sub-problem cache taken at the same attempt boundary.
/// On resume the driver skips every restored attempt (merging its recorded
/// stats instead of re-searching) and pre-warms the cache with the snapshot,
/// so the first re-run attempt observes *exactly* the cache state it would
/// have seen in an uninterrupted run. That is the identity guarantee: the
/// resumed run's FinalMapping and HcaStats are byte-identical to an
/// uninterrupted run with the same inputs (wall-clock, per-attempt metrics
/// and trace spans excepted — they describe the actual execution).
///
/// Two things are deliberately *never* checkpointed:
///  - attempts cut short by a deadline or shutdown signal (their partial
///    stats would poison the identity guarantee; they simply re-run), and
///  - legal attempts (a legal attempt completes the run — there is nothing
///    left to resume into).
///
/// File format: a one-line header `HCACHK <version> <fnv1a64-hex> <bytes>\n`
/// followed by a JSON payload of exactly `<bytes>` bytes. The checksum is
/// FNV-1a 64 over the payload; the length catches truncation, the checksum
/// catches corruption, the version catches format drift, and a run identity
/// fingerprint inside the payload catches "resumed against different
/// inputs". Files are written via support/io.hpp's atomic path (temp +
/// fsync + rename), so a crash mid-write leaves the previous checkpoint
/// intact.
namespace hca::core {

/// Structured checkpoint failure. Derives from InvalidArgumentError so the
/// kDegrade policy and the CLI fold it into the invalid-input exit path —
/// a bad checkpoint file is bad input, never an internal error.
class CheckpointError : public InvalidArgumentError {
 public:
  enum class Kind {
    kBadMagic,     ///< not a checkpoint file at all
    kBadVersion,   ///< a future/unknown format version
    kTruncated,    ///< payload shorter than the header promises
    kBadChecksum,  ///< payload bytes do not hash to the header checksum
    kBadPayload,   ///< JSON parse/shape error inside a verified payload
    kWrongRun,     ///< identity fingerprint does not match this run
  };

  CheckpointError(Kind kind, const std::string& message)
      : InvalidArgumentError(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] const char* to_string(CheckpointError::Kind kind);

/// FNV-1a 64-bit (the repo's standard content hash; also used by the SEE
/// frontier signatures). Exposed for the corruption tests.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// One completed, failed outer attempt.
struct CheckpointAttempt {
  /// Ladder-rung qualified sweep label ("sweep", "beam-backoff",
  /// "degraded-bandwidth/sweep", ...). Rungs reuse attempt indices 0..N,
  /// so the phase disambiguates them.
  std::string phase;
  /// Index of the attempt within its sweep's (target asc, profile asc)
  /// enumeration order.
  int index = 0;
  int target = 0;
  int profile = 0;
  std::string failureReason;
  HcaStats stats;
};

/// The full persisted state.
struct CheckpointData {
  /// Run identity: fnv1a64 over the DDG text form, the machine config and
  /// fault set, and every result-affecting HcaOption (hex string).
  std::string fingerprint;
  int iniMii = 0;
  std::vector<CheckpointAttempt> attempts;
  /// Sub-problem cache snapshots, one per cache-owning ladder scope (""
  /// for the root ladder, "degraded-bandwidth/" for the nested one).
  /// Entries are in SubproblemCache::forEach order; re-inserting in that
  /// order reproduces the per-shard insertion order.
  std::map<std::string,
           std::vector<std::pair<std::string, see::SeeResult>>>
      cacheByScope;
};

/// Serializes to header + payload (the exact bytes of the file).
[[nodiscard]] std::string serializeCheckpoint(const CheckpointData& data);

/// Strict inverse; throws CheckpointError on any corruption.
[[nodiscard]] CheckpointData parseCheckpoint(const std::string& text);

/// The run identity fingerprint (see CheckpointData::fingerprint).
/// Results-invisible options — deadlineMs, numThreads, allowOversubscribe,
/// tracing, verification — are excluded: interrupting a run and resuming it
/// with a longer deadline or different thread count is the point.
[[nodiscard]] std::string runFingerprint(const ddg::Ddg& ddg,
                                         const machine::DspFabricModel& model,
                                         const HcaOptions& options);

/// The driver-facing manager: owns the checkpoint file path, the restored
/// state (when resuming) and the write throttle. Thread-safe — the parallel
/// sweep's attempts call noteAttempt() concurrently.
class CheckpointManager {
 public:
  /// `everyMs` <= 0 writes on every recorded attempt; otherwise writes are
  /// throttled to at most one per `everyMs` milliseconds (flush() and the
  /// final write ignore the throttle).
  CheckpointManager(std::string path, int everyMs = 0);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Loads `path()` for resume. Returns false when the file does not exist
  /// (fresh start); throws CheckpointError on corruption or IoError on a
  /// read failure.
  bool loadForResume();

  /// Called by the driver once per run (runChecked) before the ladder
  /// starts. Verifies the restored state (if any) belongs to this exact
  /// run — throws CheckpointError(kWrongRun) otherwise — and arms the
  /// manager for recording.
  void bindRun(const std::string& fingerprint, int iniMii);

  /// The restored attempt at (phase, index), or nullptr when that attempt
  /// must (re-)run.
  [[nodiscard]] const CheckpointAttempt* restoredAttempt(
      const std::string& phase, int index) const;

  /// The restored cache snapshot for a ladder scope, or nullptr.
  [[nodiscard]] const std::vector<std::pair<std::string, see::SeeResult>>*
  restoredCache(const std::string& scope) const;

  /// Records one completed, failed attempt and snapshots `cache` (may be
  /// null) under `cacheScope`. Writes the checkpoint file unless throttled.
  void noteAttempt(CheckpointAttempt attempt, const std::string& cacheScope,
                   const SubproblemCache* cache);

  /// Writes the current state now (no-op when nothing was ever recorded
  /// and nothing was restored). Called on graceful shutdown.
  void flush();

  [[nodiscard]] int attemptsRecorded() const;

  /// Test seam: invoked (outside the lock) after every recorded attempt
  /// with the total number recorded so far. The kill-at-checkpoint tests
  /// use it to cancel the run at a precise attempt boundary.
  std::function<void(int)> onAttemptRecorded;

 private:
  struct CacheSnapshot {
    std::vector<std::pair<std::string, std::shared_ptr<const see::SeeResult>>>
        entries;
  };

  void writeLocked() HCA_REQUIRES(mutex_);

  const std::string path_;
  const int everyMs_;

  mutable Mutex mutex_;
  bool bound_ HCA_GUARDED_BY(mutex_) = false;
  std::string fingerprint_ HCA_GUARDED_BY(mutex_);
  int iniMii_ HCA_GUARDED_BY(mutex_) = 0;
  /// Restored state (resume); keyed by "phase\n<index>".
  std::map<std::string, CheckpointAttempt> restored_ HCA_GUARDED_BY(mutex_);
  std::map<std::string, std::vector<std::pair<std::string, see::SeeResult>>>
      restoredCaches_ HCA_GUARDED_BY(mutex_);
  /// Attempts recorded this run (includes re-persisted restored ones).
  std::vector<CheckpointAttempt> recorded_ HCA_GUARDED_BY(mutex_);
  std::map<std::string, CacheSnapshot> snapshots_ HCA_GUARDED_BY(mutex_);
  std::int64_t lastWriteMs_ HCA_GUARDED_BY(mutex_) = -1;
  bool dirty_ HCA_GUARDED_BY(mutex_) = false;
};

}  // namespace hca::core
