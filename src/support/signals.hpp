#pragma once

#include "support/thread_pool.hpp"

/// Graceful-shutdown plumbing for the command-line tools.
///
/// `installShutdownHandlers` routes SIGINT/SIGTERM into a process-wide
/// `CancellationToken` (an async-signal-safe atomic store). Long-running
/// searches already poll cancellation tokens cooperatively, so chaining the
/// run's root token to `shutdownToken()` turns Ctrl-C / kill into a clean
/// unwind: the run returns best-so-far, the caller still writes its report
/// and flushes its checkpoint, and the process exits through the normal
/// exit-code contract instead of dying mid-write.
///
/// A *second* SIGINT/SIGTERM force-quits immediately (_exit) for the case
/// where the cooperative unwind itself is what the operator wants to kill.
namespace hca {

/// The process-wide shutdown token. Never cancelled until a handler
/// installed by `installShutdownHandlers` sees a signal.
[[nodiscard]] const CancellationToken& shutdownToken();

/// Installs SIGINT/SIGTERM handlers (idempotent).
void installShutdownHandlers();

/// The first shutdown signal received, or 0 when none arrived yet.
[[nodiscard]] int shutdownSignal();

}  // namespace hca
